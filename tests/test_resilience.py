"""Tests for the resilience layer: deadlines, retry ladders,
checkpoint/resume, crash recovery and the shared error hierarchy.

The chaos tests (marked ``chaos``) deliberately hang and SIGKILL worker
processes inside pooled campaigns; they are quick (< a few seconds) but
are kept in their own marker so they can be selected or excluded
explicitly (see the ``resilience-chaos`` CI job).
"""

import os
import pickle
import signal
import time

import pytest

from repro.errors import (
    CampaignError,
    CheckpointError,
    CounterTimeout,
    DeadlineExceeded,
    DeckError,
    NewtonError,
    ReproError,
)
from repro.faults import FaultCampaign, StuckAtFault
from repro.obs.core import observe
from repro.resilience import (
    CampaignCheckpoint,
    Deadline,
    FailureReport,
    RetryPolicy,
    active_deadline,
    campaign_key,
    check_deadline,
    deadline_scope,
    installed,
    retry_scope,
)
from repro.service import CampaignSpec
from repro.spice import Circuit, dc_operating_point, parse_netlist, transient
from repro.verify.goldens import normalize


# ---------------------------------------------------------------------------
# fixtures shared by the campaign tests (module-level: workers pickle them)

def divider():
    ckt = Circuit("div")
    ckt.vsource("VIN", "in", "0", 4.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def measure_mid(ckt):
    """The plain technique: DC solve, report the divider midpoint."""
    v, _ = dc_operating_point(ckt, validate=False)
    return v["mid"]


def chaos_technique(ckt):
    """Technique with marker-fault trapdoors: the ``hang`` fault sleeps
    (uninterruptible without a worker kill), the ``boom`` fault SIGKILLs
    its own process, the ``interrupt`` fault (armed via environment so
    the checkpoint content key stays constant) raises KeyboardInterrupt.
    """
    if ckt.has_element("FLT_hang_V"):
        time.sleep(30.0)
    if ckt.has_element("FLT_boom_V"):
        os.kill(os.getpid(), signal.SIGKILL)
    if (os.environ.get("REPRO_TEST_INTERRUPT")
            and ckt.has_element(os.environ["REPRO_TEST_INTERRUPT"])):
        raise KeyboardInterrupt
    return measure_mid(ckt)


def slow_transient_technique(ckt):
    """A technique dominated by engine time, so cooperative deadline
    checks inside the march are what interrupt it."""
    res = transient(ckt, t_stop=0.2, dt=1e-7, validate=False)
    return res.final("mid")


def delta_detector(ref, meas):
    return 1.0 if abs(ref - meas) > 0.1 else 0.0


def mid_faults(n=6):
    """Detectable faults on the divider midpoint."""
    out = []
    for i in range(n):
        out.append(StuckAtFault(name=f"f{i}", node="mid",
                                level=float(i % 2) * 5.0,
                                resistance=10.0 + i))
    return out


def hard_stack(n=10):
    """NMOS diode stack whose DC solve fails plain Newton but recovers
    through gmin stepping (empirically stable fixture)."""
    ckt = Circuit(f"stack{n}")
    ckt.vsource("VDD", "vdd", "0", float(2 * n))
    ckt.isource("IB", "vdd", "n0", 1e-3)
    prev = "n0"
    for i in range(n):
        nxt = "0" if i == n - 1 else f"n{i + 1}"
        ckt.nmos(f"M{i}", prev, prev, nxt)
        prev = nxt
    return ckt


# ---------------------------------------------------------------------------
class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (NewtonError, DeckError, CampaignError, CheckpointError,
                    DeadlineExceeded, CounterTimeout):
            assert issubclass(exc, ReproError)

    def test_compat_bases_kept(self):
        # historical except-clauses must keep working
        assert issubclass(NewtonError, RuntimeError)
        assert issubclass(DeckError, ValueError)
        assert issubclass(CounterTimeout, TimeoutError)
        assert issubclass(CheckpointError, CampaignError)

    def test_deadline_exceeded_is_not_a_timeout_error(self):
        # wall-clock cancellation is an infrastructure verdict, not the
        # DUT-functional CounterTimeout
        assert not issubclass(DeadlineExceeded, TimeoutError)

    def test_parser_error_is_deck_error(self):
        from repro.spice import NetlistSyntaxError
        assert issubclass(NetlistSyntaxError, DeckError)
        with pytest.raises(DeckError):
            parse_netlist("R1 a\n")

    def test_solver_error_importable_from_both_homes(self):
        from repro.errors import NewtonError as from_errors
        from repro.spice.solver import NewtonError as from_solver
        assert from_errors is from_solver


# ---------------------------------------------------------------------------
class TestDeadline:
    def test_basic_budget(self):
        d = Deadline(60.0, label="t")
        assert not d.expired()
        assert 0.0 < d.remaining() <= 60.0
        d.check("nowhere")  # does not raise

    def test_expired_check_raises_with_identity(self):
        d = Deadline(1e-4, label="tiny")
        time.sleep(2e-3)
        assert d.expired()
        with pytest.raises(DeadlineExceeded) as exc_info:
            d.check("unit test")
        assert exc_info.value.deadline is d
        assert "tiny" in str(exc_info.value)
        assert "unit test" in str(exc_info.value)

    def test_invalid_seconds(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_scope_installs_and_restores(self):
        assert active_deadline() is None
        with deadline_scope(10.0, label="outer") as d:
            assert active_deadline() is d
            assert d.label == "outer"
        assert active_deadline() is None

    def test_none_scope_is_noop(self):
        with deadline_scope(None) as d:
            assert d is None
            check_deadline("free")  # no ambient deadline: free pass

    def test_nested_tightest_wins(self):
        with deadline_scope(60.0, label="outer") as outer:
            with deadline_scope(1.0, label="inner") as inner:
                assert active_deadline() is inner
                assert inner.label == "inner"
            assert active_deadline() is outer
            # a *looser* inner scope leaves the outer deadline active
            with deadline_scope(120.0, label="loose") as winner:
                assert winner is outer

    def test_installed_shares_one_budget(self):
        d = Deadline(30.0, label="campaign")
        with installed(d) as active:
            assert active is d
            t_end_first = active_deadline().t_end
        with installed(d):
            # same object, same clock: not restarted
            assert active_deadline().t_end == t_end_first
        assert active_deadline() is None

    def test_cooperative_check_in_newton(self):
        # Needs a nonlinear deck: linear circuits take the direct-solve
        # fast path, which never enters the Newton iteration loop.
        ckt = hard_stack(4)
        d = Deadline(1e-4, label="solve")
        time.sleep(2e-3)
        with installed(d):
            with pytest.raises(DeadlineExceeded):
                dc_operating_point(ckt)

    def test_cooperative_check_in_transient(self):
        ckt = divider()
        with deadline_scope(0.02, label="march"):
            with pytest.raises(DeadlineExceeded):
                transient(ckt, t_stop=1.0, dt=1e-7)


# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_match_historical_ladder(self):
        p = RetryPolicy()
        assert p.gmin_ladder[0] == 1e-2 and p.gmin_ladder[-1] == 1e-12
        assert p.source_steps == 21
        assert p.max_timestep_halvings == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(source_steps=-1)
        with pytest.raises(ValueError):
            RetryPolicy(gmin_ladder=(0.0,))
        with pytest.raises(ValueError):
            RetryPolicy(max_timestep_halvings=-2)

    def test_policy_is_picklable_and_frozen(self):
        p = RetryPolicy()
        assert pickle.loads(pickle.dumps(p)) == p
        with pytest.raises(Exception):
            p.source_steps = 5  # frozen dataclass

    def test_ladder_recovery_emits_retry_events(self):
        """The hard stack fails plain Newton; the default ladder recovers
        and the recovery is visible as solver.retry events + counters."""
        with observe() as h:
            v, _ = dc_operating_point(hard_stack())
        assert v["n0"] > 0.0
        counters = h.metrics.to_dict()
        assert counters["solver.retries"]["value"] >= 1
        assert counters["solver.retries.gmin_stepping"]["value"] >= 1
        retry_events = h.events.records(name="solver.retry")
        assert retry_events
        assert retry_events[0]["fields"]["strategy"] == "gmin_stepping"

    def test_policy_none_fails_fast(self):
        with pytest.raises(NewtonError):
            dc_operating_point(hard_stack(),
                               retry_policy=RetryPolicy.none())

    def test_ambient_scope_governs_solves(self):
        with retry_scope(RetryPolicy.none()):
            with pytest.raises(NewtonError):
                dc_operating_point(hard_stack())
        # scope restored: the default ladder recovers again
        v, _ = dc_operating_point(hard_stack())
        assert v["n0"] > 0.0

    def test_explicit_policy_overrides_ambient(self):
        with retry_scope(RetryPolicy.none()):
            v, _ = dc_operating_point(hard_stack(),
                                      retry_policy=RetryPolicy())
        assert v["n0"] > 0.0

    def test_transient_subdivision_budget_from_policy(self):
        # max_subdivisions defaults to the policy's halving budget
        ckt = divider()
        res = transient(ckt, t_stop=1e-4, dt=1e-5,
                        retry_policy=RetryPolicy(max_timestep_halvings=0))
        assert len(res.times) == 11


# ---------------------------------------------------------------------------
class TestDeckValidation:
    def test_sense_only_node_named(self):
        ckt = Circuit("sense")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.vcvs("E1", "out", "0", "ghost", "0", 2.0)
        ckt.resistor("R2", "out", "0", 1e3)
        with pytest.raises(DeckError, match="'ghost'"):
            dc_operating_point(ckt)

    def test_current_source_into_nothing_named(self):
        ckt = Circuit("inject")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.isource("I1", "0", "dangling", 1e-3)
        with pytest.raises(DeckError, match="'dangling'"):
            dc_operating_point(ckt)

    def test_parallel_voltage_sources_rejected(self):
        ckt = Circuit("loop")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.vsource("V2", "a", "0", 2.0)
        ckt.resistor("R1", "a", "0", 1e3)
        with pytest.raises(DeckError, match="V2"):
            dc_operating_point(ckt)

    def test_self_shorted_source_rejected(self):
        ckt = Circuit("self")
        ckt.vsource("V1", "a", "a", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        with pytest.raises(DeckError, match="own terminals"):
            dc_operating_point(ckt)

    def test_capacitor_only_node_is_legal(self):
        # held by gmin at DC, integrates in transient: not an error
        ckt = Circuit("capnode")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.capacitor("C1", "a", "b", 1e-12)
        v, _ = dc_operating_point(ckt)
        assert abs(v["b"]) < 1.0

    def test_validate_false_opts_out(self):
        ckt = Circuit("optout")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.isource("I1", "0", "dangling", 1e-9)
        v, _ = dc_operating_point(ckt, validate=False)
        assert "dangling" in v  # gmin produced *some* number

    def test_transient_validates_too(self):
        ckt = Circuit("tfloat")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.vccs("G1", "0", "nowhere", "a", "0", 1e-3)
        with pytest.raises(DeckError, match="'nowhere'"):
            transient(ckt, t_stop=1e-3, dt=1e-4)


# ---------------------------------------------------------------------------
class TestCheckpoint:
    def _campaign_bits(self):
        target = divider()
        faults = mid_faults(4)
        key = campaign_key(measure_mid, delta_detector, target, faults,
                           0.05, "detected", fault_timeout_s=None)
        return target, faults, key

    def test_key_is_stable_and_sensitive(self):
        target, faults, key = self._campaign_bits()
        again = campaign_key(measure_mid, delta_detector, target, faults,
                             0.05, "detected", fault_timeout_s=None)
        assert key == again
        other = campaign_key(measure_mid, delta_detector, target,
                             faults[:-1], 0.05, "detected")
        assert key != other
        other = campaign_key(measure_mid, delta_detector, target, faults,
                             0.10, "detected")
        assert key != other

    def test_missing_file_is_fresh_run(self, tmp_path):
        ckpt = CampaignCheckpoint(str(tmp_path / "none.ckpt"), "k")
        assert ckpt.load() == {}

    def test_roundtrip_strips_measurement(self, tmp_path):
        from repro.faults.campaign import FaultOutcome
        _, faults, key = self._campaign_bits()
        path = str(tmp_path / "c.ckpt")
        ckpt = CampaignCheckpoint(path, key)
        out = FaultOutcome(fault=faults[0], detection=1.0, detected=True,
                           measurement=[1.0] * 100, elapsed_s=0.5)
        ckpt.save({0: out}, n_faults=4)
        loaded = ckpt.load()
        assert loaded[0].detected is True
        assert loaded[0].measurement is None
        assert loaded[0].elapsed_s == 0.5

    def test_wrong_key_refuses_resume(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        CampaignCheckpoint(path, "key-a").save({}, n_faults=0)
        with pytest.raises(CheckpointError, match="different campaign"):
            CampaignCheckpoint(path, "key-b").load()

    def test_corrupt_file_quarantined_and_run_restarts(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert CampaignCheckpoint(str(path), "k").load() == {}
        assert not path.exists()
        assert (tmp_path / "c.ckpt.corrupt").read_bytes() == b"not a pickle"

    def test_unknown_schema_quarantined(self, tmp_path):
        import pickle
        path = tmp_path / "c.ckpt"
        path.write_bytes(pickle.dumps({"schema": "repro.checkpoint/999"}))
        with pytest.warns(RuntimeWarning, match="unknown schema"):
            assert CampaignCheckpoint(str(path), "k").load() == {}
        assert (tmp_path / "c.ckpt.corrupt").exists()

    def test_interval_batches_writes(self, tmp_path):
        from repro.faults.campaign import FaultOutcome
        _, faults, key = self._campaign_bits()
        path = str(tmp_path / "c.ckpt")
        ckpt = CampaignCheckpoint(path, key, every=3)
        o = FaultOutcome(fault=faults[0], detection=0.0, detected=False)
        assert not ckpt.maybe_save({0: o}, 4)
        assert not ckpt.maybe_save({0: o}, 4)
        assert ckpt.maybe_save({0: o}, 4)
        assert os.path.exists(path)

    def test_resume_requires_checkpoint_path(self):
        c = FaultCampaign(measure_mid, delta_detector)
        with pytest.raises(ValueError, match="resume"):
            c.run(divider(), mid_faults(2), spec=CampaignSpec(resume=True))


# ---------------------------------------------------------------------------
class TestCampaignResilience:
    @pytest.mark.parametrize("errors_as_detected", [True, False])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_timeout_never_counts_as_detected(self, errors_as_detected,
                                              workers):
        """A timed-out fault is detected=False under either error policy,
        serially (cooperative) and pooled (cooperative or killed)."""
        ckt = divider()
        faults = mid_faults(2)
        c = FaultCampaign(slow_transient_technique, delta_detector,
                          errors_as_detected=errors_as_detected,
                          workers=workers)
        res = c.run(ckt, faults, reference=2.0,
                    spec=CampaignSpec(fault_timeout_s=0.05,
                                      timeout_grace_s=5.0))
        assert res.n_faults == 2
        assert res.n_timeouts == 2
        assert res.partial
        for o in res.outcomes:
            assert o.timed_out
            assert not o.detected
            assert o.error.startswith("timeout")
            assert o.to_dict()["timed_out"] is True
        assert res.failure_report().timeouts == [f.describe()
                                                 for f in faults]
        assert "timeout" in res.summary()
        assert res.to_dict()["partial"] is True

    @pytest.mark.parametrize("errors_as_detected", [True, False])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_policy_still_governs_plain_errors(self,
                                                     errors_as_detected,
                                                     workers):
        ckt = divider()
        # a bridge onto a ghost node cannot inject -> KeyError
        bad = StuckAtFault.sa0("ghost")
        good = mid_faults(1)
        c = FaultCampaign(measure_mid, delta_detector,
                          errors_as_detected=errors_as_detected,
                          workers=workers)
        res = c.run(ckt, good + [bad])
        assert res.n_errors == 1
        errored = res.outcomes[-1]
        assert errored.detected is errors_as_detected
        assert not errored.timed_out
        assert not res.partial  # plain errors do not degrade the run

    def test_campaign_deadline_skips_remainder_serial(self):
        ckt = divider()
        faults = mid_faults(6)
        c = FaultCampaign(slow_transient_technique, delta_detector)
        res = c.run(ckt, faults, reference=2.0,
                    spec=CampaignSpec(campaign_deadline_s=0.05))
        assert res.partial
        rep = res.failure_report()
        assert rep.deadline_hit
        assert rep.skipped  # at least the tail never ran
        assert res.n_faults + res.n_skipped == len(faults)
        # skipped faults are accounted in fault order at the tail
        assert rep.skipped == [f.describe()
                               for f in faults[len(res.outcomes):]]
        assert res.to_dict()["failures"]["deadline_hit"] is True

    @pytest.mark.chaos
    def test_campaign_deadline_pooled(self):
        ckt = divider()
        faults = mid_faults(4)
        c = FaultCampaign(chaos_technique, delta_detector, workers=2)
        # every pooled fault hangs; the campaign deadline must still end
        # the run promptly by killing the pool
        hang = [StuckAtFault(name="hang", node="mid", resistance=1.0)]
        t0 = time.perf_counter()
        res = c.run(ckt, hang + faults[:1], reference=2.0,
                    spec=CampaignSpec(campaign_deadline_s=0.5))
        assert time.perf_counter() - t0 < 10.0
        assert res.partial
        assert res.failure_report().deadline_hit

    def test_checkpoint_written_and_resumable_noop(self, tmp_path):
        """A completed run leaves a checkpoint that a re-run consumes
        without re-evaluating anything."""
        calls_path = tmp_path / "calls"
        ckpt_path = str(tmp_path / "c.ckpt")
        ckt = divider()
        faults = mid_faults(3)
        c = FaultCampaign(measure_mid, delta_detector)
        first = c.run(ckt, faults, spec=CampaignSpec(checkpoint=ckpt_path))
        assert os.path.exists(ckpt_path)
        # poison the technique: any evaluation now would diverge
        resumed = FaultCampaign(measure_mid, delta_detector).run(
            ckt, faults, spec=CampaignSpec(checkpoint=ckpt_path,
                                           resume=True))
        assert normalize(resumed.to_dict()) == normalize(first.to_dict())
        assert calls_path.exists() is False

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path,
                                                           workers):
        """The acceptance pin: kill a campaign partway (checkpointing as
        it goes), resume, and the final to_dict() matches the
        uninterrupted run's — serially and pooled."""
        ckt = divider()
        faults = mid_faults(6)
        spec = CampaignSpec(workers=workers)

        golden = FaultCampaign(chaos_technique, delta_detector).run(
            ckt, faults, reference=2.0, spec=spec)

        ckpt_path = str(tmp_path / f"resume-{workers}.ckpt")
        os.environ["REPRO_TEST_INTERRUPT"] = "FLT_f4_V"
        try:
            with pytest.raises(KeyboardInterrupt):
                FaultCampaign(chaos_technique, delta_detector).run(
                    ckt, faults, reference=2.0,
                    spec=spec.replace(checkpoint=ckpt_path,
                                      checkpoint_every=1))
        finally:
            os.environ.pop("REPRO_TEST_INTERRUPT", None)
        assert os.path.exists(ckpt_path)

        resumed = FaultCampaign(chaos_technique, delta_detector).run(
            ckt, faults, reference=2.0,
            spec=spec.replace(checkpoint=ckpt_path, resume=True))
        assert normalize(resumed.to_dict()) == normalize(golden.to_dict())
        assert not resumed.partial

    def test_progress_order_matches_serial_on_resume(self, tmp_path):
        """Progress callbacks fire in fault order even when half the
        outcomes are replayed from a checkpoint."""
        ckt = divider()
        faults = mid_faults(4)
        ckpt_path = str(tmp_path / "p.ckpt")
        c = FaultCampaign(measure_mid, delta_detector)
        c.run(ckt, faults, spec=CampaignSpec(checkpoint=ckpt_path))
        seen = []
        c.run(ckt, faults, spec=CampaignSpec(
            checkpoint=ckpt_path, resume=True,
            progress=lambda p: seen.append((p.done, p.fault))))
        assert [d for d, _ in seen] == [1, 2, 3, 4]
        assert [f for _, f in seen] == [f.describe() for f in faults]

    @pytest.mark.chaos
    def test_chaos_pooled_hang_and_crash(self):
        """The chaos acceptance test: one hanging fault, one
        worker-killing fault and healthy faults in one pooled campaign.
        The run completes, the hang is timed out, the killer is
        quarantined after two crashes, innocents are evaluated, and the
        accounting is exact."""
        ckt = divider()
        hang = StuckAtFault(name="hang", node="mid", resistance=1.0)
        boom = StuckAtFault(name="boom", node="mid", resistance=1.0)
        healthy = mid_faults(3)
        faults = [healthy[0], hang, boom, healthy[1], healthy[2]]
        c = FaultCampaign(chaos_technique, delta_detector, workers=2)
        with observe() as h:
            res = c.run(ckt, faults, reference=2.0,
                        spec=CampaignSpec(fault_timeout_s=0.4,
                                          timeout_grace_s=0.3))
        assert res.n_faults == 5          # every fault accounted for
        assert res.partial
        rep = res.failure_report()
        assert rep.timeouts == [hang.describe()]
        assert rep.quarantined == [boom.describe()]
        assert rep.worker_crashes >= 2    # blame pass + lone re-run
        assert rep.pools_killed >= rep.worker_crashes
        assert not rep.skipped
        # outcomes stay in fault order with structured verdicts
        by_fault = {o.fault.describe(): o for o in res.outcomes}
        assert by_fault[hang.describe()].timed_out
        assert not by_fault[hang.describe()].detected
        assert by_fault[boom.describe()].quarantined
        assert not by_fault[boom.describe()].detected
        for f in healthy:
            o = by_fault[f.describe()]
            assert o.error is None and o.detected
        # the degradation is visible in metrics and in the payload
        counters = h.metrics.to_dict()
        assert counters["campaign.fault_timeouts"]["value"] == 1
        assert counters["campaign.quarantined"]["value"] == 1
        assert counters["campaign.worker_crashes"]["value"] >= 2
        doc = res.to_dict()
        assert doc["partial"] is True
        assert doc["failures"]["quarantined"] == [boom.describe()]
        assert [o["fault"] for o in doc["outcomes"]] == \
            [f.describe() for f in faults]

    def test_clean_run_payload_shape_unchanged(self):
        """No resilience keys leak into a healthy run's to_dict() — the
        pinned goldens rely on this."""
        res = FaultCampaign(measure_mid, delta_detector).run(
            divider(), mid_faults(2))
        doc = res.to_dict()
        assert "partial" not in doc
        assert "failures" not in doc
        assert all("timed_out" not in o and "quarantined" not in o
                   for o in doc["outcomes"])
        assert not res.partial
        assert not res.failure_report().degraded
        assert res.failure_report().summary() == "no failures"


# ---------------------------------------------------------------------------
class TestFailureReport:
    def test_empty_report(self):
        rep = FailureReport()
        assert not rep.degraded
        assert rep.to_dict()["degraded"] is False

    def test_summary_lists_everything(self):
        rep = FailureReport(timeouts=["a"], quarantined=["b"],
                            skipped=["c", "d"], worker_crashes=2,
                            pools_killed=3, deadline_hit=True)
        s = rep.summary()
        for fragment in ("1 timeout", "1 quarantined", "2 skipped",
                         "2 worker crash", "deadline hit"):
            assert fragment in s
        assert rep.degraded


# ---------------------------------------------------------------------------
class TestSessionAndCLI:
    def test_session_routes_resilience_kwargs(self, tmp_path):
        from repro import Session
        ckpt_path = str(tmp_path / "s.ckpt")
        s = Session(obs=False)
        res = s.run_campaign(measure_mid, delta_detector, divider(),
                             mid_faults(3), threshold=0.5,
                             checkpoint=ckpt_path, fault_timeout_s=30.0)
        assert res.n_faults == 3
        assert res.threshold == 0.5
        assert os.path.exists(ckpt_path)
        resumed = s.run_campaign(measure_mid, delta_detector, divider(),
                                 mid_faults(3), threshold=0.5,
                                 checkpoint=ckpt_path, resume=True,
                                 fault_timeout_s=30.0)
        assert normalize(resumed.to_dict()) == normalize(res.to_dict())

    def test_cli_partial_detection(self):
        from repro.experiments.__main__ import _is_partial
        assert not _is_partial({"a": [{"b": 1}]})
        assert _is_partial({"runs": [{"nested": {"partial": True}}]})
        assert not _is_partial({"partial": False})
