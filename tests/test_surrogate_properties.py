"""Hypothesis properties of the vector fitter.

Three invariants hold for *every* input, not just the fixtures:

* exact-order fits of noise-free rational data recover the true poles
  (the relocation iteration is a fixed point at the right answer);
* the fitter never returns an unstable model, even when the data came
  from a right-half-plane system (pole flipping is unconditional);
* ``rms_history`` is strictly decreasing except possibly its final
  entry — the loop keeps only improvements and stops at the first
  non-improvement, so the reported best never regresses.

Deterministic (``derandomize=True``): tier-1 must not flake.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surrogate import SurrogateModel, VectorFitter, pole_drift

pytestmark = pytest.mark.surrogate

#: coarse exponent grid for pole magnitudes — unique draws guarantee
#: >= half-decade separation, so exact recovery is well-conditioned
_EXPONENTS = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]


@st.composite
def rational_models(draw, allow_unstable=False):
    """A random rational model with well-separated poles and bounded
    residues; optionally with some poles reflected into the RHP."""
    n_pairs = draw(st.integers(min_value=0, max_value=2))
    n_real = draw(st.integers(min_value=0 if n_pairs else 1, max_value=2))
    exps = draw(st.lists(st.sampled_from(_EXPONENTS), unique=True,
                         min_size=n_pairs + n_real,
                         max_size=n_pairs + n_real))
    poles, residues = [], []
    for k in range(n_pairs):
        mag = 10.0 ** exps[k]
        # damping ratio in [0.1, 0.95]: away from both axes
        zeta = draw(st.floats(min_value=0.1, max_value=0.95))
        p = complex(-zeta * mag, mag * np.sqrt(1.0 - zeta ** 2))
        r_mag = mag * 10.0 ** draw(st.floats(min_value=-1.0, max_value=1.0))
        phase = draw(st.floats(min_value=0.0, max_value=2 * np.pi))
        r = r_mag * np.exp(1j * phase)
        poles.extend([p, np.conj(p)])
        residues.extend([r, np.conj(r)])
    for k in range(n_real):
        mag = 10.0 ** exps[n_pairs + k]
        sign = -1.0 if draw(st.booleans()) else 1.0
        poles.append(complex(-mag, 0.0))
        residues.append(complex(
            sign * mag * 10.0 ** draw(st.floats(min_value=-1.0,
                                                max_value=1.0)), 0.0))
    if allow_unstable:
        # reflect a subset into the RHP, pairwise so H stays real
        flips = [draw(st.booleans()) for _ in range(n_pairs + n_real)]
        i = 0
        for k, flip in enumerate(flips):
            width = 2 if k < n_pairs else 1
            if flip:
                for j in range(i, i + width):
                    poles[j] = complex(-poles[j].real, poles[j].imag)
            i += width
    return SurrogateModel(np.asarray(poles), np.asarray(residues),
                          constant=draw(st.floats(min_value=-2.0,
                                                  max_value=2.0)))


def _sample_grid(model, n_points=90):
    mags = np.abs(model.poles)
    f_lo = float(np.min(mags)) / (2 * np.pi) / 10.0
    f_hi = float(np.max(mags)) / (2 * np.pi) * 10.0
    return 2j * np.pi * np.logspace(np.log10(f_lo), np.log10(f_hi),
                                    n_points)


@settings(max_examples=30, deadline=None, derandomize=True)
@given(truth=rational_models())
def test_exact_order_fit_recovers_poles(truth):
    s = _sample_grid(truth)
    fitter = VectorFitter(n_poles=truth.order, n_iterations=20)
    model = fitter.fit(s, truth.transfer_function_at(s))
    assert model.report.rms_error < 1e-8
    drift = pole_drift(truth, model)
    assert drift.unmatched == 0
    assert drift.max_shift < 1e-5
    assert np.allclose(model.transfer_function_at(s),
                       truth.transfer_function_at(s),
                       rtol=1e-6, atol=1e-9 * np.max(
                           np.abs(truth.transfer_function_at(s))))


@settings(max_examples=30, deadline=None, derandomize=True)
@given(truth=rational_models(allow_unstable=True))
def test_fit_is_always_stable(truth):
    """Even when the sampled data came from an unstable system, pole
    flipping guarantees a stable returned model (the surrogate's
    recurrence and impulse response must never blow up)."""
    s = _sample_grid(truth)
    model = VectorFitter(n_poles=truth.order,
                         n_iterations=8).fit(s, truth.transfer_function_at(s))
    assert model.is_stable()
    assert np.all(model.poles.real < 0.0)
    # the recurrence stays bounded over a long step stimulus
    y = model.transient(np.ones(2048), dt=0.1 / float(np.max(
        np.abs(model.poles))))
    assert np.all(np.isfinite(y))


@settings(max_examples=30, deadline=None, derandomize=True)
@given(truth=rational_models(), extra=st.integers(min_value=1, max_value=3))
def test_rms_history_monotone_until_termination(truth, extra):
    """The relocation loop either strictly improves or terminates: every
    rms_history transition except possibly the last is a strict
    decrease, and the reported best is the history's minimum."""
    s = _sample_grid(truth)
    model = VectorFitter(n_poles=truth.order + extra,
                         n_iterations=15).fit(s,
                                              truth.transfer_function_at(s))
    history = model.report.rms_history
    assert history, "fit must record at least one iteration"
    for i in range(max(0, len(history) - 2)):
        assert history[i + 1] < history[i]
    assert model.report.rms_error == min(history)
    assert history[model.report.best_iteration] == min(history)
