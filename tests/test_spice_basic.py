"""Smoke tests for the MNA engine: linear networks with known answers."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    dc_operating_point,
    transient,
)


def test_resistive_divider_dc():
    ckt = Circuit("divider")
    ckt.vsource("VIN", "in", "0", 10.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 3e3)
    v, _ = dc_operating_point(ckt)
    assert v["in"] == pytest.approx(10.0, abs=1e-9)
    assert v["mid"] == pytest.approx(7.5, rel=1e-6)


def test_current_source_into_resistor():
    ckt = Circuit("ir")
    ckt.isource("I1", "0", "n1", 1e-3)
    ckt.resistor("R1", "n1", "0", 2e3)
    v, _ = dc_operating_point(ckt)
    assert v["n1"] == pytest.approx(2.0, rel=1e-6)


def test_vcvs_gain():
    ckt = Circuit("amp")
    ckt.vsource("VIN", "in", "0", 0.5)
    ckt.vcvs("E1", "out", "0", "in", "0", 10.0)
    ckt.resistor("RL", "out", "0", 1e3)
    v, _ = dc_operating_point(ckt)
    assert v["out"] == pytest.approx(5.0, rel=1e-6)


def test_vccs_into_load():
    ckt = Circuit("gm")
    ckt.vsource("VIN", "in", "0", 1.0)
    # i = gm*vin flowing out_p -> out_m; pull current out of node "out"
    ckt.vccs("G1", "0", "out", "in", "0", 2e-3)
    ckt.resistor("RL", "out", "0", 1e3)
    v, _ = dc_operating_point(ckt)
    assert v["out"] == pytest.approx(2.0, rel=1e-6)


def test_rc_charging_transient():
    """RC step response must follow 1 - exp(-t/RC)."""
    r, c = 1e3, 1e-6  # tau = 1 ms
    ckt = Circuit("rc")
    ckt.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
    ckt.resistor("R1", "in", "out", r)
    ckt.capacitor("C1", "out", "0", c)
    res = transient(ckt, t_stop=5e-3, dt=10e-6, uic=True)
    wave = res["out"]
    tau = r * c
    expected = 5.0 * (1.0 - np.exp(-wave.times[1:] / tau))
    # Backward Euler at dt = tau/100: ~1 % accuracy is expected
    assert np.allclose(wave.values[1:], expected, atol=0.06)
    assert wave.values[-1] == pytest.approx(5.0, abs=0.05)


def test_rc_trapezoidal_more_accurate_than_be():
    r, c = 1e3, 1e-6
    def build():
        ckt = Circuit("rc")
        ckt.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
        ckt.resistor("R1", "in", "out", r)
        ckt.capacitor("C1", "out", "0", c)
        return ckt

    tau = r * c
    errs = {}
    for method in ("be", "trap"):
        res = transient(build(), t_stop=3e-3, dt=50e-6, method=method, uic=True)
        wave = res["out"]
        expected = 5.0 * (1.0 - np.exp(-wave.times / tau))
        errs[method] = float(np.max(np.abs(wave.values - expected)))
    assert errs["trap"] < errs["be"]


def test_switch_follows_control():
    ckt = Circuit("sw")
    ckt.vsource("VC", "ctl", "0", lambda t: 5.0 if t > 0.5e-3 else 0.0)
    ckt.vsource("VIN", "in", "0", 1.0)
    ckt.switch("S1", "in", "out", "ctl", "0", v_on=2.5, r_on=10.0)
    ckt.resistor("RL", "out", "0", 1e4)
    res = transient(ckt, t_stop=1e-3, dt=10e-6)
    out = res["out"]
    assert out.value_at(0.25e-3) < 0.01      # switch off: divider ~ 1e9/1e4
    assert out.value_at(0.9e-3) == pytest.approx(1.0, abs=0.01)


def test_transient_records_requested_nodes_only():
    ckt = Circuit("rec")
    ckt.vsource("VIN", "in", "0", 1.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.resistor("R2", "out", "0", 1e3)
    res = transient(ckt, t_stop=1e-4, dt=1e-5, record=["out"])
    assert res.nodes() == ["out"]
    with pytest.raises(KeyError):
        _ = res["in"]


def test_unknown_record_node_rejected():
    ckt = Circuit("bad")
    ckt.vsource("VIN", "in", "0", 1.0)
    ckt.resistor("R1", "in", "0", 1e3)
    with pytest.raises(KeyError):
        transient(ckt, t_stop=1e-4, dt=1e-5, record=["nope"])


def test_duplicate_element_name_rejected():
    ckt = Circuit("dup")
    ckt.resistor("R1", "a", "0", 1e3)
    with pytest.raises(ValueError):
        ckt.resistor("R1", "b", "0", 1e3)


def test_ground_aliases_normalise():
    ckt = Circuit("gnd")
    ckt.vsource("VIN", "in", "GND", 1.0)
    ckt.resistor("R1", "in", "ground", 1e3)
    assert ckt.nodes() == ["in"]


def test_circuit_merge_with_prefix_and_port_map():
    sub = Circuit("cell")
    sub.resistor("R1", "a", "b", 1e3)
    sub.resistor("R2", "b", "0", 1e3)
    top = Circuit("top")
    top.vsource("VIN", "vin", "0", 2.0)
    top.merge(sub, prefix="X1_", node_map={"a": "vin", "b": "out"})
    v, _ = dc_operating_point(top)
    assert v["out"] == pytest.approx(1.0, rel=1e-6)
    assert top.has_element("X1_R1")
