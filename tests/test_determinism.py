"""Reproducibility contracts: every seeded path must replay exactly.

The verify subsystem (and the golden store in particular) only works if
seeded randomness is bit-stable: noise injection, process variation,
random circuit generation and fault campaigns must give byte-identical
results for the same seed, and campaigns must not depend on whether the
fault universe was evaluated serially or across worker processes.
"""

import numpy as np
import pytest

from repro.faults import FaultCampaign, StuckAtFault
from repro.process.variation import VariationModel, VariationSpec
from repro.signals import Waveform
from repro.spice import Circuit, dc_operating_point
from repro.verify.generate import KINDS, generate_circuit


class TestNoiseSeeding:
    def setup_method(self):
        self.wave = Waveform(np.linspace(0.0, 5.0, 64), dt=1e-6)

    def test_same_seed_same_noise(self):
        a = self.wave.with_noise(0.1, seed=42)
        b = self.wave.with_noise(0.1, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seed_different_noise(self):
        a = self.wave.with_noise(0.1, seed=42)
        b = self.wave.with_noise(0.1, seed=43)
        assert not np.array_equal(a.values, b.values)

    def test_explicit_rng_equivalent_to_seed(self):
        a = self.wave.with_noise(0.1, seed=7)
        b = self.wave.with_noise(0.1, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.values, b.values)


class TestVariationSeeding:
    def model(self, seed=1996):
        return VariationModel(
            [VariationSpec("r", sigma=0.05),
             VariationSpec("c", sigma=0.1, distribution="lognormal")],
            seed=seed)

    def test_device_sampling_replays(self):
        nominals = {"r": 1e3, "c": 1e-9}
        first = self.model().sample_device(nominals, 3)
        second = self.model().sample_device(nominals, 3)
        assert first == second

    def test_devices_are_independent_of_batch_context(self):
        """Device i's parameters depend only on (seed, i), never on how
        many devices were sampled before it."""
        nominals = {"r": 1e3, "c": 1e-9}
        batch = self.model().sample_batch(nominals, 8)
        for i in (0, 4, 7):
            assert self.model().sample_device(nominals, i) == batch[i]

    def test_seed_changes_samples(self):
        nominals = {"r": 1e3, "c": 1e-9}
        assert (self.model(seed=1).sample_device(nominals, 0)
                != self.model(seed=2).sample_device(nominals, 0))


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("kind", KINDS)
    def test_same_seed_byte_identical_deck(self, kind):
        a = generate_circuit(17, kind)
        b = generate_circuit(17, kind)
        assert a.deck() == b.deck()
        assert a.dt == b.dt and a.n_steps == b.n_steps

    def test_same_seed_identical_oracle(self):
        a = generate_circuit(5, "rlc")
        b = generate_circuit(5, "rlc")
        np.testing.assert_array_equal(a.oracle.a, b.oracle.a)
        np.testing.assert_array_equal(a.oracle.b, b.oracle.b)

    @pytest.mark.parametrize("kind", KINDS)
    def test_different_seeds_differ(self, kind):
        assert (generate_circuit(0, kind).deck()
                != generate_circuit(1, kind).deck())


# Campaign technique/detector must live at module scope so they pickle
# into ProcessPoolExecutor workers.
def _divider():
    ckt = Circuit("div")
    ckt.vsource("VIN", "in", "0", 4.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def _mid_voltage(ckt):
    v, _ = dc_operating_point(ckt)
    return v["mid"]


def _shift_detector(reference, measurement):
    return min(1.0, abs(measurement - reference))


def _campaign_fingerprint(result):
    return [(o.fault.describe(), round(o.detection, 12), o.detected,
             o.error) for o in result.outcomes]


class TestCampaignDeterminism:
    FAULTS = [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid", vdd=5.0),
              StuckAtFault(name="weak", node="mid", level=0.0,
                           resistance=1e3)]

    def test_serial_replays(self):
        campaign = FaultCampaign(_mid_voltage, _shift_detector)
        first = campaign.run(_divider(), self.FAULTS)
        second = campaign.run(_divider(), self.FAULTS)
        assert _campaign_fingerprint(first) == _campaign_fingerprint(second)

    def test_workers_match_serial(self):
        """Fanning the universe over processes must not change outcomes
        or their order — the parallel fast path is a pure optimisation."""
        serial = FaultCampaign(_mid_voltage, _shift_detector,
                               workers=1).run(_divider(), self.FAULTS)
        parallel = FaultCampaign(_mid_voltage, _shift_detector,
                                 workers=2).run(_divider(), self.FAULTS)
        assert _campaign_fingerprint(serial) == _campaign_fingerprint(parallel)
        assert serial.coverage == parallel.coverage
