"""Importable campaign workload + crash/restart driver for the
durability chaos suite (and the CI acceptance script).

Everything here is module-level so a :class:`CampaignSpec` built from
it pickles into the persistent queue journal and unpickles in a
*different* process — the whole point of queue recovery.  The technique
sleeps a little per evaluation so a SIGKILL reliably lands mid-campaign
instead of racing a sub-millisecond run.

Run as a script (``python -m tests._durability_workload``) it becomes
the chaos driver: build a durable :class:`~repro.session.Session` over
a queue/cache/checkpoint directory, ``recover()`` whatever a previous
process left, optionally submit the standard jobs, gather, and write
every result's ``to_dict()`` keyed by campaign name.  The chaos tests
start it, SIGKILL it mid-drain, start it again without ``--submit`` and
pin the recovered payload against an uninterrupted golden.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, List, Tuple

from repro.faults import StuckAtFault
from repro.spice import Circuit, dc_operating_point

#: per-evaluation sleep: long enough that a kill lands mid-campaign,
#: short enough that the chaos suite stays fast.
SLEEP_S = float(os.environ.get("REPRO_DURABILITY_SLEEP_S", "0.03"))


def divider() -> Circuit:
    ckt = Circuit("div")
    ckt.vsource("VIN", "in", "0", 4.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def slow_measure_mid(ckt: Circuit) -> float:
    """DC solve of the divider midpoint, slowed to give SIGKILL a
    window.  The sleep changes wall clock only — never the verdict."""
    time.sleep(SLEEP_S)
    v, _ = dc_operating_point(ckt, validate=False)
    return v["mid"]


def delta_detector(ref: float, meas: float) -> float:
    return 1.0 if abs(ref - meas) > 0.1 else 0.0


def mid_faults(n: int = 6, offset: int = 0) -> List[StuckAtFault]:
    """Detectable midpoint faults; ``offset`` derives disjoint
    universes for multi-job campaigns."""
    return [StuckAtFault(name=f"f{offset + i}", node="mid",
                         level=float((offset + i) % 2) * 5.0,
                         resistance=10.0 + offset + i)
            for i in range(n)]


def standard_specs(workdir: str, n_faults: int = 6,
                   workers: int = 1) -> List[Any]:
    """The fixed two-job workload every driver run (and the golden)
    uses: different priorities, disjoint fault universes, per-job
    checkpoints under ``workdir``."""
    from repro.service.spec import CampaignSpec
    specs = []
    for i, (offset, priority) in enumerate(((0, 0), (100, 1))):
        specs.append(CampaignSpec(
            technique=slow_measure_mid, detector=delta_detector,
            target=divider(), faults=tuple(mid_faults(n_faults, offset)),
            name=f"durable-{i}", priority=priority, workers=workers,
            checkpoint=os.path.join(workdir, f"job{i}.ckpt"),
            checkpoint_every=1))
    return specs


def golden_results(workdir: str, n_faults: int = 6,
                   workers: int = 1) -> Dict[str, Dict[str, Any]]:
    """Uninterrupted reference payloads, computed in-process with no
    queue and no cache (fresh checkpoint dir so nothing is shared)."""
    from repro.service.scheduler import CampaignScheduler
    golden_dir = os.path.join(workdir, "golden")
    os.makedirs(golden_dir, exist_ok=True)
    with CampaignScheduler(workers=workers, name="golden") as sched:
        jobs = [sched.submit(spec.replace(
                    checkpoint=os.path.join(golden_dir,
                                            f"job{i}.ckpt")))
                for i, spec in enumerate(standard_specs(
                    golden_dir, n_faults, workers))]
        return {job.spec.name: job.result().to_dict() for job in jobs}


# ---------------------------------------------------------------------------
# the crash/restart driver


def driver_argv(workdir: str, *, submit: bool, n_faults: int = 6,
                workers: int = 1) -> List[str]:
    argv = [workdir, "--n-faults", str(n_faults),
            "--workers", str(workers)]
    if submit:
        argv.append("--submit")
    return argv


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        description="durability chaos driver: recover, maybe submit, "
                    "gather, write results")
    parser.add_argument("workdir",
                        help="directory holding queue.jsonl, cache/, "
                             "checkpoints and results.json")
    parser.add_argument("--submit", action="store_true",
                        help="submit the standard jobs (first run); "
                             "omit on restart to only recover")
    parser.add_argument("--n-faults", type=int, default=6)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.service.cache import ResultCache
    from repro.session import Session

    os.makedirs(args.workdir, exist_ok=True)
    session = Session(workers=args.workers, obs=False, name="durable",
                      cache=ResultCache(
                          path=os.path.join(args.workdir, "cache")),
                      queue_path=os.path.join(args.workdir,
                                              "queue.jsonl"))
    jobs = list(session.recover())
    if args.submit:
        jobs.extend(session.submit(spec) for spec in standard_specs(
            args.workdir, args.n_faults, args.workers))
    results = {job.spec.name: job.result().to_dict() for job in jobs}
    session.shutdown()

    out = os.path.join(args.workdir, "results.json")
    tmp = out + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(results, fh, default=str)
    os.replace(tmp, out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
