"""Observability layer: spans, metrics, no-op mode, campaign parity,
and the Session facade's unified RunResult shape."""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.faults import FaultCampaign, StuckAtFault
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer
from repro.session import RunResult, Session
from repro.spice import Circuit, dc_operating_point, transient
from repro.spice.solver import NewtonError


def divider() -> Circuit:
    ckt = Circuit("div")
    ckt.vsource("V1", "top", "0", 5.0)
    ckt.resistor("R1", "top", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def rc_circuit() -> Circuit:
    ckt = Circuit("rc")
    ckt.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-6)
    return ckt


# module-level so the process-pool campaign can pickle them
def _mid_voltage(ckt):
    v, _ = dc_operating_point(ckt)
    return v["mid"]


def _shift_detector(ref, m):
    return 1.0 if abs(m - ref) > 0.5 else 0.0


def _divider_faults():
    return [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid"),
            StuckAtFault.sa0("top"), StuckAtFault.sa1("top")]


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        assert len(tracer.spans) == 1
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.duration_s >= outer.children[0].duration_s >= 0.0
        assert outer.attrs == {"kind": "test"}

    def test_json_export_round_trips(self):
        tracer = Tracer()
        with tracer.span("a", x=1):
            with tracer.span("b"):
                pass
        doc = json.loads(tracer.to_json())
        assert doc["spans"][0]["name"] == "a"
        assert doc["spans"][0]["attrs"] == {"x": 1}
        assert doc["spans"][0]["children"][0]["name"] == "b"
        assert doc["spans"][0]["duration_s"] is not None

    def test_flat_event_log_depths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        with tracer.span("d"):
            pass
        events = tracer.events()
        assert [(e["name"], e["depth"]) for e in events] == [
            ("a", 0), ("b", 1), ("c", 2), ("d", 0)]

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.spans[0].duration_s is not None
        assert tracer.spans[0].children[0].duration_s is not None

    def test_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b", tag=7):
                pass
        assert tracer.find("b").attrs["tag"] == 7
        assert tracer.find("missing") is None


class TestMetrics:
    def test_counter_semantics(self):
        m = Metrics()
        m.counter("x").inc()
        m.counter("x").inc(4)
        assert m.counter_values() == {"x": 5}
        with pytest.raises(ValueError):
            m.counter("x").inc(-1)

    def test_histogram_semantics(self):
        m = Metrics()
        for v in (1.0, 2.0, 3.0):
            m.histogram("h").observe(v)
        h = m.histogram("h")
        assert h.count == 3
        assert h.total == pytest.approx(6.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)
        assert sum(h.buckets) == 3

    def test_gauge_last_wins(self):
        m = Metrics()
        m.gauge("g").set(1.0)
        m.gauge("g").set(0.25)
        assert m.gauge("g").value == 0.25

    def test_merge_is_lossless_for_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.merge(b.to_dict())
        assert a.counter("c").value == 5
        assert a.histogram("h").count == 2
        assert a.histogram("h").min == 1.0
        assert a.histogram("h").max == 5.0
        assert a.histogram("h").total == pytest.approx(6.0)

    def test_snapshot_shape(self):
        m = Metrics()
        m.counter("c").inc()
        m.gauge("g").set(2.0)
        m.histogram("h").observe(0.5)
        snap = m.to_dict()
        assert snap["c"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["h"]["type"] == "histogram"
        # snapshots are picklable (workers ship them across processes)
        import pickle
        pickle.loads(pickle.dumps(snap))


class TestNoOpMode:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_disabled_run_produces_zero_events(self):
        assert not obs.enabled()
        baseline_tracer = obs.OBS.tracer
        result = transient(rc_circuit(), t_stop=1e-4, dt=1e-6,
                           record=["out"])
        v, _ = dc_operating_point(divider())
        obs.count("never")
        obs.record("never_h", 1.0)
        obs.gauge("never_g", 1.0)
        assert result.trace is None
        assert len(obs.OBS.tracer) == len(baseline_tracer) == 0
        assert obs.OBS.metrics.is_empty()

    def test_null_span_is_reentrant_noop(self):
        with obs.span("a") as sa:
            with obs.span("b") as sb:
                assert sa is sb is obs.NULL_SPAN
                sa.set(anything=1)

    def test_scope_restores_disabled_state(self):
        with obs.observe():
            assert obs.enabled()
            with obs.observe():
                assert obs.enabled()
            assert obs.enabled()
        assert not obs.enabled()

    def test_env_var_enables(self):
        code = ("import repro.obs as o; print(o.enabled())")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={"PYTHONPATH": "src", "REPRO_OBS": "1", "PATH": "/usr/bin:/bin"},
            cwd=".", check=True)
        assert out.stdout.strip() == "True"


class TestInstrumentedLayers:
    def test_transient_span_counters(self):
        with obs.observe() as o:
            result = transient(rc_circuit(), t_stop=1e-4, dt=1e-6,
                               record=["out"])
        assert result.trace is not None
        attrs = result.trace.attrs
        assert attrs["engine"] == "linear_march"
        assert attrs["n_steps"] == 100
        assert attrs["lu_reuses"] == 100
        counters = o.metrics.counter_values()
        assert counters["transient.steps"] == 100
        assert counters["fastpath.linear_march_steps"] == 100
        assert counters["mna.lu_factorizations"] >= 1

    def test_newton_counters_on_nonlinear_solve(self):
        from repro.circuits.op1 import op1_follower
        with obs.observe() as o:
            dc_operating_point(op1_follower(input_value=2.5))
        counters = o.metrics.counter_values()
        assert counters["solver.newton_iterations"] > 0
        assert counters["mna.lu_factorizations"] > 0
        span = o.tracer.find("dc_operating_point")
        assert span.attrs["newton_iterations"] > 0

    def test_convergence_failure_counted(self):
        # a capacitor loop with no DC path is singular at DC
        ckt = Circuit("bad")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.capacitor("C1", "a", "b", 1e-9)
        ckt.capacitor("C2", "b", "0", 1e-9)
        with obs.observe() as o:
            try:
                dc_operating_point(ckt)
            except NewtonError:
                pass
        # counted if (and only if) the solve actually failed
        counters = o.metrics.counter_values()
        if "solver.convergence_failures" in counters:
            assert counters["solver.convergence_failures"] >= 1

    def test_bist_counters(self):
        from repro.dft import LogicBISTEngine
        engine = LogicBISTEngine(width=4, n_patterns=16)
        with obs.observe() as o:
            engine.learn(lambda x: x ^ 0b1010)
            session = engine.run(lambda x: x)  # differs from golden
        counters = o.metrics.counter_values()
        assert counters["bist.sessions"] == 2
        assert counters["bist.patterns_applied"] == 32
        assert counters["bist.signature_mismatches"] == 1
        assert not session.passed
        assert "FAIL" in session.summary()
        assert session.to_dict()["passed"] is False


class TestCampaignObservability:
    def test_metrics_parity_serial_vs_workers(self):
        with obs.observe() as serial:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5) \
                .run(divider(), _divider_faults())
        with obs.observe() as pooled:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          workers=2).run(divider(), _divider_faults())
        assert serial.metrics.counter_values() == \
            pooled.metrics.counter_values()
        # per-fault wall-time histogram: same population either way
        assert serial.metrics.histogram("campaign.fault_wall_s").count == \
            pooled.metrics.histogram("campaign.fault_wall_s").count == 4

    def test_outcomes_carry_metric_snapshots(self):
        with obs.observe():
            result = FaultCampaign(_mid_voltage, _shift_detector,
                                   threshold=0.5) \
                .run(divider(), _divider_faults())
        for outcome in result.outcomes:
            assert outcome.metrics is not None
            assert outcome.metrics["solver.newton_solves"]["value"] >= 1
        assert result.trace is not None
        assert result.trace.attrs["n_faults"] == 4

    def test_no_snapshots_when_disabled(self):
        result = FaultCampaign(_mid_voltage, _shift_detector,
                               threshold=0.5) \
            .run(divider(), _divider_faults())
        assert all(o.metrics is None for o in result.outcomes)
        assert result.trace is None


class TestErrorsAsDetected:
    @staticmethod
    def _broken(ckt):
        raise RuntimeError("simulation diverged")

    def test_default_counts_errors_as_detected(self):
        campaign = FaultCampaign(self._broken, _shift_detector)
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")],
                              reference=0.0)
        assert result.n_errors == 1
        assert result.n_detected == 1
        assert result.coverage == 1.0
        assert "1 simulation errors" in result.summary()

    def test_errors_as_missed_when_disabled(self):
        campaign = FaultCampaign(self._broken, _shift_detector,
                                 errors_as_detected=False)
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")],
                              reference=0.0)
        assert result.n_errors == 1
        assert result.n_detected == 0
        assert result.coverage == 0.0
        assert result.outcomes[0].error is not None
        assert result.to_dict()["n_errors"] == 1

    def test_removed_alias_rejected(self):
        with pytest.raises(TypeError):
            FaultCampaign(self._broken, _shift_detector,
                          treat_errors_as_detected=False)


class TestSession:
    def test_transient_is_run_result(self):
        s = Session()
        result = s.transient(rc_circuit(), t_stop=1e-4, dt=1e-6,
                             record=["out"])
        assert isinstance(result, RunResult)
        assert result.trace is not None
        assert "transient rc" in result.summary()
        assert result.to_dict()["n_steps"] == 100

    def test_session_accumulates_across_runs(self):
        s = Session()
        s.transient(rc_circuit(), t_stop=1e-4, dt=1e-6, record=["out"])
        s.run_campaign(_mid_voltage, _shift_detector, divider(),
                       _divider_faults(), threshold=0.5)
        roots = [sp.name for sp in s.tracer.spans]
        assert roots == ["transient", "campaign"]
        counters = s.metrics.counter_values()
        assert counters["transient.runs"] == 1
        assert counters["campaign.faults_evaluated"] == 4
        assert counters["solver.newton_solves"] >= 5

    def test_campaign_and_bist_results_are_run_results(self):
        s = Session()
        cover = s.run_campaign(_mid_voltage, _shift_detector, divider(),
                               _divider_faults(), threshold=0.5)
        engine = s.bist(width=4, n_patterns=8)
        engine.learn(lambda x: x)
        bist = s.run_bist(engine, lambda x: x)
        assert isinstance(cover, RunResult)
        assert isinstance(bist, RunResult)
        assert bist.trace is not None

    def test_experiment_record_shape(self):
        s = Session()
        run = s.run_experiment("E8")
        assert isinstance(run, RunResult)
        doc = run.to_dict()
        assert doc["exp_id"] == "E8"
        assert doc["elapsed_s"] > 0
        assert doc["trace"]["name"] == "experiment"
        report = json.loads(s.trace_json())
        assert report["metrics"]["experiments.runs"]["value"] == 1
        assert report["metrics"]["solver.newton_iterations"]["value"] > 0

    def test_obs_off_runs_clean(self):
        s = Session(obs=False)
        result = s.transient(rc_circuit(), t_stop=1e-4, dt=1e-6,
                             record=["out"])
        assert result.trace is None
        assert s.metrics.is_empty()
        assert s.tracer.spans == []

    def test_workers_threaded_through(self):
        s = Session(workers=2)
        campaign = s.campaign(_mid_voltage, _shift_detector, threshold=0.5)
        assert campaign.workers == 2
        with pytest.raises(ValueError):
            Session(workers=0)
