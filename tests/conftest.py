"""Shared pytest wiring: the golden-store update flag.

``pytest --update-goldens`` re-pins every golden the run touches (see
:mod:`repro.verify.goldens`); without it, drift fails with a unified
diff of committed vs recomputed payloads.
"""

from pathlib import Path

import pytest

GOLDENS_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current run instead "
             "of comparing against them")


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def goldens_dir() -> Path:
    return GOLDENS_DIR
