"""Shared pytest wiring: the golden-store update flag and markers.

``pytest --update-goldens`` re-pins every golden the run touches (see
:mod:`repro.verify.goldens`); without it, drift fails with a unified
diff of committed vs recomputed payloads.

Markers (declared in ``pyproject.toml``, documented here — the single
place to look them up):

``slow``
    Long-running transistor-level simulations (full experiment
    reproductions, multi-second transients).  Deselect for a quick
    loop: ``pytest -m "not slow"``.
``chaos``
    Fault-injection tests that deliberately hang or kill worker
    processes to exercise the resilience layer (crash recovery,
    poison-pill quarantine, deadline rescue) or SIGKILL whole service
    processes to exercise the durability layer (write-ahead queue
    replay, torn-journal quarantine, restart == uninterrupted;
    ``tests/test_durability.py``).  They spawn and destroy process
    pools and subprocesses, so they are the suite's
    flakiest-by-design corner: ``pytest -m chaos`` runs them alone.
``surrogate``
    The vector-fitting surrogate suite: fitter property tests
    (hypothesis), golden fits, prescreen-vs-transient equivalence pins
    and the prescreen benchmark.  ``pytest -m "not surrogate"`` skips
    the whole family cleanly; CI's ``surrogate-equivalence`` job runs
    ``pytest -m surrogate`` plus the differential harness.
"""

from pathlib import Path

import pytest

GOLDENS_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current run instead "
             "of comparing against them")


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def goldens_dir() -> Path:
    return GOLDENS_DIR
