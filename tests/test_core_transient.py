"""Tests for transient-response testing, detection metric and the
impulse method."""

import numpy as np
import pytest

from repro.circuits.op1 import op1_follower
from repro.core import (
    TransientMeasurement,
    TransientResponseTester,
    TransientTestConfig,
    detection_instances,
    detection_profile,
)
from repro.core.detection import detection_runs, first_detection_time
from repro.core.impulse_method import (
    ImpulseMethodConfig,
    circuit2_response,
    extract_integrator_model,
    integrator_impulse_response,
    integrator_opamp_fixture,
)
from repro.faults import StuckAtFault, inject
from repro.signals import Waveform

FAST_CONFIG = TransientTestConfig(low_v=2.0, high_v=3.5, sim_dt_s=10e-6)


class TestDetectionMetric:
    def test_identical_waveforms_zero_detection(self):
        w = Waveform(np.sin(np.linspace(0, 10, 100)), 1.0)
        assert detection_instances(w, w) == 0.0

    def test_fully_different_all_detected(self):
        ref = Waveform(np.ones(50), 1.0)
        faulty = Waveform(np.zeros(50), 1.0)
        assert detection_instances(ref, faulty) == 1.0

    def test_partial_deviation(self):
        ref = Waveform(np.ones(100), 1.0)
        vals = np.ones(100)
        vals[60:] = 0.0  # deviates in the last 40%
        assert detection_instances(ref, Waveform(vals, 1.0)) == pytest.approx(0.4)

    def test_threshold_scales_with_reference_peak(self):
        ref = Waveform(10.0 * np.ones(10), 1.0)
        nearly = Waveform(10.0 * np.ones(10) + 0.3, 1.0)
        # 0.3 < 5% of 10
        assert detection_instances(ref, nearly, rel_threshold=0.05) == 0.0
        assert detection_instances(ref, nearly, rel_threshold=0.01) == 1.0

    def test_noise_floor_masks_small_deviations(self):
        ref = Waveform(np.zeros(10) + 1.0, 1.0)
        faulty = Waveform(np.zeros(10) + 1.2, 1.0)
        d = detection_instances(ref, faulty, rel_threshold=0.0,
                                noise_sigma=0.1, noise_k=3.0)
        assert d == 0.0  # 0.2 < 3*0.1

    def test_profile_flags_location(self):
        ref = Waveform(np.zeros(10), 1.0)
        vals = np.zeros(10)
        vals[3] = 1.0
        profile = detection_profile(ref, Waveform(vals, 1.0),
                                    rel_threshold=0.0, noise_sigma=0.1)
        assert profile.values[3] == 1.0
        assert profile.values.sum() == 1.0

    def test_first_detection_time(self):
        ref = Waveform(np.zeros(10), 1.0)
        vals = np.zeros(10)
        vals[4:] = 1.0
        t = first_detection_time(ref, Waveform(vals, 1.0),
                                 rel_threshold=0.0, noise_sigma=0.01)
        assert t == pytest.approx(4.0)

    def test_first_detection_none(self):
        ref = Waveform(np.zeros(10), 1.0)
        assert first_detection_time(ref, ref, noise_sigma=0.1) is None

    def test_detection_runs(self):
        ref = Waveform(np.zeros(8), 1.0)
        vals = np.array([0, 1, 1, 0, 1, 0, 0, 1.0])
        runs, longest = detection_runs(ref, Waveform(vals, 1.0),
                                       rel_threshold=0.0, noise_sigma=0.1)
        assert runs == 3
        assert longest == 2

    def test_mismatched_rates_resampled(self):
        ref = Waveform(np.ones(10), 1.0)
        faulty = Waveform(np.ones(20), 0.5)
        assert detection_instances(ref, faulty) == 0.0

    def test_validation(self):
        w = Waveform([1.0], 1.0)
        with pytest.raises(ValueError):
            detection_instances(w, w, rel_threshold=-1.0)
        with pytest.raises(ValueError):
            detection_instances(Waveform([], 1.0), Waveform([], 1.0))


class TestTransientTester:
    def test_measure_produces_all_fields(self):
        tester = TransientResponseTester(FAST_CONFIG)
        m = tester.measure(op1_follower(input_value=2.5))
        assert isinstance(m, TransientMeasurement)
        assert len(m.response) > 100
        assert len(m.correlation) > 10
        assert m.correlation_peak() > 0.5  # follower: gain ~1 path

    def test_response_follows_prbs_levels(self):
        tester = TransientResponseTester(FAST_CONFIG)
        m = tester.measure(op1_follower(input_value=2.5))
        # stays within the rails (ringing overshoot allowed) and the
        # mean sits between the chip levels
        assert 0.0 <= m.response.trough()
        assert m.response.peak() <= 5.0
        assert 2.0 < m.response.mean() < 3.5
        # at the end of the final chip the output has settled onto it
        final_chip = m.stimulus.values[-1]
        assert m.response.values[-1] == pytest.approx(final_chip, abs=0.2)

    def test_normalized_correlation_bounded(self):
        tester = TransientResponseTester(FAST_CONFIG)
        m = tester.measure(op1_follower(input_value=2.5))
        assert np.max(np.abs(m.normalized.values)) <= 1.0 + 1e-9

    def test_stuck_output_correlates_to_zero(self):
        tester = TransientResponseTester(FAST_CONFIG)
        faulty = inject(op1_follower(input_value=2.5), StuckAtFault.sa0("3"))
        m = tester.measure(faulty)
        assert m.correlation_peak() < 0.1

    def test_fault_detected_against_reference(self):
        tester = TransientResponseTester(FAST_CONFIG)
        ref = tester.measure(op1_follower(input_value=2.5)).correlation
        faulty = inject(op1_follower(input_value=2.5), StuckAtFault.sa1("7"))
        m = tester.measure(faulty).correlation
        assert detection_instances(ref, m, rel_threshold=0.02) > 0.5

    def test_noise_injection(self):
        cfg = TransientTestConfig(low_v=2.0, high_v=3.5, sim_dt_s=10e-6,
                                  noise_sigma_v=0.05)
        tester = TransientResponseTester(cfg)
        clean = TransientResponseTester(FAST_CONFIG).measure(
            op1_follower(input_value=2.5)).response
        noisy = tester.measure(op1_follower(input_value=2.5)).response
        assert np.std(noisy.values - clean.values) > 0.02

    def test_correlation_rejects_noise(self):
        """The paper's claim: R(y,p) changes far less than y itself."""
        clean_cfg = FAST_CONFIG
        noisy_cfg = TransientTestConfig(low_v=2.0, high_v=3.5,
                                        sim_dt_s=10e-6, noise_sigma_v=0.05)
        ckt = op1_follower(input_value=2.5)
        clean = TransientResponseTester(clean_cfg).measure(ckt)
        noisy = TransientResponseTester(noisy_cfg).measure(ckt)
        resp_dev = np.std(noisy.response.values - clean.response.values) \
            / np.std(clean.response.values)
        n = min(len(noisy.correlation), len(clean.correlation))
        corr_dev = np.std(noisy.correlation.values[:n]
                          - clean.correlation.values[:n]) \
            / np.std(clean.correlation.values[:n])
        assert corr_dev < resp_dev / 3.0

    def test_non_source_rejected(self):
        tester = TransientResponseTester(FAST_CONFIG, source_name="RL")
        with pytest.raises(TypeError):
            tester.prepared_circuit(op1_follower(input_value=2.5))

    def test_window_validation(self):
        cfg = TransientTestConfig(window_chips=(1.0, -1.0))
        tester = TransientResponseTester(cfg)
        with pytest.raises(ValueError):
            tester.windowed(Waveform(np.zeros(10), 1.0))

    def test_technique_returns_correlation(self):
        tester = TransientResponseTester(FAST_CONFIG)
        run = tester.technique()
        out = run(op1_follower(input_value=2.5))
        assert isinstance(out, Waveform)


class TestImpulseMethod:
    @pytest.fixture(scope="class")
    def fixture(self):
        return integrator_opamp_fixture()

    @pytest.fixture(scope="class")
    def model_ff(self, fixture):
        return extract_integrator_model(fixture)

    def test_fault_free_extraction(self, model_ff):
        assert model_ff.charge_gain == pytest.approx(1.0, abs=0.05)
        assert model_ff.leak_per_cycle == pytest.approx(0.0, abs=0.01)
        assert abs(model_ff.offset_v) < 0.05
        assert model_ff.sat_hi_v > 1.0
        assert model_ff.sat_lo_v < -0.5

    def test_fault_free_has_rational_model(self, model_ff):
        assert model_ff.amplifier_tf is not None
        assert model_ff.amplifier_tf.dc_gain() == pytest.approx(1.0, abs=0.05)
        # stable closed loop
        assert all(p.real < 0 for p in model_ff.amplifier_tf.poles())

    def test_settling_fraction_in_range(self, model_ff):
        assert 0.0 < model_ff.settling_fraction <= 1.0

    def test_impulse_response_level(self, model_ff):
        cfg = ImpulseMethodConfig()
        h = integrator_impulse_response(model_ff, cfg)
        # first packet: amplitude/6.8
        expected = cfg.impulse_amplitude_v / 6.8
        assert h.values[0] == pytest.approx(expected, rel=0.1)

    def test_dead_amp_flat_response(self, fixture):
        faulty = inject(fixture, StuckAtFault.sa0("7"))
        model = extract_integrator_model(faulty)
        assert model.charge_gain < 0.1
        h = integrator_impulse_response(model)
        # response pinned at its (collapsed) saturation level
        assert np.ptp(h.values) < 0.2

    def test_circuit2_response_is_correlation_window(self, model_ff):
        cfg = ImpulseMethodConfig()
        r = circuit2_response(model_ff, cfg)
        assert len(r) == 2 * cfg.correlation_window + 1

    def test_circuit2_fault_differs(self, fixture, model_ff):
        cfg = ImpulseMethodConfig()
        r_ff = circuit2_response(model_ff, cfg)
        faulty = inject(fixture, StuckAtFault(
            name="7-sa1", node="7", level=5.0,
            resistance=cfg.stuck_resistance_ohm))
        r_f = circuit2_response(extract_integrator_model(faulty, cfg), cfg)
        assert detection_instances(r_ff, r_f, rel_threshold=0.03) > 0.5

    def test_to_ztf_consistency(self, model_ff):
        ztf = model_ff.to_ztf()
        step = ztf.step(5)
        assert step[2] - step[1] == pytest.approx(
            model_ff.charge_gain / 6.8, rel=1e-6)

    def test_paper_faults_respect_config(self):
        cfg = ImpulseMethodConfig(stuck_resistance_ohm=1234.0)
        faults = cfg.paper_faults()
        stuck = [f for f in faults if isinstance(f, StuckAtFault)]
        assert all(f.resistance == 1234.0 for f in stuck)
