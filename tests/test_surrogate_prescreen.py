"""Prescreen-vs-transient equivalence pins and cache composition.

The contract under test: ``prescreen="surrogate"`` must never change
what a campaign *concludes* — per-fault ``detected`` verdicts are
identical, escalated outcomes are byte-identical (modulo wall-clock),
and ``decided_by`` is the only new information.  Pinned on the paper's
E7 universe (serial and ``workers=2, batch_size=8``), on a seeded
random-circuit differential, and against the result cache (surrogate
verdicts live under their own context key and never leak into
unprescreened runs).
"""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.faults.campaign import FaultCampaign
from repro.faults.dictionary import (
    SignatureDetector,
    TransientSignatureTechnique,
    dictionary_faults,
    dictionary_ladder,
)
from repro.service.cache import ResultCache
from repro.service.spec import CampaignSpec
from repro.signals.prbs import prbs_waveform
from repro.surrogate import (
    PrescreenConfig,
    SurrogatePrescreen,
    waveform_source,
)
from repro.verify.surrogate_diff import (
    compare_campaigns,
    e7_workload,
    run_surrogate_differential,
)

pytestmark = pytest.mark.surrogate

THRESHOLD = 0.05
MARGIN = PrescreenConfig().margin


# ----------------------------------------------------------------------
# small dictionary workload (cheap enough to run several campaigns)
# ----------------------------------------------------------------------

def _dictionary_workload(n_sections=4, n_faults=8):
    stimulus = prbs_waveform(order=4, chip_time=50e-6, low=0.0, high=5.0,
                             dt=1e-6, seed=3)
    target = dictionary_ladder(n_sections=n_sections, stimulus=stimulus)
    faults = dictionary_faults(n_sections=n_sections, n_faults=n_faults)
    technique = TransientSignatureTechnique(t_stop=stimulus.duration,
                                            dt=1e-6,
                                            node=f"n{n_sections - 1}")
    return target, technique, SignatureDetector(abs_v=0.05), tuple(faults)


def _assert_equivalent(reference, prescreened):
    """detected equality everywhere; byte equality where the transient
    actually ran; decided_by is the only extra key either way."""
    assert len(prescreened.outcomes) == len(reference.outcomes)
    for ref, pre in zip(reference.outcomes, prescreened.outcomes):
        assert ref.decided_by == "transient"
        assert pre.fault.describe() == ref.fault.describe()
        assert pre.detected == ref.detected, pre.fault.describe()
        if pre.decided_by == "surrogate":
            # a surrogate verdict is only legal outside the margin band
            assert abs(pre.detection - THRESHOLD) > MARGIN
        else:
            ref_doc = dict(ref.to_dict(), elapsed_s=0.0)
            pre_doc = dict(pre.to_dict(), elapsed_s=0.0)
            ref_doc.pop("worker_pid", None)
            pre_doc.pop("worker_pid", None)
            assert pre_doc == ref_doc


# ----------------------------------------------------------------------
# E7: the paper's circuit-1 fault universe
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def e7_runs():
    target, technique, detector, faults, threshold = e7_workload()
    assert threshold == THRESHOLD
    campaign = FaultCampaign(technique, detector, threshold=threshold)
    reference = campaign.run(spec=CampaignSpec(target=target,
                                               faults=faults))
    prescreened = campaign.run(spec=CampaignSpec(
        target=target, faults=faults, prescreen="surrogate"))
    return reference, prescreened


@pytest.mark.slow
def test_e7_equivalence_serial(e7_runs):
    reference, prescreened = e7_runs
    _assert_equivalent(reference, prescreened)
    mismatches = compare_campaigns("e7", reference, prescreened,
                                   THRESHOLD, MARGIN)
    assert mismatches == [], [m.summary() for m in mismatches]
    # OP1's catastrophic faults all score far from the threshold: the
    # surrogate decides the entire universe without one MNA transient
    assert prescreened.n_prescreened == prescreened.n_faults


@pytest.mark.slow
def test_e7_equivalence_parallel_batched(e7_runs):
    reference, _ = e7_runs
    target, technique, detector, faults, threshold = e7_workload()
    campaign = FaultCampaign(technique, detector, threshold=threshold)
    prescreened = campaign.run(spec=CampaignSpec(
        target=target, faults=faults, workers=2, batch_size=8,
        prescreen="surrogate"))
    _assert_equivalent(reference, prescreened)
    assert compare_campaigns("e7:w2b8", reference, prescreened,
                             THRESHOLD, MARGIN) == []


# ----------------------------------------------------------------------
# dictionary campaign: equivalence + decided_by provenance
# ----------------------------------------------------------------------

def test_dictionary_equivalence_and_provenance():
    target, technique, detector, faults = _dictionary_workload()
    campaign = FaultCampaign(technique, detector, threshold=THRESHOLD)
    reference = campaign.run(spec=CampaignSpec(target=target,
                                               faults=faults))
    prescreened = campaign.run(spec=CampaignSpec(
        target=target, faults=faults, prescreen="surrogate"))
    _assert_equivalent(reference, prescreened)
    assert prescreened.n_prescreened == sum(
        1 for o in prescreened.outcomes if o.decided_by == "surrogate")
    assert prescreened.n_prescreened > 0
    # serialisation: decided_by only appears when the surrogate decided,
    # so historical campaign documents keep their exact shape
    for outcome in reference.outcomes:
        assert "decided_by" not in outcome.to_dict()
    for outcome in prescreened.outcomes:
        doc = outcome.to_dict()
        assert ("decided_by" in doc) == (outcome.decided_by == "surrogate")


def test_random_circuit_differential_smoke():
    report = run_surrogate_differential(range(3), max_faults=4)
    assert report.ok, report.summary()
    assert report.n_campaigns > 0
    assert report.n_faults > 0
    doc = report.to_dict()
    assert doc["kind"] == "surrogate_diff_report"
    assert doc["ok"] is True


# ----------------------------------------------------------------------
# cache composition
# ----------------------------------------------------------------------

def test_surrogate_verdicts_cache_under_their_own_key():
    target, technique, detector, faults = _dictionary_workload()
    cache = ResultCache()
    campaign = FaultCampaign(technique, detector, threshold=THRESHOLD,
                             cache=cache)
    spec = CampaignSpec(technique=technique, detector=detector,
                        target=target, faults=faults,
                        prescreen="surrogate")
    assert spec.surrogate_context_key() != spec.context_key()

    cold = campaign.run(spec=spec)
    assert cold.n_prescreened > 0
    assert all(not o.from_cache for o in cold.outcomes)

    # warm re-run: every verdict replays, surrogate provenance intact
    warm = campaign.run(spec=spec)
    assert all(o.from_cache for o in warm.outcomes)
    for before, after in zip(cold.outcomes, warm.outcomes):
        assert after.decided_by == before.decided_by
        assert after.detected == before.detected
        assert after.detection == before.detection

    # an unprescreened run must NOT replay surrogate verdicts: they sit
    # under the surrogate context key, invisible to the plain context
    plain = campaign.run(spec=CampaignSpec(target=target, faults=faults))
    for cached, fresh in zip(cold.outcomes, plain.outcomes):
        assert fresh.decided_by == "transient"
        if cached.decided_by == "surrogate":
            assert not fresh.from_cache
        assert fresh.detected == cached.detected


def test_prescreen_changes_content_key_but_not_legacy_keys():
    target, technique, detector, faults = _dictionary_workload()
    plain = CampaignSpec(technique=technique, detector=detector,
                         target=target, faults=faults)
    prescreened = plain.replace(prescreen="surrogate")
    tuned = plain.replace(prescreen="surrogate",
                          prescreen_config=PrescreenConfig(margin=0.2))
    # same fault universe, same context: the prescreen option lives only
    # in the campaign-level content key and the surrogate context key
    assert plain.context_key() == prescreened.context_key()
    assert len({plain.content_key(), prescreened.content_key(),
                tuned.content_key()}) == 3
    assert prescreened.surrogate_context_key() != \
        tuned.surrogate_context_key()


def test_spec_validation():
    target, _, _, faults = _dictionary_workload()
    with pytest.raises(ValueError):
        CampaignSpec(target=target, faults=faults, prescreen="bogus")
    with pytest.raises(ValueError):
        CampaignSpec(target=target, faults=faults,
                     prescreen_config=PrescreenConfig())
    with pytest.raises(ValueError):
        PrescreenConfig(margin=-0.1)
    with pytest.raises(ValueError):
        PrescreenConfig(n_samples=1)
    with pytest.raises(ValueError):
        PrescreenConfig(max_fit_rms=0.0)
    # the canonical identity string is what cache keys hash
    assert PrescreenConfig().describe().startswith("surrogate-prescreen/1:")
    assert PrescreenConfig(margin=0.2).describe() != \
        PrescreenConfig().describe()


# ----------------------------------------------------------------------
# escalation paths
# ----------------------------------------------------------------------

def test_unsupported_technique_escalates_everything():
    target, _, detector, faults = _dictionary_workload()

    class NoHookTechnique:
        def __call__(self, circuit):  # pragma: no cover - never invoked
            raise AssertionError("prescreen must not simulate")

    prescreen = SurrogatePrescreen(NoHookTechnique(), detector,
                                   threshold=THRESHOLD)
    assert prescreen.classify(target, list(faults)) == [None] * len(faults)


def test_margin_band_and_confident_scores():
    target, technique, _, faults = _dictionary_workload()
    # a detector pinning every score to the threshold sits inside the
    # band for every fault: the surrogate must refuse all verdicts
    on_the_fence = SurrogatePrescreen(technique, lambda ref, m: THRESHOLD,
                                      threshold=THRESHOLD)
    assert on_the_fence.classify(target, list(faults)) == \
        [None] * len(faults)
    # ... while a saturated detector decides everything
    certain = SurrogatePrescreen(technique, lambda ref, m: 1.0,
                                 threshold=THRESHOLD)
    verdicts = certain.classify(target, list(faults))
    assert all(v is not None for v in verdicts)
    assert all(v.decided_by == "surrogate" and v.detected
               for v in verdicts)


def test_waveform_source_requires_unique_time_varying_source():
    target, _, _, _ = _dictionary_workload()
    t_stop = 750e-6
    name, wave = waveform_source(target, dt=1e-6, t_stop=t_stop)
    assert name == "VIN"
    assert wave.duration == pytest.approx(t_stop, rel=0.01)
    dc_only = target.copy()
    dc_only.element("VIN").value = 2.5
    with pytest.raises(SurrogateError):
        waveform_source(dc_only, dt=1e-6, t_stop=t_stop)
