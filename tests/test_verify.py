"""Unit tests for the repro.verify subsystem and the Inductor element.

Covers the random circuit generator, the analytic oracles (checked
against closed forms, then against each other), the differential
harness, the Richardson convergence checker, and the new inductor
stamps that the rlc circuit class exercises.
"""

import numpy as np
import pytest

from repro.lti import StateSpace
from repro.spice import (
    Circuit,
    Inductor,
    ac_sweep,
    dc_operating_point,
    parse_netlist,
    transient,
)
from repro.verify import (
    check_convergence,
    compare_samples,
    generate_circuit,
    run_differential,
)
from repro.verify.generate import KINDS
from repro.verify.oracle import (
    LinearOracle,
    oracle_for_series_rlc,
    rc_step_response,
    series_rlc_step_response,
)


# ----------------------------------------------------------------------
# Inductor element
# ----------------------------------------------------------------------
def series_rlc_circuit(r=10.0, l=1e-3, c=1e-6, v=1.0):
    ckt = Circuit("rlc")
    ckt.vsource("VIN", "in", "0", v)
    ckt.resistor("R1", "in", "n1", r)
    ckt.inductor("L1", "n1", "n2", l)
    ckt.capacitor("C1", "n2", "0", c)
    return ckt


class TestInductor:
    def test_validation(self):
        with pytest.raises(ValueError):
            Inductor("L1", "a", "b", 0.0)
        with pytest.raises(ValueError):
            Inductor("L1", "a", "b", -1e-3)

    def test_dc_short(self):
        """At DC an inductor is a short: the full source voltage appears
        across the capacitor and none across the inductor."""
        v, _ = dc_operating_point(series_rlc_circuit(v=2.5))
        assert v["n1"] == pytest.approx(v["n2"], abs=1e-9)
        assert v["n2"] == pytest.approx(2.5, abs=1e-6)

    def test_describe_and_clone(self):
        ind = Inductor("L1", "a", "b", 2e-3)
        assert ind.describe().split() == ["L", "L1", "a", "b", "0.002"]
        twin = ind.clone()
        assert twin is not ind
        assert twin.describe() == ind.describe()

    @pytest.mark.parametrize("method,tol", [("be", 6e-2), ("trap", 1e-3)])
    def test_transient_matches_closed_form(self, method, tol):
        """Underdamped (Q~3) series RLC step response against the
        textbook solution over several ring periods; trap's phase error
        accumulates ~60x slower than BE's at the same dt."""
        r, l, c, v = 10.0, 1e-3, 1e-6, 1.0
        dt, t_stop = 1e-6, 1.2e-3
        res = transient(series_rlc_circuit(r, l, c, v), t_stop, dt,
                        record=["n2"], method=method, uic=True)
        exact = series_rlc_step_response(r, l, c, v, res.times)
        assert np.max(np.abs(res["n2"].values - exact)) < tol * v

    def test_fast_path_matches_reference(self):
        ckt = series_rlc_circuit()
        fast = transient(ckt, 1e-3, 2e-6, record=["n1", "n2"], uic=True,
                         fast_path=True)
        ref = transient(ckt, 1e-3, 2e-6, record=["n1", "n2"], uic=True,
                        fast_path=False)
        assert fast.stats["engine"] == "linear_march"
        assert ref.stats["engine"] == "newton"
        for node in ("n1", "n2"):
            assert np.max(np.abs(fast[node].values - ref[node].values)) < 1e-9

    def test_uic_seeds_initial_current(self):
        """With uic, ic= presets the branch current: an L-R loop with no
        source decays from that current, dropping i*R across R at t=0+."""
        ckt = Circuit("lr")
        ckt.inductor("L1", "n1", "0", 1e-3, ic=1e-3)
        ckt.resistor("R1", "n1", "0", 1e3)
        res = transient(ckt, 5e-9, 1e-9, record=["n1"], uic=True)
        # v = -i R at the first step (current flows n1 -> ground inside L)
        assert res["n1"].values[1] == pytest.approx(-1.0, rel=0.05)

    def test_parser_accepts_l_cards(self):
        parsed = parse_netlist("""
        * rl divider
        VIN in 0 1.0
        R1 in out 50
        L1 out 0 1m IC=2m
        """).circuit
        ind = [e for e in parsed.elements if isinstance(e, Inductor)]
        assert len(ind) == 1
        assert ind[0].inductance == pytest.approx(1e-3)
        assert ind[0].ic == pytest.approx(2e-3)

    def test_ac_stamp_is_jwl(self):
        """Series RL high-pass: |V_L / V_in| = wL / sqrt(R^2 + (wL)^2)."""
        ckt = Circuit("rl")
        ckt.vsource("VIN", "in", "0", 0.0)
        ckt.resistor("R1", "in", "out", 100.0)
        ckt.inductor("L1", "out", "0", 1e-3)
        sweep = ac_sweep(ckt, "VIN", "out", f_start=1e2, f_stop=1e6,
                         points_per_decade=5)
        w = 2.0 * np.pi * sweep.frequencies_hz
        expected = w * 1e-3 / np.hypot(100.0, w * 1e-3)
        np.testing.assert_allclose(sweep.magnitude, expected, rtol=1e-9)


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_circuit(0, "opamp")

    @pytest.mark.parametrize("kind", KINDS)
    def test_deck_carries_header_and_elements(self, kind):
        gen = generate_circuit(3, kind)
        deck = gen.deck()
        assert deck.startswith(f"* generated kind={kind} seed=3")
        # one summary line per element survives into the deck
        for element in gen.circuit.elements:
            assert element.name in deck

    @pytest.mark.parametrize("kind", ("rc", "rlc"))
    def test_linear_kinds_carry_an_oracle(self, kind):
        gen = generate_circuit(11, kind)
        assert gen.oracle is not None
        n_states = gen.oracle.a.shape[0]
        assert n_states >= len(gen.node_names)
        # generated systems must be strictly stable (well-conditioned)
        assert np.max(np.linalg.eigvals(gen.oracle.a).real) < 0

    def test_mosfet_kind_has_no_oracle(self):
        gen = generate_circuit(11, "mosfet")
        assert gen.oracle is None

    @pytest.mark.parametrize("kind", KINDS)
    def test_grid_is_sane(self, kind):
        gen = generate_circuit(7, kind, max_steps=256)
        assert gen.dt > 0
        assert 2 <= gen.n_steps <= 256

    def test_simulable_at_suggested_grid(self):
        gen = generate_circuit(23, "rlc")
        res = transient(gen.circuit, gen.t_stop, gen.dt,
                        record=gen.node_names, uic=True)
        for node in gen.node_names:
            assert np.all(np.isfinite(res[node].values))


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_matrix_oracle_matches_rc_closed_form(self):
        r, c, v = 1e3, 1e-6, 2.0
        oracle = LinearOracle([[-1.0 / (r * c)]], [1.0 / (r * c)],
                              ["n1"], u_level=v)
        times = np.linspace(0.0, 5e-3, 101)
        np.testing.assert_allclose(oracle.exact(times)["n1"],
                                   rc_step_response(r, c, v, times),
                                   atol=1e-12)

    @pytest.mark.parametrize("r", [10.0, 63.2456, 500.0])
    def test_matrix_oracle_matches_rlc_closed_form(self, r):
        """Under-, near-critically- and over-damped series RLC: expm
        propagation equals the piecewise closed form."""
        l, c, v = 1e-3, 1e-6, 1.5
        oracle = oracle_for_series_rlc(r, l, c, v)
        times = np.linspace(0.0, 2e-3, 161)
        np.testing.assert_allclose(oracle.exact(times)["n2"],
                                   series_rlc_step_response(r, l, c, v, times),
                                   atol=1e-9 * v)

    def test_discrete_converges_to_exact(self):
        oracle = oracle_for_series_rlc(10.0, 1e-3, 1e-6, 1.0)
        t_stop = 1e-3
        errors = []
        for n in (100, 200, 400):
            times = np.linspace(0.0, t_stop, n + 1)
            err = np.abs(oracle.discrete(times, method="be")["n2"]
                         - oracle.exact(times)["n2"])
            errors.append(float(np.max(err)))
        assert errors[0] > errors[1] > errors[2]
        # first order: halving dt roughly halves the error
        assert errors[0] / errors[1] == pytest.approx(2.0, rel=0.3)

    def test_statespace_export(self):
        oracle = oracle_for_series_rlc(10.0, 1e-3, 1e-6, 1.0)
        assert isinstance(oracle.statespace(), StateSpace)


# ----------------------------------------------------------------------
# Differential harness
# ----------------------------------------------------------------------
class TestDifferential:
    def test_compare_samples_identical(self):
        x = np.array([0.0, 1.0, 2.0])
        max_abs, max_rel, _ = compare_samples(x, x)
        assert max_abs == 0.0 and max_rel == 0.0

    def test_compare_samples_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_samples(np.zeros(3), np.zeros(4))

    def test_compare_samples_zero_reference(self):
        max_abs, max_rel, idx = compare_samples(np.zeros(4),
                                                np.array([0, 0, 1e-12, 0]))
        assert np.isfinite(max_rel)
        assert idx == 2

    def test_small_campaign_is_clean(self):
        report = run_differential(range(6), kinds=("rc", "rlc"),
                                  max_steps=96)
        assert report.ok
        assert report.n_circuits == 12
        assert report.n_comparisons > 0
        # routes sharing a discretisation agree to machine precision
        assert all(w < 1e-9 for w in report.worst.values())
        assert "fast-vs-oracle" in report.worst

    def test_mosfet_kind_compares_engines_only(self):
        report = run_differential(range(3), kinds=("mosfet",),
                                  max_steps=64)
        assert report.ok
        assert not any("oracle" in pair for pair in report.worst)

    def test_report_serialises(self):
        report = run_differential(range(2), kinds=("rc",), max_steps=64)
        payload = report.to_dict()
        assert payload["n_circuits"] == 2
        assert payload["mismatches"] == []
        assert "fast-vs-reference" in payload["worst"]
        assert "0 mismatches" in report.summary()


# ----------------------------------------------------------------------
# Convergence order
# ----------------------------------------------------------------------
class TestConvergence:
    @pytest.mark.parametrize("method,order", [("be", 1.0), ("trap", 2.0)])
    def test_observed_order_on_rc(self, method, order):
        result = check_convergence(seed=0, kind="rc", method=method)
        assert result.ok, result.summary()
        assert result.order == pytest.approx(order, rel=0.1)

    def test_rlc_backward_euler_first_order(self):
        result = check_convergence(seed=0, kind="rlc", method="be")
        assert result.ok, result.summary()

    def test_tolerance_gate(self):
        result = check_convergence(seed=0, kind="rc", method="be",
                                   tolerance=1e-6)
        assert not result.ok

    def test_summary_and_to_dict(self):
        result = check_convergence(seed=2, kind="rc", method="trap")
        assert "trap" in result.summary()
        payload = result.to_dict()
        assert payload["method"] == "trap"
        assert payload["nominal_order"] == 2.0
