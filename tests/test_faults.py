"""Tests for fault models, injection and campaigns."""

import numpy as np
import pytest

from repro.adc import DualSlopeADC
from repro.faults import (
    BridgingFault,
    CampaignResult,
    Fault,
    FaultCampaign,
    FaultKind,
    MultipleFault,
    ParameterFault,
    StuckAtFault,
    bridging_universe,
    inject,
    inject_all,
    paper_circuit1_faults,
    paper_integrator_faults,
    stuck_at_universe,
)
from repro.faults.universe import full_node_universe
from repro.spice import Circuit, dc_operating_point


def divider():
    ckt = Circuit("div")
    ckt.vsource("VIN", "in", "0", 4.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


class TestFaultModels:
    def test_sa0_kind(self):
        f = StuckAtFault.sa0("x")
        assert f.kind == FaultKind.STUCK_AT_0
        assert f.level == 0.0

    def test_sa1_kind(self):
        f = StuckAtFault.sa1("x", vdd=5.0)
        assert f.kind == FaultKind.STUCK_AT_1
        assert f.level == 5.0

    def test_stuck_requires_node(self):
        with pytest.raises(ValueError):
            StuckAtFault(name="bad")

    def test_stuck_bad_resistance(self):
        with pytest.raises(ValueError):
            StuckAtFault(name="b", node="x", resistance=0.0)

    def test_bridge_validation(self):
        with pytest.raises(ValueError):
            BridgingFault(name="b", node_a="x", node_b="x")
        with pytest.raises(ValueError):
            BridgingFault(name="b", node_a="x", node_b="y", resistance=-1.0)

    def test_parameter_fault_requires_path(self):
        with pytest.raises(ValueError):
            ParameterFault(name="p")

    def test_multiple_needs_two(self):
        with pytest.raises(ValueError):
            MultipleFault(name="m", faults=(StuckAtFault.sa0("x"),))

    def test_describe(self):
        assert "sa0" in StuckAtFault.sa0("n").describe()
        assert "bridge" in BridgingFault.between("a", "b").describe()
        pair = MultipleFault(name="d", faults=(
            StuckAtFault.sa0("a"), StuckAtFault.sa0("b")))
        assert "multiple" in pair.describe()


class TestNetlistInjection:
    def test_sa0_pulls_node_down(self):
        faulty = inject(divider(), StuckAtFault.sa0("mid"))
        v, _ = dc_operating_point(faulty)
        assert v["mid"] == pytest.approx(0.0, abs=0.05)

    def test_sa1_pulls_node_up(self):
        faulty = inject(divider(), StuckAtFault.sa1("mid", vdd=5.0))
        v, _ = dc_operating_point(faulty)
        assert v["mid"] == pytest.approx(5.0, abs=0.05)

    def test_weak_fault_partial_pull(self):
        faulty = inject(divider(), StuckAtFault(
            name="w", node="mid", level=0.0, resistance=1e3))
        v, _ = dc_operating_point(faulty)
        # healthy mid = 2.0; fault forms extra 1k to ground
        assert 1.0 < v["mid"] < 2.0

    def test_bridge_shorts_nodes(self):
        faulty = inject(divider(), BridgingFault.between("in", "mid",
                                                         resistance=1.0))
        v, _ = dc_operating_point(faulty)
        assert v["mid"] == pytest.approx(4.0, abs=0.05)

    def test_original_not_mutated(self):
        ckt = divider()
        n_before = len(ckt.elements)
        inject(ckt, StuckAtFault.sa0("mid"))
        assert len(ckt.elements) == n_before

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            inject(divider(), StuckAtFault.sa0("ghost"))

    def test_double_fault_applies_both(self):
        pair = MultipleFault(name="d", faults=(
            StuckAtFault.sa0("mid"), StuckAtFault.sa1("in", vdd=5.0)))
        faulty = inject(divider(), pair)
        v, _ = dc_operating_point(faulty)
        assert v["mid"] < 0.3
        # both fault generators are present in the netlist
        assert faulty.has_element("FLT_mid-sa0_V")
        assert faulty.has_element("FLT_in-sa1_V")

    def test_parameter_fault_on_netlist_rejected(self):
        with pytest.raises(TypeError):
            inject(divider(), ParameterFault(name="p", parameter="x", value=1))

    def test_inject_all_independent(self):
        faults = [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid")]
        copies = inject_all(divider(), faults)
        assert len(copies) == 2
        v0, _ = dc_operating_point(copies[0])
        v1, _ = dc_operating_point(copies[1])
        assert v0["mid"] < 1.0 < v1["mid"]


class TestBehaviouralInjection:
    def test_parameter_fault_on_adc(self):
        adc = DualSlopeADC()
        faulty = inject(adc, ParameterFault(
            name="leak", parameter="integrator.leak_per_cycle", value=0.2))
        assert faulty.integrator.leak_per_cycle == 0.2
        assert adc.integrator.leak_per_cycle == 0.0  # original untouched

    def test_unknown_parameter_rejected(self):
        with pytest.raises(AttributeError):
            inject(DualSlopeADC(), ParameterFault(
                name="x", parameter="integrator.nonexistent", value=1))

    def test_netlist_fault_on_model_rejected(self):
        with pytest.raises(TypeError):
            inject(DualSlopeADC(), StuckAtFault.sa0("5"))


class TestUniverses:
    def test_stuck_universe_size(self):
        assert len(stuck_at_universe(["a", "b", "c"])) == 6

    def test_bridge_universe_size(self):
        assert len(bridging_universe(["a", "b", "c"])) == 3

    def test_full_node_universe_skips_supplies(self):
        ckt = divider()
        faults = full_node_universe(ckt, exclude=["in"])
        nodes = {f.node for f in faults}
        assert nodes == {"mid"}

    def test_paper_circuit1_is_16(self):
        faults = paper_circuit1_faults()
        assert len(faults) == 16
        singles = [f for f in faults if isinstance(f, StuckAtFault)]
        doubles = [f for f in faults if isinstance(f, MultipleFault)]
        assert len(singles) == 10
        assert len(doubles) == 6

    def test_paper_integrator_is_12(self):
        faults = paper_integrator_faults()
        assert len(faults) == 12
        bridges = [f for f in faults if isinstance(f, BridgingFault)]
        assert len(bridges) == 2

    def test_integrator_prefix(self):
        faults = paper_integrator_faults(node_prefix="int_")
        assert all("int_" in f.describe() for f in faults)

    def test_integrator_resistances_applied(self):
        faults = paper_integrator_faults(stuck_resistance=3e3,
                                         bridge_resistance=500.0)
        stuck = [f for f in faults if isinstance(f, StuckAtFault)]
        bridges = [f for f in faults if isinstance(f, BridgingFault)]
        assert all(f.resistance == 3e3 for f in stuck)
        assert all(f.resistance == 500.0 for f in bridges)


class TestCampaign:
    @staticmethod
    def _mid_voltage(ckt):
        v, _ = dc_operating_point(ckt)
        return v["mid"]

    def test_campaign_detects_shifts(self):
        campaign = FaultCampaign(
            technique=self._mid_voltage,
            detector=lambda ref, m: 1.0 if abs(m - ref) > 0.5 else 0.0,
            threshold=0.5,
        )
        result = campaign.run(divider(), [StuckAtFault.sa0("mid"),
                                          StuckAtFault.sa1("mid")])
        assert result.n_faults == 2
        assert result.n_detected == 2
        assert result.coverage == 1.0

    def test_campaign_counts_misses(self):
        campaign = FaultCampaign(
            technique=self._mid_voltage,
            detector=lambda ref, m: 0.0,  # blind detector
            threshold=0.5,
        )
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")])
        assert result.coverage == 0.0
        assert not result.outcomes[0].detected

    def test_campaign_error_counts_as_detection(self):
        def broken(ckt):
            if ckt.has_element("FLT_mid-sa0_V"):
                raise RuntimeError("simulation diverged")
            return 0.0
        campaign = FaultCampaign(broken, lambda r, m: 0.0)
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")])
        assert result.outcomes[0].detected
        assert result.outcomes[0].error is not None

    def test_campaign_error_counted_undetected_when_disabled(self):
        def broken(ckt):
            if ckt.has_element("FLT_mid-sa0_V"):
                raise RuntimeError("simulation diverged")
            return 0.0
        campaign = FaultCampaign(broken, lambda r, m: 0.0,
                                 errors_as_detected=False)
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")])
        assert not result.outcomes[0].detected
        assert result.outcomes[0].error is not None

    def test_removed_error_alias_rejected(self):
        # treat_errors_as_detected= went through its deprecation cycle
        # and is gone; the constructor rejects it like any unknown kwarg.
        with pytest.raises(TypeError):
            FaultCampaign(lambda c: 0.0, lambda r, m: 0.0,
                          treat_errors_as_detected=False)

    def test_detection_clamped(self):
        campaign = FaultCampaign(self._mid_voltage, lambda r, m: 7.3)
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")])
        assert result.outcomes[0].detection == 1.0

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            FaultCampaign(lambda c: 0, lambda r, m: 0, threshold=2.0)

    def test_table_formatting(self):
        campaign = FaultCampaign(self._mid_voltage,
                                 lambda r, m: 1.0 if abs(m - r) > 0.5 else 0.0)
        result = campaign.run(divider(), [StuckAtFault.sa0("mid")])
        table = result.table()
        assert "sa0:mid-sa0" in table
        assert "DETECTED" in table

    def test_precomputed_reference(self):
        calls = []
        def tech(ckt):
            calls.append(ckt.name)
            return self._mid_voltage(ckt)
        campaign = FaultCampaign(tech, lambda r, m: abs(m - r))
        campaign.run(divider(), [StuckAtFault.sa0("mid")], reference=2.0)
        # only the faulty copy simulated
        assert len(calls) == 1
