"""Tests for functional macro-level diagnosis."""

import numpy as np
import pytest

from repro.adc import DualSlopeADC
from repro.adc.control import ControlState
from repro.adc.errors import ADCCharacterization
from repro.adc.histogram import characterize_servo
from repro.core.diagnosis import DiagnosisResult, Symptoms, diagnose


def make_characterization(offset=0.0, gain=0.0, inl=0.0, dnl=0.0,
                          missing=()):
    return ADCCharacterization(
        offset_error_lsb=offset,
        gain_error_lsb=gain,
        dnl_lsb=np.array([dnl]),
        inl_lsb=np.array([inl]),
        transition_levels_v=np.zeros(2),
        lsb_v=0.025,
        missing_codes=list(missing),
    )


class TestSymptoms:
    def test_healthy_characterization_no_symptoms(self):
        s = Symptoms.from_characterization(make_characterization())
        assert not any(vars(s).values())

    def test_offset_flagged(self):
        s = Symptoms.from_characterization(make_characterization(offset=0.5))
        assert s.offset_error

    def test_linearity_flagged_by_inl_or_dnl(self):
        assert Symptoms.from_characterization(
            make_characterization(inl=1.5)).linearity_error
        assert Symptoms.from_characterization(
            make_characterization(dnl=1.5)).linearity_error

    def test_regular_missed_codes(self):
        # bit-1-stuck-at-1 pattern: every code with bit 1 clear vanishes
        missing = tuple(k for k in range(8, 24) if not (k >> 1) & 1)
        s = Symptoms.from_characterization(
            make_characterization(missing=missing))
        assert s.missed_codes
        assert s.missed_codes_regular

    def test_contiguous_missing_block_not_counter_style(self):
        # a clipped range (gain defect) must not look like a stuck bit
        s = Symptoms.from_characterization(
            make_characterization(missing=tuple(range(66, 101))))
        assert s.missed_codes
        assert not s.missed_codes_regular

    def test_irregular_missed_codes(self):
        s = Symptoms.from_characterization(
            make_characterization(missing=(3, 17, 50)))
        assert s.missed_codes
        assert not s.missed_codes_regular

    def test_conversion_stops(self):
        s = Symptoms.from_characterization(make_characterization(),
                                           completed=False)
        assert s.conversion_stops


class TestDiagnosis:
    def test_conversion_stop_blames_control(self):
        result = diagnose(Symptoms(conversion_stops=True))
        assert result.prime_suspect == "control"

    def test_regular_missed_codes_blames_counter(self):
        result = diagnose(Symptoms(missed_codes=True,
                                   missed_codes_regular=True))
        assert result.prime_suspect == "counter"

    def test_offset_and_gain_blames_comparator(self):
        result = diagnose(Symptoms(offset_error=True, gain_error=True))
        assert result.prime_suspect == "comparator"

    def test_linearity_gain_offset_blames_integrator(self):
        result = diagnose(Symptoms(linearity_error=True, gain_error=True,
                                   offset_error=True))
        assert result.prime_suspect == "integrator"

    def test_multiple_incorrect_codes_blames_latch(self):
        result = diagnose(Symptoms(multiple_incorrect_codes=True))
        assert result.prime_suspect == "output_latch"

    def test_no_symptoms_no_suspect(self):
        result = diagnose(Symptoms())
        assert result.prime_suspect is None
        assert "healthy" in result.summary()

    def test_suspects_list_threshold(self):
        result = diagnose(Symptoms(linearity_error=True))
        assert "integrator" in result.suspects(min_score=0.5)

    def test_summary_format(self):
        result = diagnose(Symptoms(conversion_stops=True))
        assert "control" in result.summary()


class TestEndToEndDiagnosis:
    """Inject a sub-macro fault, characterise, diagnose — the paper's
    'faulty chip diagnosis at a functional macro level'."""

    def test_stuck_control_diagnosed(self):
        adc = DualSlopeADC()
        adc.control.stuck_state = ControlState.INTEGRATE
        trace = adc.convert(1.0)
        symptoms = Symptoms(conversion_stops=not trace.completed)
        assert diagnose(symptoms).prime_suspect == "control"

    def test_comparator_offset_diagnosed(self):
        adc = DualSlopeADC()
        adc.comparator.offset_v += 4 * adc.cal.lsb_v
        ch = characterize_servo(adc)
        symptoms = Symptoms.from_characterization(ch)
        assert symptoms.offset_error
        result = diagnose(symptoms)
        assert result.prime_suspect in ("comparator", "integrator")

    def test_counter_stuck_bit_diagnosed(self):
        adc = DualSlopeADC()
        adc.counter.stuck_bits[3] = 0
        ch = characterize_servo(adc)
        symptoms = Symptoms.from_characterization(ch)
        assert symptoms.missed_codes
        result = diagnose(symptoms)
        assert "counter" in result.suspects()

    def test_integrator_nonlinearity_diagnosed(self):
        adc = DualSlopeADC()
        adc.cal.cap_voltage_coeff = 0.15  # gross linearity fault
        ch = characterize_servo(adc)
        symptoms = Symptoms.from_characterization(ch)
        assert symptoms.linearity_error
        assert "integrator" in diagnose(symptoms).suspects()
