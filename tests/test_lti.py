"""Tests for the LTI toolkit: state space, transfer functions, z domain."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lti import (
    StateSpace,
    TransferFunction,
    ZTransferFunction,
    impulse_response,
    impulse_response_z,
    response_difference,
    sc_integrator_ztf,
    step_response,
    tf_from_poles_zeros,
)
from repro.lti.impulse import normalized_deviation, peak_deviation, rms_deviation
from repro.lti.transferfunction import dominant_pole
from repro.signals import Waveform


class TestStateSpace:
    def test_first_order_impulse(self):
        """h(t) = p*exp(-p*t) for gain*p/(s+p) with gain=1."""
        p = 100.0
        ss = StateSpace.first_order(p)
        h = ss.impulse(dt=1e-4, duration=0.05)
        expected = p * np.exp(-p * h.times)
        assert np.allclose(h.values, expected, rtol=1e-6)

    def test_first_order_step_settles_to_dc_gain(self):
        ss = StateSpace.first_order(50.0, gain=2.0)
        s = ss.step(dt=1e-4, duration=0.5)
        assert s.values[-1] == pytest.approx(2.0, rel=1e-3)
        assert ss.dc_gain()[0, 0] == pytest.approx(2.0)

    def test_integrator_ramp(self):
        ss = StateSpace.integrator(gain=3.0)
        s = ss.step(dt=1e-3, duration=1.0)
        assert s.values[-1] == pytest.approx(3.0, rel=1e-2)

    def test_poles(self):
        ss = StateSpace.first_order(10.0)
        assert np.allclose(ss.poles(), [-10.0])

    def test_stability(self):
        assert StateSpace.first_order(1.0).is_stable()
        unstable = StateSpace([[1.0]], [[1.0]], [[1.0]], [[0.0]])
        assert not unstable.is_stable()

    def test_cascade_order_and_dc(self):
        a = StateSpace.first_order(10.0, gain=2.0)
        b = StateSpace.first_order(20.0, gain=3.0)
        c = a.cascade(b)
        assert c.order == 2
        assert c.dc_gain()[0, 0] == pytest.approx(6.0)

    def test_parallel_dc(self):
        a = StateSpace.first_order(10.0, gain=2.0)
        b = StateSpace.first_order(20.0, gain=3.0)
        c = a.parallel(b)
        assert c.dc_gain()[0, 0] == pytest.approx(5.0)

    def test_scaled(self):
        a = StateSpace.first_order(10.0).scaled(4.0)
        assert a.dc_gain()[0, 0] == pytest.approx(4.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StateSpace(np.zeros((2, 3)), np.zeros((2, 1)),
                       np.zeros((1, 2)), [[0.0]])
        with pytest.raises(ValueError):
            StateSpace(np.zeros((2, 2)), np.zeros((1, 1)),
                       np.zeros((1, 2)), [[0.0]])

    def test_simulate_matches_step(self):
        ss = StateSpace.first_order(30.0)
        u = Waveform(np.ones(200), 1e-3)
        y = ss.simulate(u)
        s = ss.step(dt=1e-3, duration=0.199)
        assert np.allclose(y.values, s.values, atol=1e-9)

    def test_from_transfer_function_second_order(self):
        # H(s) = 1 / (s^2 + 2s + 1): poles at -1 (double)
        ss = StateSpace.from_transfer_function([1.0], [1.0, 2.0, 1.0])
        assert ss.order == 2
        assert np.allclose(sorted(np.real(ss.poles())), [-1.0, -1.0])
        assert ss.dc_gain()[0, 0] == pytest.approx(1.0)

    def test_from_tf_with_feedthrough(self):
        # H(s) = (s + 2) / (s + 1): D = 1
        ss = StateSpace.from_transfer_function([1.0, 2.0], [1.0, 1.0])
        assert ss.d[0, 0] == pytest.approx(1.0)
        assert ss.dc_gain()[0, 0] == pytest.approx(2.0)

    def test_from_tf_improper_rejected(self):
        with pytest.raises(ValueError):
            StateSpace.from_transfer_function([1.0, 0.0, 0.0], [1.0, 1.0])

    def test_discretize_matches_exact_exponential(self):
        p = 200.0
        ss = StateSpace.first_order(p)
        ad, bd = ss.discretize(1e-3)
        assert ad[0, 0] == pytest.approx(np.exp(-p * 1e-3), rel=1e-9)

    def test_discretize_bad_dt(self):
        with pytest.raises(ValueError):
            StateSpace.first_order(1.0).discretize(0.0)


class TestTransferFunction:
    def test_poles_zeros(self):
        tf = TransferFunction([1.0, 2.0], [1.0, 3.0, 2.0])
        assert np.allclose(sorted(np.real(tf.poles())), [-2.0, -1.0])
        assert np.allclose(tf.zeros(), [-2.0])

    def test_dc_gain(self):
        tf = TransferFunction([4.0], [1.0, 2.0])
        assert tf.dc_gain() == pytest.approx(2.0)

    def test_dc_gain_integrator_inf(self):
        tf = TransferFunction([1.0], [1.0, 0.0])
        assert tf.dc_gain() == float("inf")

    def test_evaluate(self):
        tf = TransferFunction([1.0], [1.0, 1.0])
        assert abs(tf.evaluate(1j * 1.0)) == pytest.approx(1 / np.sqrt(2))

    def test_magnitude_rolloff(self):
        tf = TransferFunction([10.0], [1.0, 10.0])
        mags = tf.magnitude_db(np.array([1.0, 100.0, 10000.0]))
        assert mags[0] == pytest.approx(0.0, abs=0.1)
        assert mags[2] < -50.0

    def test_cascade_multiplies(self):
        a = TransferFunction([2.0], [1.0, 1.0])
        b = TransferFunction([3.0], [1.0, 2.0])
        c = a * b
        assert c.dc_gain() == pytest.approx(3.0)
        assert c.order == 2

    def test_scalar_multiply(self):
        tf = 2.0 * TransferFunction([1.0], [1.0, 1.0])
        assert tf.dc_gain() == pytest.approx(2.0)

    def test_improper_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction([1.0, 0.0, 0.0], [1.0, 1.0])

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction([1.0], [0.0])

    def test_from_poles_zeros_roundtrip(self):
        poles = [-10.0, -20.0]
        zeros = [-5.0]
        tf = tf_from_poles_zeros(poles, zeros, constant=3.0)
        assert np.allclose(sorted(np.real(tf.poles())), sorted(poles))
        assert np.allclose(np.real(tf.zeros()), zeros)
        # H(0) = 3 * 5 / 200
        assert tf.dc_gain() == pytest.approx(3.0 * 5.0 / 200.0)

    def test_from_conjugate_pair(self):
        tf = tf_from_poles_zeros([-1 + 2j, -1 - 2j], [], constant=1.0)
        assert tf.is_stable()
        assert np.all(np.isreal(tf.den))

    def test_unpaired_complex_rejected(self):
        with pytest.raises(ValueError):
            tf_from_poles_zeros([-1 + 2j], [])

    def test_dominant_pole(self):
        tf = tf_from_poles_zeros([-1.0, -100.0], [])
        assert dominant_pole(tf) == pytest.approx(-1.0)

    def test_dominant_pole_needs_poles(self):
        with pytest.raises(ValueError):
            dominant_pole(TransferFunction([1.0], [1.0]))

    def test_to_statespace_consistent(self):
        tf = tf_from_poles_zeros([-3.0, -30.0], [-10.0], constant=5.0)
        ss = tf.to_statespace()
        for w in (0.1, 1.0, 10.0):
            h_tf = tf.evaluate(1j * w)
            # evaluate ss via resolvent
            s = 1j * w
            h_ss = (ss.c @ np.linalg.solve(
                s * np.eye(ss.order) - ss.a, ss.b) + ss.d)[0, 0]
            assert h_ss == pytest.approx(h_tf, rel=1e-9)


class TestZDomain:
    def test_paper_integrator_response(self):
        """H(z) = z^-1/(6.8(1-z^-1)): step response climbs 1/6.8/cycle."""
        ztf = sc_integrator_ztf()
        step = ztf.step(10)
        diffs = np.diff(step)
        assert step[0] == pytest.approx(0.0)
        assert np.allclose(diffs, 1 / 6.8)

    def test_impulse_is_delayed_step(self):
        ztf = sc_integrator_ztf()
        h = ztf.impulse(6)
        assert h[0] == pytest.approx(0.0)
        assert np.allclose(h[1:], 1 / 6.8)

    def test_pole_on_unit_circle(self):
        ztf = sc_integrator_ztf()
        assert np.allclose(np.abs(ztf.poles()), 1.0)
        assert not ztf.is_stable()

    def test_leaky_integrator_stable(self):
        ztf = sc_integrator_ztf(leak=0.1)
        assert ztf.is_stable()
        # geometric step response converging to 1/(6.8*0.1)
        step = ztf.step(300)
        assert step[-1] == pytest.approx(1 / (6.8 * 0.1), rel=1e-3)

    def test_inverting_sign(self):
        ztf = sc_integrator_ztf(inverting=True)
        assert ztf.step(3)[2] < 0

    def test_dc_gain_inf_for_ideal(self):
        assert sc_integrator_ztf().dc_gain() == float("inf")

    def test_evaluate_matches_formula(self):
        ztf = sc_integrator_ztf()
        z = 1.3 + 0.4j
        expected = (1 / z) / (6.8 * (1 - 1 / z))
        assert ztf.evaluate(z) == pytest.approx(expected)

    def test_filter_linear(self):
        ztf = sc_integrator_ztf(leak=0.05)
        u = np.random.default_rng(4).normal(size=50)
        y1 = ztf.filter(u)
        y2 = ztf.filter(2.0 * u)
        assert np.allclose(y2, 2.0 * y1)

    def test_cascade(self):
        a = sc_integrator_ztf(leak=0.5)
        c = a.cascade(a)
        h_a = a.impulse(20)
        h_c = c.impulse(20)
        assert np.allclose(h_c, np.convolve(h_a, h_a)[:20])

    def test_bad_cap_ratio(self):
        with pytest.raises(ValueError):
            sc_integrator_ztf(cap_ratio=0.0)

    def test_bad_leak(self):
        with pytest.raises(ValueError):
            sc_integrator_ztf(leak=1.0)

    def test_bad_den(self):
        with pytest.raises(ValueError):
            ZTransferFunction([1.0], [0.0, 1.0])

    def test_simulate_waveform(self):
        ztf = sc_integrator_ztf(dt=5e-6)
        u = Waveform(np.ones(10), 5e-6)
        y = ztf.simulate(u)
        assert y.dt == 5e-6
        assert y.values[-1] == pytest.approx(9 / 6.8)


class TestImpulseHelpers:
    def test_impulse_response_dispatch(self):
        tf = TransferFunction([10.0], [1.0, 10.0])
        h = impulse_response(tf, dt=1e-3, duration=0.5)
        assert h.values[0] == pytest.approx(10.0, rel=1e-3)

    def test_step_response_dispatch(self):
        tf = TransferFunction([10.0], [1.0, 10.0])
        s = step_response(tf, dt=1e-3, duration=1.0)
        assert s.values[-1] == pytest.approx(1.0, rel=1e-2)

    def test_impulse_z(self):
        h = impulse_response_z(sc_integrator_ztf(dt=5e-6), 8)
        assert h.dt == 5e-6
        assert len(h) == 8

    def test_response_difference(self):
        a = Waveform([1.0, 2.0, 3.0], 1.0)
        b = Waveform([1.0, 2.5, 2.0], 1.0)
        d = response_difference(a, b)
        assert np.allclose(d.values, [0.0, 0.5, -1.0])

    def test_rms_peak_deviation(self):
        a = Waveform(np.zeros(4), 1.0)
        b = Waveform([0.0, 0.0, 2.0, 0.0], 1.0)
        assert rms_deviation(a, b) == pytest.approx(1.0)
        peak, t = peak_deviation(a, b)
        assert peak == pytest.approx(2.0)
        assert t == pytest.approx(2.0)

    def test_normalized_deviation(self):
        a = Waveform([0.0, 4.0], 1.0)
        b = Waveform([1.0, 4.0], 1.0)
        nd = normalized_deviation(a, b)
        assert nd.values[0] == pytest.approx(0.25)


@given(st.floats(1.0, 1e4), st.floats(0.1, 10.0))
def test_first_order_dc_gain_property(pole, gain):
    ss = StateSpace.first_order(pole, gain=gain)
    assert ss.dc_gain()[0, 0] == pytest.approx(gain, rel=1e-9)


@given(st.floats(0.01, 0.5), st.floats(1.0, 20.0))
def test_leaky_integrator_final_value(leak, ratio):
    ztf = sc_integrator_ztf(cap_ratio=ratio, leak=leak)
    step = ztf.step(3000)
    assert step[-1] == pytest.approx(1.0 / (ratio * leak), rel=1e-2)
