"""Batched (lockstep K-variant) engine equivalence and campaign batching.

The batched engine's contract is *bitwise* agreement with the serial
engine — stronger than the fast-path 1e-9 gate, because batching only
re-orders work, never re-associates arithmetic.  These tests pin that
contract on both marching routes (lockstep linear tensor, step-
synchronised Newton), then pin the campaign layer: ``batch_size=K``
runs must produce ``to_dict()``-identical results to serial runs —
including under per-fault timeouts, retry-ladder recoveries, fallback
slots and process pools — with wall-clock fields as the only permitted
difference.
"""

import time

import numpy as np
import pytest

from repro.circuits.op1 import op1_follower
from repro.core.detection import detection_instances
from repro.core.transient_test import TransientResponseTester, TransientTestConfig
from repro.faults.campaign import BATCH_FALLBACK, FaultCampaign
from repro.faults.dictionary import (
    SignatureDetector,
    TransientSignatureTechnique,
    dictionary_faults,
    dictionary_ladder,
)
from repro.faults.injector import inject
from repro.faults.model import BridgingFault, StuckAtFault
from repro.faults.universe import paper_circuit1_faults, stuck_at_universe
from repro.obs.core import observe
from repro.resilience.deadline import check_deadline
from repro.service import CampaignSpec
from repro.spice import Circuit, batched_transient, transient
from repro.spice.batched import BatchedMarch


# --- fixtures -------------------------------------------------------------

def _step(t):
    return 1.0 if t > 1e-6 else 0.0


def _ladder():
    c = Circuit("ladder")
    c.vsource("V1", "in", "0", _step)
    c.resistor("R1", "in", "a", 1e3)
    c.capacitor("C1", "a", "0", 1e-9)
    c.resistor("R2", "a", "b", 2e3)
    c.capacitor("C2", "b", "0", 2e-9)
    c.resistor("R3", "b", "0", 10e3)
    return c


def _bridge_variants(n=5):
    faults = [BridgingFault(f"br{i}", "a", "b", resistance=100.0 * (i + 1))
              for i in range(n)]
    return [inject(_ladder(), f) for f in faults]


def _hard_stack(n=10):
    """NMOS diode stack whose OP needs the gmin-stepping retry ladder
    (same fixture family as the resilience tests)."""
    c = Circuit(f"stack{n}")
    c.vsource("VDD", "vdd", "0", float(2 * n))
    c.isource("IB", "vdd", "n0", 1e-3)
    prev = "n0"
    for i in range(n):
        nxt = "0" if i == n - 1 else f"n{i + 1}"
        c.nmos(f"M{i}", prev, prev, nxt)
        prev = nxt
    return c


def _assert_bitwise(batched_result, serial_result, nodes):
    assert np.array_equal(batched_result.times, serial_result.times)
    for node in nodes:
        assert np.array_equal(batched_result.array(node),
                              serial_result.array(node))


def _stats_sans_engine(stats):
    return {k: v for k, v in stats.items() if k not in ("engine", "batch_k")}


# --- batched_transient: lockstep linear route -----------------------------

def test_batched_linear_march_bitwise_identical():
    variants = _bridge_variants(5)
    batched = batched_transient(variants, 2e-5, 1e-8, record=["a", "b"])
    for circuit, got in zip(variants, batched):
        ref = transient(circuit, 2e-5, 1e-8, record=["a", "b"])
        assert got is not None
        assert got.stats["engine"] == "batched_linear_march"
        assert got.stats["batch_k"] == 5
        _assert_bitwise(got, ref, ["a", "b"])


def test_batched_linear_march_groups_shared_sources():
    # The faulty copies share the base circuit's stimulus object, so all
    # five variants land in one lockstep group.
    with observe() as h:
        batched_transient(_bridge_variants(5), 1e-5, 1e-8, record=["b"])
    counters = h.metrics.to_dict()
    assert counters["batched.lockstep_groups"]["value"] == 1
    assert counters["batched.march_variants"]["value"] == 5


def test_batched_records_branch_currents_identically():
    variants = _bridge_variants(3)
    batched = batched_transient(variants, 1e-5, 1e-8, record=["b"],
                                record_branches=["V1"])
    for circuit, got in zip(variants, batched):
        ref = transient(circuit, 1e-5, 1e-8, record=["b"],
                        record_branches=["V1"])
        assert np.array_equal(got.branch_current("V1").values,
                              ref.branch_current("V1").values)


# --- batched_transient: step-synchronised Newton route --------------------

def test_batched_newton_route_bitwise_identical():
    def drive(t):
        return 2.2 if t < 5e-6 else 2.8
    faults = stuck_at_universe(["4", "5", "7"])
    variants = [inject(op1_follower(input_value=drive), f) for f in faults]
    batched = batched_transient(variants, 2e-5, 2.5e-7, record=["3"])
    for circuit, got in zip(variants, batched):
        ref = transient(circuit, 2e-5, 2.5e-7, record=["3"])
        assert got is not None
        assert got.stats["engine"] == "batched_newton"
        _assert_bitwise(got, ref, ["3"])
        # Newton iteration counts, LU reuse, subdivisions... must agree
        # exactly — lockstep is step-synchronised, not re-associated.
        assert _stats_sans_engine(got.stats) == _stats_sans_engine(ref.stats)


def test_batched_trap_method_bitwise_identical():
    variants = _bridge_variants(3)
    batched = batched_transient(variants, 1e-5, 1e-8, record=["b"],
                                method="trap")
    for circuit, got in zip(variants, batched):
        ref = transient(circuit, 1e-5, 1e-8, record=["b"], method="trap")
        _assert_bitwise(got, ref, ["b"])


# --- eviction -------------------------------------------------------------

def test_batched_evicts_bad_variant_and_keeps_the_rest():
    variants = _bridge_variants(3)
    broken = Circuit("broken")
    broken.vsource("V1", "in", "0", _step)
    broken.resistor("R1", "in", "0", 1e3)   # has no node "b" to record
    circuits = [variants[0], broken, variants[1], variants[2]]
    march = BatchedMarch(circuits, 1e-5, 1e-8, record=["b"])
    results = march.run()
    assert results[1] is None
    assert "b" in march.failures[1]
    for i in (0, 2, 3):
        assert results[i] is not None
        ref = transient(circuits[i], 1e-5, 1e-8, record=["b"])
        _assert_bitwise(results[i], ref, ["b"])


def test_batched_validates_arguments_like_serial():
    with pytest.raises(ValueError):
        batched_transient(_bridge_variants(1), t_stop=-1.0, dt=1e-8)
    with pytest.raises(ValueError):
        batched_transient(_bridge_variants(1), t_stop=1e-5, dt=0.0)
    with pytest.raises(ValueError):
        batched_transient(_bridge_variants(1), t_stop=1e-5, dt=1e-8,
                          method="rk4")


# --- campaign batch_size: equality with serial ----------------------------

def _normalized(result):
    """CampaignResult.to_dict with wall-clock zeroed: timing is the only
    permitted batched-vs-serial difference."""
    doc = result.to_dict()
    doc["elapsed_s"] = 0.0
    doc["outcomes"] = [dict(o, elapsed_s=0.0) for o in doc["outcomes"]]
    return doc


def _dictionary_campaign(**kwargs):
    technique = TransientSignatureTechnique(t_stop=3.1e-3, dt=1e-6,
                                            node="n9")
    return FaultCampaign(technique, SignatureDetector(abs_v=0.05),
                         threshold=0.0, **kwargs)


def _dictionary_scenario():
    return (dictionary_ladder(n_sections=10),
            dictionary_faults(n_sections=10, n_faults=16))


def test_campaign_batched_matches_serial():
    target, faults = _dictionary_scenario()
    serial = _dictionary_campaign().run(target, faults)
    batched = _dictionary_campaign(batch_size=8).run(target, faults)
    assert _normalized(batched) == _normalized(serial)
    for s, b in zip(serial.outcomes, batched.outcomes):
        assert np.array_equal(s.measurement, b.measurement)


def test_campaign_run_batch_size_overrides_campaign_default():
    target, faults = _dictionary_scenario()
    serial = _dictionary_campaign().run(target, faults)
    batched = _dictionary_campaign().run(target, faults,
                                         spec=CampaignSpec(batch_size=16))
    assert _normalized(batched) == _normalized(serial)


def test_campaign_pooled_batched_matches_serial():
    # workers=2 x batch_size=8: chunks cross the process boundary; the
    # technique/detector classes pickle, outcomes stay in fault order.
    target, faults = _dictionary_scenario()
    serial = _dictionary_campaign().run(target, faults)
    pooled = _dictionary_campaign(batch_size=8, workers=2).run(target, faults)
    got, want = _normalized(pooled), _normalized(serial)
    assert got.pop("workers") == 2 and want.pop("workers") == 1
    assert got == want


def test_campaign_e7_universe_batched_matches_serial():
    # The paper's circuit-1 fault universe through the PRBS correlation
    # technique — the tentpole's acceptance scenario: batch_size=32
    # to_dict()-identical to serial.
    tester = TransientResponseTester(TransientTestConfig(low_v=2.0,
                                                         high_v=3.5))
    target = op1_follower(input_value=2.5)
    faults = paper_circuit1_faults()

    def detector(ref, m):
        return detection_instances(ref, m, rel_threshold=0.02)

    serial = FaultCampaign(tester.technique(), detector,
                           threshold=0.05).run(target, faults)
    batched = FaultCampaign(tester.technique(), detector, threshold=0.05,
                            batch_size=32).run(target, faults)
    assert _normalized(batched) == _normalized(serial)
    for s, b in zip(serial.outcomes, batched.outcomes):
        if s.measurement is not None:
            assert np.array_equal(s.measurement.values, b.measurement.values)


def test_campaign_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        _dictionary_campaign(batch_size=0)


# --- campaign batch_size: fallback, timeouts, retry recoveries ------------

class _FallbackTechnique:
    """Batch protocol implementation that serves nothing: every slot
    comes back BATCH_FALLBACK, so the campaign must reproduce the serial
    path exactly through per-fault re-runs."""

    def __call__(self, circuit):
        return transient(circuit, 1e-5, 1e-7, record=["b"]).array("b")

    def evaluate_batch(self, target, faults):
        return [BATCH_FALLBACK] * len(faults)


def test_campaign_batch_fallback_reproduces_serial():
    target = _ladder()
    faults = [BridgingFault(f"br{i}", "a", "b", resistance=100.0 * (i + 1))
              for i in range(4)]
    faults.append(BridgingFault("ghost", "a", "nope", resistance=100.0))
    technique = _FallbackTechnique()
    detector = SignatureDetector(abs_v=0.01)
    serial = FaultCampaign(technique, detector).run(target, faults)
    batched = FaultCampaign(technique, detector, batch_size=4).run(
        target, faults)
    assert _normalized(batched) == _normalized(serial)
    # the unknown-node fault errors identically through both paths
    assert serial.outcomes[-1].error is not None
    assert batched.outcomes[-1].error == serial.outcomes[-1].error


class _SlowTechnique:
    """Cooperative-spin technique: faults bridging the marked node busy-
    wait (checking the ambient deadline) until their budget fires; every
    other fault measures instantly.  ``evaluate_batch`` spins the same
    way, so the chunk attempt times out and the campaign must fall back
    to per-fault serial evaluation — whose outcomes (including the
    structured timeout) must equal a plain serial run's."""

    MARKER = "slowpoke"

    def _measure(self, name):
        if self.MARKER in name:
            t_end = time.monotonic() + 20.0   # backstop; deadline fires first
            while time.monotonic() < t_end:
                check_deadline("slow fault spin")
            raise RuntimeError("deadline never fired")   # pragma: no cover
        return np.ones(8)

    def __call__(self, circuit):
        return self._measure(circuit.name)

    def evaluate_batch(self, target, faults):
        for fault in faults:
            self._measure(fault.name)
        return [np.ones(8)] * len(faults)


def test_campaign_batched_matches_serial_under_fault_timeouts():
    target = _ladder()
    faults = [BridgingFault("br0", "a", "b", resistance=100.0),
              BridgingFault(_SlowTechnique.MARKER, "a", "b",
                            resistance=200.0),
              BridgingFault("br2", "a", "b", resistance=300.0)]
    detector = SignatureDetector(abs_v=0.5)
    serial = FaultCampaign(_SlowTechnique(), detector).run(
        target, faults, spec=CampaignSpec(fault_timeout_s=0.2))
    batched = FaultCampaign(_SlowTechnique(), detector, batch_size=3).run(
        target, faults, spec=CampaignSpec(fault_timeout_s=0.2))
    assert serial.n_timeouts == batched.n_timeouts == 1
    assert serial.outcomes[1].timed_out and batched.outcomes[1].timed_out
    assert not batched.outcomes[1].detected
    assert _normalized(batched) == _normalized(serial)


def test_campaign_batched_matches_serial_under_retry_recoveries():
    # Biasing this deck needs the gmin-stepping retry ladder; the
    # batched bind path runs the same homotopy as the serial engine, so
    # outcomes and retry behaviour match the serial campaign exactly.
    target = _hard_stack()
    faults = [StuckAtFault.sa0("n2"), StuckAtFault.sa1("n3", vdd=5.0),
              StuckAtFault.sa0("n4")]
    technique = TransientSignatureTechnique(t_stop=2e-5, dt=1e-6, node="n0")
    detector = SignatureDetector(abs_v=0.05)
    # prove the fixture actually exercises the retry ladder (the
    # campaign's reference measurement biases this same deck)
    from repro.spice import dc_operating_point
    with observe() as h:
        dc_operating_point(target)
    assert h.metrics.to_dict()["solver.retries"]["value"] >= 1
    serial = FaultCampaign(technique, detector).run(target, faults)
    batched = FaultCampaign(technique, detector, batch_size=3).run(
        target, faults)
    assert _normalized(batched) == _normalized(serial)
    for s, b in zip(serial.outcomes, batched.outcomes):
        if s.measurement is not None:
            assert np.array_equal(s.measurement, b.measurement)


# --- dictionary scenario builders ----------------------------------------

def test_dictionary_detector_validates():
    with pytest.raises(ValueError):
        SignatureDetector(abs_v=-0.1)


def test_dictionary_faults_validates_universe_size():
    with pytest.raises(ValueError):
        dictionary_faults(n_sections=3, n_faults=64)


def test_dictionary_campaign_detects_hard_bridges():
    target, faults = _dictionary_scenario()
    result = _dictionary_campaign(batch_size=16).run(target, faults)
    assert result.n_faults == 16
    assert result.n_errors == 0
    assert result.coverage == 1.0
