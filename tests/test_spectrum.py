"""Tests for the spectral-analysis helpers."""

import numpy as np
import pytest

from repro.signals import Waveform, sine_waveform
from repro.signals.spectrum import ToneAnalysis, amplitude_spectrum, analyze_tone


def coherent_sine(amplitude=1.0, cycles=16, n=512, harmonics=()):
    """A sine with an exact integer number of cycles in the record."""
    t = np.arange(n) / n
    y = amplitude * np.sin(2 * np.pi * cycles * t)
    for order, amp in harmonics:
        y += amp * np.sin(2 * np.pi * order * cycles * t)
    return y, float(n), float(cycles)  # samples, rate (1 rec/s), f0


class TestAmplitudeSpectrum:
    def test_sine_peak_amplitude(self):
        y, rate, f0 = coherent_sine(amplitude=0.8)
        freqs, amps = amplitude_spectrum(y, rate)
        peak_idx = int(np.argmax(amps))
        assert freqs[peak_idx] == pytest.approx(f0, abs=freqs[1])
        assert amps[peak_idx] == pytest.approx(0.8, rel=0.05)

    def test_dc_removed(self):
        y, rate, _ = coherent_sine()
        freqs, amps = amplitude_spectrum(y + 100.0, rate)
        assert amps[0] < 0.01

    def test_waveform_input_uses_own_rate(self):
        wave = sine_waveform(1.0, 50.0, duration=1.0, dt=1e-3)
        freqs, amps = amplitude_spectrum(wave)
        assert freqs[int(np.argmax(amps))] == pytest.approx(50.0, abs=1.5)

    def test_rect_window_exact_for_coherent(self):
        y, rate, f0 = coherent_sine(amplitude=1.0)
        freqs, amps = amplitude_spectrum(y, rate, window="rect")
        assert np.max(amps) == pytest.approx(1.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            amplitude_spectrum([1.0] * 4, 1.0)
        with pytest.raises(ValueError):
            amplitude_spectrum([1.0] * 16, 1.0, window="kaiser9000")
        with pytest.raises(ValueError):
            amplitude_spectrum([1.0] * 16)  # raw array, no rate


class TestToneAnalysis:
    def test_pure_tone_low_thd(self):
        y, rate, f0 = coherent_sine()
        analysis = analyze_tone(y, f0, rate)
        assert analysis.fundamental_amplitude == pytest.approx(1.0, rel=0.05)
        assert analysis.thd_db < -60.0

    def test_known_harmonic_ratio(self):
        y, rate, f0 = coherent_sine(amplitude=1.0,
                                    harmonics=((3, 0.1),))
        analysis = analyze_tone(y, f0, rate)
        assert analysis.thd_fraction == pytest.approx(0.1, rel=0.1)
        orders = [o for o, a in analysis.harmonics if a > 0.05]
        assert orders == [3]

    def test_sfdr_of_distorted_tone(self):
        y, rate, f0 = coherent_sine(harmonics=((2, 0.01),))
        analysis = analyze_tone(y, f0, rate)
        assert analysis.sfdr_db == pytest.approx(40.0, abs=3.0)

    def test_harmonics_beyond_nyquist_skipped(self):
        y, rate, f0 = coherent_sine(cycles=200, n=512)
        analysis = analyze_tone(y, f0, rate)
        assert all(order * f0 < rate / 2
                   for order, _ in analysis.harmonics)

    def test_noise_accounting(self):
        rng = np.random.default_rng(1)
        y, rate, f0 = coherent_sine()
        noisy = y + rng.normal(0, 0.05, len(y))
        analysis = analyze_tone(noisy, f0, rate)
        assert analysis.noise_rms == pytest.approx(0.05, rel=0.4)

    def test_summary(self):
        y, rate, f0 = coherent_sine()
        assert "THD" in analyze_tone(y, f0, rate).summary()

    def test_validation(self):
        y, rate, f0 = coherent_sine()
        with pytest.raises(ValueError):
            analyze_tone(y, -1.0, rate)
        with pytest.raises(ValueError):
            analyze_tone(y, f0, rate, n_harmonics=0)

    def test_adc_distortion_visible_in_thd(self):
        """A bowed ADC transfer distorts a sine measurably."""
        from repro.adc import DualSlopeADC
        from repro.adc.calibration import ADCCalibration
        cal = ADCCalibration(cap_voltage_coeff=0.15, counter_inject_v=0.0,
                             comparator_offset_v=0.0)
        adc = DualSlopeADC(cal)
        n, cycles = 256, 16
        t = np.arange(n) / n
        v_in = 1.25 + 1.1 * np.sin(2 * np.pi * cycles * t)
        codes = [adc.code_of(float(np.clip(v, 0, 2.5))) for v in v_in]
        analysis = analyze_tone(np.asarray(codes, float), cycles, float(n))
        clean_cal = ADCCalibration(cap_voltage_coeff=0.0,
                                   counter_inject_v=0.0,
                                   comparator_offset_v=0.0)
        clean_codes = [DualSlopeADC(clean_cal).code_of(
            float(np.clip(v, 0, 2.5))) for v in v_in]
        clean = analyze_tone(np.asarray(clean_codes, float), cycles, float(n))
        assert analysis.thd_fraction > clean.thd_fraction
