"""Fast-path engine equivalence against the reference engine.

Every test here runs the same analysis twice — once with the partitioned
/cached/vectorised fast path (the default) and once with
``fast_path=False``, which restamps every element through its scalar
Python ``stamp()`` and solves with ``numpy.linalg.solve`` exactly as the
original engine did — and requires agreement to 1e-9 V, far tighter than
any physical claim the reproduction makes.

Also covers the satellite features that ride on the fast path: the
parallel fault campaign (must match serial fault-for-fault), the
FFT correlation route (must match ``numpy.correlate``), and the
transient grid-mismatch warning.
"""

import warnings

import numpy as np
import pytest

from repro.circuits.op1 import op1_follower
from repro.faults.campaign import FaultCampaign
from repro.faults.injector import inject
from repro.faults.model import StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.signals.correlation import FFT_CORR_THRESHOLD, fft_correlate
from repro.spice import (
    Capacitor,
    Circuit,
    GridMismatchWarning,
    Resistor,
    VoltageSource,
    dc_operating_point,
    transient,
)

TOL = 1e-9


def _step(t):
    return 1.0 if t > 1e-6 else 0.0


def _rc_ladder():
    c = Circuit("rc_ladder")
    c.add(VoltageSource("V1", "in", "0", value=_step))
    c.add(Resistor("R1", "in", "a", 1e3))
    c.add(Capacitor("C1", "a", "0", 1e-9))
    c.add(Resistor("R2", "a", "b", 2e3))
    c.add(Capacitor("C2", "b", "0", 2e-9))
    c.add(Resistor("R3", "b", "0", 10e3))
    return c


def _max_trace_diff(fast, ref):
    assert list(fast.times) == pytest.approx(list(ref.times), abs=0.0)
    return max(np.max(np.abs(fast.array(n) - ref.array(n)))
               for n in ref.nodes())


def test_dc_op1_matches_reference():
    v_fast, x_fast = dc_operating_point(op1_follower(input_value=2.5))
    v_ref, x_ref = dc_operating_point(op1_follower(input_value=2.5),
                                      fast_path=False)
    assert set(v_fast) == set(v_ref)
    for node in v_ref:
        assert abs(v_fast[node] - v_ref[node]) < TOL
    assert np.max(np.abs(x_fast - x_ref)) < TOL


def test_transient_rc_be_linear_march_matches_reference():
    # Fully linear + backward Euler: exercises the one-factorisation
    # linear march against the step-by-step reference.
    fast = transient(_rc_ladder(), 2e-5, 1e-8, method="be")
    ref = transient(_rc_ladder(), 2e-5, 1e-8, method="be", fast_path=False)
    assert _max_trace_diff(fast, ref) < TOL


def test_transient_rc_trap_matches_reference():
    # Trapezoidal bypasses the linear march: exercises the partitioned
    # generic loop with LU reuse.
    fast = transient(_rc_ladder(), 2e-5, 1e-8, method="trap")
    ref = transient(_rc_ladder(), 2e-5, 1e-8, method="trap", fast_path=False)
    assert _max_trace_diff(fast, ref) < TOL


def test_transient_op1_matches_reference():
    # Nonlinear path: vectorised MOSFET group + static-G cache vs the
    # scalar per-device stamps, across a step that slews the output.
    def drive(t):
        return 2.2 if t < 5e-6 else 3.0
    fast = transient(op1_follower(input_value=drive), 2e-5, 1e-7,
                     record=["3", "4", "5"])
    ref = transient(op1_follower(input_value=drive), 2e-5, 1e-7,
                    record=["3", "4", "5"], fast_path=False)
    assert _max_trace_diff(fast, ref) < TOL


def test_transient_faulted_rc_matches_reference():
    # Fault injection adds elements (fault resistor + clamp source);
    # the rebuilt assembler must partition the mutated netlist correctly.
    fault = StuckAtFault.sa1("a", vdd=5.0, resistance=10.0)
    fast = transient(inject(_rc_ladder(), fault), 2e-5, 1e-8)
    ref = transient(inject(_rc_ladder(), fault), 2e-5, 1e-8, fast_path=False)
    assert _max_trace_diff(fast, ref) < TOL


def test_transient_records_branch_currents_identically():
    fast = transient(_rc_ladder(), 1e-5, 1e-8, record_branches=["V1"])
    ref = transient(_rc_ladder(), 1e-5, 1e-8, record_branches=["V1"],
                    fast_path=False)
    d = np.max(np.abs(fast.branch_current("V1").values
                      - ref.branch_current("V1").values))
    assert d < TOL


# --- grid mismatch -------------------------------------------------------

def test_grid_mismatch_warns():
    with pytest.warns(GridMismatchWarning):
        result = transient(_rc_ladder(), t_stop=1.05e-6, dt=1e-7)
    # The march still covers round(t_stop / dt) steps.
    assert len(result.times) == 11
    assert result.times[-1] == pytest.approx(1.0e-6)


def test_exact_grid_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", GridMismatchWarning)
        transient(_rc_ladder(), t_stop=1e-6, dt=1e-7)


# --- parallel fault campaign --------------------------------------------

def _campaign_step(t):
    return 2.2 if t < 5e-6 else 2.8


def _campaign_technique(circuit):
    return transient(circuit, t_stop=2e-5, dt=2.5e-7, record=["3"]).array("3")


def _campaign_detector(reference, measurement):
    return float(np.mean(np.abs(measurement - reference) > 0.05))


def test_campaign_workers_match_serial():
    target = op1_follower(input_value=_campaign_step)
    faults = stuck_at_universe(["4", "5", "7", "8", "3"])
    serial = FaultCampaign(_campaign_technique, _campaign_detector).run(
        target, faults)
    pooled = FaultCampaign(_campaign_technique, _campaign_detector,
                           workers=2).run(target, faults)
    assert pooled.n_faults == serial.n_faults == len(faults)
    for s, p in zip(serial.outcomes, pooled.outcomes):
        assert s.fault.describe() == p.fault.describe()
        assert s.detection == p.detection
        assert s.detected == p.detected
        assert s.error == p.error


def test_campaign_unpicklable_falls_back_to_serial():
    target = _rc_ladder()
    faults = stuck_at_universe(["a"])
    # A lambda detector cannot cross a process boundary.
    campaign = FaultCampaign(
        lambda c: transient(c, 1e-5, 1e-7).array("a"),
        lambda ref, m: float(np.mean(np.abs(m - ref) > 0.05)),
        workers=2)
    with pytest.warns(RuntimeWarning, match="not\\s+picklable"):
        result = campaign.run(target, faults)
    assert result.n_faults == len(faults)


def test_campaign_rejects_bad_workers():
    with pytest.raises(ValueError):
        FaultCampaign(_campaign_technique, _campaign_detector, workers=0)


# --- sparse (CSC + splu) solver route ------------------------------------

def test_sparse_linear_march_matches_reference(monkeypatch):
    # Force the sparse route on a small linear deck and pin it to the
    # reference engine: same 1e-9 gate as the dense fast path.
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    fast = transient(_rc_ladder(), 2e-5, 1e-8, method="be")
    assert fast.stats["engine"] == "sparse_linear_march"
    monkeypatch.delenv("REPRO_SPARSE_THRESHOLD")
    ref = transient(_rc_ladder(), 2e-5, 1e-8, method="be", fast_path=False)
    assert _max_trace_diff(fast, ref) < TOL


def test_sparse_newton_route_matches_reference(monkeypatch):
    # Nonlinear circuits refactorise the sparse Jacobian every Newton
    # iteration (the pattern must follow the devices); results still
    # pin to the scalar reference engine.
    def drive(t):
        return 2.2 if t < 5e-6 else 3.0
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1")
    fast = transient(op1_follower(input_value=drive), 2e-5, 1e-7,
                     record=["3", "4", "5"])
    monkeypatch.delenv("REPRO_SPARSE_THRESHOLD")
    ref = transient(op1_follower(input_value=drive), 2e-5, 1e-7,
                    record=["3", "4", "5"], fast_path=False)
    assert _max_trace_diff(fast, ref) < TOL


def test_sparse_route_engages_automatically_above_threshold(monkeypatch):
    # A ladder larger than the default threshold must pick the sparse
    # march without any explicit opt-in, and match the dense fast path.
    from repro.faults.dictionary import dictionary_ladder
    from repro.spice.mna import SPARSE_THRESHOLD_DEFAULT, sparse_threshold

    assert sparse_threshold() == SPARSE_THRESHOLD_DEFAULT
    n = SPARSE_THRESHOLD_DEFAULT + 100
    circuit = dictionary_ladder(n_sections=n, r_ohm=10.0)
    out = f"n{n - 1}"
    auto = transient(circuit, 2e-4, 2e-6, record=[out])
    assert auto.stats["engine"] == "sparse_linear_march"
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", str(100 * n))
    dense = transient(circuit, 2e-4, 2e-6, record=[out])
    assert dense.stats["engine"] == "linear_march"
    assert np.max(np.abs(auto.array(out) - dense.array(out))) < TOL


def test_sparse_threshold_env_parse_failure_falls_back(monkeypatch):
    from repro.spice.mna import SPARSE_THRESHOLD_DEFAULT, sparse_threshold
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "not-a-number")
    assert sparse_threshold() == SPARSE_THRESHOLD_DEFAULT


# --- single-factorisation frequency sweeps --------------------------------

def test_frequency_pencil_matches_per_point_dense_solves():
    from repro.spice import FrequencyPencil
    rng = np.random.default_rng(7)
    n = 10
    g = rng.standard_normal((n, n)) + 5.0 * np.eye(n)
    c = rng.standard_normal((n, n)) * 1e-9
    b = rng.standard_normal(n)
    c_vec = rng.standard_normal(n)
    s_values = 2j * np.pi * np.logspace(0, 9, 31)
    pencil = FrequencyPencil(g, c)
    got = pencil.transfer(b, c_vec, s_values)
    ref = np.array([c_vec @ np.linalg.solve(g + s * c, b.astype(complex))
                    for s in s_values])
    scale = np.maximum(np.abs(ref), 1e-300)
    assert np.max(np.abs(got - ref) / scale) < TOL


def test_ac_sweep_matches_scalar_transfer_function():
    # ac_sweep routes through the QZ pencil; each point must agree with
    # the scalar (direct dense solve) transfer_function_at evaluation.
    from repro.spice import ac_sweep, transfer_function_at
    circuit = _rc_ladder()
    sweep = ac_sweep(circuit, "V1", "b", f_start=10.0, f_stop=1e7,
                     points_per_decade=4)
    for f, h in zip(sweep.frequencies_hz[::5], sweep.response[::5]):
        direct = transfer_function_at(circuit, "V1", "b", 2j * np.pi * f)
        assert abs(h - direct) < TOL * max(1.0, abs(direct))


# --- FFT correlation route ----------------------------------------------

@pytest.mark.parametrize("mode", ["full", "same", "valid"])
@pytest.mark.parametrize("m,n", [(1, 1), (5, 5), (9, 4), (4, 9),
                                 (8, 3), (3, 8), (128, 127), (301, 64)])
def test_fft_correlate_matches_numpy(mode, m, n):
    rng = np.random.default_rng(m * 1000 + n)
    a = rng.standard_normal(m)
    v = rng.standard_normal(n)
    ref = np.correlate(a, v, mode=mode)
    got = fft_correlate(a, v, mode)
    assert got.shape == ref.shape
    scale = max(1.0, float(np.max(np.abs(ref))))
    assert np.max(np.abs(got - ref)) < 1e-12 * scale


def test_large_cross_correlation_uses_fft_and_matches():
    # Above the threshold cross_correlation() switches to the FFT route;
    # the result must still match a direct np.correlate to round-off.
    from repro.signals.correlation import cross_correlation
    rng = np.random.default_rng(42)
    n = int(np.sqrt(FFT_CORR_THRESHOLD)) + 8
    y = rng.standard_normal(n)
    p = rng.standard_normal(n)
    assert n * n >= FFT_CORR_THRESHOLD
    r = cross_correlation(y, p)
    ref = np.correlate(y, p, mode="full")
    assert np.max(np.abs(r.values - ref)) < 1e-10 * max(1.0, np.max(np.abs(ref)))
