"""Durability suite: persistent job queue, crash-safe scheduler
restart, bounded disk cache and the service-boundary chaos harness.

The recovery invariant under test everywhere: a campaign service
SIGKILLed mid-plan and restarted over the same queue/cache/checkpoint
files produces ``to_dict()``-identical results to an uninterrupted run
(wall clock aside — :func:`repro.verify.goldens.normalize` drops it).
The ``chaos`` marker covers the tests that kill real processes or
inject ``os.replace``/``fsync`` failures (see the ``service-durability``
CI job).
"""

import json
import os
import sys
import time

import pytest

from repro.resilience.chaos import (
    ChaosError,
    ChaosProcess,
    chaos_os,
    corrupt_tail,
    tear_tail,
    wait_for,
)
from repro.service import (
    CampaignSpec,
    PersistentJobQueue,
    QueueError,
    ResultCache,
    SPEC_SCHEMA,
)
from repro.service.cache import fault_key
from repro.service.scheduler import CampaignScheduler
from repro.verify.goldens import normalize
from tests._durability_workload import (
    delta_detector,
    divider,
    driver_argv,
    golden_results,
    mid_faults,
    slow_measure_mid,
    standard_specs,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spec(tmp_path=None, n=4, **overrides):
    fields = dict(technique=slow_measure_mid, detector=delta_detector,
                  target=divider(), faults=tuple(mid_faults(n)),
                  name="durable", workers=1)
    if tmp_path is not None:
        fields["checkpoint"] = str(tmp_path / "job.ckpt")
    fields.update(overrides)
    return CampaignSpec(**fields)


# ---------------------------------------------------------------------------
# CampaignSpec serialisation (what the journal stores)


class TestSpecSerialization:
    def test_roundtrip_preserves_identity_and_options(self, tmp_path):
        spec = _spec(tmp_path, threshold=0.25, priority=3,
                     fault_timeout_s=9.0, checkpoint_every=2)
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.content_key() == spec.content_key()
        assert clone.context_key() == spec.context_key()
        assert (clone.threshold, clone.priority) == (0.25, 3)
        assert clone.fault_timeout_s == 9.0
        assert clone.checkpoint == spec.checkpoint
        assert clone.name == "durable"
        assert len(clone.faults) == len(spec.faults)

    def test_doc_is_json_serialisable_and_tagged(self):
        doc = _spec().to_dict()
        assert doc["schema"] == SPEC_SCHEMA
        assert doc["n_faults"] == 4
        json.dumps(doc)  # scalars + one base64 blob, nothing live

    def test_live_fields_are_not_journaled(self):
        cache = ResultCache()
        spec = _spec(progress=lambda p: None, cache=cache)
        doc = spec.to_dict()
        assert "progress" not in doc and "cache" not in doc
        clone = CampaignSpec.from_dict(doc)
        assert clone.progress is None and clone.cache is None

    def test_unknown_schema_rejected(self):
        doc = _spec().to_dict()
        doc["schema"] = "repro.campaign-spec/999"
        with pytest.raises(ValueError, match="not a serialised"):
            CampaignSpec.from_dict(doc)

    def test_unpicklable_workload_degrades_to_unrecoverable(self):
        spec = _spec(technique=lambda c: 0.0)
        doc = spec.to_dict()
        assert doc["workload"] is None
        with pytest.raises(ValueError, match="without a recoverable"):
            CampaignSpec.from_dict(doc)


# ---------------------------------------------------------------------------
# the write-ahead queue itself


class TestPersistentQueue:
    def test_submit_then_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queue = PersistentJobQueue(path)
        record = queue.submit("svc-job1", _spec().resolved(), priority=2)
        assert record.key == _spec().content_key()
        replayed = PersistentJobQueue(path)
        rec = replayed.get("svc-job1")
        assert rec.state == "submitted" and rec.priority == 2
        assert rec.spec().content_key() == record.key

    def test_state_machine_and_depth(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        queue.submit("a", _spec().resolved())
        queue.submit("b", _spec().resolved())
        queue.mark("a", "dispatched", seq=0)
        assert queue.depth() == 2
        queue.mark("a", "done")
        assert queue.depth() == 1
        queue.mark("b", "failed", error="boom")
        assert queue.depth() == 0
        assert queue.get("b").error == "boom"
        queue.requeue("b")
        assert queue.depth() == 1 and queue.get("b").error is None
        queue.drop("b")
        assert queue.depth() == 0
        # the full history replays to the same end state
        replayed = PersistentJobQueue(queue.path)
        assert replayed.get("a").state == "done"
        assert replayed.get("b").state == "dropped"
        assert replayed.max_seq() == 0

    def test_pending_orders_by_priority_then_seq(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        queue.submit("low", _spec().resolved(), priority=0)
        queue.submit("high-late", _spec().resolved(), priority=5)
        queue.submit("high-early", _spec().resolved(), priority=5)
        queue.mark("high-early", "dispatched", seq=1)
        queue.mark("high-late", "dispatched", seq=4)
        names = [r.job_id for r in queue.pending()]
        assert names == ["high-early", "high-late", "low"]

    def test_mark_unknown_job_is_refused(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        assert queue.mark("ghost", "done") is False
        with pytest.raises(ValueError, match="unknown queue transition"):
            queue.mark("ghost", "submitted")

    def test_torn_tail_quarantined_and_journal_rewritten(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queue = PersistentJobQueue(path)
        queue.submit("a", _spec().resolved())
        queue.submit("b", _spec().resolved())
        queue.mark("a", "done")
        tear_tail(path, drop_bytes=4)  # tears the "done" mark
        with pytest.warns(RuntimeWarning, match="quarantined"):
            replayed = PersistentJobQueue(path)
        assert replayed.corrupt == 1
        assert replayed.get("a").state == "submitted"  # mark was lost
        assert os.path.exists(path + ".corrupt")
        # the rewrite removed the damage permanently
        again = PersistentJobQueue(path)
        assert again.corrupt == 0 and len(again) == 2

    def test_corrupt_interior_record_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queue = PersistentJobQueue(path)
        queue.submit("a", _spec().resolved())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        queue.submit("b", _spec().resolved())
        with pytest.warns(RuntimeWarning, match="quarantined"):
            replayed = PersistentJobQueue(path)
        assert replayed.corrupt == 1
        assert sorted(replayed.records) == ["a", "b"]

    def test_mark_without_submitted_line_is_quarantined(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queue = PersistentJobQueue(path)
        queue.submit("a", _spec().resolved())
        queue.mark("a", "done")
        # simulate losing the submitted line but keeping the mark
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(lines[-1] + "\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            replayed = PersistentJobQueue(path)
        assert replayed.corrupt == 1 and len(replayed) == 0

    def test_submit_raises_when_journal_append_fails(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        with chaos_os(fsync_fail_at=[0]):
            with pytest.raises(QueueError, match="could not journal"):
                queue.submit("a", _spec().resolved())

    def test_mark_failure_is_best_effort(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        queue.submit("a", _spec().resolved())
        with chaos_os(fsync_fail_at=[0]):
            assert queue.mark("a", "done") is False
        assert queue.get("a").state == "submitted"  # not applied

    def test_unpicklable_workload_journals_with_warning(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        with pytest.warns(RuntimeWarning, match="recoverable"):
            record = queue.submit("a",
                                  _spec(technique=lambda c: 0.0).resolved())
        assert not record.recoverable()
        assert PersistentJobQueue(queue.path).depth() == 1

    def test_compact_drops_settled_history(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queue = PersistentJobQueue(path)
        for name in ("a", "b", "c"):
            queue.submit(name, _spec().resolved())
        queue.mark("a", "dispatched", seq=3)
        queue.mark("b", "done")
        assert queue.compact() == 1
        replayed = PersistentJobQueue(path)
        assert sorted(replayed.records) == ["a", "c"]
        assert replayed.get("a").seq == 3


# ---------------------------------------------------------------------------
# bounded disk cache


def _entry(i, payload="x" * 64):
    class _Fault:
        def __init__(self, i):
            self.i = i

        def describe(self):
            return f"fault-{self.i}-{payload}"

    class _Outcome:
        timed_out = quarantined = False
        error = None
        decided_by = "transient"

        def __init__(self, i):
            self.fault = _Fault(i)
            self.detection = 0.5
            self.detected = True
            self.elapsed_s = 0.01

    return _Outcome(i)


class TestBoundedDiskCache:
    def test_max_bytes_requires_disk_tier(self):
        with pytest.raises(ValueError, match="requires a disk tier"):
            ResultCache(max_bytes=1024)

    def test_footprint_never_exceeds_budget(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "c"), max_bytes=1000)
        for i in range(30):
            cache.put("ctx", _entry(i))
            assert cache.disk_bytes() <= 1000
        assert cache.stats.evictions > 0
        assert cache.stats.evicted_bytes > 0
        assert cache.stats.to_dict()["evicted_bytes"] \
            == cache.stats.evicted_bytes

    def test_eviction_is_lru_and_disk_hits_refresh_recency(self, tmp_path):
        path = str(tmp_path / "c")
        seed = ResultCache(path=path)  # unbounded, to stage the tier
        for i in range(4):
            seed.put("ctx", _entry(i))

        def key(i):
            return fault_key("ctx", _entry(i).fault)

        now = time.time()
        for i in range(4):  # entry 0 oldest ... entry 3 newest
            age = now - 400 + i * 100
            os.utime(seed._entry_path(key(i)), (age, age))
        # a disk hit in a *fresh process* refreshes entry 0's recency
        reader = ResultCache(path=path)
        assert reader.get("ctx", _entry(0).fault, 0.5) is not None
        # a bounded cache over the same tier is exactly at budget; one
        # more store must evict precisely the least-recently-used entry
        total = reader.disk_bytes()
        bounded = ResultCache(path=path, max_bytes=total)
        bounded.put("ctx", _entry(99))
        on_disk = {k for _, _, _, k in bounded._entries_on_disk()}
        assert key(99) in on_disk  # the fresh store is shielded
        assert key(0) in on_disk   # refreshed by the hit -> survived
        assert key(1) not in on_disk  # the true LRU victim
        assert bounded.stats.evicted_bytes > 0

    def test_disk_hit_touches_entry(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "c"))
        outcome = _entry(1)
        cache.put("ctx", outcome)
        (mtime, _, path, _), = cache._entries_on_disk()
        os.utime(path, (1.0, 1.0))
        cache.clear()  # force the disk tier
        assert cache.get("ctx", outcome.fault, 0.5) is not None
        assert os.path.getmtime(path) > 1.0

    def test_scrub_quarantines_key_and_schema_mismatches(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "c"))
        for i in range(3):
            cache.put("ctx", _entry(i))
        entries = cache._entries_on_disk()
        # key mismatch: rename an entry to a different key's filename
        _, _, victim, _ = entries[0]
        renamed = os.path.join(os.path.dirname(victim), "f" * 64 + ".json")
        os.replace(victim, renamed)
        # schema mismatch: rewrite another entry with a future tag
        _, _, victim2, _ = entries[1]
        with open(victim2, encoding="utf-8") as fh:
            doc = json.load(fh)
        doc["schema"] = "repro.result-cache/999"
        with open(victim2, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        report = cache.scrub()
        assert report["quarantined"] == 2
        assert cache.stats.corrupt == 2
        assert len(cache._entries_on_disk()) == 1

    def test_store_failure_degrades_to_memory_tier(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "c"))
        outcome = _entry(5)
        with chaos_os(replace_fail_at=[0]):
            assert cache.put("ctx", outcome) is True
        assert cache._entries_on_disk() == []      # disk store failed
        assert cache.get("ctx", outcome.fault, 0.5) is not None  # memory

    @pytest.mark.chaos
    def test_bound_holds_under_sustained_write_chaos(self, tmp_path):
        """The acceptance pin: max_bytes is never exceeded even while
        seeded random replace/fsync failures hammer the write path."""
        cache = ResultCache(path=str(tmp_path / "c"), max_bytes=2000)
        with chaos_os(rate=0.2, seed=1234, match=str(tmp_path)):
            for i in range(120):
                cache.put("ctx", _entry(i))
                assert cache.disk_bytes() <= 2000
        # and the tier still works after the weather clears
        cache.put("ctx", _entry(999))
        assert cache.disk_bytes() <= 2000
        assert cache.scrub()["bytes"] <= 2000


# ---------------------------------------------------------------------------
# scheduler + queue integration (in-process)


class TestSchedulerQueueIntegration:
    def test_submit_write_ahead_then_done(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with CampaignScheduler(workers=1, name="svc", queue=path) as sched:
            job = sched.submit(_spec(n=2, checkpoint=None))
            job.result()
        queue = PersistentJobQueue(path)
        record = queue.get(job.id)
        assert record.state == "done"
        assert record.seq is not None
        assert record.key == job.spec.content_key()

    def test_recover_reruns_undone_jobs_identically(self, tmp_path):
        golden = {}
        with CampaignScheduler(workers=1, name="golden") as sched:
            for i, spec in enumerate(standard_specs(str(tmp_path / "g"),
                                                    n_faults=3)):
                golden[spec.name] = sched.submit(spec).result().to_dict()
        # a "crashed" predecessor journaled two jobs, one mid-dispatch
        path = str(tmp_path / "q.jsonl")
        queue = PersistentJobQueue(path)
        specs = standard_specs(str(tmp_path), n_faults=3)
        queue.submit("svc-job1", specs[0].resolved(), priority=0)
        queue.submit("svc-job2", specs[1].resolved(), priority=1)
        queue.mark("svc-job2", "dispatched", seq=1)
        sched = CampaignScheduler(workers=1, name="svc", queue=path)
        try:
            jobs = sched.recover()
            assert [j.id for j in jobs] == ["svc-job2", "svc-job1"]
            assert jobs[0].recovered_seq == 1
            results = {j.spec.name: j.result().to_dict() for j in jobs}
        finally:
            sched.close()
        for name, payload in golden.items():
            assert normalize(results[name]) == normalize(payload)
        assert PersistentJobQueue(path).depth() == 0
        # a fresh submission must not collide with recovered ids
        sched2 = CampaignScheduler(workers=1, name="svc", queue=path)
        try:
            fresh = sched2.submit(_spec(n=2, checkpoint=None))
            assert fresh.id not in ("svc-job1", "svc-job2")
            fresh.result()
        finally:
            sched2.close()

    def test_recover_resumes_from_checkpoint(self, tmp_path):
        """A job whose predecessor checkpointed partial work harvests
        it instead of recomputing (resume is flipped on recovery)."""
        spec = _spec(tmp_path, n=4).resolved()
        # predecessor completed 2 of 4 faults before dying
        from repro.resilience.checkpoint import CampaignCheckpoint
        with CampaignScheduler(workers=1, name="pre") as sched:
            half = sched.submit(spec.replace(
                faults=spec.faults[:2],
                checkpoint=None)).result()
        ckpt = CampaignCheckpoint(spec.checkpoint, spec.content_key())
        ckpt.save(dict(enumerate(half.outcomes)), len(spec.faults))
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        queue.submit("svc-job1", spec)
        sched = CampaignScheduler(workers=1, name="svc", queue=queue)
        try:
            (job,) = sched.recover()
            assert job.spec.resume is True
            result = job.result()
        finally:
            sched.close()
        assert result.n_faults == 4
        with CampaignScheduler(workers=1, name="ref") as sched:
            golden = sched.submit(spec.replace(checkpoint=None)).result()
        assert normalize(result.to_dict()) == normalize(golden.to_dict())

    def test_unrecoverable_record_warns_and_stays_live(self, tmp_path):
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        with pytest.warns(RuntimeWarning, match="recoverable"):
            queue.submit("svc-job1",
                         _spec(technique=lambda c: 0.0).resolved())
        sched = CampaignScheduler(workers=1, name="svc", queue=queue)
        try:
            with pytest.warns(RuntimeWarning, match="could not be rebuilt"):
                assert sched.recover() == []
        finally:
            sched.close()
        assert queue.depth() == 1  # left for operator requeue/drop

    def test_cancel_retires_journal_record(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        sched = CampaignScheduler(workers=1, name="svc", queue=path)
        try:
            job = sched.submit(_spec(n=2, checkpoint=None))
            job.cancel()
            try:
                job.result(timeout=60)
            except Exception:  # noqa: BLE001 - cancelled is the norm
                pass
        finally:
            sched.close(wait=False)
        # dropped, or done if the job outran the cancel — never live,
        # so no replay resurrects a cancelled job
        record = PersistentJobQueue(path).get(job.id)
        assert record is not None and not record.live

    def test_recovery_observability(self, tmp_path):
        from repro.obs.core import observe
        queue = PersistentJobQueue(str(tmp_path / "q.jsonl"))
        queue.submit("svc-job1", _spec(n=2, checkpoint=None).resolved())
        with observe() as obs:
            sched = CampaignScheduler(workers=1, name="svc", queue=queue)
            try:
                jobs = sched.recover()
                sched.gather(*jobs)
            finally:
                sched.close()
            assert obs.metrics.gauges["service.recovered_jobs"].value == 1
            names = [s.name for s in obs.tracer.spans]
        assert "service.recover" in names

    def test_journal_links_to_ledger_by_content_key(self, tmp_path):
        from repro.obs.core import observe
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        path = str(tmp_path / "q.jsonl")
        with observe(ledger=ledger):
            with CampaignScheduler(workers=1, name="svc",
                                   queue=path) as sched:
                job = sched.submit(_spec(n=2, checkpoint=None))
                job.result()
        record = PersistentJobQueue(path).get(job.id)
        rows = ledger.rows(key=record.key)
        assert rows and rows[-1]["job"] == job.id


# ---------------------------------------------------------------------------
# Session wiring


class TestSessionQueue:
    def test_session_scheduler_inherits_queue_path(self, tmp_path):
        from repro.session import Session
        path = str(tmp_path / "q.jsonl")
        session = Session(obs=False, queue_path=path)
        try:
            job = session.submit(_spec(n=2, checkpoint=None))
            session.gather()
        finally:
            session.shutdown()
        assert PersistentJobQueue(path).get(job.id).state == "done"

    def test_recover_without_queue_is_empty(self):
        from repro.session import Session
        assert Session(obs=False).recover() == []

    def test_session_restart_recovers(self, tmp_path):
        from repro.session import Session
        path = str(tmp_path / "q.jsonl")
        PersistentJobQueue(path).submit(
            "session-svc-job1", _spec(n=2, checkpoint=None).resolved())
        session = Session(obs=False, queue_path=path)
        try:
            (job,) = session.recover()
            (result,) = session.gather(job)
        finally:
            session.shutdown()
        assert result.n_faults == 2
        assert PersistentJobQueue(path).depth() == 0


# ---------------------------------------------------------------------------
# chaos: real SIGKILL, torn files, injected rename/fsync failures


def _driver(workdir, submit, workers=1, n_faults=6):
    args = json.dumps(driver_argv(str(workdir), submit=submit,
                                  workers=workers, n_faults=n_faults))
    code = (f"import tests._durability_workload as m; "
            f"import json; raise SystemExit(m.main(json.loads({args!r})))")
    env = {"PYTHONPATH": os.path.join(REPO_ROOT, "src")}
    return ChaosProcess(code, env=env, cwd=REPO_ROOT)


def _cache_entries(workdir) -> int:
    total = 0
    cache_dir = os.path.join(str(workdir), "cache")
    for root, _, files in os.walk(cache_dir):
        total += sum(1 for f in files if f.endswith(".json"))
    return total


def _mid_campaign(workdir) -> bool:
    """True once both jobs are journaled AND real work has started —
    the window where a kill leaves both jobs undone but non-empty."""
    try:
        with open(os.path.join(str(workdir), "queue.jsonl"),
                  encoding="utf-8") as fh:
            journal = fh.read()
    except OSError:
        return False
    return (journal.count('"submitted"') >= 2
            and _cache_entries(workdir) >= 1)


@pytest.mark.chaos
class TestChaosRestart:
    @pytest.mark.parametrize("workers", [1, 2],
                             ids=["serial", "pooled"])
    def test_sigkill_restart_equals_uninterrupted(self, tmp_path,
                                                  workers):
        """THE acceptance pin: SIGKILL the service mid-campaign, restart
        over the same files, results are to_dict()-identical."""
        golden = golden_results(str(tmp_path), workers=workers)
        out = tmp_path / "results.json"
        with _driver(tmp_path, submit=True, workers=workers) as proc:
            proc.kill_when(lambda: _mid_campaign(tmp_path),
                           what="mid-campaign window")
        assert not out.exists()  # died before finishing, as intended
        with _driver(tmp_path, submit=False, workers=workers) as proc:
            assert proc.wait() == 0, proc.output()
        results = json.loads(out.read_text())
        assert sorted(results) == sorted(golden)
        for name in golden:
            assert normalize(results[name]) == normalize(golden[name]), \
                f"{name} diverged after restart"

    def test_torn_journal_after_kill_still_recovers(self, tmp_path):
        golden = golden_results(str(tmp_path))
        queue_path = tmp_path / "queue.jsonl"
        with _driver(tmp_path, submit=True) as proc:
            proc.kill_when(lambda: _mid_campaign(tmp_path),
                           what="mid-campaign window")
        # the kill landed mid-append: tear the journal's final line too
        tear_tail(str(queue_path), drop_bytes=7)
        with _driver(tmp_path, submit=False) as proc:
            assert proc.wait() == 0, proc.output()
        results = json.loads((tmp_path / "results.json").read_text())
        for name in golden:
            assert normalize(results[name]) == normalize(golden[name])
        assert os.path.exists(str(queue_path) + ".corrupt")

    def test_corrupt_journal_tail_still_recovers(self, tmp_path):
        golden = golden_results(str(tmp_path))
        queue_path = tmp_path / "queue.jsonl"
        with _driver(tmp_path, submit=True) as proc:
            proc.kill_when(lambda: _mid_campaign(tmp_path),
                           what="mid-campaign window")
        corrupt_tail(str(queue_path))
        with _driver(tmp_path, submit=False) as proc:
            assert proc.wait() == 0, proc.output()
        results = json.loads((tmp_path / "results.json").read_text())
        for name in golden:
            assert normalize(results[name]) == normalize(golden[name])

    def test_replace_fsync_failures_mid_run_do_not_corrupt(self,
                                                           tmp_path):
        """Seeded rename/fsync failures against cache + checkpoint
        files during a scheduled run: the run completes with correct
        results, and a following cold run over the same (possibly
        partial) files also matches."""
        spec = _spec(tmp_path, n=4).resolved()
        cache = ResultCache(path=str(tmp_path / "cache"))
        with CampaignScheduler(workers=1, name="golden") as sched:
            golden = sched.submit(spec.replace(checkpoint=None)).result()
        with chaos_os(rate=0.3, seed=7, match=str(tmp_path)):
            with CampaignScheduler(workers=1, name="stormy",
                                   cache=cache) as sched:
                stormy = sched.submit(spec).result()
        assert normalize(stormy.to_dict()) == normalize(golden.to_dict())
        # whatever survived on disk is valid: a fresh run over the same
        # cache/checkpoint reproduces the golden payload exactly
        with CampaignScheduler(workers=1, name="after",
                               cache=ResultCache(
                                   path=str(tmp_path / "cache"))) as sched:
            after = sched.submit(spec.replace(resume=True)).result()
        assert normalize(after.to_dict()) == normalize(golden.to_dict())

    def test_pool_loss_during_drain_recovers(self, tmp_path):
        """Kill the worker pool processes mid-drain: the scheduler
        rebuilds the pool, re-dispatches, and the journal still settles
        every job."""
        path = str(tmp_path / "q.jsonl")
        spec = _spec(n=6, checkpoint=None,
                     fault_timeout_s=30.0).resolved()
        sched = CampaignScheduler(workers=2, name="svc", queue=path)
        try:
            job = sched.submit(spec)
            wait_for(lambda: sched._pool is not None
                     and getattr(sched._pool, "_processes", None),
                     what="worker pool to spin up")
            for proc in list(sched._pool._processes.values()):
                proc.kill()
            result = job.result(timeout=120)
        finally:
            sched.close()
        assert result.n_faults == 6
        assert PersistentJobQueue(path).get(job.id).state == "done"


class TestChaosHarness:
    def test_injection_schedule_is_exact(self, tmp_path):
        src = tmp_path / "a"
        src.write_text("x")
        with chaos_os(replace_fail_at=[1]) as injector:
            os.replace(str(src), str(tmp_path / "b"))  # call 0 passes
            with pytest.raises(ChaosError):
                os.replace(str(tmp_path / "b"), str(tmp_path / "c"))
        assert injector.calls["replace"] == 2
        assert injector.injected["replace"] == 1
        # patched functions are restored
        os.replace(str(tmp_path / "b"), str(tmp_path / "c"))

    def test_seeded_rate_is_deterministic(self, tmp_path):
        def storm(seed):
            outcomes = []
            with chaos_os(rate=0.5, seed=seed):
                for i in range(20):
                    p = tmp_path / f"f{seed}-{i}"
                    p.write_text("x")
                    try:
                        os.replace(str(p), str(tmp_path / f"g{seed}-{i}"))
                        outcomes.append(True)
                    except ChaosError:
                        outcomes.append(False)
            return outcomes

        assert storm(42) == storm(42)
        assert storm(42) != storm(43)

    def test_match_scopes_replace_chaos(self, tmp_path):
        inside = tmp_path / "scoped"
        inside.mkdir()
        (inside / "a").write_text("x")
        (tmp_path / "b").write_text("y")
        with chaos_os(replace_fail_at=[0], match="scoped"):
            os.replace(str(tmp_path / "b"), str(tmp_path / "c"))  # unscoped
            with pytest.raises(ChaosError):
                os.replace(str(inside / "a"), str(inside / "z"))

    def test_tear_and_corrupt_tail(self, tmp_path):
        p = tmp_path / "f.jsonl"
        p.write_text('{"a": 1}\n{"b": 2}\n')
        tear_tail(str(p), drop_bytes=3)
        assert p.read_text() == '{"a": 1}\n{"b": '
        corrupt_tail(str(p), garbage=b"@@@@", keep_newline=False)
        assert p.read_bytes().endswith(b"@@@@")

    def test_wait_for_times_out_with_context(self):
        with pytest.raises(TimeoutError, match="never-true"):
            wait_for(lambda: False, timeout=0.05, poll=0.01,
                     what="never-true condition")
