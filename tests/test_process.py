"""Tests for process variation and device batches."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adc import DualSlopeADC
from repro.process import Batch, FabricatedDevice, VariationModel, VariationSpec


class TestVariationSpec:
    def test_relative_sigma_scales(self):
        spec = VariationSpec("p", sigma=0.1, relative=True)
        rng = np.random.default_rng(0)
        draws = [spec.sample(100.0, rng) for _ in range(500)]
        assert np.std(draws) == pytest.approx(10.0, rel=0.2)

    def test_absolute_sigma(self):
        spec = VariationSpec("p", sigma=0.5, relative=False)
        rng = np.random.default_rng(0)
        draws = [spec.sample(100.0, rng) for _ in range(500)]
        assert np.std(draws) == pytest.approx(0.5, rel=0.2)

    def test_lognormal_positive(self):
        spec = VariationSpec("p", sigma=0.5, distribution="lognormal")
        rng = np.random.default_rng(1)
        draws = [spec.sample(1e-12, rng) for _ in range(200)]
        assert all(d > 0 for d in draws)

    def test_clipping(self):
        spec = VariationSpec("p", sigma=10.0, relative=False,
                             clip_lo=0.0, clip_hi=1.0)
        rng = np.random.default_rng(2)
        draws = [spec.sample(0.5, rng) for _ in range(100)]
        assert all(0.0 <= d <= 1.0 for d in draws)

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationSpec("p", sigma=-1.0)
        with pytest.raises(ValueError):
            VariationSpec("p", sigma=0.1, distribution="cauchy")


class TestVariationModel:
    def test_reproducible_by_seed_and_index(self):
        model = VariationModel([VariationSpec("a", 0.1)], seed=7)
        d1 = model.sample_device({"a": 1.0}, device_index=3)
        d2 = model.sample_device({"a": 1.0}, device_index=3)
        assert d1 == d2

    def test_devices_differ(self):
        model = VariationModel([VariationSpec("a", 0.1)], seed=7)
        d1 = model.sample_device({"a": 1.0}, 0)
        d2 = model.sample_device({"a": 1.0}, 1)
        assert d1["a"] != d2["a"]

    def test_batch_size(self):
        model = VariationModel([VariationSpec("a", 0.1)])
        batch = model.sample_batch({"a": 1.0}, 10)
        assert len(batch) == 10

    def test_missing_nominal_rejected(self):
        model = VariationModel([VariationSpec("a", 0.1)])
        with pytest.raises(KeyError):
            model.sample_device({"b": 1.0}, 0)

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError):
            VariationModel([VariationSpec("a", 0.1), VariationSpec("a", 0.2)])

    def test_bad_batch_size(self):
        model = VariationModel([VariationSpec("a", 0.1)])
        with pytest.raises(ValueError):
            model.sample_batch({"a": 1.0}, 0)


class _Widget:
    """Simple nested model for batch testing."""

    def __init__(self):
        self.gain = 1.0
        self.inner = type("Inner", (), {"offset": 0.0})()


class TestBatch:
    def test_fabricate_applies_parameters(self):
        model = VariationModel([VariationSpec("gain", 0.1),
                                VariationSpec("inner.offset", 0.01,
                                              relative=False)], seed=3)
        batch = Batch(_Widget, model)
        devices = batch.fabricate(5)
        assert len(devices) == 5
        for dev in devices:
            assert dev.model.gain == dev.parameters["gain"]
            assert dev.model.inner.offset == dev.parameters["inner.offset"]

    def test_devices_independent_instances(self):
        model = VariationModel([VariationSpec("gain", 0.1)])
        devices = Batch(_Widget, model).fabricate(2)
        devices[0].model.gain = 99.0
        assert devices[1].model.gain != 99.0

    def test_screen_partitions(self):
        model = VariationModel([VariationSpec("gain", 0.5)], seed=5)
        result = Batch(_Widget, model).screen(
            20, test=lambda w: w.gain > 1.0)
        assert len(result.passed) + len(result.failed) == 20
        assert 0.0 <= result.yield_fraction <= 1.0

    def test_screen_describe(self):
        model = VariationModel([VariationSpec("gain", 0.0)])
        result = Batch(_Widget, model).screen(3, test=lambda w: True)
        assert "3 passed" in result.describe()

    def test_adc_batch_round_trip(self):
        """An ADC batch with zero spread behaves identically."""
        model = VariationModel(
            [VariationSpec("cal.comparator_offset_v", 0.0, relative=False)])
        devices = Batch(DualSlopeADC, model).fabricate(2)
        c0 = devices[0].model.code_of(1.25)
        c1 = devices[1].model.code_of(1.25)
        assert c0 == c1

    def test_fabricated_device_describe(self):
        dev = FabricatedDevice(index=0, model=_Widget(),
                               parameters={"gain": 1.23})
        assert "gain=1.23" in dev.describe()


@given(st.integers(0, 1000))
def test_variation_independent_of_order(idx):
    model = VariationModel([VariationSpec("a", 0.1)], seed=11)
    direct = model.sample_device({"a": 2.0}, idx)
    # sampling other devices first must not disturb device idx's draw
    model.sample_device({"a": 2.0}, idx + 1)
    again = model.sample_device({"a": 2.0}, idx)
    assert direct == again
