"""Tests for the ADC sub-macros: integrator, comparator, latch, control."""

import numpy as np
import pytest

from repro.adc import (
    ADCCalibration,
    ComparatorModel,
    ControlState,
    DualSlopeControl,
    IntegratorModel,
    OutputLatch,
    PAPER_CALIBRATION,
)
from repro.adc.calibration import PAPER_STEP_TABLE, expected_fall_time
from repro.signals import Waveform


class TestIntegrator:
    def test_reset_precharges(self):
        integ = IntegratorModel()
        integ.reset()
        assert integ.v_out == pytest.approx(3.6)

    def test_reset_to_level(self):
        integ = IntegratorModel()
        integ.reset(1.0)
        assert integ.v_out == 1.0

    def test_full_scale_integration_swing(self):
        """100 cycles at full scale lift the output by ~2.5 V."""
        integ = IntegratorModel()
        integ.cal.cap_voltage_coeff = 0.0
        integ.reset(1.0)
        for _ in range(100):
            integ.integrate_cycle(2.5)
        assert integ.v_out == pytest.approx(3.5, abs=0.01)

    def test_integration_linear_in_input(self):
        integ = IntegratorModel()
        integ.cal.cap_voltage_coeff = 0.0
        integ.reset(1.0)
        integ.integrate_cycle(1.25)
        half_step = integ.v_out - 1.0
        integ.reset(1.0)
        integ.integrate_cycle(2.5)
        assert integ.v_out - 1.0 == pytest.approx(2 * half_step, rel=1e-9)

    def test_deintegrate_steps_down(self):
        integ = IntegratorModel()
        integ.cal.cap_voltage_coeff = 0.0
        integ.reset(3.0)
        integ.deintegrate_cycle()
        assert integ.v_out == pytest.approx(3.0 - 2.5 / 100, rel=1e-6)

    def test_leak_decays_state(self):
        integ = IntegratorModel()
        integ.leak_per_cycle = 0.1
        integ.reset(2.0)
        integ.integrate_cycle(0.0)
        assert integ.v_out < 2.0

    def test_disabled_integrator_frozen(self):
        integ = IntegratorModel()
        integ.enabled = False
        integ.reset(2.0)
        integ.integrate_cycle(2.5)
        integ.deintegrate_cycle()
        integ.couple_step(1.0)
        assert integ.v_out == 2.0

    def test_saturation(self):
        integ = IntegratorModel()
        integ.reset(4.0)
        for _ in range(200):
            integ.integrate_cycle(2.5)
        assert integ.v_out <= integ.v_max

    def test_fall_time_matches_analytic_line(self):
        integ = IntegratorModel()
        for v_step in (0.0, 1.0, 2.0, 2.5):
            t = integ.fall_time(v_step)
            assert t == pytest.approx(expected_fall_time(v_step), abs=2e-5)

    def test_fall_time_decreases_with_step(self):
        integ = IntegratorModel()
        times = [integ.fall_time(v) for v, _ in PAPER_STEP_TABLE]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_fall_time_stuck_is_infinite(self):
        integ = IntegratorModel()
        integ.enabled = False
        assert integ.fall_time(1.0) == float("inf")

    def test_coupled_voltage_dead_zone(self):
        integ = IntegratorModel()
        integ.cal.couple_dead_scale = 0.3
        assert integ.coupled_voltage(0.3) < 0.3
        # large steps couple almost fully
        assert integ.coupled_voltage(2.5) == pytest.approx(2.5, rel=0.01)

    def test_coupled_voltage_never_negative_input(self):
        integ = IntegratorModel()
        assert integ.coupled_voltage(-1.0) == 0.0

    def test_copy_independent(self):
        integ = IntegratorModel()
        dup = integ.copy()
        dup.gain = 0.5
        dup.cal.cap_voltage_coeff = 0.9
        assert integ.gain == 1.0
        assert integ.cal.cap_voltage_coeff != 0.9

    def test_to_ztf_leak(self):
        integ = IntegratorModel()
        integ.leak_per_cycle = 0.05
        ztf = integ.to_ztf()
        assert ztf.is_stable()

    def test_discharge_waveform_slope(self):
        integ = IntegratorModel()
        integ.reset(3.6)
        wave = integ.discharge_to_threshold(dt=10e-6)
        slope = (wave.values[0] - wave.values[10]) / (10 * 10e-6)
        assert slope == pytest.approx(1000.0, rel=1e-6)

    def test_discharge_bad_dt(self):
        with pytest.raises(ValueError):
            IntegratorModel().discharge_to_threshold(dt=0.0)


class TestComparator:
    def test_basic_compare(self):
        cmp_ = ComparatorModel()
        assert cmp_.compare(2.0, 1.0) == 1
        assert cmp_.compare(1.0, 2.0) == 0

    def test_offset_shifts_trip(self):
        cmp_ = ComparatorModel(offset_v=0.1)
        assert cmp_.compare(1.05, 1.0) == 0
        assert cmp_.compare(1.15, 1.0) == 1

    def test_hysteresis(self):
        cmp_ = ComparatorModel(hysteresis_v=0.2)
        cmp_._last_output = 0
        # from low state, needs to exceed +hyst/2
        assert cmp_.compare(1.05, 1.0) == 0
        assert cmp_.compare(1.15, 1.0) == 1
        # now from high state, small dip does not reset
        assert cmp_.compare(0.95, 1.0) == 1

    def test_stuck_output(self):
        cmp_ = ComparatorModel()
        cmp_.stuck_output = 1
        assert cmp_.compare(0.0, 5.0) == 1

    def test_crossing_time_with_delay(self):
        cmp_ = ComparatorModel(delay_s=1e-3)
        wave = Waveform([2.0, 1.0, 0.0], 1.0)
        t = cmp_.crossing_time(wave, 0.5, "falling")
        assert t == pytest.approx(1.5 + 1e-3)

    def test_crossing_stuck_returns_none(self):
        cmp_ = ComparatorModel()
        cmp_.stuck_output = 0
        wave = Waveform([2.0, 0.0], 1.0)
        assert cmp_.crossing_time(wave, 1.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ComparatorModel(hysteresis_v=-0.1)
        with pytest.raises(ValueError):
            ComparatorModel(delay_s=-1.0)

    def test_copy(self):
        cmp_ = ComparatorModel(offset_v=0.05)
        dup = cmp_.copy()
        dup.offset_v = 0.5
        assert cmp_.offset_v == 0.05


class TestLatch:
    def test_capture_and_read(self):
        latch = OutputLatch(8)
        latch.capture(42)
        assert latch.read() == 42

    def test_track_does_not_change_read(self):
        latch = OutputLatch(8)
        latch.capture(42)
        latch.track(99)
        assert latch.read() == 42

    def test_transparent_fault_leaks_live_value(self):
        latch = OutputLatch(8)
        latch.capture(42)
        latch.transparent_fault = True
        latch.track(99)
        assert latch.read() == 99

    def test_stuck_bits(self):
        latch = OutputLatch(8)
        latch.stuck_bits[0] = 1
        latch.capture(0b1000)
        assert latch.read() == 0b1001

    def test_width_mask(self):
        latch = OutputLatch(4)
        latch.capture(0x1F)
        assert latch.read() == 0xF

    def test_validation(self):
        with pytest.raises(ValueError):
            OutputLatch(0)

    def test_copy(self):
        latch = OutputLatch(8)
        latch.capture(5)
        dup = latch.copy()
        dup.capture(9)
        assert latch.read() == 5


class TestControl:
    def run_conversion(self, ctrl, deintegrate_cycles):
        """Clock through a whole conversion; comparator goes low after
        the given number of de-integrate cycles."""
        ctrl.start()
        seen = []
        deint = 0
        for _ in range(1000):
            high = True
            if ctrl.state == ControlState.DEINTEGRATE:
                deint += 1
                high = deint < deintegrate_cycles
            seen.append(ctrl.clock(high))
            if ctrl.done:
                break
        return seen

    def test_state_sequence(self):
        ctrl = DualSlopeControl(integrate_cycles=10, autozero_cycles=2,
                                max_deintegrate_cycles=20)
        seen = self.run_conversion(ctrl, deintegrate_cycles=5)
        states = [s.value for s in dict.fromkeys(seen)]
        assert states == ["autozero", "integrate", "deintegrate", "done"]

    def test_total_cycles_accounting(self):
        ctrl = DualSlopeControl(integrate_cycles=10, autozero_cycles=2,
                                max_deintegrate_cycles=20)
        self.run_conversion(ctrl, deintegrate_cycles=5)
        assert ctrl.total_cycles == pytest.approx(2 + 10 + 5, abs=1)

    def test_deintegrate_overflow_guard(self):
        ctrl = DualSlopeControl(integrate_cycles=5, autozero_cycles=0,
                                max_deintegrate_cycles=8)
        seen = self.run_conversion(ctrl, deintegrate_cycles=10_000)
        assert ctrl.done

    def test_stuck_state_never_finishes(self):
        ctrl = DualSlopeControl(integrate_cycles=5)
        ctrl.stuck_state = ControlState.INTEGRATE
        ctrl.start()
        for _ in range(500):
            ctrl.clock(True)
        assert not ctrl.done
        assert ctrl.state == ControlState.INTEGRATE

    def test_conversion_time(self):
        ctrl = DualSlopeControl()
        ctrl.total_cycles = 200
        assert ctrl.conversion_time_s(100e3) == pytest.approx(2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            DualSlopeControl(integrate_cycles=0)

    def test_copy(self):
        ctrl = DualSlopeControl()
        ctrl.stuck_state = ControlState.IDLE
        dup = ctrl.copy()
        assert dup.stuck_state == ControlState.IDLE


class TestCalibration:
    def test_lsb(self):
        assert PAPER_CALIBRATION.lsb_v == pytest.approx(0.025)

    def test_integrate_time(self):
        assert PAPER_CALIBRATION.integrate_time_s == pytest.approx(1e-3)

    def test_copy_independent(self):
        cal = PAPER_CALIBRATION.copy()
        cal.n_codes = 50
        assert PAPER_CALIBRATION.n_codes == 100

    def test_expected_fall_times_match_line(self):
        # the analytic line: 2.6 ms - 1 ms/V * v
        assert expected_fall_time(0.0) == pytest.approx(2.6e-3)
        assert expected_fall_time(2.5) == pytest.approx(0.1e-3)
        assert expected_fall_time(1.3) == pytest.approx(1.3e-3)

    def test_expected_fall_time_floors_at_zero(self):
        assert expected_fall_time(10.0) == 0.0
