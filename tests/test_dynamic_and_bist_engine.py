"""Tests for dynamic ADC characterisation and the logic BIST engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import DualSlopeADC
from repro.adc.calibration import ADCCalibration
from repro.adc.dynamic import (
    DynamicCharacterization,
    coherent_frequency,
    dynamic_characterization,
    sine_fit,
)
from repro.adc.sigma_delta import SigmaDeltaADC
from repro.dft import LogicBISTEngine, stuck_at_output_variants


class TestSineFit:
    def test_exact_recovery(self):
        fs, f0 = 1000.0, 37.0
        t = np.arange(256) / fs
        y = 0.3 + 1.2 * np.cos(2 * np.pi * f0 * t + 0.7)
        fit = sine_fit(y, fs, f0)
        assert fit.amplitude == pytest.approx(1.2, rel=1e-6)
        assert fit.offset == pytest.approx(0.3, abs=1e-9)
        assert fit.phase_rad == pytest.approx(0.7, abs=1e-6)
        assert fit.residual_rms < 1e-9

    def test_noise_goes_to_residual(self):
        rng = np.random.default_rng(0)
        fs, f0 = 1000.0, 37.0
        t = np.arange(512) / fs
        y = np.cos(2 * np.pi * f0 * t) + rng.normal(0, 0.1, len(t))
        fit = sine_fit(y, fs, f0)
        assert fit.amplitude == pytest.approx(1.0, abs=0.02)
        assert fit.residual_rms == pytest.approx(0.1, rel=0.15)

    def test_frequency_refinement_improves_fit(self):
        fs = 1000.0
        true_f = 37.02
        t = np.arange(1024) / fs
        y = np.cos(2 * np.pi * true_f * t)
        coarse = sine_fit(y, fs, 37.0)
        refined = sine_fit(y, fs, 37.0, refine_frequency=True)
        assert refined.residual_rms < coarse.residual_rms

    def test_evaluate_roundtrip(self):
        fs, f0 = 1000.0, 21.0
        t = np.arange(128) / fs
        y = 2.0 * np.cos(2 * np.pi * f0 * t)
        fit = sine_fit(y, fs, f0)
        assert np.allclose(fit.evaluate(t), y, atol=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            sine_fit([1.0] * 4, 1000.0, 10.0)
        with pytest.raises(ValueError):
            sine_fit([1.0] * 16, -1.0, 10.0)


class TestCoherence:
    def test_integer_cycles(self):
        f = coherent_frequency(1000.0, 512, 27.0)
        cycles = f * 512 / 1000.0
        assert cycles == pytest.approx(round(cycles))

    def test_coprime_cycles(self):
        from math import gcd
        f = coherent_frequency(1000.0, 512, 27.0)
        cycles = int(round(f * 512 / 1000.0))
        assert gcd(cycles, 512) == 1

    def test_short_record_rejected(self):
        with pytest.raises(ValueError):
            coherent_frequency(1000.0, 4, 10.0)


class TestDynamicCharacterization:
    def test_ideal_adc_near_theoretical_enob(self):
        """An N-level quantiser's SNDR ~ 6.02*log2(levels) + 1.76 dB."""
        cal = ADCCalibration(comparator_offset_v=0.0, cap_voltage_coeff=0.0,
                             counter_inject_v=0.0)
        result = dynamic_characterization(DualSlopeADC(cal), n_samples=256)
        # 101 levels over the full scale, tested at 90% amplitude:
        # expect ~6.6 bits minus a fraction
        assert 5.8 < result.enob_bits < 6.8

    def test_nominal_loses_enob_to_linearity(self):
        cal = ADCCalibration(comparator_offset_v=0.0, cap_voltage_coeff=0.0,
                             counter_inject_v=0.0)
        ideal = dynamic_characterization(DualSlopeADC(cal), n_samples=256)
        nominal = dynamic_characterization(DualSlopeADC(), n_samples=256)
        assert nominal.enob_bits < ideal.enob_bits

    def test_distortion_shows_in_harmonics(self):
        bowed_cal = ADCCalibration(cap_voltage_coeff=0.15,
                                   counter_inject_v=0.0,
                                   comparator_offset_v=0.0)
        bowed = dynamic_characterization(DualSlopeADC(bowed_cal),
                                         n_samples=256)
        clean_cal = ADCCalibration(cap_voltage_coeff=0.0,
                                   counter_inject_v=0.0,
                                   comparator_offset_v=0.0)
        clean = dynamic_characterization(DualSlopeADC(clean_cal),
                                         n_samples=256)
        assert bowed.worst_harmonic_db > clean.worst_harmonic_db

    def test_works_on_sigma_delta(self):
        result = dynamic_characterization(SigmaDeltaADC(), n_samples=128)
        assert result.enob_bits > 5.0

    def test_summary_text(self):
        result = dynamic_characterization(DualSlopeADC(), n_samples=128)
        assert "ENOB" in result.summary()


class TestLogicBISTEngine:
    @staticmethod
    def xor_block(x: int) -> int:
        return (x ^ (x >> 3) ^ 0x5) & 0xFF

    def test_learn_and_pass(self):
        engine = LogicBISTEngine(width=8)
        engine.learn(self.xor_block)
        assert engine.self_test(self.xor_block)

    def test_detects_wrong_block(self):
        engine = LogicBISTEngine(width=8)
        engine.learn(self.xor_block)
        assert not engine.self_test(lambda x: self.xor_block(x) ^ 0x10)

    def test_full_output_stuck_coverage(self):
        engine = LogicBISTEngine(width=8)
        variants = stuck_at_output_variants(self.xor_block, 8)
        coverage = engine.fault_coverage(self.xor_block, variants)
        assert all(coverage.values())
        assert len(coverage) == 16

    def test_patterns_deterministic_and_bounded(self):
        engine = LogicBISTEngine(width=8, n_patterns=100)
        pats = engine.patterns()
        assert pats == engine.patterns()
        assert len(pats) == 100
        assert all(0 <= p < 256 for p in pats)

    def test_self_test_without_golden_rejected(self):
        with pytest.raises(RuntimeError):
            LogicBISTEngine(width=8).self_test(self.xor_block)

    def test_session_passed_without_expected_rejected(self):
        session = LogicBISTEngine(width=8).run(self.xor_block)
        with pytest.raises(RuntimeError):
            _ = session.passed

    def test_validation(self):
        with pytest.raises(ValueError):
            LogicBISTEngine(width=1)
        with pytest.raises(ValueError):
            LogicBISTEngine(width=8, n_patterns=0)
        with pytest.raises(ValueError):
            stuck_at_output_variants(self.xor_block, 0)

    def test_adc_level_sensor_encoder_under_bist(self):
        """Wrap a real digital sub-function: the level sensor's 2-bit
        encoder (00/01/11 from two comparator bits)."""
        def encoder(x: int) -> int:
            low, high = x & 1, (x >> 1) & 1
            return (high << 1) | (low | high)  # force consistency
        engine = LogicBISTEngine(width=2, n_patterns=16)
        engine.learn(encoder)
        assert engine.self_test(encoder)
        assert not engine.self_test(lambda x: 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 7), st.integers(0, 1))
def test_bist_engine_detects_any_single_output_stuck(bit, value):
    def block(x: int) -> int:
        return (3 * x + 1) & 0xFF
    engine = LogicBISTEngine(width=8)
    engine.learn(block)
    mask = 1 << bit
    if value:
        faulty = lambda x: block(x) | mask
    else:
        faulty = lambda x: block(x) & ~mask
    # a stuck output is detected unless the block already always drives
    # that bit to the stuck value (then it is redundant, not a fault)
    outputs = [block(p) for p in engine.patterns()]
    redundant = all((o >> bit) & 1 == value for o in outputs)
    assert engine.self_test(faulty) == redundant
