"""Tests for the digital DfT substrate: MISR, scan, test bus, counter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dft import (
    BusTransaction,
    CounterMacro,
    MISR,
    ScanChain,
    ScanRegister,
    SerialTestBus,
    SignatureRegister,
)


class TestMISR:
    def test_deterministic(self):
        words = [3, 1, 4, 1, 5, 9, 2, 6]
        a = MISR(16).compact(words)
        b = MISR(16).compact(words)
        assert a == b

    def test_sensitive_to_single_bit(self):
        words = [3, 1, 4, 1, 5, 9, 2, 6]
        altered = list(words)
        altered[3] ^= 1
        assert MISR(16).compact(words) != MISR(16).compact(altered)

    def test_sensitive_to_order(self):
        assert MISR(16).compact([1, 2]) != MISR(16).compact([2, 1])

    def test_reset(self):
        m = MISR(16)
        m.compact([1, 2, 3])
        m.reset()
        assert m.state == 0
        assert m.n_clocked == 0

    def test_word_masked_to_width(self):
        m = MISR(4)
        m.clock(0xFF)
        assert m.state < 16

    def test_signature_hex_width(self):
        m = MISR(16)
        m.compact([12345])
        assert len(m.signature_hex()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MISR(1)
        with pytest.raises(ValueError):
            MISR(16, seed=1 << 16)
        with pytest.raises(ValueError):
            MISR(16, taps=(0,))
        with pytest.raises(ValueError):
            MISR(13)  # no default taps

    def test_zero_stream_nonzero_signature_with_seed(self):
        m = MISR(8, seed=0x5A)
        sig = m.compact([0] * 20)
        # seeded register cycles even on zero input
        assert m.n_clocked == 20


class TestSignatureRegister:
    def test_learn_then_check(self):
        golden = [10, 20, 30, 40]
        reg = SignatureRegister(16)
        reg.learn(golden)
        assert reg.check(golden)
        assert not reg.check([10, 20, 31, 40])

    def test_check_without_learn(self):
        with pytest.raises(RuntimeError):
            SignatureRegister(16).check([1])

    def test_explicit_expected(self):
        expected = MISR(16).compact([7, 7])
        reg = SignatureRegister(16, expected=expected)
        assert reg.check([7, 7])

    def test_aliasing_probability(self):
        assert SignatureRegister(16).aliasing_probability() == pytest.approx(2 ** -16)


class TestScan:
    def test_register_parallel_load_and_value(self):
        r = ScanRegister(8)
        r.load(0xA5)
        assert r.value == 0xA5

    def test_register_load_overflow(self):
        with pytest.raises(ValueError):
            ScanRegister(4).load(16)

    def test_register_shift_lsb_first(self):
        r = ScanRegister(4)
        r.load(0b0001)
        out = r.shift(0)
        assert out == 1
        assert r.value == 0b0000

    def test_chain_length(self):
        chain = ScanChain([ScanRegister(4), ScanRegister(8)])
        assert chain.length == 12

    def test_chain_shift_through(self):
        """A bit shifted in emerges after `length` clocks."""
        chain = ScanChain([ScanRegister(3), ScanRegister(3)])
        outs = chain.shift_in([1] + [0] * 6)
        assert outs[:6] == [0, 0, 0, 0, 0, 0]
        assert outs[6] == 1

    def test_chain_roundtrip(self):
        chain = ScanChain([ScanRegister(4), ScanRegister(4)])
        pattern = [1, 0, 1, 1, 0, 0, 1, 0]
        chain.load_serial(pattern)
        captured = chain.capture_serial()
        assert captured == pattern

    def test_chain_functional_capture(self):
        chain = ScanChain([ScanRegister(4), ScanRegister(4)])
        chain.load_values([0x3, 0xC])
        assert chain.values() == [0x3, 0xC]

    def test_chain_validation(self):
        with pytest.raises(ValueError):
            ScanChain([])
        chain = ScanChain([ScanRegister(4)])
        with pytest.raises(ValueError):
            chain.load_serial([1, 0])
        with pytest.raises(ValueError):
            chain.load_values([1, 2])


class TestSerialBus:
    def make_bus(self):
        bus = SerialTestBus()
        bus.attach_register(0x10, initial=0)
        return bus

    def test_write_read_roundtrip(self):
        bus = self.make_bus()
        bus.write(0x10, 0x1234)
        assert bus.read(0x10) == 0x1234

    def test_write_hook_fires(self):
        bus = SerialTestBus()
        seen = []
        bus.attach_register(0x01, on_write=seen.append)
        bus.write(0x01, 99)
        assert seen == [99]

    def test_read_hook_refreshes(self):
        bus = SerialTestBus()
        bus.attach_register(0x02, on_read=lambda: 0xBEEF)
        assert bus.read(0x02) == 0xBEEF

    def test_unknown_address(self):
        with pytest.raises(KeyError):
            self.make_bus().read(0x99)

    def test_log_and_wire_accounting(self):
        bus = self.make_bus()
        bus.write(0x10, 1)
        bus.read(0x10)
        assert len(bus.log) == 2
        assert bus.wire_bits == 2 * (1 + 8 + 1 + 16 + 1)

    def test_frame_serialization_roundtrip(self):
        bus = self.make_bus()
        txn = bus.write(0x10, 0xCAFE)
        bits = bus.serialize(txn)
        addr, write, data = SerialTestBus.deserialize(bits)
        assert (addr, write, data) == (0x10, True, 0xCAFE)

    def test_frame_parity_detects_corruption(self):
        bus = self.make_bus()
        bits = bus.serialize(bus.write(0x10, 0xCAFE))
        bits[5] ^= 1
        with pytest.raises(ValueError):
            SerialTestBus.deserialize(bits)

    def test_frame_bad_length(self):
        with pytest.raises(ValueError):
            SerialTestBus.deserialize([1, 0, 1])


class TestCounter:
    def test_counts_up(self):
        c = CounterMacro(width=8)
        for _ in range(5):
            c.clock()
        assert c.count == 5

    def test_enable_gates(self):
        c = CounterMacro(width=8)
        c.clock(enable=False)
        assert c.count == 0

    def test_overflow_wraps_and_flags(self):
        c = CounterMacro(width=3)
        for _ in range(9):
            c.clock()
        assert c.overflowed
        assert c.count == 1

    def test_run_for_seconds(self):
        c = CounterMacro(width=16, clock_hz=100e3)
        c.run_for(1e-3)
        assert c.count == 100

    def test_stuck_bit_forces_value(self):
        c = CounterMacro(width=8)
        c.stuck_bits[0] = 0  # LSB stuck at 0: all odd counts impossible
        values = c.sequence(10)
        assert all(v % 2 == 0 for v in values)

    def test_stuck_bit_high(self):
        c = CounterMacro(width=8)
        c.stuck_bits[2] = 1
        values = c.sequence(10)
        assert all(v & 0b100 for v in values)

    def test_count_until(self):
        c = CounterMacro(width=8)
        cycles = c.count_until(lambda n: n >= 10)
        assert cycles == 10

    def test_count_until_timeout(self):
        from repro.errors import CounterTimeout
        c = CounterMacro(width=4)
        with pytest.raises(CounterTimeout):
            c.count_until(lambda n: False, max_cycles=20)
        # compat: CounterTimeout still is-a TimeoutError
        with pytest.raises(TimeoutError):
            CounterMacro(width=4).count_until(lambda n: False, max_cycles=20)

    def test_time_to_count(self):
        c = CounterMacro(clock_hz=100e3)
        assert c.time_to_count(100) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterMacro(width=0)
        with pytest.raises(ValueError):
            CounterMacro(clock_hz=0)
        with pytest.raises(ValueError):
            CounterMacro().run_for(-1.0)


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=64))
def test_misr_property_deterministic(words):
    assert MISR(16).compact(words) == MISR(16).compact(words)


@given(st.lists(st.integers(0, 0xFFFF), min_size=2, max_size=32),
       st.integers(0, 30), st.integers(0, 15))
def test_misr_detects_single_bit_flip(words, pos, bit):
    pos = pos % len(words)
    altered = list(words)
    altered[pos] ^= (1 << bit)
    assert MISR(16).compact(words) != MISR(16).compact(altered)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=48))
def test_scan_chain_is_fifo(bits):
    chain = ScanChain([ScanRegister(6), ScanRegister(6)])
    padded = bits + [0] * chain.length
    outs = chain.shift_in(padded)
    assert outs[chain.length:] == bits
