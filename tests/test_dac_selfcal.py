"""Tests for the DAC macro, loopback BIST and self-calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import (
    CalibratedADC,
    DualSlopeADC,
    LoopbackTest,
    R2RDAC,
    SelfCalibration,
    calibration_improvement,
    dac_characterization,
)
from repro.adc.calibration import ADCCalibration


class TestR2RDAC:
    def test_endpoints(self):
        dac = R2RDAC(n_bits=8, full_scale_v=2.5)
        assert dac.convert(0) == pytest.approx(0.0)
        assert dac.convert(255) == pytest.approx(2.5 - dac.lsb_v, rel=1e-9)

    def test_lsb_step(self):
        dac = R2RDAC(n_bits=8)
        assert dac.convert(1) - dac.convert(0) == pytest.approx(dac.lsb_v)

    def test_binary_weighting(self):
        dac = R2RDAC(n_bits=8)
        assert dac.convert(128) == pytest.approx(2 * dac.convert(64),
                                                 rel=1e-9)

    def test_ideal_is_perfectly_linear(self):
        ch = dac_characterization(R2RDAC())
        assert ch.max_inl_lsb < 1e-9
        assert ch.max_dnl_lsb < 1e-9

    def test_msb_mismatch_creates_dnl_at_midscale(self):
        dac = R2RDAC(n_bits=8)
        dac.bit_mismatch[7] = 0.02
        ch = dac_characterization(dac)
        # the major-carry transition (127 -> 128) carries the error
        assert ch.max_dnl_lsb > 1.0
        idx = int(np.argmax(np.abs(ch.dnl_lsb)))
        assert idx == 127

    def test_large_negative_mismatch_breaks_monotonicity(self):
        dac = R2RDAC(n_bits=8)
        dac.bit_mismatch[7] = -0.02   # light MSB: 128 < 127
        assert not dac.is_monotonic()

    def test_offset_and_gain(self):
        dac = R2RDAC(n_bits=8)
        dac.offset_v = 0.1
        dac.gain = 1.1
        assert dac.convert(0) == pytest.approx(0.1)
        assert dac.convert(100) == pytest.approx(0.1 + 1.1 * 100 * dac.lsb_v)

    def test_stuck_bit(self):
        dac = R2RDAC(n_bits=8)
        dac.stuck_bits[0] = 1
        assert dac.convert(0) == pytest.approx(dac.lsb_v)
        assert dac.convert(2) == pytest.approx(3 * dac.lsb_v)

    def test_code_range_validation(self):
        dac = R2RDAC(n_bits=4)
        with pytest.raises(ValueError):
            dac.convert(16)
        with pytest.raises(ValueError):
            dac.convert(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            R2RDAC(n_bits=1)
        with pytest.raises(ValueError):
            R2RDAC(full_scale_v=0.0)

    def test_copy_independent(self):
        dac = R2RDAC()
        dup = dac.copy()
        dup.bit_mismatch[3] = 0.5
        dup.stuck_bits[1] = 0
        assert dac.bit_mismatch[3] == 0.0
        assert not dac.stuck_bits


class TestLoopback:
    @pytest.fixture(scope="class")
    def adc(self):
        return DualSlopeADC()

    def test_healthy_pair_passes(self, adc):
        report = LoopbackTest(tolerance=3).run(R2RDAC(), adc)
        assert report.passed
        assert report.monotonic

    def test_dac_stuck_bit_fails(self, adc):
        dac = R2RDAC()
        dac.stuck_bits[6] = 0
        report = LoopbackTest(tolerance=3).run(dac, adc)
        assert not report.passed

    def test_adc_fault_fails(self, adc):
        broken = adc.copy()
        broken.integrator.gain = 0.7
        report = LoopbackTest(tolerance=3).run(R2RDAC(), broken)
        assert not report.passed

    def test_dac_gain_fault_fails(self, adc):
        dac = R2RDAC()
        dac.gain = 0.85
        report = LoopbackTest(tolerance=3).run(dac, adc)
        assert not report.passed

    def test_report_lengths(self, adc):
        report = LoopbackTest(n_points=16, tolerance=3).run(R2RDAC(), adc)
        assert len(report.dac_codes) == 16
        assert len(report.adc_codes) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopbackTest(n_points=2)
        with pytest.raises(ValueError):
            LoopbackTest(tolerance=-1)


class TestSelfCalibration:
    def test_calibration_never_hurts_linear(self):
        raw, calibrated = calibration_improvement(DualSlopeADC(),
                                                  use_inl_table=False)
        assert calibrated <= raw + 0.51   # rounding slack

    def test_inl_table_fixes_bowed_device(self):
        bad = DualSlopeADC(ADCCalibration(comparator_offset_v=30e-3,
                                          cap_voltage_coeff=0.08))
        raw, calibrated = calibration_improvement(bad, use_inl_table=True)
        assert raw >= 2.5
        assert calibrated <= 1.5

    def test_calibrated_adc_interface(self):
        calibrated = SelfCalibration(use_inl_table=True).calibrate(
            DualSlopeADC())
        assert isinstance(calibrated, CalibratedADC)
        code = calibrated.code_of(1.25)
        assert abs(code - 50) <= 1
        dup = calibrated.copy()
        assert dup.code_of(1.25) == code

    def test_table_describe(self):
        table = SelfCalibration().fit(
            SelfCalibration().measure(DualSlopeADC()))
        assert "offset" in table.describe()

    def test_offset_correction_direction(self):
        """A device reading consistently low must be corrected upward."""
        from repro.adc.selfcal import CalibrationTable
        table = CalibrationTable(offset_lsb=-2.0, gain_factor=1.0)
        # raw codes read 2 LSB low -> corrected = raw - 2?? No: offset
        # here is the measured transition offset; raw = ideal - offset,
        # so corrected = raw + offset.
        assert table.correct(50) == 48


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 255))
def test_dac_ideal_code_roundtrip(code):
    dac = R2RDAC(n_bits=8)
    v = dac.convert(code)
    assert int(round(v / dac.lsb_v)) == code
