"""Tests for MNA internals, element edge cases and result plumbing."""

import numpy as np
import pytest

from repro.spice import Circuit, Switch, VCVS, dc_operating_point, transient
from repro.spice.elements import Capacitor, Resistor, evaluate_source
from repro.spice.mna import Assembler, MNASystem
from repro.signals import Waveform


class TestMNASystem:
    def test_conductance_stamp_symmetry(self):
        sys = MNASystem(3)
        sys.add_conductance(0, 1, 2.0)
        assert sys.g[0, 0] == 2.0
        assert sys.g[1, 1] == 2.0
        assert sys.g[0, 1] == -2.0
        assert sys.g[1, 0] == -2.0

    def test_ground_index_skipped(self):
        sys = MNASystem(2)
        sys.add_conductance(-1, 0, 5.0)
        assert sys.g[0, 0] == 5.0
        assert np.count_nonzero(sys.g) == 1

    def test_current_stamp_signs(self):
        sys = MNASystem(2)
        sys.add_current(0, 1, 1e-3)   # flows 0 -> 1
        assert sys.b[0] == -1e-3
        assert sys.b[1] == 1e-3

    def test_transconductance_stamp(self):
        sys = MNASystem(4)
        sys.add_transconductance(0, 1, 2, 3, 1e-3)
        assert sys.g[0, 2] == 1e-3
        assert sys.g[0, 3] == -1e-3
        assert sys.g[1, 2] == -1e-3
        assert sys.g[1, 3] == 1e-3

    def test_reset_clears(self):
        sys = MNASystem(2)
        sys.add_conductance(0, 1, 1.0)
        sys.add_b(0, 1.0)
        sys.reset()
        assert not sys.g.any()
        assert not sys.b.any()


class TestAssembler:
    def test_branch_offsets_after_nodes(self):
        ckt = Circuit("two_sources")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.vsource("V2", "b", "0", 2.0)
        ckt.resistor("R1", "a", "b", 1e3)
        asm = Assembler(ckt)
        assert asm.n == 4  # 2 nodes + 2 branches
        assert ckt.element("V1").branch_index() == 2
        assert ckt.element("V2").branch_index() == 3

    def test_voltages_dict_includes_ground(self):
        ckt = Circuit("v")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        asm = Assembler(ckt)
        volts = asm.voltages(np.array([1.0, -1e-3]))
        assert volts["0"] == 0.0
        assert volts["a"] == 1.0


class TestElementEdgeCases:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor("R", "a", "b", 0.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Capacitor("C", "a", "b", -1e-12)

    def test_switch_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Switch("S", "a", "b", "c", "d", r_on=0.0)
        with pytest.raises(ValueError):
            Switch("S", "a", "b", "c", "d", transition=0.0)

    def test_evaluate_source_kinds(self):
        assert evaluate_source(2.5, 0.0) == 2.5
        assert evaluate_source(lambda t: 2 * t, 3.0) == 6.0
        wave = Waveform([0.0, 1.0], 1.0)
        assert evaluate_source(wave, 0.5) == pytest.approx(0.5)

    def test_vcvs_in_feedback(self):
        """Ideal op-amp: VCVS with huge gain in inverting configuration."""
        ckt = Circuit("inv_amp")
        ckt.vsource("VIN", "in", "0", 1.0)
        ckt.resistor("R1", "in", "sum", 1e3)
        ckt.resistor("R2", "sum", "out", 2e3)
        ckt.vcvs("E1", "out", "0", "0", "sum", 1e6)  # out = -A*v(sum)
        v, _ = dc_operating_point(ckt)
        assert v["out"] == pytest.approx(-2.0, rel=1e-3)

    def test_switch_transition_region_is_monotone(self):
        sw = Switch("S", "a", "b", "c", "d", v_on=2.5, transition=0.2)
        ctrl = np.linspace(2.0, 3.0, 50)
        g = [sw._conductance(v) for v in ctrl]
        assert all(b >= a for a, b in zip(g, g[1:]))

    def test_describe_methods(self):
        ckt = Circuit("desc")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.isource("I1", "a", "0", 1e-3)
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.capacitor("C1", "a", "0", 1e-12)
        text = ckt.summary()
        for token in ("V V1", "I I1", "R R1", "C C1"):
            assert token in text


class TestCircuitContainer:
    def test_remove_element(self):
        ckt = Circuit("rm")
        ckt.resistor("R1", "a", "0", 1e3)
        ckt.remove("R1")
        assert not ckt.has_element("R1")
        assert ckt.nodes() == []

    def test_element_lookup_error(self):
        with pytest.raises(KeyError):
            Circuit("x").element("nope")

    def test_remove_missing_error(self):
        with pytest.raises(KeyError):
            Circuit("x").remove("nope")

    def test_system_size(self):
        ckt = Circuit("sz")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.vcvs("E1", "b", "0", "a", "0", 2.0)
        ckt.resistor("R1", "b", "0", 1e3)
        assert ckt.system_size() == 4  # a, b + 2 branches

    def test_merge_ground_not_prefixed(self):
        sub = Circuit("cell")
        sub.resistor("R1", "x", "0", 1e3)
        top = Circuit("top")
        top.vsource("V1", "in", "0", 1.0)
        top.merge(sub, prefix="u1_", node_map={"x": "in"})
        assert "0" not in [n for n in top.nodes()]
        v, _ = dc_operating_point(top)
        assert v["in"] == 1.0


class TestTrapezoidalConsistency:
    def test_trap_conserves_rc_energy_better(self):
        """Trapezoidal tracks the analytic RC discharge closely."""
        ckt = Circuit("rc")
        ckt.vsource("VS", "a", "0", 0.0)
        ckt.resistor("R1", "a", "b", 1e3)
        ckt.capacitor("C1", "b", "0", 1e-6, ic=5.0)
        res = transient(ckt, t_stop=3e-3, dt=20e-6, method="trap", uic=True)
        wave = res["b"]
        tau = 1e-3
        expected = 5.0 * np.exp(-wave.times / tau)
        assert np.allclose(wave.values, expected, atol=0.05)
