"""Tests for the on-chip BIST macros and controller."""

import numpy as np
import pytest

from repro.adc import DualSlopeADC
from repro.adc.control import ControlState
from repro.core import (
    ADC_PARTITION,
    BISTController,
    CompressedTest,
    DCLevelSensor,
    DigitalTestMonitor,
    MonotonicityBIST,
    PAPER_STEP_LEVELS,
    RampGeneratorMacro,
    StepGeneratorMacro,
    bist_overhead,
)
from repro.core.partition import partition_by_name
from repro.signals import Waveform


@pytest.fixture
def adc():
    return DualSlopeADC()


class TestStepGenerator:
    def test_paper_levels(self):
        gen = StepGeneratorMacro()
        assert gen.levels == PAPER_STEP_LEVELS
        assert gen.all_outputs() == list(PAPER_STEP_LEVELS)

    def test_level_errors_applied(self):
        gen = StepGeneratorMacro(levels=(1.0, 2.0),
                                 level_errors_v=(0.01, -0.02))
        assert gen.output(0) == pytest.approx(1.01)
        assert gen.output(1) == pytest.approx(1.98)

    def test_accuracy_check(self):
        gen = StepGeneratorMacro(levels=(1.0,), accuracy_v=5e-3,
                                 level_errors_v=(0.01,))
        assert not gen.within_accuracy()

    def test_staircase_covers_all_levels(self):
        gen = StepGeneratorMacro()
        stair = gen.staircase(dwell_s=1e-3, dt=1e-4)
        for i, level in enumerate(gen.levels):
            assert stair.value_at((i + 0.5) * 1e-3) == pytest.approx(level)

    def test_step_waveform_settles(self):
        gen = StepGeneratorMacro(settle_time_s=50e-6)
        wave = gen.step_waveform(5, duration=1e-3, dt=1e-6)
        assert wave.value_at(0.5e-3) == pytest.approx(2.5)
        assert wave.value_at(10e-6) < 2.5

    def test_bad_index(self):
        with pytest.raises(IndexError):
            StepGeneratorMacro().output(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepGeneratorMacro(levels=())
        with pytest.raises(ValueError):
            StepGeneratorMacro(level_errors_v=(0.0,))


class TestRampGenerator:
    def test_endpoints(self):
        ramp = RampGeneratorMacro()
        assert ramp.value_at(0.0) == pytest.approx(0.0)
        assert ramp.value_at(1.0) == pytest.approx(2.5)
        assert ramp.value_at(2.0) == pytest.approx(2.5)  # held

    def test_six_measurement_points(self):
        points = RampGeneratorMacro().measurement_points(6)
        assert len(points) == 6
        times = [t for t, _ in points]
        assert times == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])

    def test_gain_error_scales_slope(self):
        ramp = RampGeneratorMacro(gain_error=0.1)
        assert ramp.value_at(1.0) == pytest.approx(2.75)

    def test_offset(self):
        ramp = RampGeneratorMacro(offset_v=0.1)
        assert ramp.value_at(0.0) == pytest.approx(0.1)

    def test_nonlinearity_bows_midpoint(self):
        ramp = RampGeneratorMacro(nonlinearity=0.01)
        mid = ramp.value_at(0.5)
        assert mid > 1.25

    def test_waveform(self):
        wave = RampGeneratorMacro().waveform(dt=1e-2)
        assert wave.values[-1] == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RampGeneratorMacro(period_s=0.0)
        with pytest.raises(ValueError):
            RampGeneratorMacro().measurement_points(1)


class TestLevelSensor:
    def test_windows(self):
        s = DCLevelSensor()
        assert s.code(1.0) == 0b00
        assert s.code(2.5) == 0b01
        assert s.code(4.0) == 0b11

    def test_window_names(self):
        s = DCLevelSensor()
        assert s.window(1.0) == "below"
        assert s.window(2.5) == "inside"
        assert s.window(4.5) == "above"

    def test_classify_peak(self):
        s = DCLevelSensor()
        wave = Waveform([0.5, 3.5, 1.0], 1.0)
        assert s.classify_peak(wave) == 0b01

    def test_consistency_check(self):
        s = DCLevelSensor()
        assert s.is_consistent(0b01)
        assert not s.is_consistent(0b10)

    def test_threshold_order_enforced(self):
        with pytest.raises(ValueError):
            DCLevelSensor(low_threshold_v=3.0, high_threshold_v=2.0)


class TestDigitalMonitor:
    def test_quantize_to_clock(self):
        mon = DigitalTestMonitor(clock_hz=100e3)
        assert mon.quantize(2.607e-3) == pytest.approx(2.60e-3)
        assert mon.resolution_s == pytest.approx(10e-6)

    def test_run_on_healthy_adc_passes(self, adc):
        report = DigitalTestMonitor().run(adc)
        assert report.passed
        assert report.max_conversion_time_s <= 5.6e-3
        assert report.fall_time_delta_s == pytest.approx(10e-6, abs=1e-9)
        assert report.mv_per_code == pytest.approx(10.0, rel=0.01)

    def test_stuck_control_fails(self, adc):
        broken = adc.copy()
        broken.control.stuck_state = ControlState.DEINTEGRATE
        report = DigitalTestMonitor().run(broken)
        assert not report.completed_all or not report.conversion_time_ok

    def test_dead_integrator_fails_fall_time(self, adc):
        broken = adc.copy()
        broken.integrator.enabled = False
        delta, mv = DigitalTestMonitor().fall_time_lsb_check(broken)
        assert delta is None and mv is None


class TestCompressedTest:
    def test_healthy_passes(self, adc):
        report = CompressedTest().run(adc)
        assert report.passed
        assert report.digital_ok and report.analog_ok

    def test_gross_gain_fault_fails(self, adc):
        broken = adc.copy()
        broken.integrator.gain = 0.5
        report = CompressedTest().run(broken)
        assert not report.passed

    def test_codes_mode_is_stricter(self, adc):
        """Raw-code compaction flags even a 1-code shift."""
        strict = CompressedTest(mode="codes", tolerance_codes=0)
        healthy_sig = strict.run(adc).digital_signature
        shifted = adc.copy()
        shifted.comparator.offset_v += adc.cal.lsb_v  # ~1 code shift
        assert strict.run(shifted).digital_signature != healthy_sig

    def test_window_mode_tolerates_small_shift(self, adc):
        test = CompressedTest(mode="window", tolerance_codes=2)
        shifted = adc.copy()
        shifted.comparator.offset_v += adc.cal.lsb_v
        assert test.run(shifted).digital_ok

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressedTest(mode="magic")
        with pytest.raises(ValueError):
            CompressedTest(tolerance_codes=-1)


class TestMonotonicityBIST:
    def test_healthy_adc_monotonic(self, adc):
        report = MonotonicityBIST(samples=128).run(adc)
        assert report.monotonic
        assert report.passed

    def test_healthy_adc_no_missing_codes_when_densely_sampled(self, adc):
        # ~6 ramp samples per code: every (narrow but present) code shows
        report = MonotonicityBIST(samples=600).run(adc)
        assert not report.missed_codes

    def test_latch_fault_breaks_monotonicity(self, adc):
        broken = adc.copy()
        broken.latch.stuck_bits[3] = 0
        report = MonotonicityBIST(samples=128).run(broken)
        assert not report.monotonic or report.missed_codes

    def test_validation(self):
        with pytest.raises(ValueError):
            MonotonicityBIST(samples=2)

    def test_summary(self, adc):
        assert "PASS" in MonotonicityBIST(samples=64).run(adc).summary()


class TestPartitionAudit:
    def test_paper_overheads_match(self):
        audit = bist_overhead()
        assert audit.analog_total == 152
        assert audit.digital_total == 484
        assert audit.analog_ok and audit.digital_ok

    def test_adc_partitions_present(self):
        names = {p.name for p in ADC_PARTITION}
        assert names == {"integrator", "comparator", "counter",
                         "output_latch", "control"}

    def test_partition_lookup(self):
        p = partition_by_name("integrator")
        assert "linearity" in p.fault_signature
        with pytest.raises(KeyError):
            partition_by_name("dac")

    def test_overhead_fraction_sensible(self):
        audit = bist_overhead()
        assert 0.3 < audit.overhead_fraction < 1.0


class TestBISTController:
    def test_healthy_device_passes_all(self, adc):
        report = BISTController().run_all(adc)
        assert report.analog.passed
        assert report.digital.passed
        assert report.compressed.passed
        assert report.passed

    def test_fall_time_table_matches_expected(self, adc):
        report = BISTController().run_analog(adc)
        for meas, exp in zip(report.fall_times_s,
                             report.expected_fall_times_s):
            assert meas == pytest.approx(exp, abs=0.02e-3)

    def test_dead_integrator_fails_analog(self, adc):
        broken = adc.copy()
        broken.integrator.enabled = False
        assert not BISTController().run_analog(broken).passed

    def test_stuck_control_fails_digital(self, adc):
        broken = adc.copy()
        broken.control.stuck_state = ControlState.AUTOZERO
        assert not BISTController().run_digital(broken).passed

    def test_quick_pass_predicate(self, adc):
        ctrl = BISTController()
        assert ctrl.quick_pass(adc)
        broken = adc.copy()
        broken.integrator.gain = 0.3
        assert not ctrl.quick_pass(broken)

    def test_report_summary_text(self, adc):
        s = BISTController().run_all(adc).summary()
        assert "PASS" in s
