"""Tests for the level-1 MOSFET model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spice import Circuit, MOSFET, MOSParams, NMOS_5U, PMOS_5U, dc_operating_point


def nmos(w=10e-6, l=5e-6, params=NMOS_5U):
    return MOSFET("M1", "d", "g", "s", params, w=w, l=l)


class TestRegions:
    def test_cutoff(self):
        m = nmos()
        assert m.operating_region(5.0, 0.5, 0.0) == "cutoff"
        ids, *_ = m._small_signal(5.0, 0.5, 0.0)
        # only the ohmic leakage remains in cutoff
        assert ids == pytest.approx(m.params.g_leak * 5.0)

    def test_saturation_current(self):
        m = nmos()
        vgs, vds = 2.0, 5.0
        ids, *_ = m._small_signal(vds, vgs, 0.0)
        beta = m.beta
        expected = 0.5 * beta * (vgs - 1.0) ** 2 * (1 + 0.02 * vds) \
            + m.params.g_leak * vds
        assert ids == pytest.approx(expected, rel=1e-9)
        assert m.operating_region(vds, vgs, 0.0) == "saturation"

    def test_triode_current(self):
        m = nmos()
        vgs, vds = 3.0, 0.5
        ids, *_ = m._small_signal(vds, vgs, 0.0)
        beta = m.beta
        expected = beta * ((vgs - 1.0) * vds - vds ** 2 / 2) \
            * (1 + 0.02 * vds) + m.params.g_leak * vds
        assert ids == pytest.approx(expected, rel=1e-9)
        assert m.operating_region(vds, vgs, 0.0) == "triode"

    def test_current_continuous_at_sat_boundary(self):
        m = nmos()
        vgs = 2.5
        vov = vgs - 1.0
        below, *_ = m._small_signal(vov - 1e-9, vgs, 0.0)
        above, *_ = m._small_signal(vov + 1e-9, vgs, 0.0)
        assert below == pytest.approx(above, rel=1e-6)

    def test_symmetric_swap(self):
        """Drain/source exchange negates the current."""
        m = nmos()
        fwd, *_ = m._small_signal(2.0, 3.0, 0.0)
        # now bias the 'drain' below the 'source'
        rev, *_ = m._small_signal(0.0, 3.0, 2.0)
        assert rev == pytest.approx(-fwd, rel=1e-9)

    def test_pmos_mirror_of_nmos(self):
        n = nmos(params=NMOS_5U)
        p = MOSFET("MP", "d", "g", "s",
                   MOSParams(polarity=-1, vto=1.0, kp=NMOS_5U.kp, lam=0.02))
        i_n, *_ = n._small_signal(2.0, 3.0, 0.0)
        i_p, *_ = p._small_signal(-2.0, -3.0, 0.0)
        assert i_p == pytest.approx(-i_n, rel=1e-9)

    def test_pmos_conducts_with_low_gate(self):
        p = MOSFET("MP", "d", "g", "s", PMOS_5U)
        # source at 5 V, gate low, drain at 2.5: |vgs|=5 > vth
        ids, *_ = p._small_signal(2.5, 0.0, 5.0)
        assert ids < 0  # current flows source->drain (into drain is negative)


class TestDerivatives:
    @pytest.mark.parametrize("vd,vg,vs", [
        (5.0, 2.0, 0.0),    # saturation
        (0.3, 3.0, 0.0),    # triode
        (0.0, 3.0, 2.0),    # swapped
        (5.0, 0.5, 0.0),    # cutoff
        (2.0, 2.5, 1.0),    # source lifted
    ])
    def test_jacobian_matches_finite_difference(self, vd, vg, vs):
        m = nmos()
        i0, di_dd, di_dg, di_ds = m._small_signal(vd, vg, vs)
        h = 1e-7
        for idx, (analytic) in enumerate((di_dd, di_dg, di_ds)):
            v = [vd, vg, vs]
            v[idx] += h
            i1, *_ = m._small_signal(*v)
            v[idx] -= 2 * h
            i2, *_ = m._small_signal(*v)
            numeric = (i1 - i2) / (2 * h)
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-12)

    def test_kcl_consistency(self):
        """Sum of terminal-current derivatives must vanish (gate draws
        no DC current, so di/dvd + di/dvg + di/dvs = 0)."""
        m = nmos()
        _, dd, dg, ds = m._small_signal(3.0, 2.5, 0.5)
        assert dd + dg + ds == pytest.approx(0.0, abs=1e-15)


class TestInCircuit:
    def test_diode_connected_drop(self):
        """A diode-connected NMOS fed by a current source settles at
        vgs = vth + sqrt(2 I / beta) (approximately, lambda small)."""
        ckt = Circuit("diode")
        ckt.vsource("VDD", "vdd", "0", 5.0)
        ckt.isource("IB", "vdd", "d", 20e-6)
        ckt.nmos("M1", "d", "d", "0", w=10e-6, l=5e-6)
        v, _ = dc_operating_point(ckt)
        beta = 20e-6 * 2.0
        expected = 1.0 + np.sqrt(2 * 20e-6 / beta)
        assert v["d"] == pytest.approx(expected, abs=0.05)

    def test_current_mirror_copies(self):
        from repro.circuits.library import current_mirror_circuit
        ckt = current_mirror_circuit(i_ref=20e-6, ratio=1.0)
        v, _ = dc_operating_point(ckt)
        i_out = (5.0 - v["load"]) / 50e3
        assert i_out == pytest.approx(20e-6, rel=0.1)

    def test_mirror_ratio_scales(self):
        from repro.circuits.library import current_mirror_circuit
        ckt = current_mirror_circuit(i_ref=10e-6, ratio=2.0)
        v, _ = dc_operating_point(ckt)
        i_out = (5.0 - v["load"]) / 50e3
        assert i_out == pytest.approx(20e-6, rel=0.15)

    def test_nmos_inverter_transfer(self):
        """CMOS inverter: output high for low input, low for high input."""
        ckt = Circuit("inv")
        ckt.vsource("VDD", "vdd", "0", 5.0)
        ckt.vsource("VIN", "in", "0", 0.0)
        ckt.nmos("MN", "out", "in", "0")
        ckt.pmos("MP", "out", "in", "vdd", w=25e-6)
        v, _ = dc_operating_point(ckt)
        assert v["out"] > 4.5
        ckt.element("VIN").value = 5.0
        v, _ = dc_operating_point(ckt)
        assert v["out"] < 0.5


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            MOSFET("M", "d", "g", "s", NMOS_5U, w=0.0)
        with pytest.raises(ValueError):
            MOSFET("M", "d", "g", "s", NMOS_5U, l=-1.0)

    def test_clone_preserves(self):
        m = nmos(w=33e-6)
        c = m.clone()
        assert c.w == 33e-6
        assert c.params is m.params

    def test_describe_mentions_type(self):
        assert "NMOS" in nmos().describe()
        assert "PMOS" in MOSFET("P", "d", "g", "s", PMOS_5U).describe()

    def test_params_scaled(self):
        p = NMOS_5U.scaled(vto=0.8)
        assert p.vto == 0.8
        assert p.kp == NMOS_5U.kp


@given(st.floats(0.0, 5.0), st.floats(0.0, 5.0), st.floats(0.0, 5.0))
def test_current_finite_everywhere(vd, vg, vs):
    m = nmos()
    ids, dd, dg, ds = m._small_signal(vd, vg, vs)
    assert np.isfinite([ids, dd, dg, ds]).all()


@given(st.floats(1.1, 5.0), st.floats(0.0, 5.0))
def test_current_sign_follows_vds(vgs, vds):
    """For a conducting NMOS, current direction follows the vds sign."""
    m = nmos()
    fwd, *_ = m._small_signal(vds, vgs, 0.0)
    assert fwd >= 0.0
