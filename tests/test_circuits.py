"""Tests for the transistor-level example circuits (OP1, SC integrator,
library macros)."""

import numpy as np
import pytest

from repro.circuits import (
    OP1_FAULT_NODES,
    comparator_circuit,
    current_mirror_circuit,
    op1_circuit,
    op1_follower,
    op1_open_loop,
    ring_oscillator_circuit,
    sc_integrator_circuit,
    sc_integrator_comparator_circuit,
    voltage_reference_circuit,
)
from repro.circuits.sc_integrator import PAPER_DESIGN
from repro.signals.sources import two_phase_clocks
from repro.spice import Circuit, dc_operating_point, transient


class TestOP1:
    def test_thirteen_transistors(self):
        assert op1_circuit().transistor_count() == 13

    def test_all_paper_nodes_exist(self):
        ckt = op1_circuit()
        nodes = set(ckt.nodes())
        for n in [str(k) for k in range(1, 10)]:
            assert n in nodes
        assert set(OP1_FAULT_NODES) <= nodes

    def test_follower_tracks_input(self):
        for vin in (2.0, 2.5, 3.0, 3.5):
            v, _ = dc_operating_point(op1_follower(input_value=vin))
            assert v["3"] == pytest.approx(vin, abs=0.03)

    def test_follower_clips_outside_range(self):
        v, _ = dc_operating_point(op1_follower(input_value=0.5))
        assert v["3"] > 1.0  # cannot reach 0.5

    def test_follower_settles_after_step(self):
        ckt = op1_follower(
            input_value=lambda t: 2.2 if t < 50e-6 else 3.0)
        res = transient(ckt, t_stop=400e-6, dt=1e-6, record=["3"])
        assert res.final("3") == pytest.approx(3.0, abs=0.05)

    def test_open_loop_is_comparator(self):
        high = op1_open_loop(in_n_value=2.5, input_value=3.0)
        v, _ = dc_operating_point(high)
        assert v["3"] > 4.0
        low = op1_open_loop(in_n_value=2.5, input_value=2.0)
        v, _ = dc_operating_point(low)
        # the PMOS-follower output stage floors around 1.5 V; logic-low
        # is anything clearly below the 2.5 V slicing threshold
        assert v["3"] < 1.8

    def test_bias_current_flows(self):
        """The diode node (4) sits between the rails, i.e. bias is live."""
        v, _ = dc_operating_point(op1_follower(input_value=2.5))
        assert 1.0 < v["4"] < 4.0

    def test_compensation_optional(self):
        ckt = op1_circuit(compensation_f=None)
        assert not any(e.name.endswith("CC") for e in ckt.elements)


class TestSCIntegrator:
    def test_fifteen_transistors(self):
        phi1, phi2 = two_phase_clocks(5e-6, 20e-6, dt=0.1e-6)
        ckt = sc_integrator_circuit(phi1, phi2, 2.0)
        assert ckt.transistor_count() == 15

    def test_circuit2_twenty_eight_transistors(self):
        phi1, phi2 = two_phase_clocks(5e-6, 20e-6, dt=0.1e-6)
        ckt = sc_integrator_comparator_circuit(phi1, phi2, 2.0)
        assert ckt.transistor_count() == 28

    def test_design_constants(self):
        assert PAPER_DESIGN.cap_ratio == 6.8
        assert PAPER_DESIGN.gain_per_cycle == pytest.approx(1 / 6.8)
        assert PAPER_DESIGN.cf_f == pytest.approx(6.8 * PAPER_DESIGN.cs_f)
        assert PAPER_DESIGN.clock_period_s == 5e-6
        assert PAPER_DESIGN.comparator_threshold == 0.64

    @pytest.mark.slow
    def test_integrates_at_designed_rate(self):
        """Transistor-level charge transfer within a few % of 1/6.8."""
        n_cycles = 8
        dt = 50e-9
        dur = n_cycles * 5e-6
        phi1, phi2 = two_phase_clocks(5e-6, dur, dt=dt, non_overlap=0.1)
        ckt = sc_integrator_circuit(phi1, phi2, PAPER_DESIGN.v_ref - 0.5)
        res = transient(ckt, t_stop=dur, dt=dt, record=["out"])
        out = res["out"]
        samples = [out.value_at(k * 5e-6 - 2 * dt)
                   for k in range(2, n_cycles + 1)]
        steps = np.diff(samples)
        gain = float(np.mean(steps)) / 0.5
        assert gain == pytest.approx(1 / 6.8, rel=0.05)


class TestLibraryMacros:
    def test_voltage_reference_accuracy(self):
        ckt = voltage_reference_circuit(2.5)
        v, _ = dc_operating_point(ckt)
        assert v["ref"] == pytest.approx(2.5, abs=0.05)

    def test_voltage_reference_validation(self):
        with pytest.raises(ValueError):
            voltage_reference_circuit(6.0)

    def test_current_mirror_validation(self):
        with pytest.raises(ValueError):
            current_mirror_circuit(i_ref=-1.0)

    def test_ring_oscillator_oscillates(self):
        ckt = ring_oscillator_circuit(n_stages=3)
        res = transient(ckt, t_stop=20e-6, dt=25e-9, record=["osc1"],
                        uic=True)
        wave = res["osc1"].slice_time(5e-6, 20e-6)
        assert wave.peak() - wave.trough() > 3.0  # rail-to-rail swings
        # count rising edges: must toggle repeatedly
        crossings = np.sum(np.diff(wave.values > 2.5).astype(int) == 1)
        assert crossings >= 3

    def test_ring_oscillator_needs_odd_stages(self):
        with pytest.raises(ValueError):
            ring_oscillator_circuit(n_stages=4)

    def test_comparator_macro_slices(self):
        ckt = comparator_circuit(threshold_v=2.0)
        ckt.vsource("VIN_DRV", "in", "0", 3.0)
        v, _ = dc_operating_point(ckt)
        assert v["out"] > 4.0
        ckt.element("VIN_DRV").value = 1.0
        v, _ = dc_operating_point(ckt)
        assert v["out"] < 1.8


class TestNetlistHygiene:
    def test_summary_lists_elements(self):
        text = op1_circuit().summary()
        assert "M1 " in text and "circuit op1" in text

    def test_copy_is_deep_for_elements(self):
        ckt = op1_circuit()
        dup = ckt.copy()
        dup.element("M1").w = 1e-6
        assert ckt.element("M1").w != 1e-6

    def test_all_op1_instances_coexist(self):
        """Two prefixed OP1 instances do not collide."""
        from repro.circuits.op1 import add_op1
        ckt = Circuit("dual")
        ckt.vsource("VDD", "vdd", "0", 5.0)
        ckt.vsource("VA", "a", "0", 2.5)
        ckt.vsource("VB", "b", "0", 2.5)
        add_op1(ckt, "a", "outa", "outa", prefix="x")
        add_op1(ckt, "b", "outb", "outb", prefix="y")
        assert ckt.transistor_count() == 26
        v, _ = dc_operating_point(ckt)
        assert v["outa"] == pytest.approx(2.5, abs=0.05)
        assert v["outb"] == pytest.approx(2.5, abs=0.05)
