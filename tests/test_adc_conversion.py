"""Tests for the composite dual-slope ADC and its characterisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import (
    ADCCalibration,
    ADCCharacterization,
    DualSlopeADC,
    characterize_from_transitions,
    dnl_from_transitions,
    inl_from_transitions,
    ramp_histogram_characterization,
    servo_transition_levels,
    transfer_curve,
)
from repro.adc.calibration import SPEC_MAX_CONVERSION_S
from repro.adc.control import ControlState
from repro.adc.histogram import characterize_servo


@pytest.fixture(scope="module")
def adc():
    return DualSlopeADC()


@pytest.fixture(scope="module")
def ideal_adc():
    cal = ADCCalibration(comparator_offset_v=0.0, cap_voltage_coeff=0.0,
                         counter_inject_v=0.0, deintegrate_gain=1.0)
    return DualSlopeADC(cal)


class TestConversion:
    def test_zero_gives_zero(self, adc):
        assert adc.code_of(0.0) == 0

    def test_full_scale_gives_top_code(self, adc):
        assert adc.code_of(2.5) in (99, 100)

    def test_midscale(self, adc):
        assert adc.code_of(1.25) == pytest.approx(50, abs=1)

    def test_monotonic_transfer(self, adc):
        _, codes = transfer_curve(adc, n_points=120)
        assert np.all(np.diff(codes) >= 0)

    def test_ideal_adc_quantizes_exactly(self, ideal_adc):
        lsb = ideal_adc.cal.lsb_v
        for k in (5, 37, 73):
            v = k * lsb  # mid-tread: k*lsb converts to k
            assert ideal_adc.code_of(v) == k

    def test_conversion_completes_within_spec(self, adc):
        for v in (0.0, 1.0, 2.5):
            trace = adc.convert(v)
            assert trace.completed
            assert trace.conversion_time_s <= SPEC_MAX_CONVERSION_S

    def test_conversion_time_grows_with_input(self, adc):
        t_low = adc.conversion_time(0.2)
        t_high = adc.conversion_time(2.3)
        assert t_high > t_low

    def test_trace_recording(self, adc):
        trace = adc.convert(1.25, record_trace=True)
        assert len(trace.integrator_v) > 100
        assert ControlState.INTEGRATE in trace.states
        assert ControlState.DEINTEGRATE in trace.states
        wave = trace.integrator_waveform(adc.cal.clock_period_s)
        assert wave.peak() == pytest.approx(trace.peak_v, abs=0.05)

    def test_peak_tracks_input(self, adc):
        p1 = adc.convert(1.0).peak_v
        p2 = adc.convert(2.0).peak_v
        assert p2 > p1

    def test_stuck_control_never_completes(self, adc):
        broken = adc.copy()
        broken.control.stuck_state = ControlState.INTEGRATE
        trace = broken.convert(1.0)
        assert not trace.completed

    def test_stuck_comparator_overflows(self, adc):
        broken = adc.copy()
        broken.comparator.stuck_output = 1
        trace = broken.convert(0.5)
        # counter runs to the de-integrate guard
        assert trace.code >= broken.cal.n_codes

    def test_dead_integrator_gives_zero_code(self, adc):
        broken = adc.copy()
        broken.integrator.enabled = False
        # output frozen above baseline? integrator reset puts it at
        # baseline+0.5LSB; comparator sees no discharge
        trace = broken.convert(2.0)
        assert trace.code != adc.code_of(2.0)

    def test_counter_stuck_bit_corrupts_codes(self, adc):
        broken = adc.copy()
        broken.counter.stuck_bits[1] = 0
        codes = {broken.code_of(v) for v in np.linspace(0.1, 2.4, 20)}
        assert all((c >> 1) & 1 == 0 for c in codes)

    def test_latch_stuck_bit_biases_output(self, adc):
        broken = adc.copy()
        broken.latch.stuck_bits[6] = 1
        assert broken.code_of(0.2) >= 64

    def test_copy_isolated(self, adc):
        dup = adc.copy()
        dup.integrator.gain = 0.5
        assert adc.integrator.gain == 1.0

    def test_describe(self, adc):
        assert "100 codes" in adc.describe()


class TestErrorMetrics:
    def test_perfect_transitions_zero_errors(self):
        lsb = 0.025
        transitions = lsb * (0.5 + np.arange(100))
        ch = characterize_from_transitions(transitions, lsb)
        assert ch.offset_error_lsb == pytest.approx(0.0, abs=1e-9)
        assert ch.gain_error_lsb == pytest.approx(0.0, abs=1e-9)
        assert ch.max_dnl_lsb == pytest.approx(0.0, abs=1e-9)
        assert ch.max_inl_lsb == pytest.approx(0.0, abs=1e-9)

    def test_pure_offset(self):
        lsb = 0.025
        transitions = lsb * (0.5 + np.arange(100)) + 2 * lsb
        ch = characterize_from_transitions(transitions, lsb)
        assert ch.offset_error_lsb == pytest.approx(2.0)
        assert ch.gain_error_lsb == pytest.approx(0.0, abs=1e-9)

    def test_pure_gain(self):
        lsb = 0.025
        transitions = lsb * (0.5 + np.arange(100)) * 1.01
        ch = characterize_from_transitions(transitions, lsb)
        # 1% gain over 99 LSB span
        assert ch.gain_error_lsb == pytest.approx(0.99, rel=0.05)
        assert ch.max_dnl_lsb == pytest.approx(0.01, abs=0.005)

    def test_dnl_single_wide_code(self):
        lsb = 1.0
        transitions = [0.5, 1.5, 3.5, 4.5]  # code 2 is 2 LSB wide
        dnl = dnl_from_transitions(transitions, lsb)
        assert dnl[1] == pytest.approx(1.0)

    def test_inl_endpoint_fit_zeroes_ends(self):
        transitions = [0.0, 1.2, 1.9, 3.0]
        inl = inl_from_transitions(transitions, 1.0)
        assert inl[0] == pytest.approx(0.0)
        assert inl[-1] == pytest.approx(0.0)

    def test_dnl_inl_relationship(self):
        """INL(k+1)-INL(k) = DNL(k) modulo the endpoint-fit slope."""
        rng = np.random.default_rng(5)
        lsb = 1.0
        transitions = np.cumsum(1.0 + 0.1 * rng.normal(size=50))
        dnl = dnl_from_transitions(transitions, lsb)
        inl = inl_from_transitions(transitions, lsb)
        slope = (transitions[-1] - transitions[0]) / (len(transitions) - 1)
        expected_diff = np.diff(inl)
        reconstructed = (np.diff(transitions) - slope) / lsb
        assert np.allclose(expected_diff, reconstructed, atol=1e-9)

    def test_meets_spec_logic(self):
        ch = ADCCharacterization(
            offset_error_lsb=0.1, gain_error_lsb=0.2,
            dnl_lsb=np.array([0.5]), inl_lsb=np.array([0.5]),
            transition_levels_v=np.zeros(2), lsb_v=0.025)
        assert ch.meets_spec()
        ch.missing_codes = [17]
        assert not ch.meets_spec()

    def test_validation(self):
        with pytest.raises(ValueError):
            characterize_from_transitions([0.1], 0.025)
        with pytest.raises(ValueError):
            characterize_from_transitions([0.1, 0.2], -1.0)
        with pytest.raises(ValueError):
            dnl_from_transitions([1.0, 2.0], 0.0)


class TestCharacterizationProcedures:
    def test_servo_finds_transitions(self, ideal_adc):
        levels = servo_transition_levels(ideal_adc, codes=[1, 50, 100])
        lsb = ideal_adc.cal.lsb_v
        assert levels[0] == pytest.approx(0.5 * lsb, abs=lsb * 0.1)
        assert levels[1] == pytest.approx(49.5 * lsb, abs=lsb * 0.1)

    def test_servo_characterization_nominal_matches_paper(self, adc):
        ch = characterize_servo(adc)
        assert abs(ch.offset_error_lsb) < 0.3
        assert abs(ch.gain_error_lsb) <= 0.7
        assert 1.0 < ch.max_inl_lsb < 1.6
        assert 1.0 < ch.max_dnl_lsb < 1.5
        assert not ch.missing_codes

    def test_histogram_agrees_with_servo(self, adc):
        servo = characterize_servo(adc)
        hist = ramp_histogram_characterization(adc, n_samples=3000)
        assert hist.max_dnl_lsb == pytest.approx(servo.max_dnl_lsb, abs=0.3)
        assert hist.offset_error_lsb == pytest.approx(
            servo.offset_error_lsb, abs=0.3)

    def test_histogram_needs_enough_samples(self, adc):
        with pytest.raises(ValueError):
            ramp_histogram_characterization(adc, n_samples=100)

    def test_transfer_curve_shape(self, adc):
        v, codes = transfer_curve(adc, n_points=64)
        assert len(v) == len(codes) == 64
        assert codes[0] == 0
        assert codes[-1] >= 99

    def test_servo_tolerance_validation(self, adc):
        with pytest.raises(ValueError):
            servo_transition_levels(adc, codes=[1], tolerance_v=0.0)


@settings(max_examples=20, deadline=None)
@given(st.floats(0.0, 2.5))
def test_conversion_error_bounded(v_in):
    """Any input converts within a few LSB of ideal (global accuracy)."""
    adc = DualSlopeADC()
    code = adc.code_of(v_in)
    ideal = v_in / adc.cal.lsb_v
    assert abs(code - ideal) <= 2.5
