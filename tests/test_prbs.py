"""Tests for the LFSR / PRBS generator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.signals.prbs import (
    LFSR,
    MAXIMAL_TAPS,
    balance,
    chips_from_waveform,
    prbs_sequence,
    prbs_waveform,
)


class TestLFSR:
    @pytest.mark.parametrize("order", sorted(MAXIMAL_TAPS))
    def test_maximal_period(self, order):
        lfsr = LFSR(order, seed=1)
        initial = lfsr.state
        steps = 0
        while True:
            lfsr.step()
            steps += 1
            if lfsr.state == initial:
                break
            assert steps <= lfsr.period, "period exceeded without repeat"
        assert steps == 2 ** order - 1

    def test_state_never_zero(self):
        lfsr = LFSR(4, seed=1)
        for _ in range(100):
            lfsr.step()
            assert lfsr.state != 0

    def test_reset(self):
        lfsr = LFSR(5, seed=7)
        lfsr.bits(13)
        lfsr.reset()
        assert lfsr.state == 7

    def test_reproducible(self):
        a = LFSR(4, seed=3).bits(30)
        b = LFSR(4, seed=3).bits(30)
        assert a == b

    def test_bad_order(self):
        with pytest.raises(ValueError):
            LFSR(1)

    def test_bad_seed(self):
        with pytest.raises(ValueError):
            LFSR(4, seed=0)
        with pytest.raises(ValueError):
            LFSR(4, seed=16)

    def test_bad_taps(self):
        with pytest.raises(ValueError):
            LFSR(4, taps=(0, 4))
        with pytest.raises(ValueError):
            LFSR(4, taps=(4, 5))

    def test_unknown_order_requires_taps(self):
        with pytest.raises(ValueError):
            LFSR(13)
        # but explicit taps are accepted
        LFSR(13, taps=(13, 4, 3, 1))

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            LFSR(4).bits(-1)

    def test_states_records_after_each_step(self):
        lfsr = LFSR(3, seed=1)
        states = lfsr.states(3)
        assert len(states) == 3
        assert all(0 < s < 8 for s in states)


class TestPRBSSequence:
    def test_default_full_period(self):
        seq = prbs_sequence(4)
        assert len(seq) == 15
        assert set(np.unique(seq)) <= {0, 1}

    def test_balance_property(self):
        # a maximal-length period has exactly one more 1 than 0s
        for order in (3, 4, 5, 6, 7):
            assert balance(prbs_sequence(order)) == 1

    def test_balance_empty_rejected(self):
        with pytest.raises(ValueError):
            balance([])

    def test_autocorrelation_impulsive(self):
        """The defining PRBS property: periodic autocorrelation is
        N at zero lag and -1 at every other lag (in +/-1 chips)."""
        seq = 2.0 * prbs_sequence(5) - 1.0
        n = len(seq)
        for lag in range(n):
            rolled = np.roll(seq, lag)
            r = float(np.dot(seq, rolled))
            expected = n if lag == 0 else -1.0
            assert r == pytest.approx(expected)

    def test_custom_length(self):
        assert len(prbs_sequence(4, n_bits=100)) == 100


class TestPRBSWaveform:
    def test_paper_defaults(self):
        w = prbs_waveform()
        # 15 chips of 250 us
        assert w.duration == pytest.approx(15 * 250e-6, rel=0.01)
        assert set(np.unique(w.values)) <= {0.0, 5.0}

    def test_levels(self):
        w = prbs_waveform(low=1.0, high=3.0)
        assert set(np.unique(w.values)) <= {1.0, 3.0}

    def test_repeats(self):
        w1 = prbs_waveform(repeats=1)
        w2 = prbs_waveform(repeats=2)
        assert len(w2) == 2 * len(w1)

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            prbs_waveform(repeats=0)

    def test_bad_chip_time(self):
        with pytest.raises(ValueError):
            prbs_waveform(chip_time=0.0)

    def test_dt_divides_chip(self):
        w = prbs_waveform(chip_time=250e-6, dt=30e-6)
        samples_per_chip = round(250e-6 / w.dt)
        assert samples_per_chip * w.dt == pytest.approx(250e-6)

    def test_chip_recovery_roundtrip(self):
        w = prbs_waveform(order=4, chip_time=100e-6, low=0.0, high=5.0)
        chips = chips_from_waveform(w, 100e-6)
        assert np.array_equal(chips, prbs_sequence(4))

    def test_chip_recovery_bad_chip_time(self):
        w = prbs_waveform()
        with pytest.raises(ValueError):
            chips_from_waveform(w, 0.0)


@given(st.integers(2, 10), st.integers(1, 200))
def test_lfsr_output_deterministic(order, n):
    if order not in MAXIMAL_TAPS:
        return
    assert LFSR(order).bits(n) == LFSR(order).bits(n)


@given(st.sampled_from(sorted(MAXIMAL_TAPS)), st.integers(1, 1000))
def test_any_seed_is_on_the_maximal_cycle(order, seed):
    seed = 1 + seed % (2 ** order - 1)
    lfsr = LFSR(order, seed=seed)
    seen = set()
    for _ in range(lfsr.period):
        seen.add(lfsr.state)
        lfsr.step()
    assert len(seen) == lfsr.period
