"""End-to-end service tracing, the persistent run ledger and the live
campaign dashboard.

The tentpole invariant under test: one ``Session.submit()`` — pooled,
batched, prescreened, cached, any mix — produces ONE connected trace in
the session tracer (``orphan_spans`` empty), with every
:class:`FaultOutcome` carrying a reference to the span that produced it
and worker-recorded spans stamped with their pid.  Alongside: the
ledger's append/read/trend discipline (torn lines never poison the
history), the dashboard's pure rendering + atomic status file, and the
``python -m repro.obs ledger|top`` command line.
"""

import io
import json
import os
import pickle
import time

import pytest

from repro import CampaignScheduler, CampaignSpec, ResultCache, Session
from repro import obs
from repro.faults import FaultCampaign, StuckAtFault
from repro.faults.campaign import (
    FaultOutcome,
    _evaluate_fault,
    _graft_spans,
)
from repro.faults.dictionary import (
    SignatureDetector,
    TransientSignatureTechnique,
    dictionary_faults,
    dictionary_ladder,
)
from repro.obs import export, profile
from repro.obs.core import OBS, enable_from_env
from repro.obs.dashboard import (
    STATUS_SCHEMA,
    read_status,
    render_frame,
    status_snapshot,
    watch,
    write_status,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    render_trend,
    runtime_meta,
)
from repro.obs.trace import Span, TraceContext, Tracer, orphan_spans
from repro.obs.__main__ import main as obs_main
from repro.signals.prbs import prbs_waveform
from repro.spice import Circuit, dc_operating_point


# --- fixtures (module-level so process pools can pickle them) -------------

def divider() -> Circuit:
    ckt = Circuit("div")
    ckt.vsource("V1", "top", "0", 5.0)
    ckt.resistor("R1", "top", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def _mid_voltage(ckt):
    v, _ = dc_operating_point(ckt)
    return v["mid"]


def _shift_detector(ref, m):
    return 1.0 if abs(m - ref) > 0.5 else 0.0


def _divider_faults():
    return [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid"),
            StuckAtFault.sa0("top"), StuckAtFault.sa1("top")]


def _spec(**overrides):
    base = dict(technique=_mid_voltage, detector=_shift_detector,
                target=divider(), faults=tuple(_divider_faults()),
                threshold=0.5)
    base.update(overrides)
    return CampaignSpec(**base)


def _dictionary_spec(n_sections=4, n_faults=8, **overrides):
    stimulus = prbs_waveform(order=4, chip_time=50e-6, low=0.0, high=5.0,
                             dt=1e-6, seed=3)
    technique = TransientSignatureTechnique(t_stop=stimulus.duration,
                                            dt=1e-6,
                                            node=f"n{n_sections - 1}")
    base = dict(technique=technique,
                detector=SignatureDetector(abs_v=0.05),
                target=dictionary_ladder(n_sections=n_sections,
                                         stimulus=stimulus),
                faults=tuple(dictionary_faults(n_sections=n_sections,
                                               n_faults=n_faults)),
                threshold=0.05)
    base.update(overrides)
    return CampaignSpec(**base)


def _span_names(span, out=None):
    out = [] if out is None else out
    out.append(span.name)
    for child in span.children:
        _span_names(child, out)
    return out


# --- TraceContext ---------------------------------------------------------

class TestTraceContext:
    def test_capture_none_when_disabled(self):
        assert not OBS.enabled
        assert TraceContext.capture() is None

    def test_capture_records_trace_id_and_open_path(self):
        with obs.observe() as o:
            with o.tracer.span("outer"):
                with o.tracer.span("inner"):
                    ctx = TraceContext.capture()
        assert ctx.trace_id == o.tracer.trace_id
        assert ctx.parent == "outer/inner"
        assert ctx.attrs() == {"trace_id": ctx.trace_id,
                               "parent": "outer/inner"}

    def test_adopt_takes_identity_and_none_is_noop(self):
        ctx = TraceContext(trace_id="abcd1234")
        t = Tracer()
        before = t.trace_id
        assert t.adopt(None) is t
        assert t.trace_id == before
        t.adopt(ctx)
        assert t.trace_id == "abcd1234"

    def test_pickles_for_pool_task_tuples(self):
        ctx = TraceContext(trace_id="feed", parent="campaign")
        assert pickle.loads(pickle.dumps(ctx)) == ctx


# --- worker span shipping + grafting --------------------------------------

class TestSpanShipping:
    def test_evaluate_fault_ships_adopted_spans(self):
        ctx = TraceContext(trace_id="cafe0001", parent="campaign")
        ref = _mid_voltage(divider())
        outcome = _evaluate_fault(_mid_voltage, _shift_detector, 0.5,
                                  "detected", True, None, divider(), ref,
                                  ctx, StuckAtFault.sa0("mid"))
        assert outcome.span == "cafe0001:campaign/fault.evaluate"
        (root,) = outcome.spans
        assert root.name == "fault.evaluate"
        assert root.attrs["trace_id"] == "cafe0001"
        assert root.attrs["parent"] == "campaign"
        assert root.pid == os.getpid()
        assert root.duration_s is not None

    def test_shipped_fields_stay_out_of_to_dict(self):
        ctx = TraceContext(trace_id="cafe0002")
        ref = _mid_voltage(divider())
        outcome = _evaluate_fault(_mid_voltage, _shift_detector, 0.5,
                                  "detected", True, None, divider(), ref,
                                  ctx, StuckAtFault.sa0("mid"))
        doc = outcome.to_dict()
        assert "spans" not in doc and "span" not in doc

    def test_graft_moves_forest_and_stamps_worker_pid(self):
        parent = Span("campaign")
        shipped = Span("fault.evaluate")
        shipped.close()
        outcome = FaultOutcome(fault=StuckAtFault.sa0("mid"), detection=1.0,
                               detected=True, worker_pid=4242)
        outcome.spans = [shipped]
        _graft_spans(parent, outcome)
        assert parent.children == [shipped]
        assert shipped.attrs["worker_pid"] == 4242
        assert outcome.spans is None         # shipped exactly once

    def test_graft_synthesises_provenance_spans(self):
        parent = Span("campaign")
        cached = FaultOutcome(fault=StuckAtFault.sa0("mid"), detection=1.0,
                              detected=True, from_cache=True)
        prescreened = FaultOutcome(fault=StuckAtFault.sa1("mid"),
                                   detection=0.0, detected=False,
                                   decided_by="surrogate")
        _graft_spans(parent, cached)
        _graft_spans(parent, prescreened)
        names = [c.name for c in parent.children]
        assert names == ["fault.cached", "fault.prescreened"]
        assert parent.children[0].attrs["from_cache"] is True
        assert parent.children[1].attrs["decided_by"] == "surrogate"
        assert cached.span == "campaign/fault.cached"
        assert prescreened.span == "campaign/fault.prescreened"
        assert all(c.duration_s == 0.0 for c in parent.children)


# --- campaign trace trees -------------------------------------------------

class TestCampaignTrace:
    def test_serial_campaign_trace_is_connected(self):
        with obs.observe() as o:
            result = FaultCampaign(_mid_voltage, _shift_detector,
                                   threshold=0.5).run(divider(),
                                                      _divider_faults())
        (root,) = o.tracer.spans
        kids = [(c.name, c.attrs["fault"]) for c in root.children
                if c.name.startswith("fault.")]
        assert kids == [("fault.evaluate", f.describe())
                        for f in _divider_faults()]
        assert orphan_spans(o.tracer) == []
        assert all(oc.span for oc in result.outcomes)

    def test_pooled_campaign_spans_carry_worker_pids(self):
        with obs.observe() as o:
            result = FaultCampaign(_mid_voltage, _shift_detector,
                                   threshold=0.5, workers=2).run(
                divider(), _divider_faults())
        (root,) = o.tracer.spans
        evaluates = [c for c in root.children if c.name == "fault.evaluate"]
        assert len(evaluates) == 4
        assert all(c.pid is not None and c.pid != os.getpid()
                   for c in evaluates)
        assert all(c.attrs["worker_pid"] == c.pid for c in evaluates)
        assert orphan_spans(o.tracer) == []
        # the span reference points at the grafted position
        tid = o.tracer.trace_id
        assert all(oc.span == f"{tid}:campaign/fault.evaluate"
                   for oc in result.outcomes)

    def test_batched_pooled_campaign_records_batch_spans(self):
        spec = _dictionary_spec()
        with obs.observe() as o:
            result = FaultCampaign(spec.technique, spec.detector,
                                   threshold=spec.threshold, workers=2,
                                   batch_size=4).run(spec.target,
                                                     list(spec.faults))
        (root,) = o.tracer.spans
        batch_spans = [c for c in root.children if c.name == "fault.batch"]
        assert batch_spans                   # the batched path was traced
        assert all(c.pid != os.getpid() for c in batch_spans)
        assert orphan_spans(o.tracer) == []
        assert all(oc.span for oc in result.outcomes)

    def test_warm_cache_rerun_traces_synthetic_spans(self):
        cache = ResultCache()
        spec = CampaignSpec(cache=cache)
        camp = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5)
        camp.run(divider(), _divider_faults(), spec=spec)
        with obs.observe() as o:
            warm = camp.run(divider(), _divider_faults(), spec=spec)
        (root,) = o.tracer.spans
        assert [c.name for c in root.children] == ["fault.cached"] * 4
        assert all(oc.span == "campaign/fault.cached"
                   for oc in warm.outcomes)
        assert orphan_spans(o.tracer) == []

    def test_chrome_export_separates_worker_rows(self):
        with obs.observe() as o:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          workers=2).run(divider(), _divider_faults())
        events = export.chrome_trace(o.tracer)["traceEvents"]
        pids = {e["pid"] for e in events if e["name"] == "fault.evaluate"}
        assert pids and os.getpid() not in pids
        campaign_pid = {e["pid"] for e in events if e["name"] == "campaign"}
        assert campaign_pid == {os.getpid()}


# --- scheduler / session trace --------------------------------------------

class TestServiceTrace:
    def test_submitted_job_joins_the_session_trace(self):
        serial = FaultCampaign(_mid_voltage, _shift_detector,
                               threshold=0.5).run(divider(),
                                                  _divider_faults())
        s = Session(workers=2, name="trace")
        try:
            result, = s.gather(s.submit(_spec()))
        finally:
            s.shutdown()
        roots = [sp.name for sp in s.tracer.spans]
        assert "service.submit" in roots
        assert "service.job" in roots
        job = next(sp for sp in s.tracer.spans if sp.name == "service.job")
        kid_names = set(_span_names(job)) - {"service.job"}
        assert "fault.evaluate" in kid_names
        assert "service.shard" in kid_names
        assert orphan_spans(s.tracer) == []
        assert all(o.span for o in result.outcomes)
        # worker spans are pid-stamped; the job span belongs here
        assert job.pid == os.getpid()
        evaluates = [c for c in job.children if c.name == "fault.evaluate"]
        assert all(c.pid != os.getpid() for c in evaluates)
        # verdicts unchanged by all of the above
        assert ([(o.fault.describe(), o.detected) for o in result.outcomes]
                == [(o.fault.describe(), o.detected)
                    for o in serial.outcomes])

    def test_watch_then_gather_still_joins_trace(self):
        # A job that finalises while the submitter sits in watch() (no
        # observation scope ambient on the dispatcher) must still join
        # the session trace when gather() collects it.
        s = Session(workers=2, name="watcher")
        try:
            job = s.submit(_spec())
            while not job.done():
                time.sleep(0.01)
            buf = io.StringIO()
            s.watch(interval=0.01, out=buf, max_frames=1)
            result, = s.gather(job)
            # parked payload is drained exactly once
            result2, = s.gather(job)
        finally:
            s.shutdown()
        roots = [sp.name for sp in s.tracer.spans]
        assert roots.count("service.job") == 1
        assert orphan_spans(s.tracer) == []
        job_span = next(sp for sp in s.tracer.spans
                        if sp.name == "service.job")
        assert "fault.evaluate" in set(_span_names(job_span))
        assert all(o.span for o in result.outcomes)
        assert result2 is result

    @pytest.mark.surrogate
    def test_scheduler_prescreen_matches_standalone(self):
        spec = _dictionary_spec(prescreen="surrogate")
        standalone = FaultCampaign(spec.technique, spec.detector,
                                   threshold=spec.threshold).run(
            spec.target, list(spec.faults),
            spec=CampaignSpec(prescreen="surrogate"))
        with CampaignScheduler(workers=2, name="pre") as sched:
            scheduled = sched.submit(spec).result()
        assert ([(o.fault.describe(), o.detected, o.decided_by)
                 for o in scheduled.outcomes]
                == [(o.fault.describe(), o.detected, o.decided_by)
                    for o in standalone.outcomes])
        assert scheduled.n_prescreened == standalone.n_prescreened > 0

    @pytest.mark.surrogate
    def test_surrogate_verdicts_stay_in_their_cache_context(self):
        cache = ResultCache()
        spec = _dictionary_spec(prescreen="surrogate", cache=cache)
        with CampaignScheduler(workers=2, name="iso") as sched:
            first = sched.submit(spec).result()
            plain = sched.submit(spec.replace(prescreen=None)).result()
        assert first.n_prescreened > 0
        # surrogate verdicts never replay into the unprescreened run —
        # they live under the surrogate context key
        for cached, fresh in zip(first.outcomes, plain.outcomes):
            assert fresh.decided_by == "transient"
            if cached.decided_by == "surrogate":
                assert not fresh.from_cache
            assert fresh.detected == cached.detected

    def test_cache_stats_surface_in_summary(self):
        cache = ResultCache()
        camp = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5)
        cold = camp.run(divider(), _divider_faults(),
                        spec=CampaignSpec(cache=cache))
        warm = camp.run(divider(), _divider_faults(),
                        spec=CampaignSpec(cache=cache))
        assert "cache: 0/4 hits" in cold.summary()
        assert "cache: 4/4 hits (100%" in warm.summary()
        # per-run deltas, not the cache's lifetime totals
        assert warm.cache_stats.hits == 4
        assert warm.cache_stats.misses == 0
        assert cache.stats.lookups == 8

    def test_session_report_carries_cache_stats(self):
        s = Session(cache=ResultCache(), name="stats")
        s.run_campaign(_mid_voltage, _shift_detector, divider(),
                       _divider_faults(), threshold=0.5)
        assert "cache: 0/4 hits" in s.report()


# --- the E7 acceptance run ------------------------------------------------

@pytest.mark.surrogate
class TestE7ServiceTrace:
    def test_single_connected_trace_ledger_row_and_coverage(
            self, tmp_path, capsys):
        from repro.verify.surrogate_diff import e7_workload
        target, technique, detector, faults, threshold = e7_workload()
        ledger_path = tmp_path / "ledger.jsonl"
        s = Session(workers=2, name="e7", ledger=str(ledger_path))
        try:
            job = s.submit(CampaignSpec(
                technique=technique, detector=detector, target=target,
                faults=faults, threshold=threshold,
                batch_size=8, prescreen="surrogate"))
            result, = s.gather(job)
        finally:
            s.shutdown()

        # one connected trace: no orphan spans, every outcome referenced
        assert orphan_spans(s.tracer) == []
        assert all(o.span for o in result.outcomes)
        job_span = next(sp for sp in s.tracer.spans
                        if sp.name == "service.job")
        assert "service.prescreen" in _span_names(job_span)
        assert job_span.attrs["trace_id"] == s.tracer.trace_id

        # >= 90% of the wall clock is attributed to named spans
        report = profile.aggregate(s.tracer)
        assert report.coverage >= 0.9, report.table()

        # the chrome export is loadable and pid-annotated throughout
        events = export.chrome_trace(s.tracer)["traceEvents"]
        assert events
        assert all("pid" in e for e in events)
        json.dumps(events)                   # serialisable

        # the run landed in the ledger, keyed by the spec's content key
        led = RunLedger(str(ledger_path))
        rows = led.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["schema"] == LEDGER_SCHEMA
        assert row["n_faults"] == len(faults) == result.n_faults
        assert row["prescreen"] == "surrogate"
        assert row["verdicts"]["prescreened"] == result.n_prescreened
        assert row["job"] == job.id
        assert row["meta"]["python"]

        # ...and `python -m repro.obs ledger trend` shows it
        assert obs_main(["ledger", "trend", "--path",
                         str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert row["key"][:12] in out
        assert "runs=1" in out


# --- run ledger -----------------------------------------------------------

class TestRunLedger:
    def test_append_read_round_trip_and_torn_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        led = RunLedger(str(path))
        led.record({"key": "k1", "elapsed_s": 1.0})
        led.record({"key": "k2", "elapsed_s": 2.0})
        # a crashed writer's torn line must be skipped, not fatal
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "elapsed')
        rows = led.rows()
        assert [r["key"] for r in rows] == ["k1", "k2"]
        assert led.corrupt == 1
        assert all(r["schema"] == LEDGER_SCHEMA for r in rows)
        assert led.rows(key="k2")[0]["elapsed_s"] == 2.0
        assert led.latest("k1")["elapsed_s"] == 1.0

    def test_missing_file_reads_empty(self, tmp_path):
        led = RunLedger(str(tmp_path / "nope.jsonl"))
        assert led.rows() == []
        assert led.latest("k") is None

    def test_campaign_row_built_from_result(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        with obs.observe(ledger=led):
            result = FaultCampaign(_mid_voltage, _shift_detector,
                                   threshold=0.5).run(
                divider(), _divider_faults(),
                spec=CampaignSpec(cache=ResultCache()))
        (row,) = led.rows()
        v = row["verdicts"]
        assert v["detected"] + v["missed"] + v["errors"] == 4
        assert v["detected"] == result.n_detected
        assert row["coverage"] == result.coverage
        assert row["escalation_rate"] is None        # no prescreen ran
        assert row["cache"]["misses"] == 4
        assert len(row["key"]) == 64                 # sha-256 content key
        assert row["meta"]["python"]

    def test_ledger_works_with_recording_off(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        saved = OBS.ledger
        OBS.ledger = led
        try:
            assert not OBS.enabled
            FaultCampaign(_mid_voltage, _shift_detector,
                          threshold=0.5).run(divider(), _divider_faults())
        finally:
            OBS.ledger = saved
        assert len(led.rows()) == 1

    def test_env_var_installs_ambient_ledger(self, tmp_path):
        saved = OBS.ledger
        OBS.ledger = None
        try:
            enable_from_env({"REPRO_OBS_LEDGER":
                             str(tmp_path / "amb.jsonl")})
            assert isinstance(OBS.ledger, RunLedger)
            assert not OBS.enabled           # the ledger alone never
        finally:                             # switches span recording on
            OBS.ledger = saved

    def test_trend_flags_regression(self):
        rows = [{"key": "deadbeef", "name": "div", "elapsed_s": t}
                for t in (1.0, 1.0, 1.0, 5.0)]
        text = render_trend({"deadbeef": rows}, threshold=1.15)
        assert "REGRESSED" in text
        steady = render_trend(
            {"deadbeef": rows[:3]}, threshold=1.15)
        assert "REGRESSED" not in steady

    def test_cli_list_show_trend(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        led = RunLedger(str(path))
        led.record({"key": "aaaa", "name": "div", "elapsed_s": 1.0,
                    "n_faults": 4, "verdicts": {"detected": 2}})
        led.record({"key": "aaaa", "name": "div", "elapsed_s": 1.1,
                    "n_faults": 4, "verdicts": {"detected": 2}})
        assert obs_main(["ledger", "list", "--path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2/4 detected" in out
        assert obs_main(["ledger", "show", "--path", str(path),
                         "--index", "0"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["elapsed_s"] == 1.0
        assert obs_main(["ledger", "trend", "--path", str(path)]) == 0
        assert "runs=2" in capsys.readouterr().out

    def test_cli_requires_a_path(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_LEDGER", raising=False)
        assert obs_main(["ledger", "list"]) == 2
        assert "REPRO_OBS_LEDGER" in capsys.readouterr().err

    def test_runtime_meta_degrades_gracefully(self):
        meta = runtime_meta()
        assert set(meta) == {"hostname", "python", "git_commit",
                             "git_dirty", "numpy"}
        assert meta["python"]


# --- live dashboard -------------------------------------------------------

class TestDashboard:
    def test_render_empty_and_idle(self):
        assert render_frame({}) == "(no status yet)"
        frame = render_frame({"schema": STATUS_SCHEMA, "scheduler": "svc",
                              "workers": 2, "jobs_active": 0,
                              "shards_queued": 0, "jobs": [],
                              "cache": None})
        assert "svc: 2 workers, 0 jobs active" in frame
        assert "(idle)" in frame

    def test_render_job_line_with_eta_and_cache(self):
        snap = {"scheduler": "svc", "workers": 4, "jobs_active": 1,
                "shards_queued": 3,
                "cache": {"hits": 3, "misses": 1},
                "jobs": [{"job": "svc-job1", "done": 8, "total": 16,
                          "fraction": 0.5, "elapsed_s": 4.0, "eta_s": 4.0,
                          "rate_per_s": 2.0, "fault": "R3 short",
                          "fault_elapsed_s": 0.1, "worker_pid": 77}]}
        frame = render_frame(snap)
        assert "cache 75% hit (3/4)" in frame
        assert "svc-job1" in frame
        assert "8/16 ( 50%)" in frame
        assert "!straggler" not in frame     # 0.1 s at 2/s is healthy

    def test_render_flags_stragglers(self):
        snap = {"scheduler": "svc", "workers": 1, "jobs_active": 1,
                "shards_queued": 0, "cache": None,
                "jobs": [{"job": "j", "done": 5, "total": 10,
                          "fraction": 0.5, "eta_s": 1.0,
                          "rate_per_s": 2.0, "fault": "slowpoke",
                          "fault_elapsed_s": 10.0, "worker_pid": 42}]}
        frame = render_frame(snap)
        assert "!straggler: slowpoke 10.0s pid 42" in frame

    def test_status_file_round_trip(self, tmp_path):
        path = str(tmp_path / "deep" / "status.json")
        snap = {"schema": STATUS_SCHEMA, "scheduler": "svc", "jobs": []}
        write_status(snap, path)
        assert read_status(path) == snap
        assert read_status(str(tmp_path / "missing.json")) is None
        # unparsable content degrades to None, never raises
        with open(path, "w") as fh:
            fh.write("{torn")
        assert read_status(path) is None

    def test_scheduler_publishes_status(self, tmp_path):
        path = str(tmp_path / "status.json")
        with CampaignScheduler(workers=1, name="pub",
                               status_path=path) as sched:
            sched.submit(_spec()).result()
        snap = read_status(path)
        assert snap is not None
        assert snap["schema"] == STATUS_SCHEMA
        assert snap["scheduler"] == "pub"
        assert snap["jobs_active"] == 0      # final forced publish

    def test_status_snapshot_reads_live_scheduler(self):
        sched = CampaignScheduler(workers=2, name="snap",
                                  cache=ResultCache())
        try:
            snap = status_snapshot(sched)
        finally:
            sched.close()
        assert snap["schema"] == STATUS_SCHEMA
        assert snap["workers"] == 2
        assert snap["jobs"] == []
        assert snap["cache"]["hits"] == 0

    def test_watch_renders_until_done(self):
        frames = iter([{}, {"scheduler": "svc", "workers": 1,
                            "jobs_active": 0, "shards_queued": 0,
                            "jobs": []}])
        ticks = []
        out = io.StringIO()
        last = watch(lambda: next(frames), out=out, interval=0.0,
                     done=lambda: ticks.append(1) or len(ticks) >= 2)
        assert "(no status yet)" in out.getvalue()
        assert "(idle)" in last

    def test_session_watch_after_jobs_finish(self):
        s = Session(workers=1, name="w")
        try:
            s.gather(s.submit(_spec()))
            out = io.StringIO()
            frame = s.watch(interval=0.0, out=out)
        finally:
            s.shutdown()
        assert "w-svc" in frame
        assert out.getvalue().strip()

    def test_session_watch_without_scheduler(self):
        out = io.StringIO()
        assert Session(name="idle").watch(out=out) == "(no status yet)"

    def test_cli_top_once(self, tmp_path, capsys):
        path = str(tmp_path / "status.json")
        write_status({"schema": STATUS_SCHEMA, "scheduler": "svc",
                      "workers": 3, "jobs_active": 0, "shards_queued": 0,
                      "jobs": []}, path)
        assert obs_main(["top", "--status", path, "--once"]) == 0
        assert "svc: 3 workers" in capsys.readouterr().out

    def test_cli_top_requires_status_path(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_STATUS", raising=False)
        assert obs_main(["top"]) == 2
        assert "REPRO_OBS_STATUS" in capsys.readouterr().err
