"""Integration tests: every experiment runner reproduces the paper's
qualitative shape.  These are the repository's headline checks."""

import numpy as np
import pytest

from repro.experiments import (
    e1_step_table,
    e2_ramp_test,
    e3_digital_tests,
    e4_compressed,
    e5_batch10,
    e6_fig2_dnl,
    e7_fig4_detection,
    e8_zdomain,
    e9_adc_transfer,
)


class TestE1StepTable:
    @pytest.fixture(scope="class")
    def result(self):
        return e1_step_table.run()

    def test_six_rows(self, result):
        assert len(result.rows()) == 6

    def test_fall_times_monotone_decreasing(self, result):
        assert result.monotone_decreasing()

    def test_endpoints_match_paper(self, result):
        rows = result.rows()
        assert rows[0][1] == pytest.approx(2.6e-3, abs=0.02e-3)
        assert rows[-1][1] == pytest.approx(0.1e-3, abs=0.02e-3)

    def test_within_off_line_deviation(self, result):
        # the paper's two low-amplitude points sit ~0.26 ms off the
        # analytic line; our model follows the line, so the worst error
        # against the paper's table stays below 0.3 ms
        assert result.max_abs_error_s < 0.3e-3


class TestE2Ramp:
    @pytest.fixture(scope="class")
    def result(self):
        return e2_ramp_test.run()

    def test_six_measurements(self, result):
        assert len(result.nominal_codes) == 6

    def test_nominal_tracks_expected(self, result):
        for code, expected in zip(result.nominal_codes,
                                  result.expected_codes):
            assert abs(code - expected) <= 1

    def test_gain_fault_exposed_by_healthy_ramp(self, result):
        assert result.unmasked_detected

    def test_gain_fault_masked_by_compensating_ramp(self, result):
        """The paper's caveat, demonstrated quantitatively."""
        assert result.masking_occurs


class TestE3Digital:
    @pytest.fixture(scope="class")
    def result(self):
        return e3_digital_tests.run()

    def test_passes(self, result):
        assert result.passed

    def test_conversion_under_paper_limit(self, result):
        assert result.report.max_conversion_time_s <= 5.6e-3

    def test_ten_microsecond_fall_delta(self, result):
        assert result.report.fall_time_delta_s == pytest.approx(10e-6,
                                                                abs=1e-9)

    def test_ten_mv_per_code(self, result):
        assert result.report.mv_per_code == pytest.approx(10.0, rel=0.01)


class TestE4Compressed:
    @pytest.fixture(scope="class")
    def result(self):
        return e4_compressed.run()

    def test_healthy_passes(self, result):
        assert result.healthy_passes

    def test_catastrophic_faults_fail(self, result):
        assert result.faulty_fail

    def test_signatures_differ(self, result):
        assert result.healthy.digital_signature != \
            result.dead_integrator.digital_signature


class TestE5Batch:
    @pytest.fixture(scope="class")
    def result(self):
        return e5_batch10.run(n_devices=10)

    def test_all_good_devices_pass(self, result):
        """The paper's headline: all 10 fabricated devices pass."""
        assert result.all_good_pass
        assert result.good.yield_fraction == 1.0

    def test_all_defective_devices_fail(self, result):
        assert result.all_defective_fail

    def test_devices_actually_vary(self, result):
        offsets = {d.parameters["cal.comparator_offset_v"]
                   for d in result.good.devices}
        assert len(offsets) == 10


class TestE6Fig2:
    @pytest.fixture(scope="class")
    def result(self):
        return e6_fig2_dnl.run()

    def test_offset_and_gain_in_spec(self, result):
        assert result.offset_gain_in_spec

    def test_linearity_out_of_spec_like_paper(self, result):
        """The paper's key finding: INL 1.3 / DNL 1.2 exceed the 1 LSB
        specification even though offset and gain pass."""
        assert result.violates_linearity_spec

    def test_matches_paper_magnitudes(self, result):
        ch = result.characterization
        assert ch.max_inl_lsb == pytest.approx(1.3, abs=0.15)
        assert ch.max_dnl_lsb == pytest.approx(1.2, abs=0.15)
        assert abs(ch.offset_error_lsb) < 0.2
        assert abs(ch.gain_error_lsb) <= 0.5

    def test_dnl_series_covers_code_axis(self, result):
        codes, dnl = result.dnl_series()
        assert codes[0] == 1
        assert codes[-1] >= 98
        assert len(codes) == len(dnl)

    def test_no_missing_codes(self, result):
        assert not result.characterization.missing_codes


class TestE7Fig4:
    @pytest.fixture(scope="class")
    def result(self):
        return e7_fig4_detection.run()

    def test_fault_counts_match_paper(self, result):
        s = result.series()
        assert len(s["circuit1"]) == 16
        assert len(s["circuit2"]) == 12
        assert len(s["circuit3"]) == 12

    def test_every_fault_detected(self, result):
        """'All plots show a significant number of time instances when
        detection is likely.'"""
        assert result.all_detected
        for values in result.series().values():
            assert min(values) >= 50.0

    def test_circuit3_weakest_with_seventy_percent_dip(self, result):
        """'The 3rd circuit ... shows detection instances of only 70%
        for some faults.'"""
        assert result.circuit3_is_weakest
        c3_min = min(result.series()["circuit3"])
        assert 55.0 <= c3_min <= 85.0

    def test_circuit1_high_band(self, result):
        assert min(result.series()["circuit1"]) >= 90.0


class TestE8ZDomain:
    @pytest.fixture(scope="class")
    def result(self):
        return e8_zdomain.run()

    def test_analytic_matches_design(self, result):
        assert result.analytic_matches
        assert result.designed_gain_per_cycle == pytest.approx(1 / 6.8)

    def test_integrator_pole_at_unity(self, result):
        assert result.pole_magnitude == pytest.approx(1.0, abs=1e-9)

    def test_transistor_level_within_five_percent(self, result):
        assert result.transistor_error_fraction < 0.05


class TestE9Transfer:
    @pytest.fixture(scope="class")
    def result(self):
        return e9_adc_transfer.run()

    def test_monotonic(self, result):
        assert result.monotonic

    def test_full_code_range(self, result):
        lo, hi = result.full_range
        assert lo == 0
        assert hi >= 99

    def test_timing_spec(self, result):
        assert result.within_timing_spec
