"""Unit and property tests for repro.signals.waveform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals import Waveform


def make(values, dt=1e-3, t0=0.0):
    return Waveform(values, dt, t0=t0)


class TestConstruction:
    def test_basic(self):
        w = make([1.0, 2.0, 3.0])
        assert len(w) == 3
        assert w.dt == 1e-3
        assert w.duration == pytest.approx(2e-3)
        assert w.t_end == pytest.approx(2e-3)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            Waveform([1.0], 0.0)
        with pytest.raises(ValueError):
            Waveform([1.0], -1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros((2, 2)), 1.0)

    def test_times_vector(self):
        w = make([0, 1, 2], dt=0.5, t0=1.0)
        assert np.allclose(w.times, [1.0, 1.5, 2.0])

    def test_from_function(self):
        w = Waveform.from_function(lambda t: 2 * t, dt=0.1, duration=1.0)
        assert len(w) == 11
        assert w.values[-1] == pytest.approx(2.0)

    def test_zeros(self):
        w = Waveform.zeros(5, 0.1)
        assert len(w) == 5
        assert np.all(w.values == 0)

    def test_sample_rate(self):
        assert make([1, 2], dt=1e-6).sample_rate == pytest.approx(1e6)


class TestInterpolation:
    def test_midpoint(self):
        w = make([0.0, 1.0], dt=1.0)
        assert w(0.5) == pytest.approx(0.5)

    def test_clamps_outside(self):
        w = make([1.0, 2.0], dt=1.0)
        assert w(-5.0) == pytest.approx(1.0)
        assert w(100.0) == pytest.approx(2.0)

    def test_vectorized(self):
        w = make([0.0, 2.0], dt=1.0)
        out = w(np.array([0.0, 0.25, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 2.0])

    def test_value_at_scalar(self):
        w = make([0.0, 4.0], dt=2.0)
        assert isinstance(w.value_at(1.0), float)
        assert w.value_at(1.0) == pytest.approx(2.0)


class TestAlgebra:
    def test_add_scalar(self):
        w = make([1.0, 2.0]) + 1.0
        assert np.allclose(w.values, [2.0, 3.0])

    def test_radd(self):
        w = 1.0 + make([1.0, 2.0])
        assert np.allclose(w.values, [2.0, 3.0])

    def test_add_waveforms_truncates_to_shorter(self):
        a = make([1.0, 2.0, 3.0])
        b = make([10.0, 20.0])
        c = a + b
        assert np.allclose(c.values, [11.0, 22.0])

    def test_mismatched_dt_rejected(self):
        with pytest.raises(ValueError):
            make([1.0], dt=1.0) + make([1.0], dt=2.0)

    def test_sub_and_neg(self):
        w = make([3.0]) - make([1.0])
        assert w.values[0] == pytest.approx(2.0)
        assert (-w).values[0] == pytest.approx(-2.0)

    def test_rsub(self):
        w = 5.0 - make([2.0])
        assert w.values[0] == pytest.approx(3.0)

    def test_mul(self):
        w = make([2.0, 3.0]) * 2.0
        assert np.allclose(w.values, [4.0, 6.0])


class TestTransformations:
    def test_resample_preserves_endpoints(self):
        w = make(np.linspace(0, 1, 11), dt=0.1)
        r = w.resample(0.05)
        assert r.values[0] == pytest.approx(0.0)
        assert r.values[-1] == pytest.approx(1.0, abs=1e-9)
        assert r.dt == 0.05

    def test_resample_identity(self):
        w = make([1.0, 2.0, 3.0], dt=0.1)
        r = w.resample(0.1)
        assert np.allclose(r.values, w.values)

    def test_shifted(self):
        w = make([1.0], t0=0.0).shifted(2.0)
        assert w.t0 == pytest.approx(2.0)

    def test_clipped(self):
        w = make([-2.0, 0.5, 3.0]).clipped(0.0, 1.0)
        assert np.allclose(w.values, [0.0, 0.5, 1.0])

    def test_clipped_bad_range(self):
        with pytest.raises(ValueError):
            make([1.0]).clipped(1.0, 0.0)

    def test_quantized_midtread(self):
        w = make([0.12, 0.26, -0.12]).quantized(0.1)
        assert np.allclose(w.values, [0.1, 0.3, -0.1])

    def test_quantized_saturates(self):
        w = make([5.0, -5.0]).quantized(1.0, lo=-2.0, hi=2.0)
        assert np.allclose(w.values, [2.0, -2.0])

    def test_noise_reproducible_by_seed(self):
        w = make(np.zeros(100))
        a = w.with_noise(1.0, seed=42)
        b = w.with_noise(1.0, seed=42)
        assert np.allclose(a.values, b.values)
        assert a.values.std() > 0.5

    def test_zero_noise(self):
        w = make([1.0, 2.0]).with_noise(0.0, seed=1)
        assert np.allclose(w.values, [1.0, 2.0])


class TestMeasurements:
    def test_peak_trough_mean(self):
        w = make([1.0, -3.0, 2.0])
        assert w.peak() == 2.0
        assert w.trough() == -3.0
        assert w.mean() == pytest.approx(0.0)

    def test_rms(self):
        w = make([3.0, -3.0])
        assert w.rms() == pytest.approx(3.0)

    def test_energy(self):
        w = make([1.0, 1.0], dt=0.5)
        assert w.energy() == pytest.approx(1.0)

    def test_empty_raises(self):
        w = Waveform([], 1.0)
        with pytest.raises(ValueError):
            w.peak()

    def test_crossing_time_falling(self):
        w = make([2.0, 1.0, 0.0], dt=1.0)
        assert w.crossing_time(0.5, "falling") == pytest.approx(1.5)

    def test_crossing_time_rising(self):
        w = make([0.0, 1.0, 2.0], dt=1.0)
        assert w.crossing_time(1.5, "rising") == pytest.approx(1.5)

    def test_crossing_time_none(self):
        w = make([1.0, 1.0])
        assert w.crossing_time(0.0, "falling") is None

    def test_crossing_after(self):
        w = make([1.0, 0.0, 1.0, 0.0], dt=1.0)
        t = w.crossing_time(0.5, "falling", after=1.5)
        assert t == pytest.approx(2.5)

    def test_crossing_bad_direction(self):
        with pytest.raises(ValueError):
            make([1.0]).crossing_time(0.0, "sideways")

    def test_settle_time(self):
        values = np.concatenate([np.linspace(0, 1, 50), np.ones(50)])
        w = make(values, dt=1.0)
        t = w.settle_time(1.0, tolerance=0.01)
        assert t is not None
        assert 45 <= t <= 51

    def test_settle_never(self):
        w = make([0.0, 1.0, 0.0, 1.0])
        assert w.settle_time(0.5, tolerance=0.1) is None

    def test_stats_tuple(self):
        lo, mid, hi = make([0.0, 1.0, 2.0]).stats()
        assert (lo, mid, hi) == (0.0, 1.0, 2.0)


class TestSliceTime:
    def test_interior(self):
        w = make(np.arange(10.0), dt=1.0)
        s = w.slice_time(2.0, 5.0)
        assert np.allclose(s.values, [2, 3, 4, 5])
        assert s.t0 == pytest.approx(2.0)

    def test_beyond_bounds_clamps(self):
        w = make(np.arange(3.0), dt=1.0)
        s = w.slice_time(-10.0, 10.0)
        assert len(s) == 3

    def test_empty_window(self):
        w = make(np.arange(5.0), dt=1.0)
        s = w.slice_time(2.2, 2.8)
        assert len(s) == 0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            make([1.0]).slice_time(1.0, 0.0)


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=64),
       st.floats(1e-9, 1.0))
def test_roundtrip_copy_equal(values, dt):
    w = Waveform(values, dt)
    assert w.almost_equal(w.copy())


@given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=64))
def test_add_then_subtract_is_identity(values):
    w = Waveform(values, 1.0)
    back = (w + 7.5) - 7.5
    assert np.allclose(back.values, w.values)


@given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=64),
       st.floats(0.01, 10))
def test_resample_finer_preserves_extrema_bounds(values, factor):
    w = Waveform(values, 1.0)
    r = w.resample(1.0 / (1 + factor))
    # linear interpolation can never exceed the original extrema
    assert r.peak() <= w.peak() + 1e-9
    assert r.trough() >= w.trough() - 1e-9


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=32))
def test_quantize_error_bounded_by_half_lsb(values):
    w = Waveform(values, 1.0)
    q = w.quantized(0.5)
    assert np.all(np.abs(q.values - w.values) <= 0.25 + 1e-12)
