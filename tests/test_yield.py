"""Tests for parametric yield analysis."""

import pytest

from repro.experiments.e5_batch10 import GOOD_VARIATION
from repro.process import (
    VariationModel,
    parametric_yield,
    yield_vs_spec_limit,
)


@pytest.fixture(scope="module")
def variation():
    return VariationModel(GOOD_VARIATION, seed=1996)


@pytest.fixture(scope="module")
def report(variation):
    return parametric_yield(variation, n_devices=6,
                            keep_characterizations=True)


class TestParametricYield:
    def test_counts_bounded(self, report):
        for count in (report.offset_pass, report.gain_pass,
                      report.inl_pass, report.dnl_pass, report.all_pass):
            assert 0 <= count <= report.n_devices

    def test_all_pass_is_intersection(self, report):
        assert report.all_pass <= min(report.offset_pass, report.gain_pass,
                                      report.inl_pass, report.dnl_pass)

    def test_linearity_limits_this_design(self, report):
        """The nominal calibration violates INL/DNL spec, so the batch's
        parametric yield must be linearity-limited."""
        line = report.line_yield()
        assert line["offset"] == 1.0
        assert line["gain"] == 1.0
        assert report.worst_metric() in ("inl", "dnl")

    def test_characterizations_kept_on_request(self, report):
        assert len(report.characterizations) == report.n_devices

    def test_summary(self, report):
        assert "parametric yield" in report.summary()

    def test_validation(self, variation):
        with pytest.raises(ValueError):
            parametric_yield(variation, n_devices=0)

    def test_relaxed_spec_passes_everything(self, variation):
        relaxed = parametric_yield(variation, n_devices=4,
                                   spec_inl_lsb=5.0, spec_dnl_lsb=5.0)
        assert relaxed.line_yield()["all"] == 1.0


class TestYieldCurve:
    def test_monotone_nondecreasing(self, variation):
        curve = yield_vs_spec_limit(variation, [0.8, 1.0, 1.4, 2.0],
                                    n_devices=5)
        yields = [y for _, y in curve]
        assert all(b >= a for a, b in zip(yields, yields[1:]))

    def test_wide_limit_full_yield(self, variation):
        curve = yield_vs_spec_limit(variation, [3.0], n_devices=4)
        assert curve[0][1] == 1.0

    def test_empty_limits_rejected(self, variation):
        with pytest.raises(ValueError):
            yield_vs_spec_limit(variation, [])
