"""Tests for dynamic Idd testing, branch-current recording and the
SPICE-deck parser."""

import numpy as np
import pytest

from repro.circuits.op1 import op1_follower
from repro.core import (
    IddMeasurement,
    IddTester,
    TransientTestConfig,
    idd_detection,
    quiescent_ratio,
)
from repro.faults import StuckAtFault, inject
from repro.signals import Waveform
from repro.spice import (
    Circuit,
    NetlistSyntaxError,
    dc_operating_point,
    parse_netlist,
    parse_value,
    transient,
)

FAST = TransientTestConfig(low_v=2.0, high_v=3.5, sim_dt_s=10e-6)


class TestBranchRecording:
    def test_supply_current_of_divider(self):
        ckt = Circuit("div")
        ckt.vsource("VS", "a", "0", 10.0)
        ckt.resistor("R1", "a", "0", 1e3)
        res = transient(ckt, t_stop=1e-3, dt=1e-4,
                        record_branches=["VS"])
        current = res.branch_current("VS")
        # 10 mA flows out of the source (negative into its + terminal)
        assert np.allclose(current.values, -10e-3, atol=1e-6)
        assert "VS" in res.branches()

    def test_unrecorded_branch_rejected(self):
        ckt = Circuit("div")
        ckt.vsource("VS", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        res = transient(ckt, t_stop=1e-4, dt=1e-5)
        with pytest.raises(KeyError):
            res.branch_current("VS")

    def test_non_source_branch_rejected(self):
        ckt = Circuit("div")
        ckt.vsource("VS", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        with pytest.raises(TypeError):
            transient(ckt, t_stop=1e-4, dt=1e-5, record_branches=["R1"])

    def test_capacitor_charging_current_decays(self):
        ckt = Circuit("rc")
        ckt.vsource("VS", "a", "0", 5.0)
        ckt.resistor("R1", "a", "b", 1e3)
        ckt.capacitor("C1", "b", "0", 1e-6)
        res = transient(ckt, t_stop=5e-3, dt=20e-6, uic=True,
                        record_branches=["VS"])
        i = -res.branch_current("VS").values
        assert i[1] > 4e-3          # initial surge ~5 mA
        assert abs(i[-1]) < 0.1e-3  # settled


class TestIddTester:
    @pytest.fixture(scope="class")
    def reference(self):
        return IddTester(FAST).measure(op1_follower(input_value=2.5))

    def test_healthy_quiescent_sensible(self, reference):
        # OP1's bias budget: hundreds of microamps, not milli or nano
        assert 20e-6 < reference.mean_a < 1e-3
        assert reference.peak_a >= reference.mean_a

    def test_bias_fault_multiplies_quiescent(self, reference):
        faulty = inject(op1_follower(input_value=2.5),
                        StuckAtFault.sa0("4"))
        m = IddTester(FAST).measure(faulty)
        assert quiescent_ratio(reference, m) > 2.0
        assert idd_detection(reference, m) > 0.9

    def test_output_fault_detected(self, reference):
        faulty = inject(op1_follower(input_value=2.5),
                        StuckAtFault.sa1("7"))
        m = IddTester(FAST).measure(faulty)
        assert idd_detection(reference, m) > 0.2

    def test_self_comparison_is_clean(self, reference):
        again = IddTester(FAST).measure(op1_follower(input_value=2.5))
        assert idd_detection(reference, again) == 0.0

    def test_measurement_fields(self, reference):
        assert isinstance(reference.current, Waveform)
        recon = IddMeasurement.from_waveform(reference.current)
        assert recon.mean_a == pytest.approx(reference.mean_a)

    def test_validation(self, reference):
        with pytest.raises(ValueError):
            idd_detection(reference, reference, rel_threshold=0.0)
        tester = IddTester(FAST, source_name="RL")
        with pytest.raises(TypeError):
            tester.measure(op1_follower(input_value=2.5))


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("10", 10.0), ("2.2k", 2200.0), ("1meg", 1e6), ("5u", 5e-6),
        ("10p", 10e-12), ("3n", 3e-9), ("1.5m", 1.5e-3), ("2G", 2e9),
        ("-4.7u", -4.7e-6), ("1e3", 1000.0), ("2.5E-2", 0.025),
        ("100f", 100e-15), ("1t", 1e12),
    ])
    def test_values(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_bad_value(self):
        with pytest.raises(ValueError):
            parse_value("ohms")


class TestParser:
    def test_divider_deck(self):
        result = parse_netlist("""
        * comment
        V1 in 0 10
        R1 in mid 1k
        R2 mid 0 3k
        .end
        """)
        v, _ = dc_operating_point(result.circuit)
        assert v["mid"] == pytest.approx(7.5, rel=1e-6)
        assert not result.warnings

    def test_all_element_kinds(self):
        result = parse_netlist("""
        V1 a 0 1.0
        I1 0 b 1m
        R1 b 0 1k
        C1 a c 10p
        E1 d 0 a 0 2.0
        G1 0 e a 0 1m
        R2 e 0 1k
        R3 d 0 1k
        S1 a f ctl 0 VON=2.5 RON=50
        Vc ctl 0 5.0
        R4 f 0 1k
        M1 g a 0 NMOS W=20u L=5u
        R5 d g 10k
        """)
        ckt = result.circuit
        assert len(ckt.elements) == 13
        v, _ = dc_operating_point(ckt)
        assert v["b"] == pytest.approx(1.0, rel=1e-3)   # 1mA * 1k
        assert v["d"] == pytest.approx(2.0, rel=1e-3)   # VCVS gain 2

    def test_continuation_lines(self):
        result = parse_netlist("""
        V1 in 0
        + 2.5
        R1 in 0 1k
        """)
        v, _ = dc_operating_point(result.circuit)
        assert v["in"] == pytest.approx(2.5)

    def test_pulse_source(self):
        result = parse_netlist("V1 a 0 PULSE(0 5 1m 2m 0.5)\nR1 a 0 1k\n")
        src = result.circuit.element("V1")
        assert src.level(0.5e-3) == 0.0
        assert src.level(1.5e-3) == 5.0
        assert src.level(2.5e-3) == 0.0

    def test_pwl_source(self):
        result = parse_netlist("V1 a 0 PWL(0 0 1m 1 2m 0)\nR1 a 0 1k\n")
        src = result.circuit.element("V1")
        assert src.level(0.5e-3) == pytest.approx(0.5)
        assert src.level(1.5e-3) == pytest.approx(0.5)
        assert src.level(10e-3) == 0.0

    def test_pwl_bad_times(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("V1 a 0 PWL(0 0 0 1)\n")

    def test_capacitor_ic(self):
        result = parse_netlist("C1 a 0 1u IC=2.5\nR1 a 0 1k\n")
        assert result.circuit.element("C1").ic == pytest.approx(2.5)

    def test_inline_comment(self):
        result = parse_netlist("R1 a 0 1k ; load\nV1 a 0 1\n")
        assert result.circuit.element("R1").resistance == 1e3

    def test_end_card_stops(self):
        result = parse_netlist("R1 a 0 1k\nV1 a 0 1\n.end\nR2 a 0 1k\n")
        assert not result.circuit.has_element("R2")

    def test_unknown_dot_card_warns(self):
        result = parse_netlist(".tran 1u 1m\nR1 a 0 1k\nV1 a 0 1\n")
        assert any(".tran" in w for w in result.warnings)

    def test_syntax_error_reports_line(self):
        with pytest.raises(NetlistSyntaxError) as info:
            parse_netlist("R1 a 0\n")
        assert "line 1" in str(info.value)

    def test_unknown_element_kind(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("Q1 c b e NPN\n")

    def test_unknown_mos_model(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("M1 d g s CMOS W=1u L=1u\n")

    def test_parsed_circuit_transient(self):
        deck = """
        VIN in 0 PULSE(0 5 0 1m 0.5)
        R1 in out 1k
        C1 out 0 100n
        """
        result = parse_netlist(deck)
        res = transient(result.circuit, t_stop=2e-3, dt=10e-6, uic=True)
        # RC follows the pulse with tau = 0.1 ms
        assert res["out"].value_at(0.45e-3) == pytest.approx(5.0, abs=0.2)
        assert res["out"].value_at(0.95e-3) == pytest.approx(0.0, abs=0.2)
