"""Tests for the Newton solver, transient engine and linearisation."""

import numpy as np
import pytest

from repro.lti import tf_from_poles_zeros
from repro.signals import Waveform
from repro.spice import (
    Circuit,
    NewtonError,
    circuit_poles,
    circuit_zeros,
    dc_operating_point,
    extract_transfer_function,
    transfer_function_at,
    transient,
)


class TestDCSolve:
    def test_nonlinear_diode_chain(self):
        """Two stacked diode-connected devices split the supply."""
        ckt = Circuit("stack")
        ckt.vsource("VDD", "vdd", "0", 5.0)
        ckt.isource("IB", "vdd", "a", 10e-6)
        ckt.nmos("M1", "a", "a", "b")
        ckt.nmos("M2", "b", "b", "0")
        v, _ = dc_operating_point(ckt)
        assert 1.0 < v["b"] < 2.5
        assert v["a"] > v["b"]

    def test_floating_node_held_by_gmin(self):
        ckt = Circuit("float")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.capacitor("C1", "a", "b", 1e-12)  # b floats at DC
        v, _ = dc_operating_point(ckt)
        assert abs(v["b"]) < 1.0  # gmin ties it near ground

    def test_op_with_time_varying_source_uses_t(self):
        ckt = Circuit("tv")
        ckt.vsource("V1", "a", "0", lambda t: 1.0 + t)
        ckt.resistor("R1", "a", "0", 1e3)
        v, _ = dc_operating_point(ckt, t=2.0)
        assert v["a"] == pytest.approx(3.0)

    def test_solution_vector_matches_dict(self):
        ckt = Circuit("dict")
        ckt.vsource("V1", "a", "0", 2.0)
        ckt.resistor("R1", "a", "b", 1e3)
        ckt.resistor("R2", "b", "0", 1e3)
        v, x = dc_operating_point(ckt)
        from repro.spice.mna import Assembler
        idx = Assembler(ckt).index
        assert x[idx["b"]] == pytest.approx(v["b"])


class TestTransientEngine:
    def test_conservation_capacitive_divider(self):
        """A step through series caps divides by the capacitance ratio."""
        ckt = Circuit("capdiv")
        ckt.vsource("VIN", "in", "0", lambda t: 1.0 if t > 1e-6 else 0.0)
        ckt.capacitor("C1", "in", "mid", 2e-9)
        ckt.capacitor("C2", "mid", "0", 1e-9)
        res = transient(ckt, t_stop=10e-6, dt=0.1e-6, uic=True)
        assert res.final("mid") == pytest.approx(2.0 / 3.0, abs=0.02)

    def test_sc_charge_pump_behavior(self):
        """Switch-capacitor transfer moves charge packet by packet."""
        ckt = Circuit("scp")
        ckt.vsource("VIN", "in", "0", 1.0)
        ckt.vsource("PHI", "phi", "0",
                    lambda t: 5.0 if (t % 2e-3) < 1e-3 else 0.0)
        ckt.vsource("PHIB", "phib", "0",
                    lambda t: 0.0 if (t % 2e-3) < 1e-3 else 5.0)
        ckt.switch("S1", "in", "cs", "phi", "0")
        ckt.switch("S2", "cs", "out", "phib", "0")
        ckt.capacitor("C1", "cs", "0", 1e-9)
        ckt.capacitor("C2", "out", "0", 1e-9)
        res = transient(ckt, t_stop=20e-3, dt=20e-6, uic=True)
        # equal caps converge toward the input voltage
        assert res.final("out") == pytest.approx(1.0, abs=0.05)

    def test_result_api(self):
        ckt = Circuit("api")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        res = transient(ckt, t_stop=1e-3, dt=1e-4)
        assert "a" in res
        assert res.dt == pytest.approx(1e-4)
        assert len(res.times) == 11
        assert isinstance(res["a"], Waveform)
        assert res.array("a").shape == (11,)

    def test_bad_timing_rejected(self):
        ckt = Circuit("bad")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=0.0, dt=1e-6)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-3, dt=2e-3)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-3, dt=1e-4, method="rk4")

    def test_waveform_driven_source(self):
        wave = Waveform([0.0, 1.0, 2.0, 3.0], 1e-3)
        ckt = Circuit("wd")
        ckt.vsource("V1", "a", "0", wave)
        ckt.resistor("R1", "a", "0", 1e3)
        res = transient(ckt, t_stop=3e-3, dt=1e-3)
        assert np.allclose(res.array("a"), [0, 1, 2, 3], atol=1e-9)

    def test_x0_seed(self):
        ckt = Circuit("seed")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.resistor("R1", "a", "b", 1e3)
        ckt.capacitor("C1", "b", "0", 1e-6)
        _, x = dc_operating_point(ckt)
        res = transient(ckt, t_stop=1e-3, dt=1e-4, x0=x)
        # started from the settled OP: stays settled
        assert np.allclose(res.array("b"), 1.0, atol=1e-6)


class TestLinearize:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.vsource("VIN", "in", "0", 1.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-6)
        return ckt

    def test_rc_pole(self):
        poles = circuit_poles(self._rc())
        real = sorted(p.real for p in poles)
        assert any(abs(p + 1000.0) < 1.0 for p in real)

    def test_rc_transfer_function_value(self):
        h_dc = transfer_function_at(self._rc(), "VIN", "out", 0.0)
        assert h_dc.real == pytest.approx(1.0, abs=1e-3)
        h_hi = transfer_function_at(self._rc(), "VIN", "out", 1j * 1e6)
        assert abs(h_hi) < 0.01

    def test_rc_extracted_model(self):
        tf = extract_transfer_function(self._rc(), "VIN", "out", max_order=1)
        assert tf.dc_gain() == pytest.approx(1.0, abs=1e-3)
        assert tf.poles()[0].real == pytest.approx(-1000.0, rel=0.01)

    def test_highpass_zero_at_origin(self):
        ckt = Circuit("hp")
        ckt.vsource("VIN", "in", "0", 0.0)
        ckt.capacitor("C1", "in", "out", 1e-6)
        ckt.resistor("R1", "out", "0", 1e3)
        zeros = circuit_zeros(ckt, "VIN", "out")
        assert any(abs(z) < 1.0 for z in zeros)

    def test_two_pole_ladder(self):
        ckt = Circuit("ladder")
        ckt.vsource("VIN", "in", "0", 0.0)
        ckt.resistor("R1", "in", "a", 1e3)
        ckt.capacitor("C1", "a", "0", 1e-6)
        ckt.resistor("R2", "a", "b", 1e3)
        ckt.capacitor("C2", "b", "0", 1e-6)
        tf = extract_transfer_function(ckt, "VIN", "b", max_order=2)
        assert tf.order == 2
        assert tf.dc_gain() == pytest.approx(1.0, abs=1e-2)
        # extracted model matches direct evaluation across frequency
        for w in (100.0, 1000.0, 5000.0):
            exact = transfer_function_at(ckt, "VIN", "b", 1j * w)
            model = tf.evaluate(1j * w)
            assert abs(model - exact) < 0.02 * abs(exact) + 1e-6

    def test_linearized_mos_amplifier_gain(self):
        """Common-source amp: dc small-signal gain ~ -gm*(RL||ro)."""
        ckt = Circuit("cs")
        ckt.vsource("VDD", "vdd", "0", 5.0)
        ckt.vsource("VIN", "g", "0", 2.0)
        ckt.resistor("RL", "vdd", "d", 100e3)
        ckt.nmos("M1", "d", "g", "0")
        h = transfer_function_at(ckt, "VIN", "d", 0.0)
        v, _ = dc_operating_point(ckt)
        from repro.spice.mosfet import MOSFET
        m = ckt.element("M1")
        _, _dd, gm, _ds = 0, 0, 0, 0
        _i, di_dd, di_dg, di_ds = m._small_signal(v["d"], 2.0, 0.0)
        expected = -di_dg / (di_dd + 1e-5)
        assert h.real == pytest.approx(expected, rel=0.02)

    def test_unknown_output_node_rejected(self):
        with pytest.raises(KeyError):
            transfer_function_at(self._rc(), "VIN", "nope", 0.0)

    def test_non_source_input_rejected(self):
        with pytest.raises(TypeError):
            transfer_function_at(self._rc(), "R1", "out", 0.0)
