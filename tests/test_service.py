"""Campaign-as-a-service: CampaignSpec, ResultCache, CampaignScheduler.

Pins the service contracts from the API redesign:

* ``CampaignSpec`` is frozen, validating, and serialises into the
  campaign content hash — a spec *is* the campaign's identity.
* legacy ``FaultCampaign.run()`` option kwargs keep working through a
  warn-once deprecation shim and produce results identical to the spec
  path.
* the content-addressed ``ResultCache`` makes warm re-runs perform
  **zero simulations** while producing ``to_dict()`` payloads identical
  to the cold run (wall-clock total aside), under serial, pooled and
  batched execution; corrupt entries degrade to recomputation, never to
  a crash.
* the ``CampaignScheduler`` runs concurrent campaigns whose results
  match standalone serial runs, shares overlapping fault universes
  through the cache, and prefers higher-priority / less-served jobs.
"""

import json
import os
from collections import deque
from types import SimpleNamespace

import pytest

from repro import CampaignScheduler, CampaignSpec, ResultCache, Session
from repro.errors import CampaignError
from repro.faults.campaign import FaultCampaign, FaultOutcome
from repro.faults.model import StuckAtFault
from repro.service.cache import CACHE_SCHEMA, fault_key
from repro.session import RunResult
from repro.spice import Circuit, dc_operating_point


# --- fixtures -------------------------------------------------------------

def divider() -> Circuit:
    ckt = Circuit("div")
    ckt.vsource("V1", "top", "0", 5.0)
    ckt.resistor("R1", "top", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def _mid_voltage(ckt):
    v, _ = dc_operating_point(ckt)
    return v["mid"]


def _shift_detector(ref, m):
    return 1.0 if abs(m - ref) > 0.5 else 0.0


def _divider_faults():
    return [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid"),
            StuckAtFault.sa0("top"), StuckAtFault.sa1("top")]


class _CountingTechnique:
    """Picklability-friendly technique that counts its invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, ckt):
        self.calls += 1
        return _mid_voltage(ckt)


def _sans_wall(result):
    """to_dict with the total wall clock removed: per-outcome timings
    are replayed exactly from the cache, so everything else must match
    byte for byte."""
    doc = result.to_dict()
    doc.pop("elapsed_s")
    return doc


def _normalized(result):
    """to_dict with every wall-clock field zeroed and the worker count
    dropped — for comparing scheduler runs against standalone runs."""
    doc = result.to_dict()
    doc["elapsed_s"] = 0.0
    doc.pop("workers")
    doc["outcomes"] = [dict(o, elapsed_s=0.0) for o in doc["outcomes"]]
    return doc


def _spec(**overrides):
    base = dict(technique=_mid_voltage, detector=_shift_detector,
                target=divider(), faults=tuple(_divider_faults()),
                threshold=0.5)
    base.update(overrides)
    return CampaignSpec(**base)


# --- CampaignSpec ---------------------------------------------------------

class TestCampaignSpec:
    def test_frozen(self):
        spec = CampaignSpec(threshold=0.5)
        with pytest.raises(Exception):
            spec.threshold = 0.1

    def test_faults_coerced_to_tuple(self):
        spec = CampaignSpec(faults=_divider_faults())
        assert isinstance(spec.faults, tuple)

    @pytest.mark.parametrize("bad", [
        dict(threshold=1.5), dict(threshold=-0.1), dict(workers=0),
        dict(batch_size=0), dict(checkpoint_every=0),
        dict(heartbeat_every=0), dict(fault_timeout_s=0.0),
        dict(campaign_deadline_s=-1.0), dict(timeout_grace_s=-0.5),
        dict(resume=True),                 # resume needs a checkpoint
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            CampaignSpec(**bad)

    def test_replace_revalidates(self):
        spec = CampaignSpec(workers=2)
        assert spec.replace(workers=4).workers == 4
        assert spec.workers == 2              # original untouched
        with pytest.raises(ValueError):
            spec.replace(threshold=3.0)

    def test_resolved_precedence(self):
        # spec value > caller fallback > DEFAULTS
        spec = CampaignSpec(workers=4)
        r = spec.resolved(workers=2, threshold=0.5)
        assert r.workers == 4
        assert r.threshold == 0.5
        assert r.batch_size == 1              # from DEFAULTS

    def test_content_key_is_stable_and_sensitive(self):
        a, b = _spec(), _spec()
        assert a.content_key() == b.content_key()
        assert a.content_key() != _spec(
            faults=tuple(_divider_faults()[:2])).content_key()
        assert a.content_key() != _spec(
            errors_as_detected=False).content_key()

    def test_threshold_not_in_context_key(self):
        # campaigns differing only in threshold share cached simulations
        assert _spec(threshold=0.2).context_key() == \
            _spec(threshold=0.9).context_key()
        assert _spec(fault_timeout_s=1.0).context_key() != \
            _spec().context_key()

    def test_live_objects_excluded_from_equality(self):
        base = _spec()
        assert base.replace(progress=print, cache=ResultCache()) == base


# --- the legacy-kwarg deprecation shim ------------------------------------

class TestLegacyShim:
    def test_legacy_kwargs_warn_once_and_match_spec(self, monkeypatch):
        import repro.faults.campaign as campaign_mod
        monkeypatch.setattr(campaign_mod, "_LEGACY_KWARGS_WARNED", False)
        c = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5)
        with pytest.warns(DeprecationWarning, match="CampaignSpec"):
            legacy = c.run(divider(), _divider_faults(), heartbeat_every=2)
        # second legacy call: shim already warned, stays silent (the
        # suite runs with DeprecationWarning-as-error, so a repeat
        # warning would raise here)
        legacy2 = c.run(divider(), _divider_faults(), heartbeat_every=2)
        modern = c.run(divider(), _divider_faults(),
                       spec=CampaignSpec(heartbeat_every=2))
        assert _normalized(legacy) == _normalized(modern) == \
            _normalized(legacy2)

    def test_spec_plus_legacy_kwargs_rejected(self):
        c = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5)
        with pytest.raises(ValueError, match="both spec="):
            c.run(divider(), _divider_faults(), heartbeat_every=2,
                  spec=CampaignSpec())


# --- ResultCache ----------------------------------------------------------

class TestResultCache:
    def test_hit_miss_accounting_and_zero_resims(self):
        cache = ResultCache()
        technique = _CountingTechnique()
        c = FaultCampaign(technique, _shift_detector, threshold=0.5,
                          cache=cache)
        cold = c.run(divider(), _divider_faults())
        assert technique.calls == 5           # reference + 4 faults
        assert cache.stats.misses == 4
        assert cache.stats.stores == 4
        assert cache.stats.hits == 0

        warm = c.run(divider(), _divider_faults())
        assert technique.calls == 5           # zero new simulations
        assert cache.stats.hits == 4
        assert cache.stats.stores == 4
        assert warm.reference is None         # reference never computed
        assert all(o.from_cache for o in warm.outcomes)
        assert _sans_wall(warm) == _sans_wall(cold)
        # per-outcome wall times replay exactly from the cache
        assert [o.elapsed_s for o in warm.outcomes] == \
            [o.elapsed_s for o in cold.outcomes]

    def test_hits_rethreshold_against_requesting_campaign(self):
        cache = ResultCache()

        def graded(ref, m):
            return 0.3 if abs(m - ref) > 0.5 else 0.0

        strict = FaultCampaign(_mid_voltage, graded, threshold=0.5,
                               cache=cache)
        first = strict.run(divider(), _divider_faults())
        assert first.n_detected == 0
        lax = FaultCampaign(_mid_voltage, graded, threshold=0.2,
                            cache=cache)
        second = lax.run(divider(), _divider_faults())
        assert cache.stats.hits == 4          # shared despite threshold
        assert cache.stats.stores == 4
        assert second.n_detected == sum(
            1 for o in first.outcomes if o.detection >= 0.2)

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=2)
        c = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          cache=cache)
        c.run(divider(), _divider_faults())
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_disk_tier_warm_start(self, tmp_path):
        path = str(tmp_path / "cache")
        cold = FaultCampaign(_CountingTechnique(), _shift_detector,
                             threshold=0.5,
                             cache=ResultCache(path=path)).run(
            divider(), _divider_faults())
        fresh = ResultCache(path=path)
        technique = _CountingTechnique()
        warm = FaultCampaign(technique, _shift_detector, threshold=0.5,
                             cache=fresh).run(divider(), _divider_faults())
        assert technique.calls == 0           # not even the reference
        assert fresh.stats.disk_hits == 4
        assert _sans_wall(warm) == _sans_wall(cold)

    def test_corrupt_entry_recomputes_never_crashes(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path=path)
        c = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          cache=cache)
        cold = c.run(divider(), _divider_faults())
        context = _spec().context_key()
        key = fault_key(context, _divider_faults()[0])
        victim = os.path.join(path, key[:2], key + ".json")
        with open(victim, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        fresh = ResultCache(path=path)
        warm = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                             cache=fresh).run(divider(), _divider_faults())
        assert fresh.stats.corrupt == 1
        assert fresh.stats.disk_hits == 3
        assert os.path.exists(victim + ".corrupt")
        assert os.path.exists(victim)         # recomputation repopulated
        assert _normalized(warm) == _normalized(cold)

    def test_schema_and_key_mismatches_quarantined(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path=path)
        context = _spec().context_key()
        fault = _divider_faults()[0]
        key = fault_key(context, fault)
        target = os.path.join(path, key[:2], key + ".json")
        os.makedirs(os.path.dirname(target))
        with open(target, "w", encoding="utf-8") as fh:
            json.dump({"schema": "someone-elses/9", "key": key,
                       "detection": 1.0, "detected": True, "error": None,
                       "elapsed_s": 0.1}, fh)
        assert cache.get(context, fault, 0.5) is None
        assert cache.stats.corrupt == 1

    def test_infrastructure_verdicts_never_cached(self):
        cache = ResultCache()
        fault = _divider_faults()[0]
        timed_out = FaultOutcome(fault=fault, detection=0.0, detected=False,
                                 timed_out=True)
        poisoned = FaultOutcome(fault=fault, detection=0.0, detected=False,
                                quarantined=True)
        assert not cache.put("ctx", timed_out)
        assert not cache.put("ctx", poisoned)
        assert cache.stats.stores == 0

    def test_warm_equals_cold_under_workers_and_batch(self):
        cache = ResultCache()
        spec = _spec(workers=2, batch_size=2, cache=cache)
        c = FaultCampaign(_mid_voltage, _shift_detector)
        cold = c.run(spec=spec)
        assert cache.stats.stores == 4
        warm = c.run(spec=spec)
        assert all(o.from_cache for o in warm.outcomes)
        assert cache.stats.stores == 4        # nothing recomputed
        assert _sans_wall(warm) == _sans_wall(cold)

    def test_cross_campaign_sharing_of_overlap(self):
        cache = ResultCache()
        faults = _divider_faults()
        c = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          cache=cache)
        c.run(divider(), faults[:3])
        assert cache.stats.stores == 3
        c.run(divider(), faults[1:])          # overlaps on two faults
        assert cache.stats.hits == 2
        assert cache.stats.stores == 4        # only the new fault stored


# --- CampaignScheduler ----------------------------------------------------

class TestCampaignScheduler:
    def test_concurrent_jobs_match_standalone_serial(self):
        faults_a, faults_b = _divider_faults(), _divider_faults()[:2]
        serial_a = FaultCampaign(_mid_voltage, _shift_detector,
                                 threshold=0.5).run(divider(), faults_a)
        serial_b = FaultCampaign(_mid_voltage, _shift_detector,
                                 threshold=0.5).run(divider(), faults_b)
        with CampaignScheduler(workers=2, name="svc") as sched:
            job_a = sched.submit(_spec(faults=tuple(faults_a), name="div"))
            job_b = sched.submit(_spec(faults=tuple(faults_b), name="div"))
            got_a, got_b = sched.gather(job_a, job_b)
        assert _normalized(got_a) == _normalized(serial_a)
        assert _normalized(got_b) == _normalized(serial_b)

    def test_sequential_jobs_share_the_cache(self):
        cache = ResultCache()
        with CampaignScheduler(workers=2, cache=cache) as sched:
            first = sched.submit(_spec()).result()
            second = sched.submit(_spec()).result()
        assert not any(o.from_cache for o in first.outcomes)
        assert all(o.from_cache for o in second.outcomes)
        assert cache.stats.stores == 4
        assert _sans_wall(second) == _sans_wall(first)

    def test_non_picklable_job_falls_back_to_threads(self):
        bucket = []

        def closure_technique(ckt):          # closures cannot pickle
            bucket.append(ckt.name)
            return _mid_voltage(ckt)

        serial = FaultCampaign(_mid_voltage, _shift_detector,
                               threshold=0.5).run(divider(),
                                                  _divider_faults())
        with CampaignScheduler(workers=2) as sched:
            got = sched.submit(_spec(technique=closure_technique)).result()
        assert bucket                        # ran in-process
        assert _normalized(got) == _normalized(serial)

    def test_submit_validates(self):
        sched = CampaignScheduler(workers=1)
        with pytest.raises(TypeError):
            sched.submit({"technique": _mid_voltage})
        with pytest.raises(ValueError, match="workload"):
            sched.submit(CampaignSpec(threshold=0.5))
        sched.close()
        with pytest.raises(CampaignError):
            sched.submit(_spec())

    def test_priority_and_fair_share_pick(self):
        # the dispatch key is pure: higher priority first, then the
        # job with the smaller served fraction, then submission order
        sched = CampaignScheduler(workers=1)

        def run_stub(priority, share, seq):
            return SimpleNamespace(job=SimpleNamespace(priority=priority),
                                   share=share, seq=seq,
                                   ready=deque(["shard"]))

        low, high = run_stub(0, 0.0, 1), run_stub(5, 0.9, 2)
        sched._active = [low, high]
        picked, _ = sched._next_shard()
        assert picked is high                # priority beats share

        behind, ahead = run_stub(0, 0.25, 3), run_stub(0, 0.75, 4)
        sched._active = [ahead, behind]
        picked, _ = sched._next_shard()
        assert picked is behind              # fair share among equals

    def test_progress_streams_through_campaign_progress(self):
        seen = []
        with CampaignScheduler(workers=1) as sched:
            sched.submit(_spec(progress=seen.append)).result()
        assert [(p.done, p.total) for p in seen] == [
            (1, 4), (2, 4), (3, 4), (4, 4)]
        assert seen[0].job                   # labelled with the job id
        assert "campaign[" in seen[0].describe()


# --- Session integration --------------------------------------------------

class TestSessionService:
    def test_submit_gather_runresult(self):
        serial = FaultCampaign(_mid_voltage, _shift_detector,
                               threshold=0.5).run(divider(),
                                                  _divider_faults())
        s = Session(workers=2, name="svc-test")
        try:
            job = s.submit(_mid_voltage, _shift_detector, divider(),
                           _divider_faults(), threshold=0.5)
            result, = s.gather(job)
        finally:
            s.shutdown()
        assert isinstance(result, RunResult)
        assert _normalized(result) == _normalized(serial)

    def test_submit_accepts_spec_with_option_overrides(self):
        s = Session(workers=1)
        try:
            job = s.submit(_spec(threshold=0.9), threshold=0.5)
            result, = s.gather(job)
        finally:
            s.shutdown()
        assert result.to_dict()["threshold"] == 0.5

    def test_submit_rejects_partial_positional_workload(self):
        s = Session()
        with pytest.raises(TypeError, match="CampaignSpec"):
            s.submit(_mid_voltage, _shift_detector, divider())
        assert s.gather() == []              # no scheduler ever created

    def test_session_cache_warms_run_campaign(self):
        s = Session(cache=ResultCache())
        cold = s.run_campaign(_mid_voltage, _shift_detector, divider(),
                              _divider_faults(), threshold=0.5)
        warm = s.run_campaign(_mid_voltage, _shift_detector, divider(),
                              _divider_faults(), threshold=0.5)
        assert all(o.from_cache for o in warm.outcomes)
        assert s.cache.stats.hits == 4
        # both runs traced through the session as usual
        assert [sp.name for sp in s.tracer.spans] == ["campaign", "campaign"]
        got, want = warm.to_dict(), cold.to_dict()
        got.pop("trace"), want.pop("trace")
        got.pop("elapsed_s"), want.pop("elapsed_s")
        assert got == want


# --- re-exports -----------------------------------------------------------

def test_service_names_reexported():
    import repro
    for name in ("CampaignSpec", "ResultCache", "CampaignScheduler"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
