"""Tests for the bus-accessible ASUT assembly."""

import pytest

from repro.adc.control import ControlState
from repro.core.asut import (
    ASUT,
    ASUT_ID_WORD,
    CMD_CONVERT,
    CMD_RUN_BIST,
    ExternalTester,
    REG_ADC_CODE,
    REG_ADC_INPUT_MV,
    REG_CONTROL,
    REG_ID,
    REG_STATUS,
    REG_BIST_RESULT,
)


@pytest.fixture
def asut():
    return ASUT()


@pytest.fixture
def tester(asut):
    return ExternalTester(asut)


class TestRegisterMap:
    def test_id_word(self, tester):
        assert tester.identify()
        assert tester.bus.read(REG_ID) == ASUT_ID_WORD

    def test_raw_conversion_sequence(self, asut):
        bus = asut.bus
        bus.write(REG_ADC_INPUT_MV, 1250)
        bus.write(REG_CONTROL, CMD_CONVERT)
        status = bus.read(REG_STATUS)
        assert status & 0b10          # done
        assert status & 0b100         # passed (completed)
        assert abs(bus.read(REG_ADC_CODE) - 50) <= 1

    def test_unknown_command_fails_status(self, asut):
        asut.bus.write(REG_CONTROL, 77)
        assert not asut.bus.read(REG_STATUS) & 0b100

    def test_dac_code_clamped(self, asut):
        asut.bus.write(0x05, 5000)
        assert asut.bus.registers[0x05] <= asut.dac.n_codes - 1


class TestExternalTester:
    def test_convert_matches_direct_access(self, asut, tester):
        via_bus = tester.convert(1.0)
        direct = asut.adc.code_of(1.0)
        assert abs(via_bus - direct) <= 1

    def test_bist_pass_on_healthy(self, tester):
        assert tester.run_bist()

    def test_bist_flags_detail(self, asut, tester):
        tester.run_bist()
        flags = asut.bus.read(REG_BIST_RESULT)
        assert flags == 0b111     # analog, digital, compressed all pass

    def test_loopback_pass_on_healthy(self, tester):
        assert tester.run_loopback()

    def test_fall_time_readout(self, tester):
        # 1 V step -> 1.6 ms = 1600 us
        assert tester.fall_time_us(1.0) == pytest.approx(1600, abs=20)

    def test_fall_time_saturates_on_stuck(self, asut, tester):
        asut.adc.integrator.enabled = False
        assert tester.fall_time_us(1.0) == 0xFFFF

    def test_production_flow_healthy(self, tester):
        log = tester.production_flow()
        assert log.identified
        assert log.bist_passed
        assert log.loopback_passed
        assert log.bus_frames > 6

    def test_production_flow_broken_adc(self):
        asut = ASUT()
        asut.adc.integrator.gain = 0.5
        log = ExternalTester(asut).production_flow()
        assert not log.bist_passed
        assert not log.loopback_passed

    def test_production_flow_stuck_control(self):
        asut = ASUT()
        asut.adc.control.stuck_state = ControlState.INTEGRATE
        log = ExternalTester(asut).production_flow()
        assert not log.bist_passed

    def test_broken_dac_caught_by_loopback_only(self):
        asut = ASUT()
        asut.dac.stuck_bits[6] = 0
        tester = ExternalTester(asut)
        # the ADC-only BIST cannot see a DAC fault ...
        assert tester.run_bist()
        # ... the loopback can
        assert not tester.run_loopback()

    def test_all_traffic_went_over_frames(self, tester):
        tester.production_flow()
        expected_bits = len(tester.bus.log) * (1 + 8 + 1 + 16 + 1)
        assert tester.bus.wire_bits == expected_bits
