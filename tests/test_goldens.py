"""Golden regression tests: every experiment's output pinned to disk.

Each of E1–E9 runs once (session-scoped, ~20 s total) and its
``to_dict()`` payload — normalised per :mod:`repro.verify.goldens` — is
compared byte-for-byte against ``tests/goldens/<id>.json``.  A change in
any experiment's numbers fails with a unified diff; intended changes are
re-pinned with ``pytest --update-goldens`` and reviewed as a JSON diff
in the PR.
"""

import json

import pytest

from repro.experiments.registry import REGISTRY, run_record
from repro.verify.goldens import (
    GoldenMismatch,
    check_golden,
    dumps_canonical,
    golden_path,
    load_golden,
    normalize,
)

EXPERIMENT_IDS = sorted(REGISTRY)


@pytest.fixture(scope="session")
def experiment_payloads():
    """Run every experiment once; id -> to_dict payload."""
    return {exp_id: run_record(exp_id).to_dict()
            for exp_id in EXPERIMENT_IDS}


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_experiment_matches_golden(exp_id, experiment_payloads,
                                   goldens_dir, update_goldens):
    status, path = check_golden(goldens_dir, exp_id.lower(),
                                experiment_payloads[exp_id],
                                update=update_goldens)
    if update_goldens:
        assert status in ("created", "updated", "matched")
    else:
        assert status == "matched", f"golden {path} out of date"


def test_goldens_are_canonical(goldens_dir):
    """Committed files must be in canonical form (sorted keys, rounded
    floats) so --update-goldens diffs stay minimal."""
    paths = sorted(goldens_dir.glob("*.json"))
    assert paths, "no goldens committed under tests/goldens/"
    for path in paths:
        text = path.read_text(encoding="utf-8")
        payload = json.loads(text)
        assert text == dumps_canonical(normalize(payload)), \
            f"{path} is not canonical; re-run pytest --update-goldens"


def test_golden_mismatch_diff_is_readable(tmp_path):
    check_golden(tmp_path, "sample", {"a": 1.0, "b": "x"}, update=True)
    with pytest.raises(GoldenMismatch) as exc:
        check_golden(tmp_path, "sample", {"a": 2.0, "b": "x"})
    message = str(exc.value)
    assert '-  "a": 1.0' in message
    assert '+  "a": 2.0' in message
    assert "--update-goldens" in message


def test_missing_golden_fails_without_update(tmp_path):
    with pytest.raises(GoldenMismatch, match="no golden"):
        check_golden(tmp_path, "never-created", {"a": 1})


def test_update_creates_then_matches(tmp_path):
    status, path = check_golden(tmp_path, "fresh", {"x": [1, 2.5]},
                                update=True)
    assert status == "created" and path.exists()
    status, _ = check_golden(tmp_path, "fresh", {"x": [1, 2.5]})
    assert status == "matched"
    status, _ = check_golden(tmp_path, "fresh", {"x": [1, 9.5]},
                             update=True)
    assert status == "updated"
    assert load_golden(tmp_path, "fresh") == {"x": [1, 9.5]}


def test_normalize_rounds_and_strips():
    payload = {
        "value": 0.1234567891234,
        "elapsed_s": 12.0,
        "nested": [{"trace": {"big": 1}, "stats": {"n": 3}, "keep": 1}],
        "nan": float("nan"),
    }
    norm = normalize(payload)
    assert norm["value"] == 0.123456789
    assert "elapsed_s" not in norm
    assert norm["nested"] == [{"keep": 1}]
    assert norm["nan"] == "nan"


def test_golden_path_shape(tmp_path):
    assert golden_path(tmp_path, "e1").name == "e1.json"
