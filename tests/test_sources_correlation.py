"""Tests for repro.signals.sources, correlation and convolution."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.signals import (
    Waveform,
    autocorrelation,
    convolve_waveforms,
    cross_correlation,
    impulse_response_estimate,
    noise_waveform,
    normalized_cross_correlation,
    prbs_waveform,
    pulse_waveform,
    ramp_waveform,
    sine_waveform,
    staircase_waveform,
    step_waveform,
)
from repro.signals.convolution import response_of_cascade, truncate_to
from repro.signals.correlation import correlation_peak, whiten
from repro.signals.sources import two_phase_clocks


class TestSources:
    def test_step_levels(self):
        w = step_waveform(2.5, duration=1e-3, dt=1e-5, t_step=0.5e-3)
        assert w.value_at(0.0) == 0.0
        assert w.value_at(0.9e-3) == 2.5

    def test_step_rise_time(self):
        w = step_waveform(1.0, duration=1e-3, dt=1e-6, rise_time=100e-6)
        assert 0.4 < w.value_at(50e-6) < 0.6

    def test_step_negative_rise_rejected(self):
        with pytest.raises(ValueError):
            step_waveform(1.0, 1e-3, 1e-5, rise_time=-1.0)

    def test_ramp_endpoints_and_hold(self):
        w = ramp_waveform(0.0, 2.5, duration=1.0, dt=1e-2, hold=0.5)
        assert w.value_at(0.0) == pytest.approx(0.0)
        assert w.value_at(1.0) == pytest.approx(2.5)
        assert w.value_at(1.4) == pytest.approx(2.5)

    def test_ramp_bad_duration(self):
        with pytest.raises(ValueError):
            ramp_waveform(0, 1, 0.0, 1e-3)

    def test_sine(self):
        w = sine_waveform(1.0, 1e3, duration=1e-3, dt=1e-6, offset=2.0)
        assert w.mean() == pytest.approx(2.0, abs=0.01)
        assert w.peak() == pytest.approx(3.0, abs=0.01)

    def test_sine_bad_freq(self):
        with pytest.raises(ValueError):
            sine_waveform(1.0, 0.0, 1e-3, 1e-6)

    def test_pulse_duty(self):
        w = pulse_waveform(0.0, 1.0, period=1e-3, duty=0.25,
                           duration=10e-3, dt=1e-6)
        assert w.mean() == pytest.approx(0.25, abs=0.02)

    def test_pulse_bad_duty(self):
        with pytest.raises(ValueError):
            pulse_waveform(0, 1, 1e-3, 1.5, 1e-2, 1e-6)

    def test_noise_statistics(self):
        w = noise_waveform(0.5, duration=1.0, dt=1e-4, mean=1.0, seed=3)
        assert w.mean() == pytest.approx(1.0, abs=0.05)
        assert np.std(w.values) == pytest.approx(0.5, rel=0.1)

    def test_staircase(self):
        w = staircase_waveform([1.0, 2.0, 3.0], dwell=1e-3, dt=1e-4)
        assert w.value_at(0.5e-3) == 1.0
        assert w.value_at(1.5e-3) == 2.0
        assert w.value_at(2.5e-3) == 3.0

    def test_staircase_empty_rejected(self):
        with pytest.raises(ValueError):
            staircase_waveform([], 1e-3, 1e-4)

    def test_two_phase_clocks_never_both_high(self):
        phi1, phi2 = two_phase_clocks(period=10e-6, duration=100e-6,
                                      dt=0.1e-6, non_overlap=0.1)
        both = (phi1.values > 2.5) & (phi2.values > 2.5)
        assert not both.any()
        assert phi1.peak() == 5.0
        assert phi2.peak() == 5.0

    def test_two_phase_bad_overlap(self):
        with pytest.raises(ValueError):
            two_phase_clocks(1e-6, 1e-5, 1e-8, non_overlap=0.6)


class TestCorrelation:
    def test_ncc_self_peak_is_one(self):
        w = prbs_waveform(order=4, chip_time=1e-4, dt=1e-5)
        r = normalized_cross_correlation(w, w)
        assert np.max(r.values) == pytest.approx(1.0, abs=1e-9)

    def test_ncc_of_flat_signal_is_zero(self):
        flat = Waveform(np.full(50, 2.5), 1e-5)
        p = prbs_waveform(order=4, chip_time=1e-4, dt=1e-5)
        r = normalized_cross_correlation(flat, p)
        assert np.allclose(r.values, 0.0)

    def test_cross_correlation_lag_axis(self):
        a = Waveform([1.0, 0.0, 0.0], 1.0)
        b = Waveform([1.0, 0.0], 1.0)
        r = cross_correlation(a, b)
        # full mode: lags from -(len(b)-1) to len(a)-1
        assert r.t0 == pytest.approx(-1.0)
        assert len(r) == 4

    def test_cross_correlation_detects_delay(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        delay = 7
        y = np.concatenate([np.zeros(delay), x])[:200]
        r = normalized_cross_correlation(Waveform(y, 1.0), Waveform(x, 1.0))
        _, lag = correlation_peak(Waveform(y, 1.0), Waveform(x, 1.0))
        assert lag == pytest.approx(delay, abs=0.5)

    def test_autocorrelation_symmetric(self):
        w = Waveform(np.random.default_rng(1).normal(size=64), 1.0)
        r = autocorrelation(w)
        assert np.allclose(r.values, r.values[::-1], atol=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cross_correlation(Waveform([], 1.0), Waveform([1.0], 1.0))

    def test_bad_mode(self):
        a = Waveform([1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            cross_correlation(a, a, mode="weird")

    def test_whiten_flattens_spectrum(self):
        w = prbs_waveform(order=5, chip_time=1e-4, dt=1e-5)
        flat = whiten(w)
        spec = np.abs(np.fft.rfft(flat.values))
        nonzero = spec[spec > 0.01 * spec.max()]
        assert nonzero.max() / nonzero.min() < 50

    def test_whiten_bad_eps(self):
        with pytest.raises(ValueError):
            whiten(prbs_waveform(), eps=0.0)


class TestConvolution:
    def test_convolution_with_impulse_identity(self):
        x = Waveform([1.0, 2.0, 3.0], 0.5)
        delta = Waveform([1.0 / 0.5], 0.5)  # discrete unit-area impulse
        y = convolve_waveforms(x, delta)
        assert np.allclose(y.values[:3], x.values)

    def test_convolution_commutative(self):
        a = Waveform([1.0, 2.0], 1.0)
        b = Waveform([3.0, 4.0, 5.0], 1.0)
        ab = convolve_waveforms(a, b)
        ba = convolve_waveforms(b, a)
        assert np.allclose(ab.values, ba.values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convolve_waveforms(Waveform([], 1.0), Waveform([1.0], 1.0))

    def test_cascade(self):
        x = Waveform([1.0, 0.0, 0.0, 0.0], 1.0)
        h = Waveform([0.5, 0.5], 1.0)
        y = response_of_cascade(x, h, h)
        direct = convolve_waveforms(convolve_waveforms(x, h), h)
        assert np.allclose(y.values, direct.values)

    def test_impulse_estimate_recovers_fir(self):
        rng = np.random.default_rng(2)
        x = Waveform(rng.normal(size=400), 1.0)
        h_true = np.array([0.5, 0.3, -0.2, 0.1])
        y_vals = np.convolve(x.values, h_true)[:400] * x.dt
        y = Waveform(y_vals, 1.0)
        h_est = impulse_response_estimate(x, y, n_taps=6)
        assert np.allclose(h_est.values[:4], h_true, atol=0.02)
        assert np.allclose(h_est.values[4:], 0.0, atol=0.02)

    def test_impulse_estimate_cholesky_matches_general_solve(self):
        # The Cholesky (assume_a="pos") route on the regularised Gram
        # matrix must reproduce the general LU deconvolution result.
        rng = np.random.default_rng(5)
        x = Waveform(rng.normal(size=300), 1.0)
        h_true = np.array([0.4, -0.3, 0.2])
        y = Waveform(np.convolve(x.values, h_true)[:300] * x.dt, 1.0)
        h_est = impulse_response_estimate(x, y, n_taps=8, ridge=1e-9)
        n = 300
        xv = x.values - np.mean(x.values)
        yv = y.values - np.mean(y.values)
        cols = [np.concatenate([np.zeros(k), xv[:n - k]]) for k in range(8)]
        a = np.stack(cols, axis=1) * x.dt
        ata = a.T @ a
        reg = 1e-9 * np.trace(ata) / 8
        ref = np.linalg.solve(ata + reg * np.eye(8), a.T @ yv)
        assert np.allclose(h_est.values, ref, rtol=0.0, atol=1e-10)
        assert np.allclose(h_est.values[:3], h_true, atol=0.02)

    def test_impulse_estimate_validates(self):
        x = Waveform([1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            impulse_response_estimate(x, x, n_taps=0)
        with pytest.raises(ValueError):
            impulse_response_estimate(x, x, n_taps=10)

    def test_truncate(self):
        w = Waveform(np.arange(10.0), 1.0)
        t = truncate_to(w, 3.0)
        assert len(t) == 4

    def test_truncate_negative(self):
        with pytest.raises(ValueError):
            truncate_to(Waveform([1.0], 1.0), -1.0)


@given(st.lists(st.floats(-10, 10), min_size=2, max_size=32),
       st.lists(st.floats(-10, 10), min_size=2, max_size=32))
def test_ncc_bounded(a_vals, b_vals):
    a = Waveform(a_vals, 1.0)
    b = Waveform(b_vals, 1.0)
    r = normalized_cross_correlation(a, b)
    assert np.all(np.abs(r.values) <= 1.0 + 1e-9)


@given(st.lists(st.floats(-5, 5), min_size=1, max_size=16),
       st.lists(st.floats(-5, 5), min_size=1, max_size=16))
def test_convolution_length(a_vals, b_vals):
    a = Waveform(a_vals, 1.0)
    b = Waveform(b_vals, 1.0)
    y = convolve_waveforms(a, b)
    assert len(y) == len(a) + len(b) - 1
