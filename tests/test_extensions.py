"""Tests for the future-work extensions: sigma-delta ADC, fault
dictionary, AC sweeps, experiment registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import DualSlopeADC
from repro.adc.sigma_delta import (
    DecimationFilter,
    SigmaDeltaADC,
    SigmaDeltaModulator,
)
from repro.circuits.op1 import op1_follower
from repro.core.test_patterns import (
    DiagnosticPattern,
    FaultDictionary,
    STANDARD_FAULT_LIBRARY,
)
from repro.spice import Circuit, ac_sweep


class TestSigmaDeltaModulator:
    def test_bit_density_tracks_input(self):
        mod = SigmaDeltaModulator(v_ref=2.5)
        for x, expected in ((-2.5, 0.0), (0.0, 0.5), (2.5, 1.0)):
            mod.reset()
            bits = mod.modulate(x, 2000)
            assert np.mean(bits) == pytest.approx(expected, abs=0.02)

    def test_mean_encodes_midrange_precisely(self):
        mod = SigmaDeltaModulator(v_ref=2.5)
        mod.reset()
        bits = mod.modulate(1.0, 5000)
        decoded = (2 * np.mean(bits) - 1) * 2.5
        assert decoded == pytest.approx(1.0, abs=0.01)

    def test_stuck_comparator_freezes_stream(self):
        mod = SigmaDeltaModulator()
        mod.comparator.stuck_output = 1
        bits = mod.modulate(0.0, 100)
        assert np.all(bits == 1)

    def test_dac_error_biases_density(self):
        clean = SigmaDeltaModulator()
        skewed = SigmaDeltaModulator()
        skewed.dac_high_error_v = -0.5   # weak high reference
        d_clean = np.mean(clean.modulate(0.0, 4000))
        d_skewed = np.mean(skewed.modulate(0.0, 4000))
        # a weak high reference needs MORE ones to balance zero input:
        # density * 2.0 = (1 - density) * 2.5  ->  density ~ 0.556
        assert d_skewed == pytest.approx(2.5 / 4.5, abs=0.02)
        assert d_skewed > d_clean

    def test_copy_independent(self):
        mod = SigmaDeltaModulator()
        dup = mod.copy()
        dup.integrator_gain = 0.5
        assert mod.integrator_gain == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SigmaDeltaModulator(v_ref=0.0)
        with pytest.raises(ValueError):
            SigmaDeltaModulator().modulate(0.0, 0)

    def test_waveform_input(self):
        from repro.signals.sources import ramp_waveform
        mod = SigmaDeltaModulator(clock_hz=100e3)
        ramp = ramp_waveform(-2.0, 2.0, duration=0.02, dt=1e-5)
        bits = mod.modulate(ramp, 2000)
        # density rises along the ramp
        first, last = np.mean(bits[:500]), np.mean(bits[-500:])
        assert last > first + 0.4


class TestDecimation:
    def test_dc_recovery(self):
        mod = SigmaDeltaModulator(v_ref=1.0)
        bits = mod.modulate(0.25, 64 * 10)
        frames = DecimationFilter(64).decimate(bits)
        assert frames[-1] == pytest.approx(0.25, abs=0.02)

    def test_needs_enough_bits(self):
        with pytest.raises(ValueError):
            DecimationFilter(64).decimate([0, 1] * 10)

    def test_bad_osr(self):
        with pytest.raises(ValueError):
            DecimationFilter(1)


class TestSigmaDeltaADC:
    @pytest.fixture(scope="class")
    def adc(self):
        return SigmaDeltaADC()

    def test_endpoints(self, adc):
        assert adc.code_of(0.0) == 0
        assert adc.code_of(2.5) == 100

    def test_midscale(self, adc):
        assert adc.code_of(1.25) == 50

    def test_accuracy_across_range(self, adc):
        for v in np.linspace(0.2, 2.3, 8):
            c = adc.convert(float(v))
            assert abs(c.value - v) < 2.0 * adc.lsb_v

    def test_monotonic(self, adc):
        codes = [adc.code_of(float(v)) for v in np.linspace(0, 2.5, 40)]
        assert all(b >= a for a, b in zip(codes, codes[1:]))

    def test_dead_integrator_breaks_conversion(self):
        adc = SigmaDeltaADC()
        adc.modulator.integrator_gain = 0.0
        assert adc.code_of(2.0) != SigmaDeltaADC().code_of(2.0)

    def test_conversion_time(self, adc):
        # 8 frames x 64 OSR at 100 kHz
        assert adc.conversion_time() == pytest.approx(5.12e-3)

    def test_copy(self, adc):
        dup = adc.copy()
        dup.modulator.integrator_gain = 0.7
        assert adc.modulator.integrator_gain == 1.0

    def test_shares_bist_step_levels(self, adc):
        """The same step levels the dual-slope BIST uses convert to the
        same nominal codes on the sigma-delta part."""
        from repro.core import PAPER_STEP_LEVELS
        ds = DualSlopeADC()
        for level in PAPER_STEP_LEVELS:
            assert abs(adc.code_of(level) - ds.code_of(level)) <= 2


class TestFaultDictionary:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return FaultDictionary().build(DualSlopeADC())

    def test_all_library_faults_self_identify(self, dictionary):
        for name, plant in STANDARD_FAULT_LIBRARY.items():
            device = DualSlopeADC()
            plant(device)
            match = dictionary.match(device)
            assert match.best == name, f"{name} matched {match.best}"
            assert not match.is_healthy

    def test_healthy_device_matches_healthy(self, dictionary):
        assert dictionary.match(DualSlopeADC()).is_healthy

    def test_entries_distinguishable(self, dictionary):
        assert dictionary.distinguishability() > 0.0

    def test_signature_length(self):
        pattern = DiagnosticPattern()
        sig = pattern.measure(DualSlopeADC())
        assert len(sig) == pattern.signature_length()

    def test_stuck_control_signature_uses_sentinel(self):
        from repro.adc.control import ControlState
        pattern = DiagnosticPattern()
        device = DualSlopeADC()
        device.control.stuck_state = ControlState.INTEGRATE
        sig = pattern.measure(device)
        assert pattern.timeout_code in sig

    def test_match_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            FaultDictionary().match(DualSlopeADC())

    def test_unknown_fault_still_flagged_unhealthy(self, dictionary):
        """A defect outside the library must at least not look healthy."""
        device = DualSlopeADC()
        device.integrator.gain = 0.55     # not a library value
        match = dictionary.match(device)
        assert not match.is_healthy


class TestACSweep:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.vsource("VIN", "in", "0", 1.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.capacitor("C1", "out", "0", 1e-6)
        return ckt

    def test_rc_bandwidth(self):
        res = ac_sweep(self._rc(), "VIN", "out", 1.0, 1e5)
        assert res.dc_gain() == pytest.approx(1.0, abs=1e-3)
        assert res.bandwidth_3db() == pytest.approx(159.15, rel=0.05)

    def test_rolloff_slope(self):
        res = ac_sweep(self._rc(), "VIN", "out", 1e3, 1e5,
                       points_per_decade=10)
        # -20 dB/decade well above the pole
        drop = res.magnitude_db[-1] - res.magnitude_db[-11]
        assert drop == pytest.approx(-20.0, abs=1.0)

    def test_phase_approaches_minus_ninety(self):
        res = ac_sweep(self._rc(), "VIN", "out", 1.0, 1e6)
        assert res.phase_deg[-1] == pytest.approx(-90.0, abs=3.0)

    def test_follower_closed_loop_bandwidth(self):
        res = ac_sweep(op1_follower(input_value=2.5), "VIN", "3",
                       1.0, 1e7)
        assert res.dc_gain() == pytest.approx(1.0, abs=0.02)
        bw = res.bandwidth_3db()
        assert bw is not None and 1e4 < bw < 1e6

    def test_no_bandwidth_for_flat_path(self):
        ckt = Circuit("flat")
        ckt.vsource("VIN", "in", "0", 1.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.resistor("R2", "out", "0", 1e3)
        res = ac_sweep(ckt, "VIN", "out", 1.0, 1e6)
        assert res.bandwidth_3db() is None
        assert res.dc_gain() == pytest.approx(0.5, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ac_sweep(self._rc(), "VIN", "out", 0.0, 1e3)
        with pytest.raises(ValueError):
            ac_sweep(self._rc(), "VIN", "out", 1e3, 1.0)


class TestRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments.registry import REGISTRY
        assert set(REGISTRY) == {f"E{i}" for i in range(1, 10)}

    def test_run_single(self):
        from repro.experiments.registry import run_experiment
        result = run_experiment("e1")
        assert result.monotone_decreasing()

    def test_unknown_id(self):
        from repro.experiments.registry import run_experiment
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register
        with pytest.raises(ValueError):
            register("E1", "dup", "dup", lambda: None)


@settings(max_examples=10, deadline=None)
@given(st.floats(0.1, 2.4))
def test_sigma_delta_value_accuracy_property(v_in):
    adc = SigmaDeltaADC()
    c = adc.convert(v_in)
    assert abs(c.value - v_in) < 3.0 * adc.lsb_v
