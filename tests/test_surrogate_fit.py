"""Vector-fitting unit behaviour and golden-pinned surrogate fits.

Two deterministic fits — a 4-section RC ladder and a series RLC — are
pinned in ``tests/goldens/surrogate_rc.json`` / ``surrogate_rlc.json``
as canonical pole/residue payloads (floats at 9 significant digits,
see :mod:`repro.verify.goldens`).  Any change to the fitter's
initialisation, relocation or residue solve that moves a pole shows up
as a unified diff; re-pin deliberately with ``pytest --update-goldens``.
"""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.spice.netlist import Circuit
from repro.surrogate import (
    PoleDriftDetector,
    PrescreenConfig,
    SurrogateModel,
    VectorFitter,
    fit_circuit,
    pole_drift,
    sample_frequencies,
)
from repro.verify.goldens import check_golden

pytestmark = pytest.mark.surrogate


# ----------------------------------------------------------------------
# deterministic fixture circuits
# ----------------------------------------------------------------------

def rc_ladder(n_sections: int = 4, r_ohm: float = 1e3,
              c_f: float = 10e-9) -> Circuit:
    ckt = Circuit("golden_rc_ladder")
    ckt.vsource("VIN", "in", "0", 1.0)
    prev = "in"
    for i in range(n_sections):
        node = f"n{i}"
        ckt.resistor(f"R{i}", prev, node, r_ohm)
        ckt.capacitor(f"C{i}", node, "0", c_f)
        prev = node
    return ckt


def series_rlc() -> Circuit:
    # f0 = 1/(2*pi*sqrt(LC)) ~ 15.9 kHz, Q ~ 1 — a clean conjugate pair
    ckt = Circuit("golden_series_rlc")
    ckt.vsource("VIN", "in", "0", 1.0)
    ckt.resistor("R1", "in", "n1", 100.0)
    ckt.inductor("L1", "n1", "n2", 1e-3)
    ckt.capacitor("C1", "n2", "0", 100e-9)
    return ckt


def _golden_payload(model: SurrogateModel) -> dict:
    doc = model.to_dict()
    # the rms residual of an exact-order fit is machine noise — pinned
    # as a bound here, not as a golden value
    assert doc.pop("rms_error") < 1e-9
    # components below 1e-9 of their array's scale are BLAS round-off,
    # not physics: snap them so the golden survives platform changes
    for re_key, im_key in (("poles_re", "poles_im"),
                           ("residues_re", "residues_im")):
        scale = max(max(map(abs, doc[re_key])),
                    max(map(abs, doc[im_key])), 1e-300)
        for key in (re_key, im_key):
            doc[key] = [0.0 if abs(v) < 1e-9 * scale else v
                        for v in doc[key]]
    for key in ("constant", "proportional"):  # DC gain is 1 here
        if abs(doc[key]) < 1e-9:
            doc[key] = 0.0
    return doc


# ----------------------------------------------------------------------
# golden fits
# ----------------------------------------------------------------------

def test_rc_ladder_fit_matches_golden(goldens_dir, update_goldens):
    model = fit_circuit(rc_ladder(), "VIN", "n3",
                        config=PrescreenConfig(n_poles=4),
                        dt=1e-6, t_stop=1e-3)
    assert model.order == 4
    assert model.is_stable()
    assert np.all(np.abs(model.poles.imag) == 0.0)  # RC: real poles only
    status, _ = check_golden(goldens_dir, "surrogate_rc",
                             _golden_payload(model), update=update_goldens)
    assert status in ("matched", "created", "updated")


def test_series_rlc_fit_matches_golden(goldens_dir, update_goldens):
    model = fit_circuit(series_rlc(), "VIN", "n2",
                        config=PrescreenConfig(n_poles=2),
                        dt=1e-6, t_stop=1e-3)
    assert model.order == 2
    assert model.is_stable()
    assert np.any(np.abs(model.poles.imag) > 0.0)  # resonant pair
    # the fitted pair must sit at the analytic resonance
    expected = 1.0 / np.sqrt(1e-3 * 100e-9)
    assert np.allclose(np.abs(model.poles), expected, rtol=1e-6)
    status, _ = check_golden(goldens_dir, "surrogate_rlc",
                             _golden_payload(model), update=update_goldens)
    assert status in ("matched", "created", "updated")


# ----------------------------------------------------------------------
# SurrogateModel behaviour
# ----------------------------------------------------------------------

def test_exact_recovery_of_synthetic_rational():
    poles = np.array([-1e3 + 0j, -2e4 + 5e4j, -2e4 - 5e4j])
    residues = np.array([5e2 + 0j, 1e4 + 2e3j, 1e4 - 2e3j])
    truth = SurrogateModel(poles, residues, constant=0.25)
    s = sample_frequencies(10.0, 1e6, 60)
    model = VectorFitter(n_poles=3).fit(s, truth.transfer_function_at(s))
    assert model.report.rms_error < 1e-10
    got = sorted(model.poles, key=lambda p: (p.real, p.imag))
    want = sorted(poles, key=lambda p: (p.real, p.imag))
    assert np.allclose(got, want, rtol=1e-6)
    assert model.constant == pytest.approx(0.25, rel=1e-6)


def test_transfer_function_scalar_and_array():
    model = SurrogateModel([-1e3], [1e3])
    h0 = model.transfer_function_at(0.0)
    assert isinstance(h0, complex)
    assert h0 == pytest.approx(1.0)
    h = model.transfer_function_at(np.array([0.0, 1e3j]))
    assert h.shape == (2,)
    assert h[1] == pytest.approx(1e3 / (1e3j + 1e3))


def test_impulse_response_matches_closed_form():
    model = SurrogateModel([-2e3], [5e3])
    t = np.linspace(0.0, 2e-3, 64)
    assert np.allclose(model.impulse_response(t), 5e3 * np.exp(-2e3 * t))


def test_transient_step_settles_to_dc_gain():
    # H(s) = 1000/(s+1000): unit-step response settles at H(0) = 1
    model = SurrogateModel([-1e3], [1e3])
    u = np.ones(4000)
    y = model.transient(u, dt=1e-5)
    assert y[-1] == pytest.approx(1.0, abs=1e-6)
    assert np.all(np.diff(y) >= -1e-12)  # monotone first-order rise
    with pytest.raises(ValueError):
        model.transient(u, dt=0.0)


def test_canonical_ordering_and_roundtrip():
    shuffled = SurrogateModel(
        poles=[-1e3 + 4e3j, -5e2, -1e3 - 4e3j],
        residues=[1.0 + 2.0j, 3.0, 1.0 - 2.0j],
        constant=0.5)
    model = shuffled.canonical()
    assert list(model.poles) == [(-1e3 - 4e3j), (-1e3 + 4e3j), (-5e2)]
    back = SurrogateModel.from_dict(model.to_dict())
    s = sample_frequencies(1.0, 1e5, 30)
    assert np.allclose(back.transfer_function_at(s),
                       shuffled.transfer_function_at(s))


def test_fit_rejects_degenerate_inputs():
    fitter = VectorFitter(n_poles=4)
    s = sample_frequencies(1.0, 1e4, 40)
    with pytest.raises(SurrogateError):
        fitter.fit(s[:4], np.ones(4, dtype=complex))  # too few samples
    bad = np.ones(len(s), dtype=complex)
    bad[3] = np.nan
    with pytest.raises(SurrogateError):
        fitter.fit(s, bad)
    with pytest.raises(SurrogateError):
        fitter.fit(s, np.ones(len(s) - 1, dtype=complex))  # shape mismatch


def test_zero_response_is_representable():
    s = sample_frequencies(1.0, 1e4, 40)
    model = VectorFitter(n_poles=2).fit(s, np.zeros(len(s), dtype=complex))
    assert model.report.rms_error == 0.0
    assert np.allclose(model.transfer_function_at(s), 0.0)


def test_sample_frequencies_validation():
    with pytest.raises(ValueError):
        sample_frequencies(0.0, 1e3)
    with pytest.raises(ValueError):
        sample_frequencies(1e3, 1e2)
    with pytest.raises(ValueError):
        sample_frequencies(1.0, 1e3, n_points=1)


def test_fit_circuit_enforces_rms_bound():
    # a 1-pole model cannot track the 4-pole ladder to 1e-12
    with pytest.raises(SurrogateError):
        fit_circuit(rc_ladder(), "VIN", "n3",
                    config=PrescreenConfig(n_poles=1, max_fit_rms=1e-12))


# ----------------------------------------------------------------------
# pole drift
# ----------------------------------------------------------------------

def test_pole_drift_identical_models_is_zero():
    model = fit_circuit(series_rlc(), "VIN", "n2",
                        config=PrescreenConfig(n_poles=2))
    drift = pole_drift(model, model)
    assert drift.unmatched == 0
    assert drift.max_shift == 0.0
    assert PoleDriftDetector(0.05)(model, model) == 0.0


def test_pole_drift_flags_moved_and_missing_poles():
    reference = SurrogateModel([-1e3, -1e4], [1.0, 1.0])
    moved = SurrogateModel([-1.1e3, -1e4], [1.0, 1.0])
    drift = pole_drift(reference, moved)
    assert drift.unmatched == 0
    assert drift.max_shift == pytest.approx(100.0 / 1e3)
    assert PoleDriftDetector(0.05)(reference, moved) == 1.0
    truncated = SurrogateModel([-1e3], [1.0])
    assert pole_drift(reference, truncated).unmatched == 1
    assert PoleDriftDetector(0.05)(reference, truncated) == 1.0
