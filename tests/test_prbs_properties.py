"""Property-based tests for the PRBS generator and MISR compactor.

The m-sequence properties (period, balance, two-level autocorrelation)
are what make the paper's PRBS stimulus usable for correlation-based
testing, so they are asserted for *every* supported register length in
:data:`repro.signals.prbs.MAXIMAL_TAPS`, not just the order-4 generator
the paper uses.  The MISR check covers the compressed test's core
guarantee: no single-bit output error can alias to the good signature.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dft.lfsr import MISR
from repro.signals.prbs import LFSR, MAXIMAL_TAPS, balance, prbs_sequence

ORDERS = sorted(MAXIMAL_TAPS)

orders = st.sampled_from(ORDERS)


@st.composite
def order_and_seed(draw):
    """A supported LFSR order plus a valid (non-zero) register seed."""
    order = draw(orders)
    seed = draw(st.integers(min_value=1, max_value=(1 << order) - 1))
    return order, seed


@settings(deadline=None, max_examples=60)
@given(order_and_seed())
def test_period_is_exactly_2n_minus_1(params):
    """The register cycles through all 2**n - 1 non-zero states: it
    returns to the seed after exactly one period and never earlier."""
    order, seed = params
    lfsr = LFSR(order, seed=seed)
    period = (1 << order) - 1
    states = lfsr.states(period)
    assert states[-1] == seed
    assert seed not in states[:-1]


@settings(deadline=None, max_examples=60)
@given(order_and_seed())
def test_period_balance_is_plus_one(params):
    """2**(n-1) ones vs 2**(n-1) - 1 zeros per period, from any seed."""
    order, seed = params
    bits = prbs_sequence(order, seed=seed)
    assert len(bits) == (1 << order) - 1
    assert balance(bits) == 1


@settings(deadline=None, max_examples=60)
@given(order_and_seed(), st.data())
def test_autocorrelation_is_two_level(params, data):
    """Circular autocorrelation of the +/-1-mapped sequence is N at lag 0
    and exactly -1 at every other lag — the m-sequence property that
    makes PRBS cross-correlation approximate an impulse response."""
    order, seed = params
    period = (1 << order) - 1
    lag = data.draw(st.integers(min_value=1, max_value=period - 1),
                    label="lag")
    mapped = 1 - 2 * prbs_sequence(order, seed=seed)
    assert int(np.dot(mapped, mapped)) == period
    assert int(np.dot(mapped, np.roll(mapped, lag))) == -1


@settings(deadline=None, max_examples=40)
@given(order_and_seed())
def test_seed_only_rotates_the_sequence(params):
    """Changing the seed shifts the phase of the one period; the chip
    pattern itself is a property of the polynomial alone."""
    order, seed = params
    period = (1 << order) - 1
    ref = prbs_sequence(order, seed=1)
    other = prbs_sequence(order, seed=seed)
    doubled = np.concatenate([ref, ref])
    assert any(np.array_equal(other, doubled[k:k + period])
               for k in range(period))


@st.composite
def misr_stream_and_flip(draw):
    """A MISR width, an input word stream, and one bit position to flip."""
    width = draw(orders)
    n_words = draw(st.integers(min_value=1, max_value=64))
    words = draw(st.lists(
        st.integers(min_value=0, max_value=(1 << width) - 1),
        min_size=n_words, max_size=n_words))
    word_index = draw(st.integers(min_value=0, max_value=n_words - 1))
    bit_index = draw(st.integers(min_value=0, max_value=width - 1))
    return width, words, word_index, bit_index


@settings(deadline=None, max_examples=120)
@given(misr_stream_and_flip())
def test_single_bit_error_always_changes_signature(params):
    """Flipping any single bit anywhere in the response stream changes
    the final signature — single-bit output errors can never alias."""
    width, words, word_index, bit_index = params
    good = MISR(width=width).compact(words)
    perturbed = list(words)
    perturbed[word_index] ^= 1 << bit_index
    bad = MISR(width=width).compact(perturbed)
    assert bad != good


@settings(deadline=None, max_examples=60)
@given(misr_stream_and_flip())
def test_misr_is_deterministic_after_reset(params):
    width, words, _, _ = params
    misr = MISR(width=width)
    first = misr.compact(words)
    misr.reset()
    assert misr.compact(words) == first
    assert misr.n_clocked == len(words)


@pytest.mark.parametrize("order", ORDERS)
def test_default_taps_are_maximal(order):
    """Sanity anchor for the table itself: the default polynomial for
    each supported order really is maximal-length."""
    lfsr = LFSR(order, seed=1)
    period = (1 << order) - 1
    assert sorted(lfsr.states(period)) == list(range(1, period + 1))
