"""Observability v2: exporters, span profiling, structured event log,
campaign health and the benchmark-telemetry pipeline."""

import json
import os
import subprocess
import sys
import time
import tracemalloc

import pytest

from repro import obs
from repro.faults import FaultCampaign, StuckAtFault
from repro.obs import bench as obs_bench
from repro.obs import export, profile
from repro.obs.health import CampaignProgress, straggler_report
from repro.obs.log import EventLog
from repro.obs.trace import Tracer
from repro.service import CampaignSpec
from repro.session import RunResult, Session
from repro.spice import Circuit, dc_operating_point, transient
from repro.spice.solver import NewtonError
from repro.spice.transient import GridMismatchWarning


def divider() -> Circuit:
    ckt = Circuit("div")
    ckt.vsource("V1", "top", "0", 5.0)
    ckt.resistor("R1", "top", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def rc_circuit() -> Circuit:
    ckt = Circuit("rc")
    ckt.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-6)
    return ckt


# module-level so the process-pool campaign can pickle them
def _mid_voltage(ckt):
    v, _ = dc_operating_point(ckt)
    return v["mid"]


def _shift_detector(ref, m):
    return 1.0 if abs(m - ref) > 0.5 else 0.0


def _divider_faults():
    return [StuckAtFault.sa0("mid"), StuckAtFault.sa1("mid"),
            StuckAtFault.sa0("top"), StuckAtFault.sa1("top")]


# ---------------------------------------------------------------------------
# satellite fixes in the tracer


class TestTracerV2:
    def test_orphan_children_tagged_truncated(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        tracer.start("innermost")
        # non-local exit: finish the outer span directly; the two open
        # children are closed on the way and tagged
        tracer.finish(outer)
        inner = outer.children[0]
        innermost = inner.children[0]
        assert inner.attrs["truncated"] is True
        assert innermost.attrs["truncated"] is True
        assert "truncated" not in outer.attrs
        assert inner.duration_s is not None

    def test_clean_exit_not_tagged(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert "truncated" not in tracer.spans[0].attrs
        assert "truncated" not in tracer.spans[0].children[0].attrs

    def test_len_is_running_count(self):
        tracer = Tracer()
        assert len(tracer) == 0
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert len(tracer) == 3 == len(tracer.events())
        tracer.reset()
        assert len(tracer) == 0

    def test_spans_record_cpu_time(self):
        tracer = Tracer()
        with tracer.span("busy"):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.01:
                sum(range(100))
        span = tracer.spans[0]
        assert span.cpu_s is not None and span.cpu_s > 0.0
        assert span.to_dict()["cpu_s"] == span.cpu_s

    def test_memory_profiling_records_peaks(self):
        tracer = Tracer(profile_memory=True)
        tracemalloc.start()
        try:
            with tracer.span("alloc"):
                blob = [0] * 200_000
                del blob
        finally:
            tracemalloc.stop()
        span = tracer.spans[0]
        assert span.mem_peak is not None
        assert span.mem_peak > 100_000          # list of 200k ints >> 100 kB
        assert span.to_dict()["mem_peak_bytes"] == span.mem_peak

    def test_no_memory_profiling_by_default(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.spans[0].mem_peak is None


# ---------------------------------------------------------------------------
# exporters


class TestChromeTraceExport:
    def test_required_keys_and_tree_match(self):
        with obs.observe() as o:
            transient(rc_circuit(), t_stop=1e-4, dt=1e-6, record=["out"])
            dc_operating_point(divider())
        doc = export.chrome_trace(o.tracer)
        text = json.dumps(doc)
        parsed = json.loads(text)
        events = parsed["traceEvents"]
        assert len(events) == len(o.tracer.events())
        for ev in events:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in ev
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
        names = {ev["name"] for ev in events}
        assert {"transient", "dc_operating_point"} <= names

    def test_epoch_anchoring_and_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = export.chrome_trace_events(tracer)
        by_name = {ev["name"]: ev for ev in events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] == 0.0                      # per-trace epoch
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3
        assert "cpu_ms" in outer["args"]

    def test_open_spans_skipped(self):
        tracer = Tracer()
        tracer.start("open")
        assert export.chrome_trace_events(tracer) == []

    def test_write_chrome_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", x=1):
            pass
        path = tmp_path / "trace.json"
        export.write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["args"]["x"] == 1


class TestPrometheusExport:
    def test_round_trip(self):
        m = obs.Metrics()
        m.counter("solver.newton_solves").inc(7)
        m.gauge("campaign.worker_utilization").set(0.85)
        for v in (1e-4, 2e-3, 0.5, 3.0):
            m.histogram("campaign.fault_wall_s").observe(v)
        text = export.prometheus_text(m)
        parsed = export.parse_prometheus_text(text)
        assert parsed["repro_solver_newton_solves"]["value"] == 7.0
        assert parsed["repro_solver_newton_solves"]["type"] == "counter"
        util = parsed["repro_campaign_worker_utilization"]
        assert util["value"] == pytest.approx(0.85)
        hist = parsed["repro_campaign_fault_wall_s"]
        assert hist["count"] == 4.0
        assert hist["sum"] == pytest.approx(1e-4 + 2e-3 + 0.5 + 3.0)
        # buckets are cumulative and end at the full count
        assert hist["buckets"]["+Inf"] == 4.0
        cum = [hist["buckets"][k] for k in hist["buckets"]]
        assert cum == sorted(cum)

    def test_name_sanitisation(self):
        m = obs.Metrics()
        m.counter("weird-name.with/slash").inc()
        text = export.prometheus_text(m)
        assert "repro_weird_name_with_slash_total 1" in text

    def test_empty_registry(self):
        assert export.prometheus_text(obs.Metrics()) == ""

    def test_hostile_names_survive_sanitisation(self):
        # user-supplied job labels become metric names
        # (service.job.<id>.progress) — the exporter must emit legal
        # 0.0.4 names for arbitrary input
        assert export._prom_name("", "repro") == "repro__"
        assert export._prom_name("", "") == "_"
        assert export._prom_name("7seg adc", "") == "_7seg_adc"
        assert export._prom_name('job{evil="x"}', "repro") == \
            "repro_job_evil__x__"
        assert export._prom_label_name("job name") == "job_name"
        assert export._prom_label_name("9digit") == "_9digit"

    def test_hostile_labels_round_trip(self):
        m = obs.Metrics()
        m.counter("9weird job{name}").inc(3)
        m.gauge("service.job.progress").set(0.5)
        labels = {"job name": 'evil "quoted\\path"\nnext',
                  "9digit": "braces{}and,commas=ok"}
        text = export.prometheus_text(m, labels=labels)
        parsed = export.parse_prometheus_text(text)
        rec = parsed["repro__9weird_job_name_"]
        assert rec["value"] == 3.0
        assert rec["labels"]["job_name"] == 'evil "quoted\\path"\nnext'
        assert rec["labels"]["_9digit"] == "braces{}and,commas=ok"
        gauge = parsed["repro_service_job_progress"]
        assert gauge["value"] == 0.5
        assert gauge["labels"]["job_name"] == 'evil "quoted\\path"\nnext'
        # the exposition text itself stays single-line per sample
        assert all(line.count('"') % 2 == 0
                   for line in text.splitlines())


class TestJsonlExport:
    def test_lines_parse_and_interleave(self):
        with obs.observe() as o:
            with obs.span("work"):
                obs.event("something.happened", level="warning", detail=42)
        text = export.jsonl_events(o.tracer, o.events)
        lines = text.splitlines()
        records = [json.loads(line) for line in lines]
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "event"}
        ev = next(r for r in records if r["kind"] == "event")
        assert ev["name"] == "something.happened"
        assert ev["span"] == "work"
        assert ev["fields"]["detail"] == 42
        # timestamp ordering
        starts = [r["t_start"] for r in records]
        assert starts == sorted(starts)

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "events.jsonl"
        export.write_jsonl(tracer, str(path))
        assert json.loads(path.read_text().splitlines()[0])["name"] == "a"


class TestEnvExport:
    def _run(self, spec, tmp_path, code):
        env = {"PYTHONPATH": "src", "REPRO_OBS": spec,
               "PATH": os.environ.get("PATH", "/usr/bin:/bin")}
        return subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env,
                              cwd="/root/repo", check=True)

    def test_chrome_spec_exports_at_exit(self, tmp_path):
        out = tmp_path / "ambient.json"
        code = ("from repro.spice import Circuit, dc_operating_point\n"
                "c = Circuit('d')\n"
                "c.vsource('V1', 'a', '0', 1.0)\n"
                "c.resistor('R1', 'a', '0', 1e3)\n"
                "dc_operating_point(c)\n")
        self._run(f"chrome:{out}", tmp_path, code)
        doc = json.loads(out.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert "dc_operating_point" in names

    def test_jsonl_spec_exports_at_exit(self, tmp_path):
        out = tmp_path / "ambient.jsonl"
        code = ("from repro.spice import Circuit, dc_operating_point\n"
                "c = Circuit('d')\n"
                "c.vsource('V1', 'a', '0', 1.0)\n"
                "c.resistor('R1', 'a', '0', 1e3)\n"
                "dc_operating_point(c)\n")
        self._run(f"jsonl:{out}", tmp_path, code)
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert any(r["name"] == "dc_operating_point" for r in records)

    def test_plain_flag_still_works(self):
        assert not obs.enabled()
        switched = obs.enable_from_env({"REPRO_OBS": "unrecognised"})
        assert switched is False
        assert not obs.enabled()


# ---------------------------------------------------------------------------
# profiling


class TestProfile:
    def test_self_and_total_attribution(self):
        tracer = Tracer()
        with tracer.span("outer"):
            time.sleep(0.02)
            with tracer.span("inner"):
                time.sleep(0.03)
        report = profile.aggregate(tracer)
        rows = {r.path: r for r in report.rows}
        outer, inner = rows["outer"], rows["outer/inner"]
        assert outer.total_s >= 0.05 - 1e-3
        assert outer.self_s == pytest.approx(outer.total_s - inner.total_s)
        assert inner.self_s == pytest.approx(inner.total_s)
        # self times partition the trace
        assert sum(r.self_s for r in report.rows) == \
            pytest.approx(report.attributed_s, rel=1e-6)
        assert report.coverage == pytest.approx(1.0)

    def test_repeated_paths_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("run"):
                pass
        report = profile.aggregate(tracer)
        assert len(report.rows) == 1
        assert report.rows[0].calls == 3

    def test_table_renders(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        text = profile.aggregate(tracer).table(top=5)
        assert "path" in text and "self ms" in text and "coverage" in text

    def test_open_spans_skipped(self):
        tracer = Tracer()
        tracer.start("open")
        report = profile.aggregate(tracer)
        assert report.rows == []
        assert report.attributed_s == 0.0

    def test_e7_run_attributes_90_percent(self):
        """Acceptance: an observe()d E7 run attributes >= 90 % of its
        wall-clock to spans."""
        from repro.experiments.registry import run_record
        t0 = time.perf_counter()
        with obs.observe() as o:
            run_record("E7")
        elapsed = time.perf_counter() - t0
        report = profile.aggregate(o.tracer)
        assert report.attributed_s >= 0.9 * elapsed
        assert report.coverage >= 0.9
        # and the chrome export of the same run is loadable trace JSON
        doc = json.loads(json.dumps(export.chrome_trace(o.tracer)))
        assert len(doc["traceEvents"]) == len(o.tracer.events())


# ---------------------------------------------------------------------------
# structured event log


class TestEventLog:
    def test_ring_buffer_bounds(self):
        log = EventLog(maxlen=3)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert log.emitted == 5
        assert [r["fields"]["i"] for r in log.records()] == [2, 3, 4]

    def test_level_validation_and_filtering(self):
        log = EventLog()
        log.emit("a", level="info")
        log.emit("b", level="warning")
        with pytest.raises(ValueError):
            log.emit("c", level="loud")
        assert [r["name"] for r in log.records(level="warning")] == ["b"]

    def test_span_correlation(self):
        with obs.observe() as o:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.event("anomaly", level="warning", code=7)
        rec = o.events.records()[0]
        assert rec["span"] == "outer/inner"
        assert rec["fields"] == {"code": 7}

    def test_event_noop_when_disabled(self):
        assert not obs.enabled()
        obs.event("never")
        assert obs.OBS.events.is_empty()

    def test_newton_nonconvergence_event(self):
        ckt = Circuit("bad")
        ckt.vsource("V1", "a", "0", 1.0)
        ckt.capacitor("C1", "a", "b", 1e-9)
        ckt.capacitor("C2", "b", "0", 1e-9)
        with obs.observe() as o:
            try:
                dc_operating_point(ckt)
            except NewtonError:
                pass
        names = o.events.counts_by_name()
        if "solver.newton_nonconvergence" in names:
            rec = o.events.records(name="solver.newton_nonconvergence")[0]
            assert rec["level"] == "warning"
            assert rec["fields"]["circuit"] == "bad"

    def test_grid_mismatch_event(self):
        with obs.observe() as o:
            with pytest.warns(GridMismatchWarning):
                transient(rc_circuit(), t_stop=1.05e-4, dt=1e-5,
                          record=["out"])
        recs = o.events.records(name="transient.grid_mismatch")
        assert len(recs) == 1
        assert recs[0]["level"] == "warning"
        assert recs[0]["fields"]["circuit"] == "rc"

    def test_events_in_session_report_data(self):
        s = Session(name="evt")
        with pytest.warns(GridMismatchWarning):
            s.transient(rc_circuit(), t_stop=1.05e-4, dt=1e-5,
                        record=["out"])
        doc = s.report_data()
        names = [r["name"] for r in doc["events"]["records"]]
        assert "transient.grid_mismatch" in names


# ---------------------------------------------------------------------------
# campaign health


class TestCampaignHealth:
    def test_progress_callback_sequence(self):
        updates = []
        FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5).run(
            divider(), _divider_faults(),
            spec=CampaignSpec(progress=updates.append))
        assert [(p.done, p.total) for p in updates] == [
            (1, 4), (2, 4), (3, 4), (4, 4)]
        assert all(isinstance(p, CampaignProgress) for p in updates)
        assert updates[-1].eta_s == 0.0
        assert updates[0].fault    # carries the fault description

    def test_progress_parity_serial_vs_workers(self):
        serial, pooled = [], []
        FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5).run(
            divider(), _divider_faults(), spec=CampaignSpec(
                progress=lambda p: serial.append((p.done, p.total, p.fault))))
        FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                      workers=2).run(
            divider(), _divider_faults(), spec=CampaignSpec(
                progress=lambda p: pooled.append((p.done, p.total, p.fault))))
        assert serial == pooled

    def test_heartbeat_parity_serial_vs_workers(self):
        with obs.observe() as serial:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5).run(
                divider(), _divider_faults())
        with obs.observe() as pooled:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          workers=2).run(divider(), _divider_faults())
        assert serial.metrics.counter_values()["campaign.heartbeats"] == \
            pooled.metrics.counter_values()["campaign.heartbeats"] == 4
        assert len(serial.events.records(name="campaign.heartbeat")) == \
            len(pooled.events.records(name="campaign.heartbeat")) == 4
        assert serial.metrics.counter_values() == \
            pooled.metrics.counter_values()

    def test_heartbeat_every(self):
        with obs.observe() as o:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5).run(
                divider(), _divider_faults(),
                spec=CampaignSpec(heartbeat_every=2))
        assert o.metrics.counter_values()["campaign.heartbeats"] == 2

    def test_span_tree_parity_serial_vs_workers(self):
        # pooled workers finish out of order, but outcomes are recorded
        # in fault order — so the grafted span tree must match the
        # serial run's, name for name and fault for fault
        with obs.observe() as serial:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5).run(
                divider(), _divider_faults())
        with obs.observe() as pooled:
            FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                          workers=2).run(divider(), _divider_faults())

        def fault_children(o):
            (root,) = o.tracer.spans
            return [(c.name, c.attrs.get("fault")) for c in root.children
                    if c.name.startswith("fault.")]

        assert fault_children(serial) == fault_children(pooled)
        assert [f[1] for f in fault_children(serial)] == \
            [f.describe() for f in _divider_faults()]

    def test_outcomes_carry_worker_pid(self):
        result = FaultCampaign(_mid_voltage, _shift_detector,
                               threshold=0.5).run(divider(),
                                                  _divider_faults())
        assert all(o.worker_pid == os.getpid() for o in result.outcomes)
        pooled = FaultCampaign(_mid_voltage, _shift_detector, threshold=0.5,
                               workers=2).run(divider(), _divider_faults())
        assert all(o.worker_pid is not None for o in pooled.outcomes)
        assert all(o.worker_pid != os.getpid() for o in pooled.outcomes)

    def test_straggler_detection(self):
        from repro.faults.campaign import FaultOutcome

        class _F:
            def __init__(self, name):
                self.name = name

            def describe(self):
                return self.name

        class _R:
            outcomes = []

        fast = [FaultOutcome(fault=_F(f"f{i}"), detection=1.0, detected=True,
                             elapsed_s=0.01, worker_pid=100)
                for i in range(6)]
        slow = FaultOutcome(fault=_F("slowpoke"), detection=1.0,
                            detected=True, elapsed_s=0.5, worker_pid=200)
        result = _R()
        result.outcomes = fast + [slow]
        report = straggler_report(result, factor=4.0)
        assert not report.healthy
        assert report.slow_faults == ["slowpoke"]
        assert report.slow_workers == [200]
        assert {w.pid for w in report.workers} == {100, 200}
        assert "straggler" in report.summary()
        # and an all-even campaign is healthy
        even = _R()
        even.outcomes = fast
        assert straggler_report(even, factor=4.0).healthy

    def test_campaign_result_health_and_report(self):
        with obs.observe():
            result = FaultCampaign(_mid_voltage, _shift_detector,
                                   threshold=0.5).run(divider(),
                                                      _divider_faults())
        assert result.health().n_faults == 4
        text = result.report()
        assert "campaign health" in text
        assert "fault campaign on div" in text


# ---------------------------------------------------------------------------
# benchmark-telemetry pipeline


class TestBenchPipeline:
    def test_bench_writes_json_with_median_iqr_counters(self, tmp_path):
        path = obs_bench.run_suite(suite="sim", ids=["divider_campaign"],
                                   rounds=3, out_dir=str(tmp_path),
                                   echo=False)
        assert os.path.basename(path) == "BENCH_sim.json"
        doc = json.loads(open(path).read())
        assert doc["schema"] == obs_bench.SCHEMA
        rec = doc["workloads"]["divider_campaign"]
        assert rec["median_s"] > 0
        assert rec["iqr_s"] >= 0
        assert len(rec["times_s"]) == 3
        assert rec["counters"]["solver.newton_solves"] >= 1
        assert rec["counters"]["campaign.faults_evaluated"] == 4

    def test_compare_gates_synthetic_regression(self, tmp_path):
        base = {"schema": obs_bench.SCHEMA, "suite": "sim", "rounds": 3,
                "workloads": {"w": {"median_s": 1.0, "iqr_s": 0.0,
                                    "counters": {"solver.newton_solves": 10}}}}
        slow = {"schema": obs_bench.SCHEMA, "suite": "sim", "rounds": 3,
                "workloads": {"w": {"median_s": 1.5, "iqr_s": 0.0,
                                    "counters": {"solver.newton_solves": 40}}}}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(slow))
        import io
        out = io.StringIO()
        assert obs_bench.compare_benches(str(a), str(b), threshold=1.15,
                                         out=out) == 1
        report = out.getvalue()
        assert "FAIL" in report
        assert "counter solver.newton_solves: 10 -> 40" in report
        # within threshold -> clean exit
        assert obs_bench.compare_benches(str(a), str(a), threshold=1.15,
                                         out=io.StringIO()) == 0
        # warn-only downgrades
        assert obs_bench.compare_benches(str(a), str(b), threshold=1.15,
                                         warn_only=True,
                                         out=io.StringIO()) == 0

    def test_bench_stamps_runtime_meta(self, tmp_path):
        import platform
        path = obs_bench.run_suite(suite="sim", ids=["divider_campaign"],
                                   rounds=1, out_dir=str(tmp_path),
                                   echo=False)
        doc = json.loads(open(path).read())
        meta = doc["meta"]
        assert set(meta) >= {"hostname", "python", "git_commit",
                             "git_dirty", "numpy"}
        assert meta["python"] == platform.python_version()

    def test_compare_ignores_meta(self, tmp_path):
        import io
        rec = {"median_s": 1.0, "iqr_s": 0.0, "counters": {}}
        base = {"schema": obs_bench.SCHEMA, "suite": "sim", "rounds": 3,
                "workloads": {"w": dict(rec)},
                "meta": {"hostname": "box-a", "git_commit": "aaaa"}}
        cand = {"schema": obs_bench.SCHEMA, "suite": "sim", "rounds": 3,
                "workloads": {"w": dict(rec)},
                "meta": {"hostname": "box-b", "git_commit": "bbbb"}}
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(cand))
        # different provenance, identical timings: provenance is
        # recorded for humans, never gated on
        assert obs_bench.compare_benches(str(a), str(b), threshold=1.15,
                                         out=io.StringIO()) == 0

    def test_cli_bench_and_compare(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        run = subprocess.run(
            [sys.executable, "-m", "repro.obs", "bench", "--suite", "sim",
             "--ids", "divider_campaign", "--rounds", "1",
             "--out", str(tmp_path), "--quiet"],
            capture_output=True, text=True, env=env, cwd="/root/repo")
        assert run.returncode == 0, run.stderr
        bench_file = tmp_path / "BENCH_sim.json"
        assert bench_file.exists()
        cmp_run = subprocess.run(
            [sys.executable, "-m", "repro.obs", "compare",
             str(bench_file), str(bench_file)],
            capture_output=True, text=True, env=env, cwd="/root/repo")
        assert cmp_run.returncode == 0, cmp_run.stderr
        assert "within the" in cmp_run.stdout

    def test_unknown_suite_and_workload(self, tmp_path):
        with pytest.raises(KeyError):
            obs_bench.run_suite(suite="nope", out_dir=str(tmp_path))
        with pytest.raises(KeyError):
            obs_bench.run_suite(suite="sim", ids=["missing"],
                                out_dir=str(tmp_path))


# ---------------------------------------------------------------------------
# session / run-result reports


class TestReports:
    def test_session_report_text(self):
        s = Session(name="reportable")
        s.transient(rc_circuit(), t_stop=1e-4, dt=1e-6, record=["out"])
        text = s.report()
        assert "=== reportable ===" in text
        assert "hotspots" in text
        assert "transient" in text
        assert "solver.newton_solves" in text or \
            "solver.linear_solves" in text

    def test_session_report_html(self, tmp_path):
        s = Session(name="web")
        s.transient(rc_circuit(), t_stop=1e-4, dt=1e-6, record=["out"])
        html = s.report(html=True)
        assert html.startswith("<!DOCTYPE html>")
        assert "Hotspots" in html
        assert "chrome-trace" in html
        # the embedded trace is loadable JSON
        start = html.index('id="chrome-trace">') + len('id="chrome-trace">')
        end = html.index("</script>", start)
        doc = json.loads(html[start:end])
        assert doc["traceEvents"]

    def test_run_results_speak_report(self):
        s = Session(name="protocol")
        result = s.transient(rc_circuit(), t_stop=1e-4, dt=1e-6,
                             record=["out"])
        assert isinstance(result, RunResult)
        assert "transient" in result.report()
        bare = transient(rc_circuit(), t_stop=1e-4, dt=1e-6, record=["out"])
        assert "no trace recorded" in bare.report()

    def test_experiments_cli_html(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        out = tmp_path / "report.html"
        run = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "E8",
             "--html", str(out)],
            capture_output=True, text=True, env=env, cwd="/root/repo")
        assert run.returncode == 0, run.stderr
        assert out.read_text().startswith("<!DOCTYPE html>")
