"""repro — reproduction of Cobley, "Approaches to On-chip Testing of
Mixed Signal Macros in ASICs" (ED&TC / DATE 1996).

Top-level convenience re-exports cover the most common entry points; the
sub-packages hold the full API:

* :mod:`repro.core`     — the paper's contribution: on-chip BIST macros and
  transient-response testing.
* :mod:`repro.spice`    — MNA transient circuit simulator (HSPICE substitute).
* :mod:`repro.lti`      — state-space / transfer-function toolkit.
* :mod:`repro.signals`  — waveforms, PRBS, correlation.
* :mod:`repro.faults`   — fault models, injection, campaigns.
* :mod:`repro.dft`      — scan, LFSR/MISR, counters, monotonicity FSM.
* :mod:`repro.process`  — process variation, device batches.
* :mod:`repro.circuits` — the paper's example circuits (OP1, SC integrator...).
* :mod:`repro.adc`      — behavioural dual-slope ADC macro and metrics.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

__version__ = "1.0.0"

from repro.signals import Waveform

__all__ = ["Waveform", "__version__"]
