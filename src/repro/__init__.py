"""repro — reproduction of Cobley, "Approaches to On-chip Testing of
Mixed Signal Macros in ASICs" (ED&TC / DATE 1996).

The blessed entry points are re-exported here; the sub-packages hold the
full API:

* :mod:`repro.session` — :class:`Session`, the unified run API: engine
  configuration + observability in one facade, structured RunResult
  objects out.
* :mod:`repro.obs`      — instrumentation: tracing spans, metrics,
  the ``observe()`` scope.
* :mod:`repro.core`     — the paper's contribution: on-chip BIST macros and
  transient-response testing.
* :mod:`repro.spice`    — MNA transient circuit simulator (HSPICE substitute).
* :mod:`repro.lti`      — state-space / transfer-function toolkit.
* :mod:`repro.signals`  — waveforms, PRBS, correlation.
* :mod:`repro.faults`   — fault models, injection, campaigns.
* :mod:`repro.dft`      — scan, LFSR/MISR, counters, monotonicity FSM.
* :mod:`repro.process`  — process variation, device batches.
* :mod:`repro.circuits` — the paper's example circuits (OP1, SC integrator...).
* :mod:`repro.adc`      — behavioural dual-slope ADC macro and metrics.
* :mod:`repro.experiments` — one runner per paper table/figure.
* :mod:`repro.verify`   — simulator verification: differential fuzzing
  against analytic oracles, convergence-order checks, golden store
  (``python -m repro.verify``).
* :mod:`repro.errors`   — the shared exception hierarchy (everything
  the package raises derives from :class:`ReproError`).
* :mod:`repro.resilience` — deadlines, solver retry ladders,
  checkpoint/resume and crash-recovery accounting for long campaigns.
* :mod:`repro.service` — campaign-as-a-service: the frozen
  :class:`CampaignSpec` job description, the content-addressed
  :class:`ResultCache` (never simulate the same fault twice) and the
  async :class:`CampaignScheduler` fanning concurrent campaigns over a
  shared worker pool.

Quickstart::

    from repro import Session

    s = Session(workers=4)
    run = s.run_experiment("E7")     # Figure 4 reproduction
    print(run.summary())
    print(s.metrics.counter_values()["solver.newton_iterations"])
"""

__version__ = "1.1.0"

from repro import obs
from repro.dft import LogicBISTEngine
from repro.errors import (
    CampaignError,
    CheckpointError,
    CounterTimeout,
    DeadlineExceeded,
    DeckError,
    NewtonError,
    ReproError,
)
from repro.faults import CampaignResult, FaultCampaign
from repro.resilience import FailureReport, RetryPolicy
from repro.service import CampaignScheduler, CampaignSpec, ResultCache
from repro.session import RunResult, Session
from repro.signals import Waveform
from repro.spice import (
    Circuit,
    TransientResult,
    dc_operating_point,
    transient,
)

__all__ = [
    "__version__",
    # facade + instrumentation
    "Session",
    "RunResult",
    "obs",
    # simulator
    "Circuit",
    "transient",
    "TransientResult",
    "dc_operating_point",
    # fault campaigns
    "FaultCampaign",
    "CampaignResult",
    # campaign service
    "CampaignSpec",
    "ResultCache",
    "CampaignScheduler",
    # resilience + errors
    "FailureReport",
    "RetryPolicy",
    "ReproError",
    "NewtonError",
    "DeckError",
    "CampaignError",
    "CheckpointError",
    "DeadlineExceeded",
    "CounterTimeout",
    # digital BIST
    "LogicBISTEngine",
    # signals
    "Waveform",
]
