"""The unified run API: one facade over solver, campaigns, BIST and
experiments.

A :class:`Session` owns the engine configuration (``fast_path``,
``workers``) and an observability sink (tracer + metrics) configured
once, then threads them through every entry point::

    from repro import Session

    s = Session(workers=4)
    result = s.transient(circuit, t_stop=1e-3, dt=1e-6)   # TransientResult
    cover = s.run_campaign(technique, detector, target, faults)
    run = s.run_experiment("E7")                           # ExperimentRun

    print(result.summary())          # every result speaks RunResult:
    print(cover.to_dict()["n_errors"])  # .summary() / .to_dict() / .trace
    print(s.trace_json())            # one trace tree over all the runs
    print(s.metrics.counter_values())

Every result a Session returns follows the ``RunResult`` protocol —
``summary() -> str``, ``to_dict() -> dict`` and a ``trace`` attribute
holding the run's root span — so heterogeneous workloads (a transient
here, a fault campaign there) report through one shape.

Sessions accumulate: successive runs append to the same trace forest and
the same metrics registry, which is what makes a session report a
coherent account of a whole evaluation (e.g. all nine experiments).
Direct calls to :func:`repro.spice.transient.transient` and friends keep
working unchanged — the Session is sugar plus scoping, not a new engine.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, \
    runtime_checkable

from repro.obs.core import Observation, observe
from repro.obs.log import EventLog
from repro.obs.metrics import Metrics
from repro.obs.trace import Span, Tracer


@runtime_checkable
class RunResult(Protocol):
    """The structured-result shape every Session entry point returns.

    ``trace`` is the run's root :class:`~repro.obs.trace.Span` when the
    run executed under an observation scope, else ``None``.
    ``report()`` renders the run as a terminal summary (its summary line
    plus a per-span cost profile when traced).
    """

    trace: Optional[Span]

    def summary(self) -> str: ...

    def to_dict(self) -> Dict[str, Any]: ...

    def report(self) -> str: ...


class Session:
    """Facade binding engine configuration and observability together.

    Parameters
    ----------
    fast_path:
        Engine selection for every solve issued through this session
        (``False`` = the reference stamp-everything engine).
    workers:
        Default process count for fault campaigns run through the
        session.
    obs:
        ``True`` (default) gives the session its own tracer/metrics and
        runs every entry point inside that observation scope.
        ``False`` runs everything uninstrumented (the session still
        normalises results, the sinks just stay empty).
    name:
        Label for reports.
    ledger:
        A :class:`~repro.obs.ledger.RunLedger` (or a path to one) every
        campaign run through this session records a history row into.
    queue_path:
        Path to a :class:`~repro.service.queue.PersistentJobQueue`
        journal making the session's scheduler durable: submitted jobs
        are write-ahead journaled, and a session restarted over the
        same path replays the journal — undone jobs are re-submitted
        with their original identity and produce results identical to
        an uninterrupted run (see :meth:`recover`).
    """

    def __init__(self, *, fast_path: bool = True, workers: int = 1,
                 obs: bool = True, name: str = "session",
                 cache: Any = None, ledger: Any = None,
                 queue_path: Any = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.fast_path = fast_path
        self.workers = workers
        self.obs = obs
        self.name = name
        self.cache = cache
        if isinstance(ledger, (str, os.PathLike)):
            from repro.obs.ledger import RunLedger
            ledger = RunLedger(ledger)
        self.ledger = ledger
        self.queue_path = (None if queue_path is None
                           else os.fspath(queue_path))
        self.tracer = Tracer()
        self.metrics = Metrics()
        self.events = EventLog()
        self._scheduler: Any = None

    # -- scope handling ------------------------------------------------
    def _scope(self):
        """Observation scope installing this session's sinks (or a
        do-nothing scope when observability is off)."""
        if self.obs:
            return observe(tracer=self.tracer, metrics=self.metrics,
                           events=self.events, ledger=self.ledger)
        import contextlib
        return contextlib.nullcontext(
            Observation(self.tracer, self.metrics, self.events))

    # -- solver --------------------------------------------------------
    def transient(self, circuit, t_stop: float, dt: float, **kwargs):
        """Run a transient analysis (see :func:`repro.spice.transient`).

        Returns the :class:`~repro.spice.transient.TransientResult`,
        with its ``trace`` attached when observability is on."""
        from repro.spice.transient import transient
        kwargs.setdefault("fast_path", self.fast_path)
        with self._scope():
            return transient(circuit, t_stop, dt, **kwargs)

    def operating_point(self, circuit, **kwargs):
        """DC operating point; returns ``(node_voltages, vector)``."""
        from repro.spice.solver import dc_operating_point
        kwargs.setdefault("fast_path", self.fast_path)
        with self._scope():
            return dc_operating_point(circuit, **kwargs)

    # -- fault campaigns -----------------------------------------------
    def campaign(self, technique: Callable[[Any], Any],
                 detector: Callable[[Any, Any], float], **kwargs):
        """A :class:`~repro.faults.campaign.FaultCampaign` bound to the
        session's worker count (run it through :meth:`run_campaign` to
        record into the session's sinks)."""
        from repro.faults.campaign import FaultCampaign
        kwargs.setdefault("workers", self.workers)
        return FaultCampaign(technique, detector, **kwargs)

    #: keyword arguments of :meth:`run_campaign` that belong on the
    #: :class:`~repro.service.spec.CampaignSpec` (resilience/progress/
    #: service knobs) rather than the campaign constructor.
    _RUN_KWARGS = ("progress", "heartbeat_every", "fault_timeout_s",
                   "campaign_deadline_s", "checkpoint", "resume",
                   "checkpoint_every", "timeout_grace_s")

    def run_campaign(self, technique: Callable[[Any], Any],
                     detector: Callable[[Any, Any], float],
                     target: Any, faults: Iterable, *,
                     reference: Any = None, spec: Any = None, **kwargs):
        """Build and run a campaign in one call; returns the
        :class:`~repro.faults.campaign.CampaignResult`.

        Constructor knobs (``threshold``, ``workers``,
        ``errors_as_detected``...) and spec-level resilience knobs
        (``fault_timeout_s``, ``campaign_deadline_s``, ``checkpoint``,
        ``resume``...) can be mixed freely; each is routed where it
        belongs.  A full :class:`~repro.service.spec.CampaignSpec` can
        be passed as ``spec=`` instead.  The session's result cache
        (``Session(cache=...)``) is applied to every campaign run that
        does not carry its own."""
        from repro.service.spec import CampaignSpec
        run_kwargs = {k: kwargs.pop(k) for k in self._RUN_KWARGS
                      if k in kwargs}
        campaign = self.campaign(technique, detector, **kwargs)
        if spec is None:
            spec = CampaignSpec(**run_kwargs)
        elif run_kwargs:
            spec = spec.replace(**run_kwargs)
        if spec.cache is None and self.cache is not None:
            spec = spec.replace(cache=self.cache)
        with self._scope():
            return campaign.run(target, faults, reference=reference,
                                spec=spec)

    # -- campaign service ----------------------------------------------
    def scheduler(self, **kwargs):
        """The session's (lazily created)
        :class:`~repro.service.scheduler.CampaignScheduler`, sharing the
        session's worker count and result cache.  ``kwargs`` configure
        the first creation only."""
        if self._scheduler is None:
            from repro.service.scheduler import CampaignScheduler
            kwargs.setdefault("workers", self.workers)
            kwargs.setdefault("cache", self.cache)
            kwargs.setdefault("name", f"{self.name}-svc")
            kwargs.setdefault("queue", self.queue_path)
            self._scheduler = CampaignScheduler(**kwargs)
        return self._scheduler

    def recover(self) -> List[Any]:
        """Replay the session's durable queue: re-submit every job a
        previous (crashed) process accepted but never settled, under
        the session's observation scope.  Returns the fresh
        :class:`~repro.service.scheduler.CampaignJob` handles (empty
        without ``queue_path=``); collect them with :meth:`gather`."""
        if self.queue_path is None:
            return []
        with self._scope():
            return self.scheduler().recover()

    def submit(self, *args: Any, priority: Optional[int] = None,
               **options: Any):
        """Submit a campaign job to the session's scheduler; returns a
        :class:`~repro.service.scheduler.CampaignJob` immediately.

        Accepts either one prepared
        :class:`~repro.service.spec.CampaignSpec` (``options`` are
        applied on top via :meth:`CampaignSpec.replace`), or the
        positional workload ``(technique, detector, target, faults)``
        with spec fields as keywords.  Collect results — each a
        ``RunResult``-speaking
        :class:`~repro.faults.campaign.CampaignResult` — with
        :meth:`gather`."""
        from repro.service.spec import CampaignSpec
        if len(args) == 1 and isinstance(args[0], CampaignSpec):
            spec = args[0]
            if options:
                spec = spec.replace(**options)
        elif len(args) == 4:
            technique, detector, target, faults = args
            spec = CampaignSpec(technique=technique, detector=detector,
                                target=target, faults=tuple(faults),
                                **options)
        else:
            raise TypeError(
                "submit() takes one CampaignSpec or the positional "
                "workload (technique, detector, target, faults)")
        # submit under the session scope so the job captures the
        # session's trace context (cross-process trace propagation) and
        # its run ledger at the moment of submission
        with self._scope():
            return self.scheduler().submit(spec, priority=priority)

    def gather(self, *jobs: Any, timeout: Optional[float] = None):
        """Wait for submitted jobs (default: all of them); returns
        their :class:`~repro.faults.campaign.CampaignResult` objects in
        argument order.  Runs under the session's observation scope so
        jobs finishing during the wait merge their metrics/events into
        the session sinks."""
        if self._scheduler is None:
            return []
        with self._scope():
            return self._scheduler.gather(*jobs, timeout=timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Close the session's scheduler (no-op when none was
        created); with ``wait`` (default) all submitted jobs finish
        first."""
        if self._scheduler is not None:
            with self._scope():
                self._scheduler.close(wait=wait)
            self._scheduler = None

    def watch(self, interval: float = 0.5, out: Any = None,
              max_frames: Optional[int] = None) -> str:
        """Live terminal dashboard over the session's scheduler: one
        frame per ``interval`` showing in-flight jobs, shard progress,
        ETA, straggler flags and the cache hit rate, until every
        submitted job has finished (or ``max_frames``).  Returns the
        last frame rendered."""
        from repro.obs.dashboard import render_frame, status_snapshot, watch
        if self._scheduler is None:
            frame = render_frame({})
            if out is not None:
                print(frame, file=out)
            return frame
        sched = self._scheduler
        return watch(lambda: status_snapshot(sched), out=out,
                     interval=interval, max_frames=max_frames,
                     done=lambda: all(j.done() for j in sched._jobs))

    # -- digital BIST --------------------------------------------------
    def bist(self, width: int, **kwargs):
        """A :class:`~repro.dft.bist_engine.LogicBISTEngine` (run it
        through :meth:`run_bist` to record into the session)."""
        from repro.dft.bist_engine import LogicBISTEngine
        return LogicBISTEngine(width, **kwargs)

    def run_bist(self, engine, block: Callable[[int], int]):
        """Run one BIST session; returns the
        :class:`~repro.dft.bist_engine.BISTSession`."""
        with self._scope():
            return engine.run(block)

    # -- experiments ---------------------------------------------------
    def run_experiment(self, exp_id: str):
        """Run one registered experiment; returns its
        :class:`~repro.experiments.registry.ExperimentRun` record."""
        from repro.experiments.registry import run_record
        with self._scope():
            return run_record(exp_id)

    def run_experiments(self, ids: Optional[List[str]] = None,
                        echo: bool = True):
        """Run several (default: all) experiments; id → record."""
        from repro.experiments.registry import run_records
        with self._scope():
            return run_records(ids, echo=echo)

    # -- reporting -----------------------------------------------------
    def report(self, html: bool = False, top: int = 10) -> str:
        """Render everything the session observed — root-span table,
        top-N hotspot profile, metric tables, notable events — as a
        terminal summary (default) or a standalone HTML document
        (``html=True``, with the Chrome trace JSON embedded)."""
        from repro.obs.report import render_html_report, render_text_report
        render = render_html_report if html else render_text_report
        text = render(self.name, self.tracer, self.metrics,
                      events=self.events, top=top,
                      config={"fast_path": self.fast_path,
                              "workers": self.workers, "obs": self.obs})
        if (not html and self.cache is not None
                and self.cache.stats.lookups):
            text += f"\n{self.cache.stats.describe()}\n"
        return text

    def report_data(self) -> Dict[str, Any]:
        """Everything the session observed, machine-readably: trace
        tree + metrics + structured events."""
        return {
            "session": self.name,
            "config": {"fast_path": self.fast_path, "workers": self.workers,
                       "obs": self.obs},
            "trace": self.tracer.to_dict(),
            "metrics": self.metrics.to_dict(),
            "events": self.events.to_dict(),
        }

    def trace_json(self, indent: Optional[int] = 2) -> str:
        """The session report as a JSON document."""
        import json
        return json.dumps(self.report_data(), indent=indent, default=str)

    def chrome_trace(self) -> Dict[str, Any]:
        """The session trace as a Chrome Trace Event document (load the
        JSON in Perfetto / ``chrome://tracing``)."""
        from repro.obs.export import chrome_trace
        return chrome_trace(self.tracer)

    def span_events(self) -> List[Dict[str, Any]]:
        """Flat event-log view of the session trace."""
        return self.tracer.events()

    def reset(self) -> None:
        """Drop accumulated trace/metrics/events (config is kept)."""
        self.tracer.reset()
        self.metrics = Metrics()
        self.events = EventLog()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session({self.name!r}, fast_path={self.fast_path}, "
                f"workers={self.workers}, obs={self.obs}, "
                f"{len(self.tracer.spans)} root spans)")
