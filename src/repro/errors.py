"""Shared exception hierarchy for the whole package.

Every error the library raises on purpose derives from
:class:`ReproError`, so callers can catch one type at a campaign or
session boundary without fishing for module-specific classes.  Where an
older exception type was already public (``NewtonError`` used to derive
from :class:`RuntimeError`, the counter raised the builtin
:class:`TimeoutError`, the parser error derived from
:class:`ValueError`) the legacy base is *kept* as a secondary base, so
existing ``except`` clauses keep working.

The hierarchy::

    ReproError
    ├── NewtonError          (also RuntimeError)   solver non-convergence
    ├── DeckError            (also ValueError)     bad netlist, pre-flight
    │   └── NetlistSyntaxError                     (in repro.spice.parser)
    ├── CampaignError        (also RuntimeError)   fault-campaign failures
    │   └── CheckpointError                        bad/mismatched checkpoint
    ├── SurrogateError                             vector fit / prescreen failure
    ├── DeadlineExceeded                           resilience-layer deadline
    └── CounterTimeout       (also TimeoutError)   counter never settles

:class:`DeadlineExceeded` is deliberately *not* a
:class:`TimeoutError`: the counter's functional "never settles"
condition (:class:`CounterTimeout`) and the resilience layer's
wall-clock deadlines must never be confused by a broad
``except TimeoutError``.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class for every deliberate error raised by :mod:`repro`."""


class NewtonError(ReproError, RuntimeError):
    """Every convergence strategy failed for a nonlinear solve.

    (Historically defined in :mod:`repro.spice.solver` as a plain
    :class:`RuntimeError` subclass; the :class:`RuntimeError` base is
    kept for compatibility.)
    """


class DeckError(ReproError, ValueError):
    """A netlist cannot be simulated as written.

    Raised by pre-flight validation (floating nodes, shorted
    voltage-source loops) *before* the solver runs, naming the offending
    node or element — instead of a ``singular MNA matrix`` surfacing
    from deep inside a Newton iteration.
    """


class CampaignError(ReproError, RuntimeError):
    """A fault campaign could not run or finish as configured."""


class CheckpointError(CampaignError):
    """A campaign checkpoint file is unreadable, corrupt, or belongs to
    a different (technique, fault universe, config) key."""


class SurrogateError(ReproError):
    """A reduced-order surrogate could not be fitted or trusted.

    Raised by :mod:`repro.surrogate` when vector fitting diverges, the
    sampled response is degenerate, or a fitted model violates its
    declared error bound.  The surrogate prescreen treats this as
    "escalate to the full transient", never as a verdict.
    """


class DeadlineExceeded(ReproError):
    """A resilience-layer wall-clock deadline expired.

    Carries the :class:`~repro.resilience.deadline.Deadline` that fired
    (``.deadline``) so nested scopes — a per-fault timeout inside a
    campaign-wide deadline — can tell *which* budget ran out.
    """

    def __init__(self, message: str, deadline: Optional[Any] = None) -> None:
        super().__init__(message)
        self.deadline = deadline


class CounterTimeout(ReproError, TimeoutError):
    """The counter macro clocked past its cycle budget without the
    predicate holding — the paper's stopped-conversion control-fault
    signature.  Derives from :class:`TimeoutError` for compatibility
    with older ``except TimeoutError`` call sites; distinct from
    :class:`DeadlineExceeded` (the resilience layer's wall-clock
    timeout) by design.
    """


__all__ = [
    "ReproError",
    "NewtonError",
    "DeckError",
    "CampaignError",
    "CheckpointError",
    "SurrogateError",
    "DeadlineExceeded",
    "CounterTimeout",
]
