"""Parameter variation models.

A :class:`VariationSpec` describes how one behavioural parameter spreads
across fabricated devices (normal or lognormal, absolute or relative
sigma); a :class:`VariationModel` bundles specs and samples whole
parameter sets reproducibly from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np


@dataclass(frozen=True)
class VariationSpec:
    """Spread description for one parameter.

    Parameters
    ----------
    parameter:
        Dotted attribute path on the device model
        (e.g. ``"integrator.cap_ratio"``).
    sigma:
        Standard deviation of the perturbation.
    relative:
        When true, ``sigma`` is a fraction of the nominal value.
    distribution:
        ``"normal"`` or ``"lognormal"`` (lognormal suits strictly positive
        quantities like capacitances).
    clip_lo, clip_hi:
        Optional hard physical bounds applied after sampling.
    """

    parameter: str
    sigma: float
    relative: bool = True
    distribution: str = "normal"
    clip_lo: Optional[float] = None
    clip_hi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.distribution not in ("normal", "lognormal"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def sample(self, nominal: float, rng: np.random.Generator) -> float:
        """Draw one device's value of this parameter."""
        if self.distribution == "lognormal":
            # sigma interpreted as the log-domain std deviation
            value = nominal * float(rng.lognormal(0.0, self.sigma))
        else:
            spread = self.sigma * (abs(nominal) if self.relative else 1.0)
            value = nominal + float(rng.normal(0.0, spread))
        if self.clip_lo is not None:
            value = max(value, self.clip_lo)
        if self.clip_hi is not None:
            value = min(value, self.clip_hi)
        return value


class VariationModel:
    """A set of variation specs sampled together per device."""

    def __init__(self, specs: Iterable[VariationSpec], seed: int = 1996) -> None:
        self.specs = list(specs)
        names = [s.parameter for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter in variation specs")
        self.seed = seed

    def sample_device(self, nominals: Dict[str, float],
                      device_index: int) -> Dict[str, float]:
        """Parameter values for device ``device_index``.

        Sampling is keyed by (seed, device index) so a batch is
        reproducible and each device independent.
        """
        rng = np.random.default_rng((self.seed, device_index))
        values = {}
        for spec in self.specs:
            if spec.parameter not in nominals:
                raise KeyError(f"no nominal value for {spec.parameter!r}")
            values[spec.parameter] = spec.sample(nominals[spec.parameter], rng)
        return values

    def sample_batch(self, nominals: Dict[str, float],
                     n_devices: int) -> List[Dict[str, float]]:
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        return [self.sample_device(nominals, i) for i in range(n_devices)]

    def parameters(self) -> List[str]:
        return [s.parameter for s in self.specs]
