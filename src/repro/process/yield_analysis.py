"""Parametric yield analysis over a fabricated batch.

Connects the process-variation substrate to the characterisation
pipeline: fabricate N devices, fully characterise each, and report how
many meet each specification line — the quantitative backdrop to the
paper's batch-of-10 result (a lot whose nominal device already violates
the INL/DNL spec will show a linearity-limited yield, while the quick
BIST still passes every device on its functional criteria).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.adc.calibration import (
    SPEC_DNL_LSB,
    SPEC_GAIN_LSB,
    SPEC_INL_LSB,
    SPEC_OFFSET_LSB,
)
from repro.adc.dual_slope import DualSlopeADC
from repro.adc.errors import ADCCharacterization
from repro.adc.histogram import characterize_servo
from repro.process.batch import Batch
from repro.process.variation import VariationModel


@dataclass
class YieldReport:
    """Per-spec-line pass counts over a characterised batch."""

    n_devices: int
    offset_pass: int
    gain_pass: int
    inl_pass: int
    dnl_pass: int
    all_pass: int
    characterizations: List[ADCCharacterization] = field(default_factory=list)

    def line_yield(self) -> Dict[str, float]:
        n = max(self.n_devices, 1)
        return {
            "offset": self.offset_pass / n,
            "gain": self.gain_pass / n,
            "inl": self.inl_pass / n,
            "dnl": self.dnl_pass / n,
            "all": self.all_pass / n,
        }

    def worst_metric(self) -> str:
        """The spec line limiting overall yield."""
        line = self.line_yield()
        return min(("offset", "gain", "inl", "dnl"), key=lambda k: line[k])

    def summary(self) -> str:
        line = self.line_yield()
        parts = ", ".join(f"{k} {100 * v:.0f}%" for k, v in line.items())
        return (f"parametric yield over {self.n_devices} devices: {parts} "
                f"(limited by {self.worst_metric()})")


def parametric_yield(variation: VariationModel,
                     n_devices: int = 10,
                     factory: Callable[[], DualSlopeADC] = DualSlopeADC,
                     spec_offset_lsb: float = SPEC_OFFSET_LSB,
                     spec_gain_lsb: float = SPEC_GAIN_LSB,
                     spec_inl_lsb: float = SPEC_INL_LSB,
                     spec_dnl_lsb: float = SPEC_DNL_LSB,
                     keep_characterizations: bool = False) -> YieldReport:
    """Characterise a fabricated batch against the four spec lines."""
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    devices = Batch(factory, variation).fabricate(n_devices)
    offset = gain = inl = dnl = everything = 0
    kept: List[ADCCharacterization] = []
    for device in devices:
        ch = characterize_servo(device.model)
        ok_offset = abs(ch.offset_error_lsb) < spec_offset_lsb
        ok_gain = abs(ch.gain_error_lsb) <= spec_gain_lsb
        ok_inl = ch.max_inl_lsb <= spec_inl_lsb
        ok_dnl = ch.max_dnl_lsb <= spec_dnl_lsb
        offset += ok_offset
        gain += ok_gain
        inl += ok_inl
        dnl += ok_dnl
        everything += (ok_offset and ok_gain and ok_inl and ok_dnl
                       and not ch.missing_codes)
        if keep_characterizations:
            kept.append(ch)
    return YieldReport(n_devices=n_devices, offset_pass=offset,
                       gain_pass=gain, inl_pass=inl, dnl_pass=dnl,
                       all_pass=everything, characterizations=kept)


def yield_vs_spec_limit(variation: VariationModel,
                        limits_lsb: "list[float]",
                        n_devices: int = 10) -> "list[tuple[float, float]]":
    """Overall yield as a function of a shared INL/DNL spec limit — the
    curve a product engineer trades accuracy against yield with."""
    if not limits_lsb:
        raise ValueError("need at least one limit")
    devices = Batch(DualSlopeADC, variation).fabricate(n_devices)
    characterizations = [characterize_servo(d.model) for d in devices]
    curve = []
    for limit in limits_lsb:
        passing = sum(
            1 for ch in characterizations
            if ch.max_inl_lsb <= limit and ch.max_dnl_lsb <= limit
            and abs(ch.offset_error_lsb) < SPEC_OFFSET_LSB
            and abs(ch.gain_error_lsb) <= SPEC_GAIN_LSB)
        curve.append((limit, passing / n_devices))
    return curve
