"""Fabricated device batches.

``Batch.fabricate`` clones a nominal behavioural device model N times and
applies sampled process variation to each clone — the software stand-in
for the paper's batch of 10 fabricated gate-array devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.process.variation import VariationModel


@dataclass
class FabricatedDevice:
    """One device instance: the varied model plus its parameter draw."""

    index: int
    model: Any
    parameters: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        params = ", ".join(f"{k}={v:.4g}" for k, v in self.parameters.items())
        return f"device[{self.index}]: {params}"


def _get_path(obj: Any, path: str) -> float:
    for part in path.split("."):
        obj = getattr(obj, part)
    return obj


def _set_path(obj: Any, path: str, value: float) -> None:
    *parents, attr = path.split(".")
    for part in parents:
        obj = getattr(obj, part)
    setattr(obj, attr, value)


class Batch:
    """A fabrication run of N devices from one nominal design.

    Parameters
    ----------
    nominal_factory:
        Zero-argument callable returning a fresh nominal device model
        (so clones never share mutable state).
    variation:
        The process-variation model to sample per device.
    """

    def __init__(self, nominal_factory: Callable[[], Any],
                 variation: VariationModel) -> None:
        self.nominal_factory = nominal_factory
        self.variation = variation

    def fabricate(self, n_devices: int) -> List[FabricatedDevice]:
        """Produce ``n_devices`` varied instances."""
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        reference = self.nominal_factory()
        nominals = {p: float(_get_path(reference, p))
                    for p in self.variation.parameters()}
        devices = []
        for i in range(n_devices):
            model = self.nominal_factory()
            draw = self.variation.sample_device(nominals, i)
            for path, value in draw.items():
                _set_path(model, path, value)
            devices.append(FabricatedDevice(index=i, model=model,
                                            parameters=draw))
        return devices

    def screen(self, n_devices: int,
               test: Callable[[Any], bool]) -> "ScreenResult":
        """Fabricate a batch and run a pass/fail test on every device."""
        devices = self.fabricate(n_devices)
        passed = []
        failed = []
        for dev in devices:
            (passed if test(dev.model) else failed).append(dev)
        return ScreenResult(devices=devices, passed=passed, failed=failed)


@dataclass
class ScreenResult:
    """Outcome of screening a fabricated batch."""

    devices: List[FabricatedDevice]
    passed: List[FabricatedDevice]
    failed: List[FabricatedDevice]

    @property
    def yield_fraction(self) -> float:
        if not self.devices:
            return 0.0
        return len(self.passed) / len(self.devices)

    def describe(self) -> str:
        return (f"batch of {len(self.devices)}: {len(self.passed)} passed, "
                f"{len(self.failed)} failed "
                f"(yield {100 * self.yield_fraction:.0f}%)")
