"""Process variation and device batches — the silicon substitute.

The paper fabricates a batch of 10 gate-array devices and runs the quick
BIST on all of them.  Here a :class:`~repro.process.variation.VariationModel`
perturbs behavioural macro parameters with device-to-device spread and a
:class:`~repro.process.batch.Batch` 'fabricates' N device instances.
"""

from repro.process.variation import VariationSpec, VariationModel
from repro.process.batch import Batch, FabricatedDevice
from repro.process.yield_analysis import (
    YieldReport,
    parametric_yield,
    yield_vs_spec_limit,
)

__all__ = ["VariationSpec", "VariationModel", "Batch", "FabricatedDevice",
           "YieldReport", "parametric_yield", "yield_vs_spec_limit"]
