"""Circuits 2 and 3: the switched-capacitor integrator (± comparator).

Circuit 3 is the SC integrator alone — OP1 (13 transistors) plus two NMOS
switches = 15 transistors.  The sampling capacitor Cs charges to Vin on
phase φ1 and dumps its charge into the virtual ground on φ2, giving the
designed z-domain response

    Vout(z)/Vin(z) = H(z) = z⁻¹ / (6.8 (1 − z⁻¹))

per charge packet about the analogue reference (Cs/Cf = 1/6.8).  The
two-switch topology realises −H(z); the paper's positive H(z) corresponds
to the input measured below the analogue reference.

Circuit 2 appends a comparator (another OP1, open loop) that slices the
integrator output against a 0.64 V reference above analogue ground —
28 transistors total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.op1 import VDD, add_op1
from repro.spice.netlist import Circuit


@dataclass(frozen=True)
class SCIntegratorDesign:
    """Design constants of the paper's integrator."""

    cap_ratio: float = 6.8          # Cf / Cs
    cs_f: float = 10e-12            # sampling capacitor
    clock_period_s: float = 5e-6    # the paper's non-overlapping clocks
    v_ref: float = 2.5              # analogue ground (mid-rail)
    comparator_threshold: float = 0.64  # volts above analogue ground
    switch_w_m: float = 5e-6        # switch width: sized so gate-charge
                                    # injection stays ~1 % of a packet
    opamp_compensation_f: float = 2e-12  # Miller cap for 5 us settling

    @property
    def cf_f(self) -> float:
        return self.cap_ratio * self.cs_f

    @property
    def gain_per_cycle(self) -> float:
        """Integrator step per volt of held input (the 1/6.8)."""
        return 1.0 / self.cap_ratio


PAPER_DESIGN = SCIntegratorDesign()


def sc_integrator_circuit(phi1, phi2, vin,
                          design: SCIntegratorDesign = PAPER_DESIGN,
                          prefix: str = "") -> Circuit:
    """Circuit 3: the 15-transistor switched-capacitor integrator.

    Parameters
    ----------
    phi1, phi2:
        Clock drive values for the switch gates — floats, callables of
        time, or :class:`~repro.signals.Waveform` (non-overlapping).
    vin:
        Input source value (same accepted types), referenced to ground;
        the charge packet is proportional to ``vin - v_ref``.
    design:
        Capacitor sizing and references.
    prefix:
        Namespace prefix for the op-amp internals (paper nodes 4–9).

    Output is node ``"out"``; the op-amp summing node is ``"sum"``.
    """
    ckt = Circuit(f"{prefix}sc_integrator" if prefix else "sc_integrator")
    ckt.vsource("VDD", "vdd", "0", VDD)
    ckt.vsource("VIN", "vin", "0", vin)
    ckt.vsource("VAGND", "agnd", "0", design.v_ref)
    ckt.vsource("PHI1", "phi1", "0", phi1)
    ckt.vsource("PHI2", "phi2", "0", phi2)
    # Switch transistors (the two extra devices of the 15).
    ckt.nmos(f"{prefix}MS1", "vin", "phi1", f"{prefix}a",
             w=design.switch_w_m, l=5e-6)
    ckt.nmos(f"{prefix}MS2", f"{prefix}a", "phi2", f"{prefix}sum",
             w=design.switch_w_m, l=5e-6)
    ckt.capacitor(f"{prefix}CS", f"{prefix}a", "agnd", design.cs_f)
    ckt.capacitor(f"{prefix}CF", f"{prefix}sum", f"{prefix}out",
                  design.cf_f, ic=0.0)
    # OP1 holds the summing node at the analogue reference: the summing
    # node is the inverting input (negative feedback through Cf), the
    # classic two-switch SC integrator.  The realised response is
    # −H(z); the paper's positive H(z) corresponds to the input measured
    # below the analogue reference.
    add_op1(ckt, "agnd", f"{prefix}sum", f"{prefix}out", prefix=prefix,
            compensation_f=design.opamp_compensation_f)
    # Weak bleed keeps the summing node biased before the loop takes over.
    ckt.resistor(f"{prefix}RSUM", f"{prefix}sum", "agnd", 100e6)
    # DC feedback across Cf (the reset-switch leakage path): closes the
    # op-amp loop at the operating point so the transient starts from a
    # settled integrator instead of a railed one.  1 GΩ · Cf ≈ 68 ms,
    # far beyond any simulated run, so the integrator behaviour is
    # untouched.
    ckt.resistor(f"{prefix}RFB", f"{prefix}sum", f"{prefix}out", 1e9)
    return ckt


def sc_integrator_comparator_circuit(phi1, phi2, vin,
                                     design: SCIntegratorDesign = PAPER_DESIGN
                                     ) -> Circuit:
    """Circuit 2: SC integrator followed by a comparator (28 transistors).

    The comparator (an open-loop OP1, prefix ``cmp``) slices the
    integrator output against ``v_ref + comparator_threshold``; its
    output is node ``"cmp_out"``.
    """
    ckt = sc_integrator_circuit(phi1, phi2, vin, design=design)
    ckt.name = "sc_integrator_comparator"
    ckt.vsource("VCMP", "vcmp", "0", design.v_ref + design.comparator_threshold)
    add_op1(ckt, "out", "vcmp", "cmp_out", prefix="cmp", compensation_f=None)
    ckt.capacitor("CCMP", "cmp_out", "0", 10e-12)
    return ckt
