"""The paper's example circuits and the analogue macro library.

Everything here is a transistor-level netlist in the 5 µm process
(:data:`repro.spice.mosfet.NMOS_5U` / :data:`~repro.spice.mosfet.PMOS_5U`):

* :func:`add_op1` / :func:`op1_follower` — the 13-transistor CMOS
  operational amplifier OP1 of Figure 3, with the paper's node numbering
  (1 = In+, 2 = In−, 3 = Out, 4–9 internal).
* :func:`sc_integrator_circuit` — circuit 3: the switched-capacitor
  integrator alone (15 transistors).
* :func:`sc_integrator_comparator_circuit` — circuit 2: SC integrator
  followed by a comparator (28 transistors).
* :mod:`repro.circuits.library` — the gate-array macro library the paper
  surveys (voltage reference, current mirror, comparator, oscillator).
"""

from repro.circuits.op1 import (
    OP1_FAULT_NODES,
    add_op1,
    op1_circuit,
    op1_follower,
    op1_open_loop,
)
from repro.circuits.sc_integrator import (
    SCIntegratorDesign,
    sc_integrator_circuit,
    sc_integrator_comparator_circuit,
)
from repro.circuits.library import (
    voltage_reference_circuit,
    current_mirror_circuit,
    ring_oscillator_circuit,
    comparator_circuit,
)

__all__ = [
    "OP1_FAULT_NODES",
    "add_op1",
    "op1_circuit",
    "op1_follower",
    "op1_open_loop",
    "SCIntegratorDesign",
    "sc_integrator_circuit",
    "sc_integrator_comparator_circuit",
    "voltage_reference_circuit",
    "current_mirror_circuit",
    "ring_oscillator_circuit",
    "comparator_circuit",
]
