"""OP1 — the paper's 13-transistor CMOS operational amplifier (Figure 3).

Topology (node numbers follow the paper):

* node 4 — bias: an always-on NMOS current sink (M13, the IRef
  implementation) loads a PMOS diode (M1); PMOS gates at node 4 mirror
  the reference current.
* node 6 — "p-type current source": tail of the PMOS differential pair
  (M2 mirrors the bias current into the pair).
* nodes 1/2 — In+ / In− gates of the PMOS pair (M4 / M3).
* node 5 — "n-type current source": diode side of the NMOS mirror load
  (M5/M6).
* node 7 — differential-stage output.
* node 8 — first inverter output (NMOS common-source M7 with PMOS
  current-source load M8).
* node 9 — second inverter output (CMOS inverter M9/M10).
* node 3 — Out: the inverter buffer (CMOS inverter M11/M12).

Raising In+ raises Out (two inversions after the rising node 7), so the
amplifier is non-inverting from node 1 as required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.spice.netlist import Circuit

#: Major nodes the paper injects single stuck-at faults on (plus the pairs
#: 8–9, 5–8 and 4–6 for double faults).
OP1_FAULT_NODES = ("4", "5", "7", "8", "3")

#: Supply voltage of the 5 µm gate-array process.
VDD = 5.0


def add_op1(ckt: Circuit, in_p: str, in_n: str, out: str,
            vdd: str = "vdd", prefix: str = "",
            compensation_f: Optional[float] = 20e-12) -> Dict[str, str]:
    """Instantiate OP1 into ``ckt``.

    Parameters
    ----------
    ckt:
        Target circuit (must already carry the supply on ``vdd``).
    in_p, in_n, out:
        Node names for In+ (paper node 1), In− (node 2) and Out (node 3).
    prefix:
        Prepended to the internal node (4–9) and device names, so several
        OP1 instances can coexist.
    compensation_f:
        Miller compensation capacitor across the first inverter stage
        (node 7 → node 8).  ``None`` omits it (the bare 13-transistor
        macro); the default 20 pF keeps the amplifier stable in unity
        feedback and sets the dominant pole the transient tests observe.

    Returns the map from paper node numbers ("1"…"9") to actual node
    names in ``ckt``.
    """
    n = {
        "1": in_p, "2": in_n, "3": out,
        "4": f"{prefix}4", "5": f"{prefix}5", "6": f"{prefix}6",
        "7": f"{prefix}7", "8": f"{prefix}8", "9": f"{prefix}9",
    }
    p = prefix
    # Bias chain: M13 is the IRef sink (long-channel NMOS, gate at VDD),
    # M1 the PMOS diode it loads.
    ckt.nmos(f"{p}M13", n["4"], vdd, "0", w=5e-6, l=40e-6)
    ckt.pmos(f"{p}M1", n["4"], n["4"], vdd, w=10e-6, l=5e-6)
    # P-type current source: tail of the differential pair.
    ckt.pmos(f"{p}M2", n["6"], n["4"], vdd, w=40e-6, l=5e-6)
    # PMOS differential pair: In− on M3 (mirror/diode side), In+ on M4.
    ckt.pmos(f"{p}M3", n["5"], n["2"], n["6"], w=20e-6, l=5e-6)
    ckt.pmos(f"{p}M4", n["7"], n["1"], n["6"], w=20e-6, l=5e-6)
    # N-type current-source load (mirror): diode M5, output M6.
    ckt.nmos(f"{p}M5", n["5"], n["5"], "0", w=10e-6, l=5e-6)
    ckt.nmos(f"{p}M6", n["7"], n["5"], "0", w=10e-6, l=5e-6)
    # Gain stage ("inverter" in Figure 3): NMOS common source with PMOS
    # current-source load.  The Miller capacitor across it makes the
    # amplifier a classic two-stage design.
    ckt.nmos(f"{p}M7", n["8"], n["7"], "0", w=20e-6, l=5e-6)
    ckt.pmos(f"{p}M8", n["8"], n["4"], vdd, w=40e-6, l=5e-6)
    # Buffer chain ("inverter buffer"): an NMOS source follower with an
    # NMOS current sink (biased from the node-5 mirror), then a PMOS
    # source follower with a PMOS current source — near-unity gain and
    # complementary level shifts, keeping every post-compensation node
    # low impedance (no further high-gain poles, so the two-stage Miller
    # compensation holds in unity feedback).
    ckt.nmos(f"{p}M9", vdd, n["8"], n["9"], w=40e-6, l=5e-6)
    ckt.nmos(f"{p}M10", n["9"], n["5"], "0", w=10e-6, l=5e-6)
    ckt.pmos(f"{p}M11", "0", n["9"], n["3"], w=160e-6, l=5e-6)
    ckt.pmos(f"{p}M12", n["3"], n["4"], vdd, w=20e-6, l=5e-6)
    if compensation_f is not None:
        ckt.capacitor(f"{p}CC", n["7"], n["8"], compensation_f)
    return n


def op1_circuit(compensation_f: Optional[float] = 20e-12) -> Circuit:
    """Standalone OP1 with supply, inputs/outputs on paper node names."""
    ckt = Circuit("op1")
    ckt.vsource("VDD", "vdd", "0", VDD)
    add_op1(ckt, "1", "2", "3", compensation_f=compensation_f)
    return ckt


def op1_follower(input_value=2.5, load_f: float = 470e-12,
                 compensation_f: Optional[float] = 20e-12) -> Circuit:
    """OP1 in unity feedback driven from node 1 — the transient-test
    fixture for circuit 1.

    The paper's PRBS stimulus goes into node 1; node 3 (= node 2, the
    feedback) is the observed output.  ``load_f`` is the bench load; with
    OP1's output resistance it sets the output time constant the
    correlation technique sees.
    """
    ckt = Circuit("op1_follower")
    ckt.vsource("VDD", "vdd", "0", VDD)
    ckt.vsource("VIN", "1", "0", input_value)
    add_op1(ckt, "1", "3", "3", compensation_f=compensation_f)
    ckt.capacitor("CL", "3", "0", load_f)
    ckt.resistor("RL", "3", "0", 1e6)
    return ckt


def op1_open_loop(in_n_value: float = 2.5, input_value=2.5,
                  load_f: float = 100e-12) -> Circuit:
    """OP1 as a comparator: In− held at a reference, no feedback."""
    ckt = Circuit("op1_comparator")
    ckt.vsource("VDD", "vdd", "0", VDD)
    ckt.vsource("VIN", "1", "0", input_value)
    ckt.vsource("VREF", "2", "0", in_n_value)
    add_op1(ckt, "1", "2", "3", compensation_f=None)
    ckt.capacitor("CL", "3", "0", load_f)
    return ckt
