"""The gate-array analogue macro library the paper surveys.

"The analogue macros in the macro library included voltage references,
current mirrors, operational amplifiers, voltage and current comparators,
oscillators, ADCs and DACs."  These netlists are the small supporting
macros; OP1 and the ADC live in their own modules.
"""

from __future__ import annotations

from repro.circuits.op1 import VDD, add_op1
from repro.spice.netlist import Circuit


def voltage_reference_circuit(target_v: float = 2.5) -> Circuit:
    """A buffered divider voltage reference.

    A resistive divider from the supply sets the target and OP1 buffers
    it — the classic gate-array reference macro (no bandgap available in
    a 5 µm digital array).  Output node: ``"ref"``.
    """
    if not 0.0 < target_v < VDD:
        raise ValueError("target_v must lie inside the supply range")
    ckt = Circuit("vref_macro")
    ckt.vsource("VDD", "vdd", "0", VDD)
    r_total = 100e3
    r_low = r_total * target_v / VDD
    ckt.resistor("RTOP", "vdd", "div", r_total - r_low)
    ckt.resistor("RBOT", "div", "0", r_low)
    add_op1(ckt, "div", "ref", "ref", prefix="buf")
    ckt.capacitor("CREF", "ref", "0", 100e-12)
    return ckt


def current_mirror_circuit(i_ref: float = 20e-6, ratio: float = 1.0) -> Circuit:
    """NMOS current mirror: reference current in, mirrored sink out.

    ``ratio`` scales the output device width.  The output sinks from node
    ``"load"`` through a 50 kΩ load so the mirrored current is observable
    as a node voltage.
    """
    if i_ref <= 0 or ratio <= 0:
        raise ValueError("i_ref and ratio must be positive")
    ckt = Circuit("current_mirror")
    ckt.vsource("VDD", "vdd", "0", VDD)
    ckt.isource("IREF", "vdd", "diode", i_ref)
    ckt.nmos("M1", "diode", "diode", "0", w=10e-6, l=5e-6)
    ckt.nmos("M2", "load", "diode", "0", w=10e-6 * ratio, l=5e-6)
    ckt.resistor("RLOAD", "vdd", "load", 50e3)
    return ckt


def ring_oscillator_circuit(n_stages: int = 5,
                            stage_cap_f: float = 20e-12) -> Circuit:
    """A CMOS ring oscillator — the library's clock/oscillator macro.

    ``n_stages`` must be odd.  Node ``"osc1"`` is the observable output;
    the per-stage capacitors set the period to roughly
    ``2 * n_stages * R_inv * stage_cap_f``.

    Simulate with ``uic=True``: the first stage capacitor carries a
    rail-level initial condition that kicks the ring out of its
    metastable mid-rail equilibrium (which a DC operating point would
    otherwise find).  Use a timestep well under a stage delay or
    backward-Euler damping will kill the oscillation numerically.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError("ring oscillator needs an odd stage count >= 3")
    ckt = Circuit("ring_oscillator")
    ckt.vsource("VDD", "vdd", "0", VDD)
    for i in range(n_stages):
        inp = f"osc{i + 1}"
        out = f"osc{(i + 1) % n_stages + 1}"
        ckt.nmos(f"MN{i + 1}", out, inp, "0", w=10e-6, l=5e-6)
        ckt.pmos(f"MP{i + 1}", out, inp, "vdd", w=25e-6, l=5e-6)
        ckt.capacitor(f"CS{i + 1}", out, "0", stage_cap_f,
                      ic=VDD if i == 0 else 0.0)
    return ckt


def comparator_circuit(threshold_v: float = 2.5) -> Circuit:
    """Voltage comparator macro: OP1 open loop against a threshold.

    Input node ``"in"``, output node ``"out"`` (rails near 0/VDD).
    """
    ckt = Circuit("comparator_macro")
    ckt.vsource("VDD", "vdd", "0", VDD)
    ckt.vsource("VTH", "th", "0", threshold_v)
    add_op1(ckt, "in", "th", "out", prefix="c", compensation_f=None)
    ckt.capacitor("CO", "out", "0", 5e-12)
    ckt.resistor("RIN", "in", "th", 10e6)
    return ckt
