"""Structured, span-correlated event logging with a bounded buffer.

Where :class:`~repro.obs.trace.Tracer` answers "where did the time go"
and :class:`~repro.obs.metrics.Metrics` answers "how many", the
:class:`EventLog` answers "what *happened*": discrete, schematised
records of solver anomalies (Newton non-convergence, timestep
subdivision storms, grid mismatches), campaign heartbeats and the like.
Each record carries a monotonic timestamp, a wall-clock timestamp, a
severity level, the name/path of the span that was open when it was
emitted (correlation with the trace tree) and arbitrary structured
fields.

The buffer is a fixed-capacity ring: a pathological run that subdivides
a million times cannot exhaust memory through its own diagnostics — old
records are dropped (counted in :attr:`EventLog.dropped`) and the
newest ``maxlen`` survive, which is what you want from a flight
recorder.

Stdlib-only; hot layers emit through :func:`repro.obs.core.event`,
which is guarded by the ambient ``OBS.enabled`` flag.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

#: accepted severity levels, in increasing order of concern.
LEVELS = ("debug", "info", "warning", "error")


class EventLog:
    """Bounded ring buffer of structured event records."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self._buf: deque = deque(maxlen=maxlen)
        #: records evicted by the ring bound (total over the log's life).
        self.dropped = 0
        self._emitted = 0

    # ------------------------------------------------------------------
    def emit(self, name: str, level: str = "info",
             span: Optional[str] = None, **fields: Any) -> Dict[str, Any]:
        """Append one event record; returns it (useful in tests)."""
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; use one of {LEVELS}")
        rec = {
            "t": time.perf_counter(),
            "wall": time.time(),
            "name": name,
            "level": level,
            "span": span,
            "fields": fields,
        }
        if len(self._buf) == self.maxlen:
            self.dropped += 1
        self._buf.append(rec)
        self._emitted += 1
        return rec

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        """Fold foreign records in (campaign workers ship their event
        lists back on the fault outcome; the parent extends)."""
        for rec in records:
            if len(self._buf) == self.maxlen:
                self.dropped += 1
            self._buf.append(dict(rec))
            self._emitted += 1

    # ------------------------------------------------------------------
    def records(self, level: Optional[str] = None,
                name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Buffered records, optionally filtered by exact level/name."""
        out = list(self._buf)
        if level is not None:
            out = [r for r in out if r["level"] == level]
        if name is not None:
            out = [r for r in out if r["name"] == name]
        return out

    def counts_by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self._buf:
            out[r["name"]] = out.get(r["name"], 0) + 1
        return out

    @property
    def emitted(self) -> int:
        """Total records ever emitted (buffered + dropped)."""
        return self._emitted

    def __len__(self) -> int:
        return len(self._buf)

    def is_empty(self) -> bool:
        return not self._buf

    def clear(self) -> None:
        self._buf.clear()
        self.dropped = 0
        self._emitted = 0

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON document per line, oldest first."""
        return "\n".join(json.dumps(r, default=str) for r in self._buf)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            text = self.to_jsonl()
            fh.write(text + ("\n" if text else ""))

    def to_dict(self) -> Dict[str, Any]:
        return {"maxlen": self.maxlen, "dropped": self.dropped,
                "emitted": self._emitted, "records": list(self._buf)}
