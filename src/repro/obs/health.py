"""Campaign health: progress, ETA, heartbeats and straggler detection.

A fault campaign is the paper's production workload — hundreds of
faulty-circuit simulations, possibly fanned over worker processes — and
the one place where "is it still making progress?" matters.  This
module supplies:

* :class:`CampaignProgress` — the record a campaign's ``progress``
  callback receives after every completed fault: done/total, elapsed,
  smoothed ETA, completion rate and the completing worker's pid.
* :class:`ProgressTracker` — the driver used inside
  :meth:`repro.faults.campaign.FaultCampaign.run`.  It is fed
  completed outcomes *in fault order* in both the serial and the
  process-pool path, so callbacks and heartbeat events fire with
  identical (done, total) sequences regardless of ``workers`` — the
  same serial==workers parity the metrics layer pins.
* :func:`straggler_report` — post-hoc health analysis of a
  :class:`~repro.faults.campaign.CampaignResult`: per-worker wall-time
  aggregation (outcomes carry the evaluating pid) plus slow-fault and
  slow-worker flagging against robust (median-based) thresholds.

Heartbeats are structured events (``campaign.heartbeat``) in the
ambient :class:`~repro.obs.log.EventLog`, plus a
``campaign.heartbeats`` counter so parity is checkable through the
metrics snapshot alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.core import OBS, event


@dataclass
class CampaignProgress:
    """One progress update: delivered after each completed fault."""

    done: int
    total: int
    elapsed_s: float
    eta_s: float
    rate_per_s: float
    fault: str = ""
    fault_elapsed_s: float = 0.0
    worker_pid: Optional[int] = None
    #: scheduler job id when the campaign runs as a service job; empty
    #: for standalone campaign runs.
    job: str = ""

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON shape for the dashboard status file."""
        return {"job": self.job, "done": self.done, "total": self.total,
                "fraction": self.fraction, "elapsed_s": self.elapsed_s,
                "eta_s": self.eta_s, "rate_per_s": self.rate_per_s,
                "fault": self.fault,
                "fault_elapsed_s": self.fault_elapsed_s,
                "worker_pid": self.worker_pid}

    def describe(self) -> str:
        pct = 100.0 * self.fraction
        label = f"campaign[{self.job}]" if self.job else "campaign"
        return (f"{label} {self.done}/{self.total} ({pct:.0f}%) "
                f"elapsed {self.elapsed_s:.1f}s eta {self.eta_s:.1f}s "
                f"[{self.rate_per_s:.1f} faults/s]")


ProgressCallback = Callable[[CampaignProgress], None]


class ProgressTracker:
    """Feeds a progress callback and heartbeat events from completed
    fault outcomes (in fault order; see module docstring)."""

    def __init__(self, total: int,
                 callback: Optional[ProgressCallback] = None,
                 heartbeat_every: int = 1, label: str = "") -> None:
        if heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")
        self.total = total
        self.callback = callback
        self.heartbeat_every = heartbeat_every
        self.label = label
        self.done = 0
        self._t0 = time.perf_counter()

    def update(self, outcome: Any) -> CampaignProgress:
        """Record one completed fault; fire callback + heartbeat."""
        self.done += 1
        elapsed = time.perf_counter() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate if rate > 0 else 0.0
        progress = CampaignProgress(
            done=self.done, total=self.total, elapsed_s=elapsed,
            eta_s=eta, rate_per_s=rate,
            fault=outcome.fault.describe() if outcome.fault else "",
            fault_elapsed_s=outcome.elapsed_s,
            worker_pid=getattr(outcome, "worker_pid", None),
            job=self.label)
        if OBS.enabled and self.done % self.heartbeat_every == 0:
            OBS.metrics.counter("campaign.heartbeats").inc()
            OBS.metrics.gauge("campaign.eta_s").set(eta)
            OBS.metrics.gauge("campaign.progress").set(progress.fraction)
            # the job field rides on heartbeats only for service jobs,
            # so standalone campaigns keep their pinned event shape
            extra = {"job": self.label} if self.label else {}
            event("campaign.heartbeat", done=self.done, total=self.total,
                  eta_s=round(eta, 3), rate_per_s=round(rate, 3), **extra)
        if self.callback is not None:
            self.callback(progress)
        return progress


class ServiceProgress:
    """Aggregated progress across a scheduler's concurrent jobs.

    Holds the latest :class:`CampaignProgress` per job id and exposes
    the service-wide totals; :meth:`repro.service.scheduler.
    CampaignScheduler.progress` returns one of these."""

    def __init__(self) -> None:
        self.jobs: Dict[str, CampaignProgress] = {}

    def update(self, progress: CampaignProgress) -> None:
        self.jobs[progress.job or "campaign"] = progress

    @property
    def done(self) -> int:
        return sum(p.done for p in self.jobs.values())

    @property
    def total(self) -> int:
        return sum(p.total for p in self.jobs.values())

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def describe(self) -> str:
        if not self.jobs:
            return "service idle"
        lines = [f"service {self.done}/{self.total} "
                 f"({100.0 * self.fraction:.0f}%) across "
                 f"{len(self.jobs)} job(s)"]
        lines.extend(p.describe() for _, p in sorted(self.jobs.items()))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# post-hoc straggler analysis


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class WorkerStats:
    """Wall-time accounting for one worker process."""

    pid: int
    n_faults: int
    busy_s: float
    mean_s: float
    max_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {"pid": self.pid, "n_faults": self.n_faults,
                "busy_s": self.busy_s, "mean_s": self.mean_s,
                "max_s": self.max_s}


@dataclass
class StragglerReport:
    """Health verdict over a finished campaign."""

    n_faults: int
    median_fault_s: float
    workers: List[WorkerStats] = field(default_factory=list)
    #: fault descriptions whose wall time exceeded factor x median.
    slow_faults: List[str] = field(default_factory=list)
    #: pids whose *mean* fault time exceeded factor x campaign median.
    slow_workers: List[int] = field(default_factory=list)
    factor: float = 4.0

    @property
    def healthy(self) -> bool:
        return not self.slow_faults and not self.slow_workers

    def summary(self) -> str:
        line = (f"campaign health: {self.n_faults} faults over "
                f"{len(self.workers)} worker(s), median fault "
                f"{self.median_fault_s * 1e3:.1f} ms")
        if self.healthy:
            return line + " — healthy"
        line += (f" — {len(self.slow_faults)} straggler fault(s)"
                 f", {len(self.slow_workers)} straggler worker(s) "
                 f"(>{self.factor:g}x median)")
        return line

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_faults": self.n_faults,
            "median_fault_s": self.median_fault_s,
            "factor": self.factor,
            "healthy": self.healthy,
            "workers": [w.to_dict() for w in self.workers],
            "slow_faults": list(self.slow_faults),
            "slow_workers": list(self.slow_workers),
        }


def straggler_report(result: Any, factor: float = 4.0,
                     min_fault_s: float = 1e-3) -> StragglerReport:
    """Analyse a :class:`~repro.faults.campaign.CampaignResult`.

    A fault is a straggler when its wall time exceeds ``factor`` times
    the campaign median (and ``min_fault_s`` — microsecond jitter on
    trivial campaigns is not a health signal); a worker is a straggler
    when its *mean* fault time does.
    """
    times = [o.elapsed_s for o in result.outcomes]
    med = _median(times)
    threshold = max(factor * med, min_fault_s)
    report = StragglerReport(n_faults=len(times), median_fault_s=med,
                             factor=factor)
    per_worker: Dict[int, List[Any]] = {}
    for o in result.outcomes:
        pid = getattr(o, "worker_pid", None)
        if pid is not None:
            per_worker.setdefault(pid, []).append(o)
        if o.elapsed_s > threshold:
            report.slow_faults.append(o.fault.describe())
    for pid, outs in sorted(per_worker.items()):
        wtimes = [o.elapsed_s for o in outs]
        stats = WorkerStats(pid=pid, n_faults=len(outs),
                            busy_s=sum(wtimes),
                            mean_s=sum(wtimes) / len(wtimes),
                            max_s=max(wtimes))
        report.workers.append(stats)
        if stats.mean_s > threshold:
            report.slow_workers.append(pid)
    return report
