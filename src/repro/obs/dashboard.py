"""Live terminal dashboard over the campaign service.

Two consumption paths, one rendering core:

* **In-process** — ``Session.watch()`` polls the scheduler directly
  (:func:`status_snapshot`) and repaints a frame per tick.
* **Cross-process** — a scheduler started with ``status_path=...`` (or
  ``REPRO_OBS_STATUS=/path``) publishes the same snapshot as an
  atomically-replaced JSON file; ``python -m repro.obs top`` tails it
  from any terminal, htop-style, with zero coupling to the running
  process (a torn read is impossible: ``mkstemp`` + ``os.replace``).

Rendering is a pure function of the snapshot dict (:func:`render_frame`)
so tests pin frames without a TTY, timers, or a live scheduler.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

#: status file schema tag.
STATUS_SCHEMA = "repro.service-status/1"

#: a fault is flagged as a straggler when its in-flight wall clock
#: exceeds this multiple of the job's mean per-fault time.
STRAGGLER_FACTOR = 4.0


# ---------------------------------------------------------------------------
# snapshot (producer side)


def status_snapshot(scheduler: Any) -> Dict[str, Any]:
    """One JSON-able view of a scheduler's in-flight state.

    Reads only thread-safe state (list copies, immutable snapshots), so
    it may be called from any thread while the dispatcher runs.
    """
    jobs: List[Dict[str, Any]] = []
    queued = 0
    for jr in list(getattr(scheduler, "_active", ())):
        queued += len(getattr(jr, "ready", ()))
        progress = getattr(jr, "last_progress", None)
        if progress is not None:
            jobs.append(progress.to_dict())
        else:
            job = getattr(jr, "job", None)
            jobs.append({"job": getattr(job, "id", "?"), "done": 0,
                         "total": len(getattr(jr, "fault_list", ()) or ()),
                         "fraction": 0.0, "elapsed_s": 0.0, "eta_s": 0.0,
                         "rate_per_s": 0.0, "fault": "",
                         "fault_elapsed_s": 0.0, "worker_pid": None})
    cache = getattr(scheduler, "cache", None)
    return {
        "schema": STATUS_SCHEMA,
        "wall": time.time(),
        "scheduler": getattr(scheduler, "name", "service"),
        "workers": getattr(scheduler, "workers", 0),
        "jobs_active": len(jobs),
        "shards_queued": queued,
        "jobs": jobs,
        "cache": cache.stats.to_dict() if cache is not None else None,
    }


def write_status(snapshot: Dict[str, Any], path: str) -> None:
    """Atomically publish a snapshot (tmp file + ``os.replace``)."""
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=".status-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_status(path: str) -> Optional[Dict[str, Any]]:
    """Load a published snapshot; ``None`` when missing or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


# ---------------------------------------------------------------------------
# rendering (pure)


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _job_line(job: Dict[str, Any]) -> str:
    done = job.get("done", 0)
    total = job.get("total", 0) or 0
    fraction = job.get("fraction", 0.0) or 0.0
    rate = job.get("rate_per_s", 0.0) or 0.0
    eta = job.get("eta_s", 0.0) or 0.0
    line = (f"{job.get('job') or 'campaign':<24} {_bar(fraction)} "
            f"{done}/{total} ({100.0 * fraction:3.0f}%) "
            f"eta {eta:6.1f}s  {rate:6.2f} faults/s")
    # straggler flag: the fault in flight has been running much longer
    # than this job's average completion time
    fault_elapsed = job.get("fault_elapsed_s") or 0.0
    if rate > 0 and fault_elapsed > STRAGGLER_FACTOR / rate:
        pid = job.get("worker_pid")
        where = f" pid {pid}" if pid else ""
        line += (f"  !straggler: {job.get('fault') or '?'} "
                 f"{fault_elapsed:.1f}s{where}")
    return line


def render_frame(snapshot: Dict[str, Any]) -> str:
    """One dashboard frame (plain text, no cursor control)."""
    if not snapshot:
        return "(no status yet)"
    head = (f"{snapshot.get('scheduler', 'service')}: "
            f"{snapshot.get('workers', '?')} workers, "
            f"{snapshot.get('jobs_active', 0)} jobs active, "
            f"{snapshot.get('shards_queued', 0)} shards queued")
    cache = snapshot.get("cache")
    if cache:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        if lookups:
            head += (f", cache {100.0 * cache.get('hits', 0) / lookups:.0f}%"
                     f" hit ({cache.get('hits', 0)}/{lookups})")
    lines = [head]
    for job in snapshot.get("jobs", ()):
        lines.append(_job_line(job))
    if not snapshot.get("jobs"):
        lines.append("(idle)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# loops (consumer side)


def watch(get_snapshot: Callable[[], Dict[str, Any]],
          out: Any = None,
          interval: float = 0.5,
          max_frames: Optional[int] = None,
          done: Optional[Callable[[], bool]] = None) -> str:
    """Repaint frames from a snapshot source until ``done()`` (or
    forever / ``max_frames``); returns the last frame rendered.

    ``out`` defaults to stdout; tests pass a ``StringIO`` and a frame
    budget.  Ctrl-C exits cleanly.
    """
    stream = sys.stdout if out is None else out
    frame = ""
    frames = 0
    try:
        while True:
            frame = render_frame(get_snapshot() or {})
            print(frame, file=stream, flush=True)
            frames += 1
            if done is not None and done():
                break
            if max_frames is not None and frames >= max_frames:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return frame


def top(path: str,
        out: Any = None,
        interval: float = 1.0,
        max_frames: Optional[int] = None,
        once: bool = False) -> str:
    """Tail a published status file (`python -m repro.obs top`)."""

    def snapshot() -> Dict[str, Any]:
        snap = read_status(path)
        return snap if snap is not None else {}

    return watch(snapshot, out=out, interval=interval,
                 max_frames=1 if once else max_frames)
