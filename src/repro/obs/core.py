"""The observability switch: one ambient scope, off by default.

Hot layers (``spice.solver``, ``spice.mna``, ``faults.campaign``...)
import the module-level :data:`OBS` singleton and guard every recording
site with ``if OBS.enabled:`` — a single attribute read and branch, so a
disabled run pays effectively nothing (the benchmark gate in CI holds
the enabled-mode overhead under 10 % and the disabled mode is
unmeasurable against solver noise).

Enabling is scoped: ``with observe() as obs: ...`` installs a fresh
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.Metrics` for the duration of the block and
restores the previous scope afterwards (scopes nest; fault-campaign
workers use exactly this to capture per-fault metrics in isolation).
Setting the environment variable ``REPRO_OBS=1`` enables a process-wide
ambient scope at import time, which is how the CI overhead benchmark
exercises the enabled path without touching benchmark code.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer


class _NullSpan:
    """Reentrant, stateless stand-in yielded by :func:`span` when
    observability is disabled; every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class ObsState:
    """The ambient observation scope (tracer + metrics + enabled flag)."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = Metrics()

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        return (self.enabled, self.tracer, self.metrics)

    def restore(self, saved: tuple) -> None:
        self.enabled, self.tracer, self.metrics = saved


#: process-wide ambient scope; hot code reads ``OBS.enabled`` directly.
OBS = ObsState()


class Observation:
    """Handle yielded by :func:`observe`: the scope's tracer and metrics
    plus convenience exports once the block has finished."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer, metrics: Metrics) -> None:
        self.tracer = tracer
        self.metrics = metrics

    def to_dict(self) -> dict:
        return {"trace": self.tracer.to_dict(),
                "metrics": self.metrics.to_dict()}

    def trace_json(self, indent: Optional[int] = 2) -> str:
        import json
        return json.dumps(self.to_dict(), indent=indent, default=str)


@contextmanager
def observe(tracer: Optional[Tracer] = None,
            metrics: Optional[Metrics] = None) -> Iterator[Observation]:
    """Enable observability for the block, scoped and nestable.

    Fresh sinks are created unless existing ones are passed in (a
    :class:`~repro.session.Session` passes its own so successive runs
    accumulate into one report).  On exit the previous ambient scope —
    including disabled-ness — is restored.
    """
    handle = Observation(tracer if tracer is not None else Tracer(),
                         metrics if metrics is not None else Metrics())
    saved = OBS.snapshot()
    OBS.enabled = True
    OBS.tracer = handle.tracer
    OBS.metrics = handle.metrics
    try:
        yield handle
    finally:
        OBS.restore(saved)


def enabled() -> bool:
    """Is an observation scope currently active?"""
    return OBS.enabled


def span(name: str, **attrs: Any):
    """Context manager for a trace span; free no-op when disabled."""
    if not OBS.enabled:
        return NULL_SPAN
    return OBS.tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a counter in the ambient scope (no-op when disabled)."""
    if OBS.enabled:
        OBS.metrics.counter(name).inc(n)


def record(name: str, value: float) -> None:
    """Observe a histogram sample in the ambient scope."""
    if OBS.enabled:
        OBS.metrics.histogram(name).observe(value)


def gauge(name: str, value: float) -> None:
    """Set a gauge in the ambient scope."""
    if OBS.enabled:
        OBS.metrics.gauge(name).set(value)


def counter_value(name: str) -> int:
    """Current value of a counter (0 when disabled or never written).

    Used by instrumented layers to report counter *deltas* as span
    attributes: read before, read after, attach the difference.
    """
    if not OBS.enabled:
        return 0
    c = OBS.metrics.counters.get(name)
    return c.value if c is not None else 0


def enable_from_env(env: Optional[dict] = None) -> bool:
    """Install a process-wide ambient scope when ``REPRO_OBS`` asks.

    Returns True when observability was switched on.  Called once at
    package import; safe to call again (idempotent per process).
    """
    env = os.environ if env is None else env
    flag = str(env.get("REPRO_OBS", "")).strip().lower()
    if flag in ("1", "true", "on", "yes") and not OBS.enabled:
        OBS.enabled = True
        return True
    return False
