"""The observability switch: one ambient scope, off by default.

Hot layers (``spice.solver``, ``spice.mna``, ``faults.campaign``...)
import the module-level :data:`OBS` singleton and guard every recording
site with ``if OBS.enabled:`` — a single attribute read and branch, so a
disabled run pays effectively nothing (the benchmark gate in CI holds
the enabled-mode overhead under 10 % and the disabled mode is
unmeasurable against solver noise).

Enabling is scoped: ``with observe() as obs: ...`` installs a fresh
:class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.metrics.Metrics` and
:class:`~repro.obs.log.EventLog` for the duration of the block and
restores the previous scope afterwards (scopes nest; fault-campaign
workers use exactly this to capture per-fault metrics in isolation).
Setting the environment variable ``REPRO_OBS=1`` enables a process-wide
ambient scope at import time, which is how the CI overhead benchmark
exercises the enabled path without touching benchmark code;
``REPRO_OBS=chrome:/path.json`` (or ``jsonl:/path``, ``prom:/path``)
additionally registers an :mod:`atexit` hook that exports the ambient
scope when the process ends, so process-wide observability is
retrievable, not merely switched on.
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.log import EventLog
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer


class _NullSpan:
    """Reentrant, stateless stand-in yielded by :func:`span` when
    observability is disabled; every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class ObsState:
    """The ambient observation scope (tracer + metrics + events + flag),
    plus the optional persistent run ledger campaigns report into."""

    __slots__ = ("enabled", "tracer", "metrics", "events", "ledger")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = Metrics()
        self.events = EventLog()
        #: a :class:`repro.obs.ledger.RunLedger` (or None).  Deliberately
        #: independent of ``enabled``: runs are ledgered even when span/
        #: metric recording is off, because the ledger is cheap (one row
        #: per campaign) and history is most valuable for routine runs.
        self.ledger: Optional[Any] = None

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        return (self.enabled, self.tracer, self.metrics, self.events,
                self.ledger)

    def restore(self, saved: tuple) -> None:
        (self.enabled, self.tracer, self.metrics, self.events,
         self.ledger) = saved


#: process-wide ambient scope; hot code reads ``OBS.enabled`` directly.
OBS = ObsState()


class Observation:
    """Handle yielded by :func:`observe`: the scope's tracer, metrics
    and event log plus convenience exports once the block has
    finished."""

    __slots__ = ("tracer", "metrics", "events")

    def __init__(self, tracer: Tracer, metrics: Metrics,
                 events: Optional[EventLog] = None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.events = events if events is not None else EventLog()

    def to_dict(self) -> dict:
        return {"trace": self.tracer.to_dict(),
                "metrics": self.metrics.to_dict(),
                "events": self.events.to_dict()}

    def trace_json(self, indent: Optional[int] = 2) -> str:
        import json
        return json.dumps(self.to_dict(), indent=indent, default=str)


@contextmanager
def observe(tracer: Optional[Tracer] = None,
            metrics: Optional[Metrics] = None,
            events: Optional[EventLog] = None,
            profile_memory: bool = False,
            ledger: Optional[Any] = None) -> Iterator[Observation]:
    """Enable observability for the block, scoped and nestable.

    Fresh sinks are created unless existing ones are passed in (a
    :class:`~repro.session.Session` passes its own so successive runs
    accumulate into one report).  ``profile_memory=True`` builds the
    fresh tracer with per-span tracemalloc peaks (no effect on a tracer
    passed in).  ``ledger`` installs a run ledger for the scope; when
    omitted the enclosing scope's ledger stays active (worker-side
    isolation scopes must not silence the ambient ledger).  On exit the
    previous ambient scope — including disabled-ness — is restored.
    """
    handle = Observation(
        tracer if tracer is not None else Tracer(profile_memory=profile_memory),
        metrics if metrics is not None else Metrics(),
        events if events is not None else EventLog())
    saved = OBS.snapshot()
    OBS.enabled = True
    OBS.tracer = handle.tracer
    OBS.metrics = handle.metrics
    OBS.events = handle.events
    if ledger is not None:
        OBS.ledger = ledger
    try:
        yield handle
    finally:
        OBS.restore(saved)


def enabled() -> bool:
    """Is an observation scope currently active?"""
    return OBS.enabled


def span(name: str, **attrs: Any):
    """Context manager for a trace span; free no-op when disabled."""
    if not OBS.enabled:
        return NULL_SPAN
    return OBS.tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a counter in the ambient scope (no-op when disabled)."""
    if OBS.enabled:
        OBS.metrics.counter(name).inc(n)


def record(name: str, value: float) -> None:
    """Observe a histogram sample in the ambient scope."""
    if OBS.enabled:
        OBS.metrics.histogram(name).observe(value)


def gauge(name: str, value: float) -> None:
    """Set a gauge in the ambient scope."""
    if OBS.enabled:
        OBS.metrics.gauge(name).set(value)


def event(name: str, level: str = "info", **fields: Any) -> None:
    """Emit a structured event into the ambient log, correlated with
    the currently open span path (no-op when disabled)."""
    if OBS.enabled:
        OBS.events.emit(name, level=level,
                        span=OBS.tracer.current_path() or None, **fields)


def counter_value(name: str) -> int:
    """Current value of a counter (0 when disabled or never written).

    Used by instrumented layers to report counter *deltas* as span
    attributes: read before, read after, attach the difference.
    """
    if not OBS.enabled:
        return 0
    c = OBS.metrics.counters.get(name)
    return c.value if c is not None else 0


# ---------------------------------------------------------------------------
# environment activation (+ optional atexit export of the ambient scope)

#: export formats accepted in ``REPRO_OBS=<fmt>:<path>``.
_EXPORT_FORMATS = ("chrome", "jsonl", "prom")

#: (fmt, path) pairs already registered with atexit (idempotence guard).
_ATEXIT_EXPORTS: set = set()


def _export_ambient(fmt: str, path: str) -> None:
    """Write the ambient scope to ``path`` in ``fmt`` (the atexit hook)."""
    from repro.obs import export as _export
    if fmt == "chrome":
        _export.write_chrome_trace(OBS.tracer, path)
    elif fmt == "jsonl":
        _export.write_jsonl(OBS.tracer, path, log=OBS.events)
    elif fmt == "prom":
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_export.prometheus_text(OBS.metrics))


def enable_from_env(env: Optional[dict] = None) -> bool:
    """Install a process-wide ambient scope when ``REPRO_OBS`` asks.

    ``REPRO_OBS=1`` (or ``true``/``on``/``yes``) switches the ambient
    scope on.  ``REPRO_OBS=chrome:/path.json``, ``jsonl:/path`` or
    ``prom:/path`` also registers an :mod:`atexit` export of whatever
    the ambient scope has accumulated when the process exits — the
    trace as Chrome Trace Event JSON, the span/event stream as JSONL,
    or the metrics as Prometheus text exposition respectively.

    ``REPRO_OBS_LEDGER=/path/ledger.jsonl`` independently installs a
    persistent :class:`~repro.obs.ledger.RunLedger` at that path (the
    ledger works with span recording off — see :class:`ObsState`).

    Returns True when observability was switched on.  Called once at
    package import; safe to call again (idempotent per process).
    """
    env = os.environ if env is None else env
    ledger_path = str(env.get("REPRO_OBS_LEDGER", "")).strip()
    if ledger_path and OBS.ledger is None:
        from repro.obs.ledger import RunLedger
        OBS.ledger = RunLedger(ledger_path)
    raw = str(env.get("REPRO_OBS", "")).strip()
    flag = raw.lower()
    if flag in ("1", "true", "on", "yes"):
        if not OBS.enabled:
            OBS.enabled = True
            return True
        return False
    if ":" in raw:
        fmt, path = raw.split(":", 1)
        fmt = fmt.strip().lower()
        path = path.strip()
        if fmt in _EXPORT_FORMATS and path:
            switched = not OBS.enabled
            OBS.enabled = True
            if (fmt, path) not in _ATEXIT_EXPORTS:
                _ATEXIT_EXPORTS.add((fmt, path))
                atexit.register(_export_ambient, fmt, path)
            return switched
    return False
