"""Structured tracing: nestable spans forming a trace tree.

A :class:`Tracer` records a forest of :class:`Span` nodes.  Spans nest
through an explicit stack — ``with tracer.span("transient"):`` opens a
child of whatever span is currently active — and close with a wall-clock
duration from :func:`time.perf_counter`.  The finished tree exports as a
JSON document (:meth:`Tracer.to_json`) or as a flat, depth-annotated
event log (:meth:`Tracer.events`), the two shapes downstream tooling
wants (flame-graph-ish inspection vs. grep/line-oriented analysis).

Nothing here imports outside the standard library; the hot layers pay
for tracing only when :data:`repro.obs.core.OBS` is enabled.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "attrs", "t_start", "t_end", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 t_start: Optional[float] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.t_start = time.perf_counter() if t_start is None else t_start
        self.t_end: Optional[float] = None
        self.children: List[Span] = []

    @property
    def duration_s(self) -> Optional[float]:
        """Wall-clock duration; ``None`` while the span is still open."""
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def close(self, t_end: Optional[float] = None) -> None:
        if self.t_end is None:
            self.t_end = time.perf_counter() if t_end is None else t_end

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (depth-first, self included) named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = self.duration_s
        timing = f"{dur * 1e3:.3f} ms" if dur is not None else "open"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class Tracer:
    """Collects spans into a forest; one instance per observation scope."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the currently active span (or a root)."""
        node = self.start(name, **attrs)
        try:
            yield node
        finally:
            self.finish(node)

    def start(self, name: str, **attrs: Any) -> Span:
        """Non-context-manager span entry (paired with :meth:`finish`)."""
        node = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.spans.append(node)
        self._stack.append(node)
        return node

    def finish(self, node: Span) -> None:
        node.close()
        # Pop through any children left open by non-local exits so the
        # stack cannot wedge on exceptions.
        while self._stack:
            top = self._stack.pop()
            if top is node:
                break
            top.close()

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.spans = []
        self._stack = []

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [s.to_dict() for s in self.spans]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def events(self) -> List[Dict[str, Any]]:
        """Flat event log: one record per span, depth-first in start
        order, annotated with its nesting depth."""
        out: List[Dict[str, Any]] = []

        def visit(span: Span, depth: int) -> None:
            out.append({
                "name": span.name,
                "depth": depth,
                "t_start": span.t_start,
                "duration_s": span.duration_s,
                "attrs": dict(span.attrs),
            })
            for child in span.children:
                visit(child, depth + 1)

        for root in self.spans:
            visit(root, 0)
        return out

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` anywhere in the forest."""
        for root in self.spans:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def __len__(self) -> int:
        return len(self.events())
