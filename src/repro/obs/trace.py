"""Structured tracing: nestable spans forming a trace tree.

A :class:`Tracer` records a forest of :class:`Span` nodes.  Spans nest
through an explicit stack — ``with tracer.span("transient"):`` opens a
child of whatever span is currently active — and close with a wall-clock
duration from :func:`time.perf_counter` plus a CPU-time duration from
:func:`time.process_time` (the pair is what lets the profiler separate
"slow because busy" from "slow because waiting").  The finished tree
exports as a JSON document (:meth:`Tracer.to_json`) or as a flat,
depth-annotated event log (:meth:`Tracer.events`), the two shapes
downstream tooling wants (flame-graph-ish inspection vs. grep/
line-oriented analysis); :mod:`repro.obs.export` adds Chrome Trace
Event Format, Prometheus exposition and JSONL on top.

A tracer built with ``profile_memory=True`` additionally records each
span's peak ``tracemalloc`` traced-memory high-water mark (requires
:func:`tracemalloc.start` to have been called; spans record ``None``
otherwise).  The peak is per-span-approximate: the allocator's peak
counter is reset at every span boundary, and a parent folds in its
children's peaks, so short-lived allocations between a child closing
and the parent closing are attributed to the parent.

Nothing here imports outside the standard library; the hot layers pay
for tracing only when :data:`repro.obs.core.OBS` is enabled.
"""

from __future__ import annotations

import json
import time
import tracemalloc
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceContext:
    """Serialisable link from an observing scope to work running
    elsewhere — another process, another thread, or simply later.

    Carries the owning tracer's ``trace_id`` plus the slash-joined path
    of the span that was open at capture time.  A worker adopts the
    context (:meth:`Tracer.adopt`) so the spans it records carry the
    parent's trace identity; the parent then grafts the shipped span
    forest under its own tree and the whole run exports as one
    connected Chrome trace.  Pickles with the stdlib (two short
    strings), so it rides :mod:`multiprocessing` task tuples for free.
    """

    trace_id: str
    parent: str = ""

    @classmethod
    def capture(cls) -> Optional["TraceContext"]:
        """Context of the ambient scope, or ``None`` when disabled."""
        from repro.obs.core import OBS
        if not OBS.enabled:
            return None
        return cls(trace_id=OBS.tracer.trace_id,
                   parent=OBS.tracer.current_path())

    def attrs(self) -> Dict[str, str]:
        """The context as span attributes (provenance on worker roots)."""
        out: Dict[str, str] = {"trace_id": self.trace_id}
        if self.parent:
            out["parent"] = self.parent
        return out


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "attrs", "t_start", "t_end",
                 "cpu_start", "cpu_end", "mem_peak", "pid", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 t_start: Optional[float] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.t_start = time.perf_counter() if t_start is None else t_start
        self.t_end: Optional[float] = None
        self.cpu_start = time.process_time()
        self.cpu_end: Optional[float] = None
        #: peak tracemalloc traced memory (bytes) over the span's
        #: lifetime; ``None`` unless the owning tracer profiles memory.
        self.mem_peak: Optional[int] = None
        #: pid of the process that recorded the span; ``None`` means
        #: "the exporting process" (only cross-process spans are
        #: stamped, so single-process traces stay byte-identical).
        self.pid: Optional[int] = None
        self.children: List[Span] = []

    @property
    def duration_s(self) -> Optional[float]:
        """Wall-clock duration; ``None`` while the span is still open."""
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    @property
    def cpu_s(self) -> Optional[float]:
        """CPU (process) time consumed while the span was open; ``None``
        while still open.  Includes time spent in child spans but not in
        other processes (campaign workers account for themselves)."""
        if self.cpu_end is None:
            return None
        return self.cpu_end - self.cpu_start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def close(self, t_end: Optional[float] = None) -> None:
        if self.t_end is None:
            self.t_end = time.perf_counter() if t_end is None else t_end
            self.cpu_end = time.process_time()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (depth-first, self included) named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "cpu_s": self.cpu_s,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }
        if self.mem_peak is not None:
            out["mem_peak_bytes"] = self.mem_peak
        if self.pid is not None:
            out["pid"] = self.pid
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = self.duration_s
        timing = f"{dur * 1e3:.3f} ms" if dur is not None else "open"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class Tracer:
    """Collects spans into a forest; one instance per observation scope.

    ``profile_memory=True`` records per-span tracemalloc peaks (see the
    module docstring for the attribution caveat); it is off by default
    because tracemalloc itself slows allocation-heavy code noticeably.
    """

    def __init__(self, profile_memory: bool = False) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._count = 0
        self.profile_memory = profile_memory
        #: identity of the trace this forest belongs to; workers adopt
        #: the submitting scope's id so grafted spans are attributable.
        self.trace_id: str = uuid.uuid4().hex[:16]

    def adopt(self, ctx: Optional[TraceContext]) -> "Tracer":
        """Take on the trace identity of a captured context (no-op for
        ``None``, so call sites need no obs-enabled guard)."""
        if ctx is not None:
            self.trace_id = ctx.trace_id
        return self

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the currently active span (or a root)."""
        node = self.start(name, **attrs)
        try:
            yield node
        finally:
            self.finish(node)

    def start(self, name: str, **attrs: Any) -> Span:
        """Non-context-manager span entry (paired with :meth:`finish`)."""
        node = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.spans.append(node)
        self._stack.append(node)
        self._count += 1
        if self.profile_memory and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        return node

    def finish(self, node: Span) -> None:
        node.close()
        if self.profile_memory and tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1]
            child_peaks = [c.mem_peak for c in node.children
                           if c.mem_peak is not None]
            node.mem_peak = max([peak, *child_peaks])
            tracemalloc.reset_peak()
        # Pop through any children left open by non-local exits so the
        # stack cannot wedge on exceptions; tag them so an
        # exception-truncated trace is distinguishable from a clean one.
        while self._stack:
            top = self._stack.pop()
            if top is node:
                break
            top.close()
            top.attrs["truncated"] = True

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def current_path(self) -> str:
        """Slash-joined names of the open span stack (event correlation)."""
        return "/".join(s.name for s in self._stack)

    def reset(self) -> None:
        self.spans = []
        self._stack = []
        self._count = 0

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [s.to_dict() for s in self.spans]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def events(self) -> List[Dict[str, Any]]:
        """Flat event log: one record per span, depth-first in start
        order, annotated with its nesting depth."""
        out: List[Dict[str, Any]] = []

        def visit(span: Span, depth: int) -> None:
            out.append({
                "name": span.name,
                "depth": depth,
                "t_start": span.t_start,
                "duration_s": span.duration_s,
                "cpu_s": span.cpu_s,
                "attrs": dict(span.attrs),
            })
            for child in span.children:
                visit(child, depth + 1)

        for root in self.spans:
            visit(root, 0)
        return out

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` anywhere in the forest."""
        for root in self.spans:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def __len__(self) -> int:
        """Number of spans recorded (running count; does not build the
        flat event list)."""
        return self._count


# ---------------------------------------------------------------------------
# cross-process helpers


def stamp_pids(spans: List[Span], pid: int) -> None:
    """Stamp ``pid`` on every span of a forest that is about to leave
    its process (already-stamped spans are left alone)."""
    for span in spans:
        if span.pid is None:
            span.pid = pid
        stamp_pids(span.children, pid)


def orphan_spans(tracer: Tracer) -> List[Span]:
    """Spans that break single-trace connectivity.

    Two failure shapes: a ``fault.*`` span sitting at the forest root
    (worker output that was shipped but never grafted under its
    campaign/job span), and any span whose recorded ``trace_id``
    attribute disagrees with the tracer's — a forest stitched together
    from unrelated traces.  An empty list is the invariant the
    ``service-trace`` CI job pins: one submit, one connected timeline.
    """
    orphans: List[Span] = []
    for root in tracer.spans:
        if root.name.startswith("fault."):
            orphans.append(root)

    def visit(span: Span) -> None:
        tid = span.attrs.get("trace_id")
        if tid is not None and tid != tracer.trace_id:
            orphans.append(span)
        for child in span.children:
            visit(child)

    for root in tracer.spans:
        visit(root)
    return orphans
