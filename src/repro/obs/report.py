"""Render accumulated trace + metrics + events as human reports.

Two renderings of the same data:

* :func:`render_text_report` — a terminal summary (root-span table,
  top-N hotspots from :func:`repro.obs.profile.aggregate`, metric
  tables, recent warning/error events), what ``Session.report()``
  prints.
* :func:`render_html_report` — the same content as a dependency-free
  standalone HTML document (inline CSS only), with the Chrome trace
  JSON embedded in a ``<script type="application/json">`` block so the
  file doubles as a Perfetto-loadable artifact.

:func:`result_report` is the per-result flavour used by every
``RunResult.report()``: the result summary plus the profile of its own
trace subtree.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import profile as _profile
from repro.obs.export import chrome_trace
from repro.obs.log import EventLog
from repro.obs.metrics import Metrics
from repro.obs.trace import Span, Tracer


def _text_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Minimal fixed-width table (first column left, rest right)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max([len(h)] + [len(r[i]) for r in cells])
              for i, h in enumerate(headers)]
    def fmt(row):
        first = f"{row[0]:<{widths[0]}}"
        rest = [f"{c:>{widths[i + 1]}}" for i, c in enumerate(row[1:])]
        return "  ".join([first] + rest)
    lines = [fmt(list(headers)),
             "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def _ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 1e3:.3f}"


def _root_span_rows(tracer: Tracer) -> List[List[Any]]:
    rows: List[List[Any]] = []
    for sp in tracer.spans:
        label = sp.name
        for key in ("circuit", "exp_id", "target"):
            if key in sp.attrs:
                label = f"{sp.name}[{sp.attrs[key]}]"
                break
        rows.append([label, _ms(sp.duration_s), _ms(sp.cpu_s),
                     len(sp.children)])
    return rows


def _metric_sections(metrics: Metrics) -> List[str]:
    parts: List[str] = []
    if metrics.counters:
        parts.append("counters:\n" + _text_table(
            ("name", "value"),
            [[n, c.value] for n, c in sorted(metrics.counters.items())]))
    if metrics.gauges:
        parts.append("gauges:\n" + _text_table(
            ("name", "value"),
            [[n, "-" if g.value is None else f"{g.value:.6g}"]
             for n, g in sorted(metrics.gauges.items())]))
    if metrics.histograms:
        parts.append("histograms:\n" + _text_table(
            ("name", "count", "mean", "min", "max"),
            [[n, h.count,
              "-" if h.mean is None else f"{h.mean:.3g}",
              "-" if not h.count else f"{h.min:.3g}",
              "-" if not h.count else f"{h.max:.3g}"]
             for n, h in sorted(metrics.histograms.items())]))
    return parts


def _event_section(events: Optional[EventLog], tail: int = 10) -> Optional[str]:
    if events is None or events.is_empty():
        return None
    notable = [r for r in events.records()
               if r["level"] in ("warning", "error")] or events.records()
    lines = [f"events: {len(events)} buffered, {events.dropped} dropped"]
    for r in notable[-tail:]:
        fields = " ".join(f"{k}={v}" for k, v in r["fields"].items())
        where = f" @{r['span']}" if r.get("span") else ""
        lines.append(f"  [{r['level']:7s}] {r['name']}{where} {fields}")
    return "\n".join(lines)


def render_text_report(title: str, tracer: Tracer, metrics: Metrics,
                       events: Optional[EventLog] = None,
                       config: Optional[Dict[str, Any]] = None,
                       top: int = 10) -> str:
    """The terminal summary: spans, hotspots, metrics, notable events."""
    parts: List[str] = [f"=== {title} ==="]
    if config:
        parts.append("config: " + ", ".join(f"{k}={v}"
                                            for k, v in config.items()))
    if tracer.spans:
        parts.append("runs:\n" + _text_table(
            ("run", "wall ms", "cpu ms", "children"),
            _root_span_rows(tracer)))
        report = _profile.aggregate(tracer)
        parts.append(f"hotspots (top {top} by self time):\n"
                     + report.table(top=top))
    else:
        parts.append("runs: none recorded (observability off or no runs)")
    parts.extend(_metric_sections(metrics))
    ev = _event_section(events)
    if ev:
        parts.append(ev)
    return "\n\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# HTML

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: right; padding: 0.25rem 0.6rem;
         border-bottom: 1px solid #ddd; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; font-family: monospace; }
th { background: #f4f4f4; }
.level-warning { color: #9a6700; } .level-error { color: #b30000; }
footer { margin-top: 2rem; font-size: 0.8rem; color: #666; }
"""


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(str(c))}</td>" for c in row)
        + "</tr>" for row in rows)
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_html_report(title: str, tracer: Tracer, metrics: Metrics,
                       events: Optional[EventLog] = None,
                       config: Optional[Dict[str, Any]] = None,
                       top: int = 20) -> str:
    """Standalone HTML report; embeds the Chrome trace JSON."""
    sections: List[str] = [f"<h1>{_html.escape(title)}</h1>"]
    if config:
        cfg = ", ".join(f"{k}={v}" for k, v in config.items())
        sections.append(f"<p><code>{_html.escape(cfg)}</code></p>")
    if tracer.spans:
        sections.append("<h2>Runs</h2>")
        sections.append(_html_table(("run", "wall ms", "cpu ms", "children"),
                                    _root_span_rows(tracer)))
        prof = _profile.aggregate(tracer)
        sections.append(f"<h2>Hotspots (top {top} by self time)</h2>")
        sections.append(_html_table(
            ("path", "calls", "self ms", "total ms", "self cpu ms"),
            [[r.path, r.calls, f"{r.self_s * 1e3:.3f}",
              f"{r.total_s * 1e3:.3f}", f"{r.self_cpu_s * 1e3:.3f}"]
             for r in prof.by_self()[:top]]))
        sections.append(
            f"<p>attributed {prof.attributed_s * 1e3:.3f} ms wall over a "
            f"{prof.window_s * 1e3:.3f} ms window "
            f"(coverage {100.0 * prof.coverage:.1f}%)</p>")
    if metrics.counters:
        sections.append("<h2>Counters</h2>")
        sections.append(_html_table(
            ("name", "value"),
            [[n, c.value] for n, c in sorted(metrics.counters.items())]))
    if metrics.gauges:
        sections.append("<h2>Gauges</h2>")
        sections.append(_html_table(
            ("name", "value"),
            [[n, "-" if g.value is None else f"{g.value:.6g}"]
             for n, g in sorted(metrics.gauges.items())]))
    if metrics.histograms:
        sections.append("<h2>Histograms</h2>")
        sections.append(_html_table(
            ("name", "count", "mean", "min", "max"),
            [[n, h.count,
              "-" if h.mean is None else f"{h.mean:.3g}",
              "-" if not h.count else f"{h.min:.3g}",
              "-" if not h.count else f"{h.max:.3g}"]
             for n, h in sorted(metrics.histograms.items())]))
    if events is not None and not events.is_empty():
        sections.append(f"<h2>Events ({len(events)} buffered, "
                        f"{events.dropped} dropped)</h2>")
        rows = []
        for r in events.records()[-50:]:
            fields = " ".join(f"{k}={v}" for k, v in r["fields"].items())
            rows.append([r["name"], r["level"], r.get("span") or "-", fields])
        sections.append(_html_table(("event", "level", "span", "fields"),
                                    rows))
    trace_json = json.dumps(chrome_trace(tracer), default=str)
    sections.append(
        '<footer>Chrome trace embedded below — extract the JSON block and '
        'load it in <a href="https://ui.perfetto.dev">Perfetto</a>.</footer>')
    sections.append(f'<script type="application/json" id="chrome-trace">'
                    f"{trace_json}</script>")
    body = "\n".join(sections)
    return (f"<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(title)}</title><style>{_CSS}</style>"
            f"</head><body>{body}</body></html>\n")


# ---------------------------------------------------------------------------
# per-result reports


def _tracer_of(span: Span) -> Tracer:
    shim = Tracer()
    shim.spans = [span]
    return shim


def result_report(result: Any, top: int = 10) -> str:
    """Terminal report for one ``RunResult``: summary + trace profile.

    Works on any object with ``summary()`` and a ``trace`` attribute;
    degrades to the bare summary when the run was unobserved.
    """
    parts = [result.summary()]
    span = getattr(result, "trace", None)
    if span is not None:
        prof = _profile.aggregate(_tracer_of(span))
        parts.append(prof.table(top=top))
    else:
        parts.append("(no trace recorded — run under repro.obs.observe() "
                     "or a Session for per-span attribution)")
    return "\n\n".join(parts) + "\n"
