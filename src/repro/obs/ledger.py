"""Persistent run ledger: one append-only JSONL row per campaign run.

Where :mod:`repro.obs.bench` records *benchmark* trajectory, the ledger
records *production* trajectory — every campaign that completes appends
a row keyed by its spec's ``content_key()`` with wall clock, verdict
histogram, escalation rate, cache statistics and the solver counters
the workers reported.  Rows accumulate across processes and sessions,
so ``python -m repro.obs ledger trend`` can answer "is this exact
campaign getting slower?" without any benchmark harness in the loop.

Write discipline: a row is one ``json.dumps`` line appended under a
process-local lock with ``flush`` + ``fsync``.  Single-line appends of
this size are atomic on POSIX for practical purposes; readers skip (and
count) any torn or corrupt line rather than failing, so a crashed
writer can never poison the history.  The ledger is installed either
explicitly (``Session(ledger=...)``, ``observe(ledger=...)``) or
ambiently via ``REPRO_OBS_LEDGER=/path`` — and it deliberately works
with span/metric recording *off*, because one row per campaign costs
nothing and history matters most for routine runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

#: counter prefixes summed into each row (same telemetry set as bench).
from repro.obs.bench import KEY_COUNTER_PREFIXES

#: row schema tag (bump on incompatible layout changes).
LEDGER_SCHEMA = "repro.run-ledger/1"


def runtime_meta() -> Dict[str, Any]:
    """Who/where/what produced a row (or a bench file): git commit and
    dirty flag, hostname, python/numpy versions.  Every field degrades
    to ``None`` rather than raising — provenance is best-effort."""
    meta: Dict[str, Any] = {
        "hostname": platform.node() or None,
        "python": platform.python_version(),
        "git_commit": None,
        "git_dirty": None,
        "numpy": None,
    }
    try:
        import numpy
        meta["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep today
        pass
    try:
        head = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=5)
        if head.returncode == 0:
            meta["git_commit"] = head.stdout.strip()
            dirty = subprocess.run(["git", "status", "--porcelain"],
                                   capture_output=True, text=True, timeout=5)
            if dirty.returncode == 0:
                meta["git_dirty"] = bool(dirty.stdout.strip())
    except Exception:
        pass
    return meta


def _solver_counters(outcomes: Iterable[Any]) -> Dict[str, int]:
    """Sum the key solver counters across the per-outcome metric
    snapshots workers shipped back ({} when the run was unobserved)."""
    totals: Dict[str, int] = {}
    for outcome in outcomes:
        snap = getattr(outcome, "metrics", None)
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            if name.startswith(KEY_COUNTER_PREFIXES):
                totals[name] = totals.get(name, 0) + int(value)
    return dict(sorted(totals.items()))


class RunLedger:
    """Append-only JSONL store of campaign-run rows.

    One instance per path; safe to share across threads (the scheduler's
    dispatcher appends concurrently with foreground runs).  Cross-process
    writers interleave safely because each row is a single appended line.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        #: torn/corrupt lines skipped by the most recent read.
        self.corrupt = 0

    # -- writing -------------------------------------------------------
    def record(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp and append one row; returns the row as written."""
        row = dict(row)
        row.setdefault("schema", LEDGER_SCHEMA)
        row.setdefault("wall", time.time())
        line = json.dumps(row, sort_keys=True, default=str)
        parent = os.path.dirname(self.path)
        with self._lock:
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        return row

    def record_campaign(self, result: Any, key: str,
                        name: Optional[str] = None,
                        prescreen: Optional[str] = None,
                        job: Optional[str] = None) -> Dict[str, Any]:
        """Build and append the row for one finished ``CampaignResult``."""
        outcomes = list(getattr(result, "outcomes", ()))
        n = len(outcomes)
        n_prescreened = sum(1 for o in outcomes
                            if getattr(o, "decided_by", "transient")
                            != "transient")
        verdicts = {
            "detected": sum(1 for o in outcomes if o.detected),
            "missed": sum(1 for o in outcomes
                          if not o.detected and o.error is None),
            "errors": sum(1 for o in outcomes if o.error is not None),
            "timeouts": sum(1 for o in outcomes
                            if getattr(o, "timed_out", False)),
            "quarantined": sum(1 for o in outcomes
                               if getattr(o, "quarantined", False)),
            "prescreened": n_prescreened,
            "cached": sum(1 for o in outcomes
                          if getattr(o, "from_cache", False)),
        }
        cache_stats = getattr(result, "cache_stats", None)
        row: Dict[str, Any] = {
            "key": key,
            "name": name,
            "job": job,
            "n_faults": n,
            "coverage": getattr(result, "coverage", None),
            "elapsed_s": getattr(result, "elapsed_s", None),
            "workers": getattr(result, "workers", None),
            "partial": bool(getattr(result, "partial", False)),
            "verdicts": verdicts,
            # escalation: of the faults the prescreen saw, how many
            # needed the full transient anyway (None when no prescreen)
            "escalation_rate": (1.0 - n_prescreened / n
                                if prescreen and n else None),
            "prescreen": prescreen,
            "cache": cache_stats.to_dict() if cache_stats is not None
                     else None,
            "counters": _solver_counters(outcomes),
            "meta": runtime_meta(),
        }
        return self.record(row)

    # -- reading -------------------------------------------------------
    def rows(self, key: Optional[str] = None) -> List[Dict[str, Any]]:
        """All rows in append order (filtered by content key if given);
        torn/corrupt lines are skipped and counted in ``self.corrupt``."""
        out: List[Dict[str, Any]] = []
        corrupt = 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except ValueError:
                        corrupt += 1
                        continue
                    if not isinstance(row, dict):
                        corrupt += 1
                        continue
                    if key is None or row.get("key") == key:
                        out.append(row)
        except OSError:
            pass
        self.corrupt = corrupt
        return out

    def latest(self, key: str) -> Optional[Dict[str, Any]]:
        rows = self.rows(key=key)
        return rows[-1] if rows else None

    def trend(self, key: Optional[str] = None
              ) -> Dict[str, List[Dict[str, Any]]]:
        """Rows grouped by content key, first-seen order preserved."""
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for row in self.rows(key=key):
            grouped.setdefault(str(row.get("key")), []).append(row)
        return grouped


# ---------------------------------------------------------------------------
# terminal rendering (the `python -m repro.obs ledger` views)


def _fmt_wall(wall: Any) -> str:
    try:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(wall)))
    except (TypeError, ValueError):
        return "?"


def render_list(rows: List[Dict[str, Any]]) -> str:
    """One line per run, newest last."""
    if not rows:
        return "ledger is empty"
    lines = []
    for i, row in enumerate(rows):
        verdicts = row.get("verdicts") or {}
        key = str(row.get("key") or "?")[:12]
        elapsed = row.get("elapsed_s")
        elapsed_txt = f"{elapsed:.3f}s" if isinstance(elapsed, (int, float)) \
            else "?"
        lines.append(
            f"[{i}] {_fmt_wall(row.get('wall'))}  {key}  "
            f"{row.get('name') or '-'}  "
            f"{verdicts.get('detected', '?')}/{row.get('n_faults', '?')} "
            f"detected  {elapsed_txt}")
    return "\n".join(lines)


def render_trend(grouped: Dict[str, List[Dict[str, Any]]],
                 threshold: float = 1.15) -> str:
    """Per-key trend lines: run count, latest vs median wall clock,
    flagged ``REGRESSED`` when latest/median exceeds ``threshold``."""
    if not grouped:
        return "ledger is empty"
    lines = []
    for key, rows in grouped.items():
        times = [r.get("elapsed_s") for r in rows
                 if isinstance(r.get("elapsed_s"), (int, float))]
        name = next((r.get("name") for r in rows if r.get("name")), "-")
        if not times:
            lines.append(f"{key[:12]}  {name}  runs={len(rows)}  (no timing)")
            continue
        latest = times[-1]
        median = sorted(times)[len(times) // 2]
        ratio = latest / median if median > 0 else 1.0
        flag = "  REGRESSED" if ratio > threshold and len(times) > 1 else ""
        lines.append(
            f"{key[:12]}  {name}  runs={len(rows)}  "
            f"latest={latest:.3f}s  median={median:.3f}s  "
            f"ratio={ratio:.2f}{flag}")
    return "\n".join(lines)
