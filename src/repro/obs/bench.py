"""Benchmark-telemetry pipeline: timed workloads + solver counters,
persisted and comparable.

``python -m repro.obs bench`` runs a named suite of workloads — each a
zero-argument callable mirroring one of the ``benchmarks/bench_*.py``
scenarios — several rounds apiece, every round inside its own enabled
observation scope, and writes ``BENCH_<suite>.json``: per-workload
median and IQR wall-clock timings plus the scope's key counters
(Newton iterations, LU factorisations, transient steps...).  The
counters are the telemetry half: a timing regression with unchanged
counters is machine noise; a timing regression *with* a counter jump
(Newton iterations doubled, LinearMarch stopped engaging) is an engine
regression and says where to look.

``python -m repro.obs compare old.json new.json --threshold 1.15``
gates the trajectory: non-zero exit when any common workload's median
slowed beyond the threshold ratio (``--warn-only`` downgrades for
bootstrap runs), with counter drifts annotated per workload.

Everything here is driven by the registry in :data:`SUITES`, so adding
a workload is one entry.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.core import observe

#: counter prefixes persisted into BENCH_*.json (the telemetry half).
KEY_COUNTER_PREFIXES = ("solver.", "transient.", "mna.", "fastpath.",
                        "campaign.", "experiments.", "bist.", "batched.",
                        "surrogate.", "cache.", "service.")

#: file schema tag (bump on incompatible layout changes).
SCHEMA = "repro.bench/1"


# ---------------------------------------------------------------------------
# workloads


def _rc_transient_10k():
    from repro.spice import Circuit, transient
    circuit = Circuit("rc")
    circuit.vsource("VIN", "in", "0", lambda t: 5.0 if t > 0 else 0.0)
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.capacitor("C1", "out", "0", 1e-6)
    return transient(circuit, t_stop=10e-3, dt=1e-6, record=["out"])


def _op1_transient_1k():
    from repro.circuits.op1 import op1_follower
    from repro.spice import transient
    circuit = op1_follower(input_value=lambda t: 2.2 if t < 50e-6 else 3.0)
    return transient(circuit, t_stop=1e-3, dt=1e-6, record=["3"])


def _op1_dc():
    from repro.circuits.op1 import op1_follower
    from repro.spice import dc_operating_point
    return dc_operating_point(op1_follower(input_value=2.5))


def _divider_campaign():
    from repro.faults import FaultCampaign, StuckAtFault
    from repro.spice import Circuit, dc_operating_point

    def build():
        ckt = Circuit("div")
        ckt.vsource("V1", "top", "0", 5.0)
        ckt.resistor("R1", "top", "mid", 1e3)
        ckt.resistor("R2", "mid", "0", 1e3)
        return ckt

    def technique(ckt):
        return dc_operating_point(ckt)[0]["mid"]

    faults = [f for node in ("top", "mid")
              for f in (StuckAtFault.sa0(node), StuckAtFault.sa1(node))]
    campaign = FaultCampaign(technique,
                             lambda ref, m: 1.0 if abs(m - ref) > 0.5 else 0.0,
                             threshold=0.5)
    return campaign.run(build(), faults)


def _dictionary_campaign(batch_size: int) -> Callable[[], Any]:
    """A 64-fault dictionary campaign over a 10-section RC ladder,
    scored sample-by-sample — the BENCH_batched speedup scenario.
    ``batch_size=1`` is the serial reference the Kx variants are
    measured against (mirrors benchmarks/bench_batched_dictionary.py)."""
    def run():
        from repro.faults import FaultCampaign
        from repro.faults.dictionary import (
            SignatureDetector,
            TransientSignatureTechnique,
            dictionary_faults,
            dictionary_ladder,
        )
        target = dictionary_ladder(n_sections=10)
        faults = dictionary_faults(n_sections=10, n_faults=64)
        technique = TransientSignatureTechnique(
            t_stop=3.1e-3, dt=1e-6, node="n9")
        campaign = FaultCampaign(technique, SignatureDetector(abs_v=0.05),
                                 threshold=0.0, batch_size=batch_size)
        return campaign.run(target, faults)
    run.__name__ = f"dictionary_64f_k{batch_size}"
    return run


def _surrogate_campaign(prescreen: bool) -> Callable[[], Any]:
    """The 64-fault dictionary campaign with a 127-chip PRBS (12.7 ms),
    with and without the surrogate prescreen — the BENCH_surrogate
    speedup scenario (mirrors benchmarks/bench_surrogate_prescreen.py).
    The longer stimulus is what the prescreen is for: transient cost
    scales with steps, the vector fit does not."""
    def run():
        from repro.faults import FaultCampaign
        from repro.faults.dictionary import (
            SignatureDetector,
            TransientSignatureTechnique,
            dictionary_faults,
            dictionary_ladder,
        )
        from repro.service.spec import CampaignSpec
        from repro.signals.prbs import prbs_waveform
        stimulus = prbs_waveform(order=7, chip_time=100e-6, low=0.0,
                                 high=5.0, dt=1e-6, seed=3)
        target = dictionary_ladder(n_sections=10, stimulus=stimulus)
        faults = dictionary_faults(n_sections=10, n_faults=64)
        technique = TransientSignatureTechnique(
            t_stop=stimulus.duration, dt=1e-6, node="n9")
        campaign = FaultCampaign(technique, SignatureDetector(abs_v=0.05),
                                 threshold=0.05)
        spec = CampaignSpec(target=target, faults=tuple(faults))
        if prescreen:
            spec = spec.replace(prescreen="surrogate")
        return campaign.run(spec=spec)
    run.__name__ = ("dictionary_64f_prescreened" if prescreen
                    else "dictionary_64f_transient")
    return run


def _fit_rc_ladder():
    """One vector fit of the 10-section ladder's transfer function —
    the prescreen's per-fault unit of work, timed in isolation."""
    from repro.faults.dictionary import dictionary_ladder
    from repro.surrogate import PrescreenConfig, fit_circuit
    circuit = dictionary_ladder(n_sections=10)
    return fit_circuit(circuit, "VIN", "n9", config=PrescreenConfig(),
                       dt=1e-6, t_stop=6.3e-3)


def _sparse_ladder_transient():
    """A 1000-node RC ladder transient: above the sparse threshold, so
    the march runs through the CSC/splu route (the dense path on this
    workload is the deadline demo in bench_batched_dictionary.py)."""
    from repro.faults.dictionary import dictionary_ladder
    from repro.spice import transient
    circuit = dictionary_ladder(n_sections=1000, r_ohm=10.0)
    return transient(circuit, t_stop=1e-3, dt=2e-6, record=["n999"])


# -- durable-service recovery workloads -------------------------------------


def _recovery_divider():
    from repro.spice import Circuit
    ckt = Circuit("div")
    ckt.vsource("VIN", "in", "0", 4.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


def _recovery_measure(ckt):
    from repro.spice import dc_operating_point
    v, _ = dc_operating_point(ckt, validate=False)
    return v["mid"]


def _recovery_detect(ref, meas):
    return 1.0 if abs(ref - meas) > 0.1 else 0.0


def _recovery_specs(workdir: str, n_jobs: int = 8, n_faults: int = 8):
    from repro.faults import StuckAtFault
    from repro.service.spec import CampaignSpec
    specs = []
    for j in range(n_jobs):
        faults = tuple(StuckAtFault(name=f"f{j}-{i}", node="mid",
                                    level=float(i % 2) * 5.0,
                                    resistance=10.0 + j * 100 + i)
                       for i in range(n_faults))
        specs.append(CampaignSpec(
            technique=_recovery_measure, detector=_recovery_detect,
            target=_recovery_divider(), faults=faults,
            name=f"recovery-{j}", workers=1,
            checkpoint=os.path.join(workdir, f"job{j}.ckpt"),
            checkpoint_every=1))
    return specs


#: staged-once state for the recovery workloads (journal snapshot in its
#: pre-crash all-live shape, plus fully populated checkpoints + cache).
_RECOVERY_STAGE: Dict[str, Any] = {}


def _recovery_stage() -> Dict[str, Any]:
    """Once per process: journal 8 campaign jobs, snapshot the journal
    while every job is still live (the "crashed mid-drain" state), then
    run them all to completion so checkpoints and the disk cache hold
    every outcome.  The recovery workloads restore that snapshot and
    time the restart path against the warm files."""
    if _RECOVERY_STAGE:
        return _RECOVERY_STAGE
    import tempfile
    from repro.service.cache import ResultCache
    from repro.service.queue import PersistentJobQueue
    from repro.service.scheduler import CampaignScheduler
    workdir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    queue_path = os.path.join(workdir, "queue.jsonl")
    specs = _recovery_specs(workdir)
    queue = PersistentJobQueue(queue_path)
    for i, spec in enumerate(specs):
        queue.submit(f"bench-job{i + 1}", spec.resolved())
    with open(queue_path, "rb") as fh:
        journal = fh.read()
    cache = ResultCache(path=os.path.join(workdir, "cache"))
    sched = CampaignScheduler(workers=1, name="bench-stage", cache=cache)
    try:
        for job in [sched.submit(spec) for spec in specs]:
            job.result()
    finally:
        sched.close()
    _RECOVERY_STAGE.update(workdir=workdir, queue_path=queue_path,
                           journal=journal, n_jobs=len(specs))
    return _RECOVERY_STAGE


def _restore_journal(stage: Dict[str, Any]) -> None:
    with open(stage["queue_path"], "wb") as fh:
        fh.write(stage["journal"])


def _journal_submit_100():
    """100 fsync'd submissions into a fresh journal — the write-ahead
    cost the service pays at accept time."""
    import tempfile
    from repro.service.queue import PersistentJobQueue
    stage = _recovery_stage()
    spec = _recovery_specs(stage["workdir"], n_jobs=1)[0].resolved()
    with tempfile.TemporaryDirectory(dir=stage["workdir"]) as tmp:
        queue = PersistentJobQueue(os.path.join(tmp, "q.jsonl"))
        for i in range(100):
            queue.submit(f"sub-job{i + 1}", spec)
        return len(queue)


def _journal_replay_8jobs():
    """Pure journal replay of the staged 8-job queue (no scheduler) —
    the floor any restart pays before it can dispatch."""
    from repro.service.queue import PersistentJobQueue
    stage = _recovery_stage()
    _restore_journal(stage)
    queue = PersistentJobQueue(stage["queue_path"])
    assert queue.depth() == stage["n_jobs"]
    return queue


def _service_restart_8jobs():
    """The end-to-end restart: replay the pre-crash journal, rebuild
    and re-submit all 8 jobs, and serve every result from checkpoints +
    disk cache — zero simulations, the recovery latency a SIGKILLed
    service pays on its next start."""
    from repro.service.cache import ResultCache
    from repro.service.scheduler import CampaignScheduler
    stage = _recovery_stage()
    _restore_journal(stage)
    cache = ResultCache(path=os.path.join(stage["workdir"], "cache"))
    sched = CampaignScheduler(workers=1, name="bench", cache=cache,
                              queue=stage["queue_path"])
    try:
        jobs = sched.recover()
        assert len(jobs) == stage["n_jobs"]
        results = [job.result() for job in jobs]
    finally:
        sched.close()
    return results


def _experiment(exp_id: str) -> Callable[[], Any]:
    def run():
        from repro.experiments.registry import run_record
        return run_record(exp_id)
    run.__name__ = f"experiment_{exp_id}"
    return run


SUITES: Dict[str, Dict[str, Callable[[], Any]]] = {
    # engine micro-workloads (mirror benchmarks/bench_sim_performance.py
    # and bench_campaign_throughput.py)
    "sim": {
        "rc_transient_10k": _rc_transient_10k,
        "op1_transient_1k": _op1_transient_1k,
        "op1_dc_operating_point": _op1_dc,
        "divider_campaign": _divider_campaign,
    },
    # the paper's evaluation section (mirrors benchmarks/bench_e*.py);
    # select a subset with --ids (E5 alone is ~20 s per round).
    "experiments": {
        eid: _experiment(eid)
        for eid in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9")
    },
    # lockstep batched campaign + sparse solver route (mirrors
    # benchmarks/bench_batched_dictionary.py); the Kx workloads share
    # one scenario so their medians are directly comparable speedups.
    "batched": {
        "dictionary_64f_serial": _dictionary_campaign(1),
        "dictionary_64f_k8": _dictionary_campaign(8),
        "dictionary_64f_k32": _dictionary_campaign(32),
        "dictionary_64f_k64": _dictionary_campaign(64),
        "sparse_ladder_1000": _sparse_ladder_transient,
    },
    # surrogate prescreen vs full transient on one shared scenario
    # (mirrors benchmarks/bench_surrogate_prescreen.py); the two
    # dictionary workloads' median ratio is the prescreen speedup.
    "surrogate": {
        "dictionary_64f_transient": _surrogate_campaign(False),
        "dictionary_64f_prescreened": _surrogate_campaign(True),
        "vector_fit_ladder10": _fit_rc_ladder,
    },
    # durable-service restart latency (mirrors
    # benchmarks/bench_service_recovery.py): write-ahead append cost,
    # pure journal replay, and the full recover-and-serve restart.
    "recovery": {
        "journal_submit_100": _journal_submit_100,
        "journal_replay_8jobs": _journal_replay_8jobs,
        "service_restart_8jobs": _service_restart_8jobs,
    },
}


# ---------------------------------------------------------------------------
# runner


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _quartiles(values: List[float]) -> tuple:
    """(q25, q75) by linear interpolation (matches numpy's default)."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        return ordered[0], ordered[0]

    def q(p: float) -> float:
        idx = p * (n - 1)
        lo = int(idx)
        hi = min(lo + 1, n - 1)
        frac = idx - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return q(0.25), q(0.75)


def _key_counters(counter_values: Dict[str, int]) -> Dict[str, int]:
    return {name: value for name, value in sorted(counter_values.items())
            if name.startswith(KEY_COUNTER_PREFIXES)}


def run_workload(fn: Callable[[], Any], rounds: int) -> Dict[str, Any]:
    """Time ``fn`` for ``rounds`` rounds, each inside a fresh enabled
    observation scope; returns the persisted per-workload record."""
    times: List[float] = []
    counters: Dict[str, int] = {}
    for _ in range(rounds):
        with observe() as handle:
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        # deterministic workloads produce identical counters per round;
        # keep the last round's (they include the scope's full story).
        counters = _key_counters(handle.metrics.counter_values())
    q25, q75 = _quartiles(times)
    return {
        "rounds": rounds,
        "median_s": _median(times),
        "iqr_s": q75 - q25,
        "min_s": min(times),
        "max_s": max(times),
        "times_s": times,
        "counters": counters,
    }


def run_suite(suite: str = "sim", ids: Optional[List[str]] = None,
              rounds: int = 3, out_dir: str = ".",
              echo: bool = True) -> str:
    """Run a suite and write ``BENCH_<suite>.json``; returns the path."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; known: {sorted(SUITES)}")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    workloads = SUITES[suite]
    if ids:
        missing = [i for i in ids if i not in workloads]
        if missing:
            raise KeyError(f"unknown workload(s) {missing} in suite "
                           f"{suite!r}; known: {sorted(workloads)}")
        workloads = {i: workloads[i] for i in ids}
    results: Dict[str, Any] = {}
    for name, fn in workloads.items():
        if echo:
            print(f"bench {suite}/{name} ({rounds} rounds)...",
                  flush=True)
        rec = run_workload(fn, rounds)
        results[name] = rec
        if echo:
            print(f"  median {rec['median_s'] * 1e3:.2f} ms  "
                  f"iqr {rec['iqr_s'] * 1e3:.2f} ms  "
                  f"({len(rec['counters'])} counters)")
    # lazy import: ledger pulls KEY_COUNTER_PREFIXES from this module
    from repro.obs.ledger import runtime_meta
    doc = {
        "schema": SCHEMA,
        "suite": suite,
        "rounds": rounds,
        "python": platform.python_version(),
        "platform": platform.platform(),
        # provenance only — compare_benches reads doc["workloads"] and
        # ignores this block, so trajectories stay comparable across
        # hosts and commits while each point remains attributable
        "meta": runtime_meta(),
        "workloads": results,
    }
    path = os.path.join(out_dir, f"BENCH_{suite}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if echo:
        print(f"wrote {path}")
    return path


# ---------------------------------------------------------------------------
# comparison / regression gate


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unknown bench schema "
                         f"{doc.get('schema')!r} (expected {SCHEMA})")
    return doc


def compare_benches(baseline_path: str, candidate_path: str,
                    threshold: float = 1.15, warn_only: bool = False,
                    out=None) -> int:
    """Compare two BENCH_*.json files; returns the process exit code.

    A workload *regresses* when ``candidate_median / baseline_median >
    threshold``.  Counter drifts are annotated (they tell you whether a
    slowdown is engine behaviour or machine noise) but never gate on
    their own.
    """
    out = sys.stdout if out is None else out
    base = load_bench(baseline_path)
    cand = load_bench(candidate_path)
    common = sorted(set(base["workloads"]) & set(cand["workloads"]))
    if not common:
        print("error: no common workloads between the two files",
              file=sys.stderr)
        return 2
    regressions: List[str] = []
    print(f"{'workload':32s} {'base (s)':>12s} {'cand (s)':>12s} "
          f"{'ratio':>7s}", file=out)
    for name in common:
        b = base["workloads"][name]
        c = cand["workloads"][name]
        ratio = (c["median_s"] / b["median_s"]
                 if b["median_s"] > 0 else float("inf"))
        flag = ""
        if ratio > threshold:
            regressions.append(name)
            flag = "  WARN" if warn_only else "  FAIL"
        print(f"{name:32s} {b['median_s']:12.6f} {c['median_s']:12.6f} "
              f"{ratio:7.3f}{flag}", file=out)
        drifts = _counter_drifts(b.get("counters", {}),
                                 c.get("counters", {}))
        for line in drifts:
            print(f"    {line}", file=out)
    skipped = sorted((set(base["workloads"]) | set(cand["workloads"]))
                     - set(common))
    if skipped:
        print(f"not compared (present in only one file): "
              f"{', '.join(skipped)}", file=out)
    if regressions:
        verdict = (f"{len(regressions)} workload(s) beyond the "
                   f"{threshold:g}x gate: {', '.join(regressions)}")
        if warn_only:
            print(f"warning: {verdict} (warn-only)", file=out)
            return 0
        print(f"error: {verdict}", file=sys.stderr)
        return 1
    print(f"all {len(common)} workload(s) within the {threshold:g}x gate",
          file=out)
    return 0


def _counter_drifts(base: Dict[str, int], cand: Dict[str, int],
                    rel: float = 0.01) -> List[str]:
    """Human lines for counters whose values moved more than ``rel``."""
    lines: List[str] = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name, 0)
        c = cand.get(name, 0)
        if b == c:
            continue
        denom = max(abs(b), 1)
        if abs(c - b) / denom > rel:
            lines.append(f"counter {name}: {b} -> {c}")
    return lines
