"""Exporters: get trace/metrics/event data *out* of the process.

Three wire formats, all stdlib-only:

* **Chrome Trace Event Format** (:func:`chrome_trace`) — the
  ``{"traceEvents": [...]}`` JSON shape that ``chrome://tracing`` and
  `Perfetto <https://ui.perfetto.dev>`_ load directly.  Every finished
  span becomes one complete (``ph == "X"``) event; timestamps are
  microseconds relative to a per-trace epoch (the earliest span start),
  so the absolute :func:`time.perf_counter` origin never leaks into the
  file and two traces diff cleanly.
* **Prometheus text exposition** (:func:`prometheus_text`) — counters
  as ``_total``, gauges verbatim, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``, name-sanitised
  and namespaced (default ``repro_``).  :func:`parse_prometheus_text`
  is the matching reader (round-trip tests, scraping a written file).
* **JSONL flat-event stream** (:func:`jsonl_events`) — one JSON object
  per line, spans (``kind: "span"``) merged with structured log events
  (``kind: "event"``) in timestamp order: the grep-able form.

Open (unfinished) spans are skipped by the Chrome exporter — a complete
event needs a duration — and exported with ``duration_s: null`` by the
JSONL exporter.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional

from repro.obs.log import EventLog
from repro.obs.metrics import Metrics
from repro.obs.trace import Span, Tracer

# ---------------------------------------------------------------------------
# Chrome Trace Event Format


def trace_epoch(tracer: Tracer) -> float:
    """The per-trace epoch: earliest span start in the forest (0.0 for
    an empty trace).  All exported timestamps are relative to this."""
    starts = [s.t_start for s in tracer.spans]
    return min(starts) if starts else 0.0


def chrome_trace_events(tracer: Tracer, pid: Optional[int] = None,
                        tid: int = 1) -> List[Dict[str, Any]]:
    """Flatten the span forest into Chrome trace ``ph == "X"`` events."""
    pid = os.getpid() if pid is None else pid
    epoch = trace_epoch(tracer)
    out: List[Dict[str, Any]] = []

    def visit(span: Span) -> None:
        if span.duration_s is not None:
            args: Dict[str, Any] = dict(span.attrs)
            if span.cpu_s is not None:
                args["cpu_ms"] = round(span.cpu_s * 1e3, 6)
            if span.mem_peak is not None:
                args["mem_peak_bytes"] = span.mem_peak
            out.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.t_start - epoch) * 1e6,   # microseconds
                "dur": span.duration_s * 1e6,
                # grafted cross-process spans carry the recording pid,
                # so Perfetto draws one row per worker process
                "pid": span.pid if span.pid is not None else pid,
                "tid": tid,
                "cat": "repro",
                "args": args,
            })
        for child in span.children:
            visit(child)

    for root in tracer.spans:
        visit(root)
    return out


def chrome_trace(tracer: Tracer, pid: Optional[int] = None) -> Dict[str, Any]:
    """The full Chrome Trace Event JSON document (object form)."""
    return {
        "traceEvents": chrome_trace_events(tracer, pid=pid),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       pid: Optional[int] = None) -> None:
    """Write a ``.json`` loadable in Perfetto / ``chrome://tracing``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer, pid=pid), fh, default=str)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_name(name: str, namespace: str) -> str:
    """Sanitise to the 0.0.4 metric-name charset.

    Metric names flow in from user-supplied strings (job labels become
    ``service.job.<id>.progress`` gauges), so this must survive
    arbitrary input: every illegal byte becomes ``_``, an empty result
    becomes ``_``, and a leading digit is prefixed (names must match
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    base = _NAME_RE.sub("_", name) or "_"
    if base[0].isdigit():
        base = "_" + base
    return f"{namespace}_{base}" if namespace else base


def _prom_label_name(name: str) -> str:
    """Label names are narrower than metric names (no colons)."""
    base = _LABEL_NAME_RE.sub("_", str(name)) or "_"
    if base[0].isdigit():
        base = "_" + base
    return base


def _prom_label_value(value: Any) -> str:
    """Escape a label value per the exposition format: backslash,
    double-quote and newline (the only bytes with meaning)."""
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _prom_unescape(value: str) -> str:
    """Invert :func:`_prom_label_value` (left-to-right, one pass)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _prom_labels(labels: Optional[Dict[str, Any]],
                 extra: Optional[str] = None) -> str:
    """Render a ``{name="value",...}`` block ("" when empty)."""
    items = [f'{_prom_label_name(k)}="{_prom_label_value(v)}"'
             for k, v in (labels or {}).items()]
    if extra:
        items.append(extra)
    return "{" + ",".join(items) + "}" if items else ""


def _prom_num(value: float) -> str:
    if value != value:                       # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(metrics: Metrics, namespace: str = "repro",
                    labels: Optional[Dict[str, Any]] = None) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4.

    Counters gain the conventional ``_total`` suffix; histogram buckets
    are emitted cumulatively (Prometheus semantics) even though
    :class:`~repro.obs.metrics.Histogram` stores them per-interval.
    ``labels`` attach to every sample (names sanitised, values escaped
    — safe for user-supplied job labels).
    """
    label_str = _prom_labels(labels)
    lines: List[str] = []
    for name in sorted(metrics.counters):
        pname = _prom_name(name, namespace)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname}_total{label_str} "
                     f"{metrics.counters[name].value}")
    for name in sorted(metrics.gauges):
        value = metrics.gauges[name].value
        if value is None:
            continue
        pname = _prom_name(name, namespace)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}{label_str} {_prom_num(value)}")
    for name in sorted(metrics.histograms):
        h = metrics.histograms[name]
        pname = _prom_name(name, namespace)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, n in zip(h.BOUNDS, h.buckets):
            cumulative += n
            le = _prom_labels(labels, extra=f'le="{_prom_num(bound)}"')
            lines.append(f"{pname}_bucket{le} {cumulative}")
        inf = _prom_labels(labels, extra='le="+Inf"')
        lines.append(f"{pname}_bucket{inf} {h.count}")
        lines.append(f"{pname}_sum{label_str} {_prom_num(h.total)}")
        lines.append(f"{pname}_count{label_str} {h.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse :func:`prometheus_text` output back into plain data.

    Returns ``name -> {"type": ..., "value"/...}`` with histogram
    buckets as a ``{le-label: cumulative-count}`` dict.  Only the
    subset of the exposition format this module emits is understood.
    """
    out: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            mname, mtype = rest.rsplit(" ", 1)
            types[mname.strip()] = mtype.strip()
            continue
        if line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        value = float(raw)
        label = None
        labels: Dict[str, str] = {}
        if "{" in key:
            key, _, labelpart = key.partition("{")
            for m in _LABEL_PAIR_RE.finditer(labelpart):
                labels[m.group(1)] = _prom_unescape(m.group(2))
            label = labels.pop("le", None)
        for base, mtype in types.items():
            if key == base or key.startswith(base + "_"):
                suffix = key[len(base):]
                rec = out.setdefault(base, {"type": mtype})
                if labels:
                    rec.setdefault("labels", {}).update(labels)
                if mtype == "counter" and suffix == "_total":
                    rec["value"] = value
                elif mtype == "gauge" and suffix == "":
                    rec["value"] = value
                elif mtype == "histogram":
                    if suffix == "_bucket":
                        rec.setdefault("buckets", {})[label] = value
                    elif suffix == "_sum":
                        rec["sum"] = value
                    elif suffix == "_count":
                        rec["count"] = value
                break
    return out


# ---------------------------------------------------------------------------
# JSONL flat-event stream


def jsonl_records(tracer: Tracer,
                  log: Optional[EventLog] = None) -> List[Dict[str, Any]]:
    """Span records (+ optional structured log events) as a single
    timestamp-ordered list of flat dicts."""
    epoch = trace_epoch(tracer)
    records: List[Dict[str, Any]] = []
    for ev in tracer.events():
        rec = dict(ev, kind="span")
        rec["t_start"] = ev["t_start"] - epoch
        records.append(rec)
    if log is not None:
        for ev in log.records():
            records.append({
                "kind": "event",
                "name": ev["name"],
                "level": ev["level"],
                "span": ev["span"],
                "t_start": ev["t"] - epoch,
                "wall": ev["wall"],
                "fields": dict(ev["fields"]),
            })
    records.sort(key=lambda r: r["t_start"])
    return records


def jsonl_events(tracer: Tracer, log: Optional[EventLog] = None) -> str:
    """The JSONL stream: one JSON object per line, timestamp order."""
    return "\n".join(json.dumps(r, default=str)
                     for r in jsonl_records(tracer, log))


def write_jsonl(tracer: Tracer, path: str,
                log: Optional[EventLog] = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        text = jsonl_events(tracer, log)
        fh.write(text + ("\n" if text else ""))
