"""repro.obs — zero-dependency instrumentation for the whole stack.

The pieces:

* :mod:`repro.obs.trace`   — :class:`Tracer` with nestable spans (wall
  + CPU time, optional tracemalloc peaks), JSON tree export and a flat
  event log.
* :mod:`repro.obs.metrics` — :class:`Metrics` registry of counters,
  gauges and summary histograms, with picklable snapshots and lossless
  merging (campaign workers ship per-fault snapshots back this way).
* :mod:`repro.obs.log`     — :class:`EventLog`, a bounded ring buffer
  of span-correlated structured events (solver anomalies, campaign
  heartbeats).
* :mod:`repro.obs.core`    — the ambient scope: :func:`observe` enables
  fresh sinks for a block; disabled by default, and the disabled path
  is a single attribute check at every recording site.
* :mod:`repro.obs.export`  — Chrome Trace Event Format (Perfetto),
  Prometheus text exposition and a JSONL flat-event stream.
* :mod:`repro.obs.profile` — :func:`aggregate` folds a span forest
  into per-path self/total wall+CPU attribution with a hotspot table.
* :mod:`repro.obs.health`  — campaign progress callbacks, ETA,
  heartbeats and straggler detection.
* :mod:`repro.obs.bench`   — the benchmark-telemetry pipeline behind
  ``python -m repro.obs bench`` / ``compare``.

Typical use, directly or through :class:`repro.session.Session`::

    from repro import obs
    from repro.obs import export, profile

    with obs.observe() as o:
        transient(circuit, t_stop=1e-3, dt=1e-6)
    print(o.metrics.counter_values()["solver.newton_iterations"])
    print(profile.aggregate(o.tracer).table())
    export.write_chrome_trace(o.tracer, "trace.json")  # -> Perfetto

Set ``REPRO_OBS=1`` in the environment to switch on a process-wide
ambient scope without touching code (how CI measures enabled-mode
overhead), or ``REPRO_OBS=chrome:/path.json`` (``jsonl:``/``prom:``) to
also export the ambient scope at process exit.
"""

from repro.obs.core import (
    NULL_SPAN,
    OBS,
    Observation,
    count,
    counter_value,
    enable_from_env,
    enabled,
    event,
    gauge,
    observe,
    record,
    span,
)
from repro.obs.ledger import RunLedger
from repro.obs.log import EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.trace import Span, TraceContext, Tracer, orphan_spans

enable_from_env()

__all__ = [
    "OBS",
    "NULL_SPAN",
    "Observation",
    "observe",
    "enabled",
    "span",
    "count",
    "record",
    "gauge",
    "event",
    "counter_value",
    "enable_from_env",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "EventLog",
    "RunLedger",
    "Span",
    "TraceContext",
    "Tracer",
    "orphan_spans",
]
