"""repro.obs — zero-dependency instrumentation for the whole stack.

Three pieces:

* :mod:`repro.obs.trace`   — :class:`Tracer` with nestable spans, JSON
  tree export and a flat event log.
* :mod:`repro.obs.metrics` — :class:`Metrics` registry of counters,
  gauges and summary histograms, with picklable snapshots and lossless
  merging (campaign workers ship per-fault snapshots back this way).
* :mod:`repro.obs.core`    — the ambient scope: :func:`observe` enables
  a fresh tracer/metrics pair for a block; disabled by default, and the
  disabled path is a single attribute check at every recording site.

Typical use, directly or through :class:`repro.session.Session`::

    from repro import obs

    with obs.observe() as o:
        transient(circuit, t_stop=1e-3, dt=1e-6)
    print(o.metrics.counter_values()["solver.newton_iterations"])
    print(o.trace_json())

Set ``REPRO_OBS=1`` in the environment to switch on a process-wide
ambient scope without touching code (how CI measures enabled-mode
overhead).
"""

from repro.obs.core import (
    NULL_SPAN,
    OBS,
    Observation,
    count,
    counter_value,
    enable_from_env,
    enabled,
    gauge,
    observe,
    record,
    span,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.trace import Span, Tracer

enable_from_env()

__all__ = [
    "OBS",
    "NULL_SPAN",
    "Observation",
    "observe",
    "enabled",
    "span",
    "count",
    "record",
    "gauge",
    "counter_value",
    "enable_from_env",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "Span",
    "Tracer",
]
