"""Span profiling: fold a trace forest into per-path cost attribution.

Every :class:`~repro.obs.trace.Span` already carries a wall-clock and a
CPU-time duration; :func:`aggregate` folds the forest into one row per
*path* (slash-joined span names from the root, the flame-graph
identity), each with call counts, **total** time (span open to close,
children included) and **self** time (total minus the children —
the time actually spent at that level).  Self times partition the
trace: summed over all paths they equal the summed root totals, which
is what makes the hotspot table trustworthy — nothing is counted
twice and nothing instrumented is lost.

Open spans are skipped (no duration yet); their closed children still
contribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span, Tracer


@dataclass
class PathStats:
    """Accumulated cost of one span path."""

    path: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    total_cpu_s: float = 0.0
    self_cpu_s: float = 0.0
    mem_peak_bytes: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "path": self.path,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "total_cpu_s": self.total_cpu_s,
            "self_cpu_s": self.self_cpu_s,
        }
        if self.mem_peak_bytes is not None:
            out["mem_peak_bytes"] = self.mem_peak_bytes
        return out


@dataclass
class ProfileReport:
    """The folded profile: per-path stats plus whole-trace accounting."""

    rows: List[PathStats] = field(default_factory=list)
    #: wall-clock attributed to root spans (the trace's covered time).
    attributed_s: float = 0.0
    #: CPU time attributed to root spans.
    attributed_cpu_s: float = 0.0
    #: wall-clock window spanned by the forest (first start → last end).
    window_s: float = 0.0

    def by_self(self) -> List[PathStats]:
        return sorted(self.rows, key=lambda r: r.self_s, reverse=True)

    def by_total(self) -> List[PathStats]:
        return sorted(self.rows, key=lambda r: r.total_s, reverse=True)

    @property
    def coverage(self) -> float:
        """Fraction of the trace window attributed to spans (1.0 when
        roots tile the window; < 1 when there are gaps between roots)."""
        if self.window_s <= 0.0:
            return 1.0 if not self.rows else 0.0
        return min(1.0, self.attributed_s / self.window_s)

    def table(self, top: int = 10, by: str = "self") -> str:
        """Top-N hotspot table, plain text."""
        rows = self.by_self() if by == "self" else self.by_total()
        rows = rows[:top]
        width = max([len("path")] + [len(r.path) for r in rows])
        lines = [f"{'path':<{width}} {'calls':>6} {'self ms':>10} "
                 f"{'total ms':>10} {'self cpu ms':>12}"]
        for r in rows:
            lines.append(
                f"{r.path:<{width}} {r.calls:>6d} {r.self_s * 1e3:>10.3f} "
                f"{r.total_s * 1e3:>10.3f} {r.self_cpu_s * 1e3:>12.3f}")
        lines.append(
            f"attributed {self.attributed_s * 1e3:.3f} ms wall "
            f"({self.attributed_cpu_s * 1e3:.3f} ms cpu) over a "
            f"{self.window_s * 1e3:.3f} ms window "
            f"[coverage {100.0 * self.coverage:.1f}%]")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attributed_s": self.attributed_s,
            "attributed_cpu_s": self.attributed_cpu_s,
            "window_s": self.window_s,
            "coverage": self.coverage,
            "paths": [r.to_dict() for r in self.by_self()],
        }


def aggregate(tracer: Tracer) -> ProfileReport:
    """Fold the tracer's span forest into a :class:`ProfileReport`."""
    stats: Dict[str, PathStats] = {}
    report = ProfileReport()

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix}/{span.name}" if prefix else span.name
        for child in span.children:
            visit(child, path)
        dur = span.duration_s
        if dur is None:
            return
        cpu = span.cpu_s or 0.0
        child_wall = sum(c.duration_s for c in span.children
                         if c.duration_s is not None)
        child_cpu = sum(c.cpu_s for c in span.children
                        if c.cpu_s is not None)
        row = stats.get(path)
        if row is None:
            row = stats[path] = PathStats(path)
        row.calls += 1
        row.total_s += dur
        row.self_s += max(0.0, dur - child_wall)
        row.total_cpu_s += cpu
        row.self_cpu_s += max(0.0, cpu - child_cpu)
        if span.mem_peak is not None:
            row.mem_peak_bytes = max(row.mem_peak_bytes or 0, span.mem_peak)

    starts: List[float] = []
    ends: List[float] = []
    for root in tracer.spans:
        visit(root, "")
        if root.duration_s is not None:
            starts.append(root.t_start)
            ends.append(root.t_end)            # type: ignore[arg-type]
            report.attributed_s += root.duration_s
            report.attributed_cpu_s += root.cpu_s or 0.0
    report.rows = list(stats.values())
    if starts:
        report.window_s = max(ends) - min(starts)
    return report
