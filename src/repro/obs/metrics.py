"""Metrics registry: counters, gauges and summary histograms.

All instruments are created on demand by name (``metrics.counter("x")``)
and live in one :class:`Metrics` registry per observation scope.  A
registry snapshots to a plain-dict shape (:meth:`Metrics.to_dict`) that
is picklable — fault-campaign worker processes ship their per-fault
snapshots back through exactly this shape — and merges snapshots
losslessly for counters/histograms (:meth:`Metrics.merge`), which is
what makes ``workers=N`` campaign metrics identical to serial runs.

Stdlib-only by design; the hot layers guard every call behind the
:data:`repro.obs.core.OBS` enabled flag.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += n

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value of a quantity (utilisation, cache size...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max plus a fixed set of base-10 half-decade
    bucket counts (``le`` upper bounds), enough to reconstruct the usual
    latency questions (how many sub-millisecond faults?) without storing
    samples.  Merging is exact for every exported statistic.
    """

    #: shared half-decade bucket upper bounds, 1 µs .. 100 s
    BOUNDS = tuple(10.0 ** (e / 2.0) for e in range(-12, 5))

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": list(self.buckets),
        }


class Metrics:
    """One namespace of counters/gauges/histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument factories (create on first use) --------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # -- bulk views ----------------------------------------------------
    def counter_values(self) -> Dict[str, int]:
        """Plain ``name -> count`` view (the parity-comparison shape)."""
        return {name: c.value for name, c in self.counters.items()}

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Picklable snapshot of every instrument."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, c in self.counters.items():
            out[name] = c.to_dict()
        for name, g in self.gauges.items():
            out[name] = g.to_dict()
        for name, h in self.histograms.items():
            out[name] = h.to_dict()
        return out

    def merge(self, snapshot: Optional[Dict[str, Dict[str, Any]]]) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        Counters and histograms add (lossless); gauges take the
        snapshot's value (last-writer-wins).
        """
        if not snapshot:
            return
        for name, rec in snapshot.items():
            kind = rec.get("type")
            if kind == "counter":
                self.counter(name).inc(int(rec["value"]))
            elif kind == "gauge":
                if rec["value"] is not None:
                    self.gauge(name).set(rec["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                if rec["count"]:
                    h.count += int(rec["count"])
                    h.total += float(rec["sum"])
                    h.min = min(h.min, float(rec["min"]))
                    h.max = max(h.max, float(rec["max"]))
                    incoming = rec.get("buckets") or []
                    for i, n in enumerate(incoming[:len(h.buckets)]):
                        h.buckets[i] += int(n)
            else:
                raise ValueError(f"unknown instrument snapshot {name!r}: {rec!r}")

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)
