"""``python -m repro.obs`` — the observability command line.

Subcommands
-----------
``bench``
    Run a benchmark suite (default ``sim``; ``experiments`` re-runs the
    paper's evaluation workloads) with every round inside an enabled
    observation scope, and write ``BENCH_<suite>.json`` — median/IQR
    wall-clock plus key solver counters per workload.
``compare``
    Compare two ``BENCH_*.json`` files; exits non-zero when any common
    workload's median slowed beyond ``--threshold`` (a ratio;
    ``--warn-only`` downgrades failures for bootstrap runs).
``suites``
    List the available suites and their workloads.
"""

import argparse
import sys

from repro.obs import bench as _bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Benchmark-telemetry pipeline (see repro.obs.bench).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_bench = sub.add_parser(
        "bench", help="run a suite and write BENCH_<suite>.json")
    p_bench.add_argument("--suite", default="sim",
                         choices=sorted(_bench.SUITES),
                         help="workload suite (default: sim)")
    p_bench.add_argument("--ids", nargs="*", metavar="ID", default=None,
                         help="subset of workloads to run (default: all)")
    p_bench.add_argument("--rounds", type=int, default=3,
                         help="timing rounds per workload (default: 3)")
    p_bench.add_argument("--out", default=".", metavar="DIR",
                         help="output directory (default: .)")
    p_bench.add_argument("--quiet", action="store_true",
                         help="suppress per-workload progress lines")

    p_cmp = sub.add_parser(
        "compare", help="gate a candidate BENCH file against a baseline")
    p_cmp.add_argument("baseline", help="baseline BENCH_*.json")
    p_cmp.add_argument("candidate", help="candidate BENCH_*.json")
    p_cmp.add_argument("--threshold", type=float, default=1.15,
                       help="allowed median slowdown ratio (default: 1.15)")
    p_cmp.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 (bootstrap)")

    sub.add_parser("suites", help="list suites and workloads")

    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    if args.command == "bench":
        _bench.run_suite(suite=args.suite, ids=args.ids,
                         rounds=args.rounds, out_dir=args.out,
                         echo=not args.quiet)
        return 0
    if args.command == "compare":
        return _bench.compare_benches(args.baseline, args.candidate,
                                      threshold=args.threshold,
                                      warn_only=args.warn_only)
    if args.command == "suites":
        for suite in sorted(_bench.SUITES):
            print(f"{suite}: {' '.join(sorted(_bench.SUITES[suite]))}")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
