"""``python -m repro.obs`` — the observability command line.

Subcommands
-----------
``bench``
    Run a benchmark suite (default ``sim``; ``experiments`` re-runs the
    paper's evaluation workloads) with every round inside an enabled
    observation scope, and write ``BENCH_<suite>.json`` — median/IQR
    wall-clock plus key solver counters per workload.
``compare``
    Compare two ``BENCH_*.json`` files; exits non-zero when any common
    workload's median slowed beyond ``--threshold`` (a ratio;
    ``--warn-only`` downgrades failures for bootstrap runs).
``suites``
    List the available suites and their workloads.
``ledger``
    Query the persistent run ledger (``list`` one line per run,
    ``show`` one full row as JSON, ``trend`` per-campaign wall-clock
    trajectory with a ``REGRESSED`` flag).  The ledger path comes from
    ``--path`` or ``REPRO_OBS_LEDGER``.
``top``
    Live htop-style dashboard over a running campaign service: tails
    the status file the scheduler publishes (``--status`` or
    ``REPRO_OBS_STATUS``).
"""

import argparse
import json
import os
import sys

from repro.obs import bench as _bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Benchmark-telemetry pipeline (see repro.obs.bench).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_bench = sub.add_parser(
        "bench", help="run a suite and write BENCH_<suite>.json")
    p_bench.add_argument("--suite", default="sim",
                         choices=sorted(_bench.SUITES),
                         help="workload suite (default: sim)")
    p_bench.add_argument("--ids", nargs="*", metavar="ID", default=None,
                         help="subset of workloads to run (default: all)")
    p_bench.add_argument("--rounds", type=int, default=3,
                         help="timing rounds per workload (default: 3)")
    p_bench.add_argument("--out", default=".", metavar="DIR",
                         help="output directory (default: .)")
    p_bench.add_argument("--quiet", action="store_true",
                         help="suppress per-workload progress lines")

    p_cmp = sub.add_parser(
        "compare", help="gate a candidate BENCH file against a baseline")
    p_cmp.add_argument("baseline", help="baseline BENCH_*.json")
    p_cmp.add_argument("candidate", help="candidate BENCH_*.json")
    p_cmp.add_argument("--threshold", type=float, default=1.15,
                       help="allowed median slowdown ratio (default: 1.15)")
    p_cmp.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 (bootstrap)")

    sub.add_parser("suites", help="list suites and workloads")

    p_led = sub.add_parser(
        "ledger", help="query the persistent run ledger")
    p_led.add_argument("action", choices=("list", "show", "trend"),
                       help="list rows / show one row / per-key trend")
    p_led.add_argument("--path", default=None, metavar="FILE",
                       help="ledger JSONL (default: $REPRO_OBS_LEDGER)")
    p_led.add_argument("--key", default=None, metavar="KEY",
                       help="restrict to one campaign content key")
    p_led.add_argument("--index", type=int, default=None, metavar="N",
                       help="row number for `show` (default: newest)")
    p_led.add_argument("--threshold", type=float, default=1.15,
                       help="`trend` regression ratio (default: 1.15)")

    p_top = sub.add_parser(
        "top", help="live dashboard over a running campaign service")
    p_top.add_argument("--status", default=None, metavar="FILE",
                       help="status file (default: $REPRO_OBS_STATUS)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between frames (default: 1.0)")
    p_top.add_argument("--frames", type=int, default=None, metavar="N",
                       help="stop after N frames (default: until Ctrl-C)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit")

    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    if args.command == "bench":
        _bench.run_suite(suite=args.suite, ids=args.ids,
                         rounds=args.rounds, out_dir=args.out,
                         echo=not args.quiet)
        return 0
    if args.command == "compare":
        return _bench.compare_benches(args.baseline, args.candidate,
                                      threshold=args.threshold,
                                      warn_only=args.warn_only)
    if args.command == "suites":
        for suite in sorted(_bench.SUITES):
            print(f"{suite}: {' '.join(sorted(_bench.SUITES[suite]))}")
        return 0
    if args.command == "ledger":
        from repro.obs import ledger as _ledger
        path = args.path or os.environ.get("REPRO_OBS_LEDGER", "").strip()
        if not path:
            print("ledger: no path (use --path or REPRO_OBS_LEDGER)",
                  file=sys.stderr)
            return 2
        led = _ledger.RunLedger(path)
        if args.action == "list":
            print(_ledger.render_list(led.rows(key=args.key)))
        elif args.action == "show":
            rows = led.rows(key=args.key)
            if not rows:
                print("ledger is empty")
                return 1
            index = args.index if args.index is not None else len(rows) - 1
            try:
                row = rows[index]
            except IndexError:
                print(f"ledger: no row {index} ({len(rows)} rows)",
                      file=sys.stderr)
                return 2
            print(json.dumps(row, indent=2, sort_keys=True, default=str))
        else:  # trend
            print(_ledger.render_trend(led.trend(key=args.key),
                                       threshold=args.threshold))
        if led.corrupt:
            print(f"({led.corrupt} corrupt line(s) skipped)",
                  file=sys.stderr)
        return 0
    if args.command == "top":
        from repro.obs import dashboard as _dashboard
        status = args.status or os.environ.get("REPRO_OBS_STATUS",
                                               "").strip()
        if not status:
            print("top: no status file (use --status or REPRO_OBS_STATUS)",
                  file=sys.stderr)
            return 2
        _dashboard.top(status, interval=args.interval,
                       max_frames=args.frames, once=args.once)
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
