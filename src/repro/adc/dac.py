"""The DAC macro and the DAC→ADC loopback test.

The paper's macro library "included voltage references, current mirrors,
operational amplifiers, voltage and current comparators, oscillators,
ADCs and DACs", and its related work partitions the mixed section around
the converter pair.  This module supplies the missing half:

* :class:`R2RDAC` — a behavioural R-2R ladder DAC with per-bit weight
  mismatch (the physical source of DAC DNL), offset and gain error;
* :func:`dac_characterization` — static INL/DNL of the DAC via the same
  transition-based metrics as the ADC;
* :class:`LoopbackTest` — the classic converter-pair BIST: the on-chip
  counter sweeps the DAC, the DAC drives the ADC, and the codes must
  agree within a window.  One digital test catches gross faults in
  either converter without analogue test equipment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.adc.dual_slope import DualSlopeADC
from repro.adc.errors import ADCCharacterization, characterize_from_transitions


class R2RDAC:
    """Behavioural R-2R ladder DAC.

    ``n_bits`` binary-weighted branches; each branch's weight can carry
    a fractional mismatch (the fault/variation lever).  Output spans
    ``[0, full_scale_v)`` with the usual code·LSB mapping.
    """

    def __init__(self, n_bits: int = 8, full_scale_v: float = 2.5) -> None:
        if n_bits < 2 or n_bits > 16:
            raise ValueError("n_bits must be in 2..16")
        if full_scale_v <= 0:
            raise ValueError("full_scale_v must be positive")
        self.n_bits = n_bits
        self.full_scale_v = full_scale_v
        #: fractional weight error per bit (index 0 = LSB)
        self.bit_mismatch = [0.0] * n_bits
        self.offset_v = 0.0
        self.gain = 1.0
        #: bit index -> forced value (stuck-at fault lever)
        self.stuck_bits: dict = {}

    @property
    def n_codes(self) -> int:
        return 1 << self.n_bits

    @property
    def lsb_v(self) -> float:
        return self.full_scale_v / self.n_codes

    def copy(self) -> "R2RDAC":
        dup = R2RDAC(self.n_bits, self.full_scale_v)
        dup.bit_mismatch = list(self.bit_mismatch)
        dup.offset_v = self.offset_v
        dup.gain = self.gain
        dup.stuck_bits = dict(self.stuck_bits)
        return dup

    # ------------------------------------------------------------------
    def convert(self, code: int) -> float:
        """Code → output voltage."""
        if not 0 <= code < self.n_codes:
            raise ValueError(f"code {code} out of range 0..{self.n_codes - 1}")
        for bit, forced in self.stuck_bits.items():
            if forced:
                code |= (1 << bit)
            else:
                code &= ~(1 << bit)
        total = 0.0
        for bit in range(self.n_bits):
            if (code >> bit) & 1:
                weight = (1 << bit) * (1.0 + self.bit_mismatch[bit])
                total += weight
        return self.offset_v + self.gain * total * self.lsb_v

    def ramp(self) -> np.ndarray:
        """The full-code output sweep (what the counter-driven BIST
        produces)."""
        return np.array([self.convert(c) for c in range(self.n_codes)])

    def is_monotonic(self) -> bool:
        out = self.ramp()
        return bool(np.all(np.diff(out) >= -1e-12))


def dac_characterization(dac: R2RDAC) -> ADCCharacterization:
    """Static DAC INL/DNL from its output levels.

    The DAC's 'transition levels' are simply its code outputs, so the
    ADC metric pipeline applies directly (offset interpreted against the
    0.5 LSB convention is not meaningful for a DAC and is reported
    relative to code 0 instead).
    """
    levels = dac.ramp()
    # reuse the transition-based pipeline: treat level k as T(k+1)
    ch = characterize_from_transitions(levels + 0.5 * dac.lsb_v, dac.lsb_v)
    return ch


@dataclass
class LoopbackReport:
    """DAC→ADC loopback sweep results."""

    dac_codes: List[int]
    adc_codes: List[int]
    expected_codes: List[int]
    tolerance: int
    worst_error: int
    monotonic: bool

    @property
    def passed(self) -> bool:
        return self.worst_error <= self.tolerance and self.monotonic

    def summary(self) -> str:
        return (f"loopback: {len(self.dac_codes)} points, worst error "
                f"{self.worst_error} codes (tolerance {self.tolerance}), "
                f"monotonic={self.monotonic} — "
                f"{'PASS' if self.passed else 'FAIL'}")


class LoopbackTest:
    """Counter → DAC → ADC loopback BIST.

    The counter steps the DAC through a decimated code sweep; each DAC
    output is converted by the ADC and compared to the expected code
    (scaled between the two converters' resolutions).
    """

    def __init__(self, n_points: int = 32, tolerance: int = 2) -> None:
        if n_points < 4:
            raise ValueError("need at least 4 sweep points")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.n_points = n_points
        self.tolerance = tolerance

    def run(self, dac: R2RDAC, adc: DualSlopeADC) -> LoopbackReport:
        dac_codes = [int(round(k * (dac.n_codes - 1) / (self.n_points - 1)))
                     for k in range(self.n_points)]
        adc_codes: List[int] = []
        expected: List[int] = []
        scale = adc.cal.n_codes / (dac.n_codes - 1)
        for code in dac_codes:
            v = dac.convert(code)
            adc_codes.append(adc.code_of(min(max(v, 0.0),
                                             adc.cal.full_scale_v)))
            expected.append(int(round(code * scale
                                      * dac.full_scale_v
                                      / adc.cal.full_scale_v)))
        worst = max(abs(a - e) for a, e in zip(adc_codes, expected))
        monotonic = all(b >= a for a, b in zip(adc_codes, adc_codes[1:]))
        return LoopbackReport(dac_codes=dac_codes, adc_codes=adc_codes,
                              expected_codes=expected,
                              tolerance=self.tolerance,
                              worst_error=worst, monotonic=monotonic)
