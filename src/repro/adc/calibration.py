"""Calibration constants tying the behavioural ADC to the paper's silicon.

Provenance of every number:

* **Step fall-time test** — the paper's measured table: steps of 0, 0.59,
  0.96, 1.41, 1.8 and 2.5 V gave integrator fall times of 2.6, 2.2, 1.9,
  1.2, 0.8 and 0.1 ms.  The last four points fit the line
  ``t_fall = 2.6 ms − 1.0 ms/V × V_in`` to ≤ 0.01 ms, which pins the test
  mode's mechanism: the integrator is precharged to 3.6 V (the level
  sensor's upper threshold), the applied step couples onto the output
  through the unity sampling network, and a constant 1 V/ms reference
  discharge runs until the 1.0 V comparator threshold:
  ``t_fall = (3.6 − 1.0 − V_in) / (1 V/ms)``.
  The two low-amplitude points (2.2, 1.9 ms vs the line's 2.0, 1.6 ms)
  show the sampling switch under-coupling small steps; the behavioural
  model reproduces that with the smooth dead-zone fitted here.
* **Digital test** — counter clocked at 100 kHz; one clock period of
  fall-time difference (10 µs) equals 10 mV of input, consistent with the
  1 V/ms discharge slope.
* **Conversion mode** — Figure 2's x-axis spans input codes 0 to 100, so
  the converter counts 0–100 over the 0–2.5 V input range (25 mV/LSB);
  the fixed integrate phase is 100 clocks (1 ms) and the de-integrate
  reference gives 100 counts at full scale, keeping conversions well
  inside the 5.6 ms specification.
* **Non-idealities** — gain error +0.5 LSB, offset < 0.2 LSB, max INL
  1.3 LSB and max DNL 1.2 LSB are the paper's measured characterisation;
  the integrator capacitor voltage coefficient and the counter-switching
  charge injection are tuned to land on those values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: The paper's measured step test: (step voltage, fall time in seconds).
PAPER_STEP_TABLE: Tuple[Tuple[float, float], ...] = (
    (0.0, 2.6e-3),
    (0.59, 2.2e-3),
    (0.96, 1.9e-3),
    (1.41, 1.2e-3),
    (1.8, 0.8e-3),
    (2.5, 0.1e-3),
)

#: The paper's measured full characterisation (in LSB).
PAPER_MEASURED_GAIN_ERROR_LSB = 0.5
PAPER_MEASURED_OFFSET_LSB = 0.2     # reported as "< 0.2 LSB"
PAPER_MEASURED_MAX_INL_LSB = 1.3
PAPER_MEASURED_MAX_DNL_LSB = 1.2

#: The ADC macro specification from the paper.
SPEC_MAX_CLOCK_HZ = 100e3
SPEC_MAX_CONVERSION_S = 5.6e-3
SPEC_OFFSET_LSB = 0.3
SPEC_GAIN_LSB = 0.5
SPEC_INL_LSB = 1.0
SPEC_DNL_LSB = 1.0


@dataclass
class ADCCalibration:
    """All constants of the behavioural dual-slope ADC."""

    # Conversion range / resolution (Figure 2: codes 0..100 over 0..2.5 V)
    full_scale_v: float = 2.5
    n_codes: int = 100            # top code; LSB = full_scale / n_codes
    clock_hz: float = SPEC_MAX_CLOCK_HZ
    integrate_cycles: int = 100   # fixed phase-1 length (1 ms at 100 kHz)

    # Integrator test mode (step fall-time test)
    precharge_v: float = 3.6      # also the level sensor's upper threshold
    fall_threshold_v: float = 1.0
    discharge_slope_v_per_s: float = 1000.0   # 1 V/ms
    # Sampling-switch dead zone: small steps under-couple.  The coupled
    # voltage is  v − dead_scale · v · exp(−v / dead_v0).
    couple_dead_scale: float = 0.0   # nominal device: ideal coupling
    couple_dead_v0: float = 0.5

    # Level sensor thresholds for the 2-bit analogue signature
    level_low_v: float = 1.9
    level_high_v: float = 3.6

    # Normal-mode non-idealities (calibrated to the paper's measurements:
    # offset −0.05 LSB, gain +0.42 LSB, max INL 1.32 LSB, max DNL 1.21 LSB
    # and no missing codes, from the servo characterisation of the
    # nominal device)
    comparator_offset_v: float = 4.0e-3       # keeps zero offset < 0.2 LSB
    deintegrate_gain: float = 1.000           # reference path is trimmed
    cap_voltage_coeff: float = 0.033          # → max INL ≈ 1.3 LSB
    counter_inject_v: float = 5.5e-3          # → max DNL ≈ 1.2 LSB
    inject_recovery: float = 0.55             # supply droop RC recovery
                                              # per clock (spreads the
                                              # negative DNL, avoiding
                                              # missing codes)

    @property
    def lsb_v(self) -> float:
        return self.full_scale_v / self.n_codes

    @property
    def clock_period_s(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def integrate_time_s(self) -> float:
        return self.integrate_cycles * self.clock_period_s

    def copy(self) -> "ADCCalibration":
        return ADCCalibration(**vars(self))


#: The calibration instance the experiments use.
PAPER_CALIBRATION = ADCCalibration()


def expected_fall_time(v_step: float,
                       cal: ADCCalibration = PAPER_CALIBRATION) -> float:
    """The analytic fall time of the step test for an ideal sampling
    network: ``(precharge − threshold − v_step) / slope``."""
    drop = cal.precharge_v - cal.fall_threshold_v - v_step
    return max(0.0, drop) / cal.discharge_slope_v_per_s
