"""The composite dual-slope ADC macro (Figure 1).

``DualSlopeADC`` wires the behavioural sub-macros together exactly as the
block diagram shows: input → switched-capacitor integrator → comparator
(against Vth) → digital control + counter → output latch.  It offers the
normal conversion mode plus the BIST test modes the on-chip macros
exercise (step fall-time test, ramp peak capture).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.adc.calibration import ADCCalibration, PAPER_CALIBRATION
from repro.adc.comparator import ComparatorModel
from repro.adc.control import ControlState, DualSlopeControl
from repro.adc.integrator import IntegratorModel
from repro.adc.latch import OutputLatch
from repro.dft.counter import CounterMacro
from repro.signals.waveform import Waveform


@dataclass
class ConversionTrace:
    """Cycle-by-cycle record of one conversion."""

    v_in: float
    code: int
    conversion_time_s: float
    completed: bool
    integrator_v: List[float] = field(default_factory=list)
    states: List[ControlState] = field(default_factory=list)
    peak_v: float = 0.0

    def integrator_waveform(self, clock_period_s: float) -> Waveform:
        return Waveform(self.integrator_v, clock_period_s, name="integrator")


def _toggling_bits(count: int) -> int:
    """Bits that toggle when the counter increments to ``count``.

    A binary ripple counter flips the trailing-zero bits of the new value
    plus the bit above them; the supply glitch scales with that number —
    the classic source of code-dependent DNL at binary boundaries.
    """
    if count <= 0:
        return 1
    toggles = 1
    while count & 1 == 0:
        toggles += 1
        count >>= 1
    return toggles


class DualSlopeADC:
    """Behavioural dual-slope ADC built from the five sub-macros."""

    def __init__(self, cal: Optional[ADCCalibration] = None) -> None:
        self.cal = (cal or PAPER_CALIBRATION).copy()
        self.integrator = IntegratorModel(self.cal)
        self.comparator = ComparatorModel(offset_v=self.cal.comparator_offset_v)
        self.counter = CounterMacro(width=8, clock_hz=self.cal.clock_hz)
        self.control = DualSlopeControl(
            integrate_cycles=self.cal.integrate_cycles,
            max_deintegrate_cycles=int(self.cal.n_codes * 1.6),
        )
        self.latch = OutputLatch(width=8)

    def copy(self) -> "DualSlopeADC":
        dup = DualSlopeADC(self.cal)
        dup.integrator = self.integrator.copy()
        dup.comparator = self.comparator.copy()
        dup.control = self.control.copy()
        dup.latch = self.latch.copy()
        dup.counter = CounterMacro(width=self.counter.width,
                                   clock_hz=self.counter.clock_hz)
        dup.counter.stuck_bits = dict(self.counter.stuck_bits)
        return dup

    # ------------------------------------------------------------------
    # Normal conversion mode
    # ------------------------------------------------------------------
    def convert(self, v_in: float, record_trace: bool = False) -> ConversionTrace:
        """Run one full conversion of ``v_in`` volts.

        The returned code is the latched de-integration count; a stuck
        control FSM yields ``completed=False`` with whatever the latch
        held (the "conversion stops" fault signature).
        """
        cal = self.cal
        self.control.start()
        # Autozero leaves the integrator half a reference packet above the
        # comparator baseline, centring the code transitions (the
        # dual-slope equivalent of the mid-tread half-LSB shift).
        self.integrator.reset(cal.fall_threshold_v
                              + 0.5 * cal.full_scale_v / cal.n_codes)
        self.counter.clear()
        v_baseline = cal.fall_threshold_v

        trace = ConversionTrace(v_in=v_in, code=0, conversion_time_s=0.0,
                                completed=False)
        max_cycles = (self.control.autozero_cycles
                      + self.control.integrate_cycles
                      + self.control.max_deintegrate_cycles + 8)
        comparator_high = True
        droop = 0.0
        for _ in range(max_cycles):
            state = self.control.state
            if record_trace:
                trace.integrator_v.append(self.integrator.v_out)
                trace.states.append(state)
            if state == ControlState.INTEGRATE:
                self.integrator.integrate_cycle(v_in)
            elif state == ControlState.DEINTEGRATE:
                self.integrator.deintegrate_cycle()
                # Counter switching droops the local supply in proportion
                # to the number of toggling bits; the droop recovers with
                # an RC time of a few clock cycles, so a multi-bit carry
                # (count 32, 64, ...) widens the code before it and
                # slightly narrows the several codes that follow — the
                # classic binary-boundary DNL signature without missing
                # codes.
                toggles = _toggling_bits(self.counter.count + 1)
                droop = droop * cal.inject_recovery \
                    + cal.counter_inject_v * (toggles - 2.0)
                comparator_high = bool(self.comparator.compare(
                    self.integrator.v_out, v_baseline + droop))
                if comparator_high:
                    self.counter.clock()
                    self.latch.track(self.counter.count)
            self.control.clock(comparator_high)
            trace.peak_v = max(trace.peak_v, self.integrator.v_out)
            if self.control.done:
                trace.completed = True
                break

        self.latch.capture(self.counter.count)
        # The FSM clears the counter during its DONE/IDLE housekeeping
        # cycles before the code is read out; a healthy latch holds the
        # captured value through that, a transparent-faulted one tracks
        # the clearing counter ("multiple incorrect output codes").
        self.counter.clear()
        self.counter.clock()
        self.latch.track(self.counter.count)
        trace.code = self.latch.read()
        trace.conversion_time_s = self.control.conversion_time_s(cal.clock_hz)
        return trace

    def code_of(self, v_in: float) -> int:
        """Convenience: just the output code."""
        return self.convert(v_in).code

    def conversion_time(self, v_in: float) -> float:
        """Seconds for a full conversion of ``v_in``."""
        return self.convert(v_in).conversion_time_s

    # ------------------------------------------------------------------
    # BIST test modes
    # ------------------------------------------------------------------
    def test_fall_time(self, v_step: float, dt: float = 1e-6) -> float:
        """The step test: precharge, couple the step, time the fall."""
        return self.integrator.fall_time(v_step, dt=dt)

    def test_peak_voltage(self, v_in_wave: Waveform) -> float:
        """Ramp test support: integrate a slowly varying input over its
        duration and return the maximum integrator voltage reached."""
        cal = self.cal
        self.integrator.reset(cal.fall_threshold_v)
        peak = self.integrator.v_out
        n_cycles = int(v_in_wave.duration * cal.clock_hz)
        # The BIST runs repeated conversions along the ramp; the peak per
        # conversion tracks the input.  We model the envelope by resetting
        # every integrate window.
        cycles_per_window = cal.integrate_cycles
        for start in range(0, n_cycles, cycles_per_window):
            self.integrator.reset(cal.fall_threshold_v)
            for k in range(cycles_per_window):
                t = (start + k) * cal.clock_period_s
                if t > v_in_wave.t_end:
                    break
                self.integrator.integrate_cycle(v_in_wave.value_at(t))
                peak = max(peak, self.integrator.v_out)
        return peak

    # ------------------------------------------------------------------
    @property
    def lsb_v(self) -> float:
        return self.cal.lsb_v

    def describe(self) -> str:
        return (f"dual-slope ADC: {self.cal.n_codes} codes over "
                f"{self.cal.full_scale_v} V, clock {self.cal.clock_hz:g} Hz, "
                f"LSB {1e3 * self.cal.lsb_v:.1f} mV")
