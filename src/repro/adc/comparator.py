"""The comparator sub-macro (behavioural).

"Faults in the comparator submacro will contribute to the offset error
and gain error" — the model exposes offset, hysteresis, delay and
stuck-output levers for exactly those campaigns.
"""

from __future__ import annotations

from typing import Optional

from repro.signals.waveform import Waveform


class ComparatorModel:
    """A clocked comparator with offset, hysteresis and delay."""

    def __init__(self, offset_v: float = 0.0, hysteresis_v: float = 0.0,
                 delay_s: float = 0.0) -> None:
        if hysteresis_v < 0:
            raise ValueError("hysteresis must be non-negative")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.offset_v = offset_v
        self.hysteresis_v = hysteresis_v
        self.delay_s = delay_s
        #: None = functional; 0/1 = output stuck (fault lever)
        self.stuck_output: Optional[int] = None
        self._last_output = 0

    def copy(self) -> "ComparatorModel":
        dup = ComparatorModel(self.offset_v, self.hysteresis_v, self.delay_s)
        dup.stuck_output = self.stuck_output
        dup._last_output = self._last_output
        return dup

    def compare(self, v_plus: float, v_minus: float) -> int:
        """1 when ``v_plus`` exceeds ``v_minus`` (offset/hysteresis
        applied), else 0."""
        if self.stuck_output is not None:
            return int(self.stuck_output)
        threshold = v_minus + self.offset_v
        if self.hysteresis_v > 0.0:
            # Hysteresis pulls the trip point toward the previous state.
            threshold += (0.5 - self._last_output) * self.hysteresis_v
        out = 1 if v_plus > threshold else 0
        self._last_output = out
        return out

    def above(self, v: float, threshold: float) -> bool:
        return bool(self.compare(v, threshold))

    def crossing_time(self, wave: Waveform, threshold: float,
                      direction: str = "falling") -> Optional[float]:
        """Time the waveform crosses ``threshold`` as seen by this
        comparator (offset and propagation delay included)."""
        if self.stuck_output is not None:
            return None
        t = wave.crossing_time(threshold + self.offset_v, direction=direction)
        if t is None:
            return None
        return t + self.delay_s
