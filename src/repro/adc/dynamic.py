"""Dynamic ADC characterisation: sine-wave testing, SNDR and ENOB.

Static INL/DNL (Figure 2) is half the characterisation story; the other
half — which the era's mixed-signal test literature (Souders &
Stenbakken's modelling work cited by the paper among it) leans on — is
dynamic: digitise a pure sine, fit it out, and account the residual as
noise plus distortion.

* :func:`sine_fit` — four-parameter least-squares sine fit (the IEEE
  1057 workhorse),
* :func:`dynamic_characterization` — SNDR, ENOB, worst harmonic from a
  coherent sine capture of any converter exposing ``code_of``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass
class SineFit:
    """A fitted ``offset + amplitude * cos(2π f t + phase)``."""

    amplitude: float
    frequency_hz: float
    phase_rad: float
    offset: float
    residual_rms: float

    def evaluate(self, t: np.ndarray) -> np.ndarray:
        return self.offset + self.amplitude * np.cos(
            2.0 * np.pi * self.frequency_hz * t + self.phase_rad)


def sine_fit(samples: Sequence[float], sample_rate_hz: float,
             frequency_hz: float,
             refine_frequency: bool = False) -> SineFit:
    """Least-squares sine fit at a (nominally) known frequency.

    The three-parameter linear fit solves amplitude/phase/offset
    exactly; ``refine_frequency`` adds a small golden-section search
    over frequency around the nominal (the four-parameter variant).
    """
    y = np.asarray(samples, dtype=float)
    if len(y) < 8:
        raise ValueError("need at least 8 samples for a sine fit")
    if sample_rate_hz <= 0 or frequency_hz <= 0:
        raise ValueError("rates must be positive")
    t = np.arange(len(y)) / sample_rate_hz

    def fit_at(freq: float) -> Tuple[SineFit, float]:
        w = 2.0 * np.pi * freq
        basis = np.stack([np.cos(w * t), np.sin(w * t),
                          np.ones_like(t)], axis=1)
        coeffs, *_ = np.linalg.lstsq(basis, y, rcond=None)
        a, b, c = coeffs
        amplitude = float(np.hypot(a, b))
        phase = float(np.arctan2(-b, a))
        residual = y - basis @ coeffs
        rms = float(np.sqrt(np.mean(residual ** 2)))
        return SineFit(amplitude=amplitude, frequency_hz=freq,
                       phase_rad=phase, offset=float(c),
                       residual_rms=rms), rms

    best, best_rms = fit_at(frequency_hz)
    if refine_frequency:
        span = frequency_hz * 1e-3
        lo, hi = frequency_hz - span, frequency_hz + span
        phi = (np.sqrt(5.0) - 1.0) / 2.0
        a_pt, b_pt = hi - phi * (hi - lo), lo + phi * (hi - lo)
        fa, ra = fit_at(a_pt)
        fb, rb = fit_at(b_pt)
        for _ in range(40):
            if ra < rb:
                hi, b_pt, (fb, rb) = b_pt, a_pt, (fa, ra)
                a_pt = hi - phi * (hi - lo)
                fa, ra = fit_at(a_pt)
            else:
                lo, a_pt, (fa, ra) = a_pt, b_pt, (fb, rb)
                b_pt = lo + phi * (hi - lo)
                fb, rb = fit_at(b_pt)
        for candidate, rms in ((fa, ra), (fb, rb)):
            if rms < best_rms:
                best, best_rms = candidate, rms
    return best


def coherent_frequency(sample_rate_hz: float, n_samples: int,
                       target_hz: float) -> float:
    """Nearest coherent test frequency: an integer number of cycles in
    the record, with the cycle count co-prime to the record length so
    every code is exercised."""
    if n_samples < 8:
        raise ValueError("record too short")
    cycles = max(1, int(round(target_hz * n_samples / sample_rate_hz)))
    while gcd(cycles, n_samples) != 1 and cycles > 1:
        cycles -= 1
    return cycles * sample_rate_hz / n_samples


@dataclass
class DynamicCharacterization:
    """Sine-test results."""

    sndr_db: float
    enob_bits: float
    signal_rms: float
    noise_rms: float
    worst_harmonic_db: Optional[float]
    n_samples: int

    def summary(self) -> str:
        harm = (f", worst harmonic {self.worst_harmonic_db:.1f} dBc"
                if self.worst_harmonic_db is not None else "")
        return (f"dynamic test: SNDR {self.sndr_db:.1f} dB, "
                f"ENOB {self.enob_bits:.2f} bits{harm}")


def dynamic_characterization(adc, frequency_hz: Optional[float] = None,
                             n_samples: int = 512,
                             amplitude_fraction: float = 0.45,
                             sample_rate_hz: float = 1000.0
                             ) -> DynamicCharacterization:
    """Sine-test any converter exposing ``code_of`` and ``cal``-style
    ``full_scale_v`` / ``lsb_v``.

    A coherent near-full-scale sine centred at mid-scale is converted
    sample by sample; the fitted sine is removed and the residual RMS
    sets SNDR and ENOB.
    """
    full_scale = getattr(adc.cal, "full_scale_v", None) or adc.full_scale_v
    lsb = adc.cal.lsb_v if hasattr(adc.cal, "lsb_v") else adc.lsb_v
    if frequency_hz is None:
        frequency_hz = coherent_frequency(sample_rate_hz, n_samples,
                                          sample_rate_hz / 37.0)
    mid = full_scale / 2.0
    amp = amplitude_fraction * full_scale
    t = np.arange(n_samples) / sample_rate_hz
    v_in = mid + amp * np.cos(2.0 * np.pi * frequency_hz * t)
    codes = np.array([adc.code_of(float(v)) for v in v_in], dtype=float)
    volts = codes * lsb
    fit = sine_fit(volts, sample_rate_hz, frequency_hz)
    signal_rms = fit.amplitude / np.sqrt(2.0)
    noise_rms = max(fit.residual_rms, 1e-12)
    sndr = 20.0 * np.log10(signal_rms / noise_rms)
    enob = (sndr - 1.76) / 6.02

    # worst harmonic via DFT bins at multiples of the fundamental
    spectrum = np.fft.rfft((volts - volts.mean())
                           * np.hanning(n_samples))
    mags = np.abs(spectrum)
    fundamental_bin = int(round(frequency_hz * n_samples / sample_rate_hz))
    worst = None
    if 2 * fundamental_bin < len(mags):
        fund = mags[fundamental_bin]
        harm_bins = [k * fundamental_bin
                     for k in range(2, 6)
                     if k * fundamental_bin < len(mags)]
        if harm_bins and fund > 0:
            worst_mag = max(mags[b] for b in harm_bins)
            worst = float(20.0 * np.log10(max(worst_mag, 1e-15) / fund))
    return DynamicCharacterization(
        sndr_db=float(sndr),
        enob_bits=float(enob),
        signal_rms=float(signal_rms),
        noise_rms=float(noise_rms),
        worst_harmonic_db=worst,
        n_samples=n_samples,
    )
