"""Sigma-delta ADC — the paper's future work, implemented.

"The design of on-chip functional testing macros is under further
investigation for larger full-custom ADC devices designed with
sigma-delta modulation architecture, where the switched capacitor
integrator forms a major part of the circuit."

A first-order modulator is exactly that: the SC integrator accumulating
the difference between the input and a 1-bit feedback DAC, sliced by a
comparator every clock.  The model reuses the same fault levers as the
dual-slope sub-macros (integrator gain/leak/offset, comparator offset /
stuck output, DAC level errors), so every BIST and campaign mechanism in
:mod:`repro.core` applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.adc.comparator import ComparatorModel
from repro.signals.waveform import Waveform


class SigmaDeltaModulator:
    """First-order switched-capacitor sigma-delta modulator.

    Input range is ``[-v_ref, +v_ref]`` about the analogue ground; the
    output is the 1-bit stream whose mean encodes the input.

    Fault levers (all public attributes): ``integrator_gain``,
    ``integrator_leak``, ``integrator_offset_v``, ``dac_high_error_v``,
    ``dac_low_error_v``, plus the embedded :class:`ComparatorModel`.
    """

    def __init__(self, v_ref: float = 2.5, clock_hz: float = 100e3) -> None:
        if v_ref <= 0 or clock_hz <= 0:
            raise ValueError("v_ref and clock_hz must be positive")
        self.v_ref = v_ref
        self.clock_hz = clock_hz
        self.comparator = ComparatorModel()
        self.integrator_gain = 1.0
        self.integrator_leak = 0.0
        self.integrator_offset_v = 0.0
        self.dac_high_error_v = 0.0
        self.dac_low_error_v = 0.0
        #: integrator saturation (the op-amp's swing)
        self.saturation_v = 4.0
        self.state_v = 0.0

    def copy(self) -> "SigmaDeltaModulator":
        dup = SigmaDeltaModulator(self.v_ref, self.clock_hz)
        dup.comparator = self.comparator.copy()
        for attr in ("integrator_gain", "integrator_leak",
                     "integrator_offset_v", "dac_high_error_v",
                     "dac_low_error_v", "saturation_v", "state_v"):
            setattr(dup, attr, getattr(self, attr))
        return dup

    def reset(self) -> None:
        self.state_v = 0.0

    def _dac(self, bit: int) -> float:
        if bit:
            return self.v_ref + self.dac_high_error_v
        return -self.v_ref + self.dac_low_error_v

    def step(self, v_in: float) -> int:
        """One modulator clock: integrate (input − feedback), slice."""
        bit = self.comparator.compare(self.state_v, 0.0)
        feedback = self._dac(bit)
        self.state_v = (1.0 - self.integrator_leak) * self.state_v \
            + self.integrator_gain * (v_in - feedback) \
            + self.integrator_offset_v
        self.state_v = min(self.saturation_v,
                           max(-self.saturation_v, self.state_v))
        return bit

    def modulate(self, v_in: Union[float, Waveform],
                 n_cycles: int) -> np.ndarray:
        """Produce ``n_cycles`` bits for a DC or waveform input."""
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        bits = np.empty(n_cycles, dtype=int)
        dt = 1.0 / self.clock_hz
        for k in range(n_cycles):
            x = v_in.value_at(k * dt) if isinstance(v_in, Waveform) \
                else float(v_in)
            bits[k] = self.step(x)
        return bits


class DecimationFilter:
    """Sinc² decimator: two cascaded boxcar averages of length ``osr``.

    Turns the 1-bit stream into codes at ``clock / osr`` with first-order
    noise shaping adequately suppressed for a first-order modulator.
    """

    def __init__(self, osr: int = 64) -> None:
        if osr < 2:
            raise ValueError("oversampling ratio must be >= 2")
        self.osr = osr

    def decimate(self, bits: Sequence[int]) -> np.ndarray:
        """Decimated outputs in [-1, 1] (one per ``osr`` input bits,
        after the filter's 2-frame startup)."""
        x = 2.0 * np.asarray(bits, dtype=float) - 1.0
        if len(x) < 2 * self.osr:
            raise ValueError(
                f"need at least 2*osr={2 * self.osr} bits, got {len(x)}")
        box = np.ones(self.osr) / self.osr
        once = np.convolve(x, box, mode="valid")
        twice = np.convolve(once, box, mode="valid")
        return twice[self.osr - 1::self.osr]


@dataclass
class SDConversion:
    """One sigma-delta conversion result."""

    v_in: float
    value: float              # decoded input estimate, volts
    code: int                 # quantised output code
    bits_used: int
    bit_density: float        # fraction of ones in the stream


class SigmaDeltaADC:
    """Modulator + decimator packaged as a converter.

    Codes span ``0 .. n_codes`` over ``[0, full_scale_v]`` (the
    modulator's bipolar range is mapped onto the unipolar input range of
    the dual-slope macro so the two converters are drop-in comparable
    and the same BIST step levels apply).
    """

    def __init__(self, full_scale_v: float = 2.5, n_codes: int = 100,
                 osr: int = 64, n_frames: int = 8,
                 clock_hz: float = 100e3) -> None:
        if full_scale_v <= 0 or n_codes < 2 or n_frames < 3:
            raise ValueError("bad converter configuration")
        self.full_scale_v = full_scale_v
        self.n_codes = n_codes
        self.modulator = SigmaDeltaModulator(v_ref=full_scale_v,
                                             clock_hz=clock_hz)
        self.decimator = DecimationFilter(osr)
        self.n_frames = n_frames

    @property
    def lsb_v(self) -> float:
        return self.full_scale_v / self.n_codes

    @property
    def cal(self):  # noqa: ANN201 - duck-typing the DualSlopeADC surface
        """Minimal calibration view so BIST helpers that only need
        ``lsb_v`` / ``n_codes`` / ``full_scale_v`` work on both ADCs."""
        return self

    def copy(self) -> "SigmaDeltaADC":
        dup = SigmaDeltaADC(self.full_scale_v, self.n_codes,
                            self.decimator.osr, self.n_frames,
                            self.modulator.clock_hz)
        dup.modulator = self.modulator.copy()
        return dup

    # ------------------------------------------------------------------
    def convert(self, v_in: float) -> SDConversion:
        """Convert a DC input to a code.

        The unipolar input maps onto the modulator's bipolar range:
        ``x = 2 v_in − full_scale``.
        """
        x = 2.0 * v_in - self.full_scale_v
        self.modulator.reset()
        n_bits = self.n_frames * self.decimator.osr
        bits = self.modulator.modulate(x, n_bits)
        frames = self.decimator.decimate(bits)
        # drop the filter's settling frame(s)
        settled = frames[1:] if len(frames) > 1 else frames
        mean = float(np.mean(settled))
        value = (mean * self.full_scale_v + self.full_scale_v) / 2.0
        code = int(np.clip(round(value / self.lsb_v), 0, self.n_codes))
        return SDConversion(v_in=v_in, value=value, code=code,
                            bits_used=n_bits,
                            bit_density=float(np.mean(bits)))

    def code_of(self, v_in: float) -> int:
        return self.convert(v_in).code

    def conversion_time(self, v_in: float = 0.0) -> float:
        """Seconds per conversion (frames × OSR clocks)."""
        return self.n_frames * self.decimator.osr / self.modulator.clock_hz

    def describe(self) -> str:
        return (f"sigma-delta ADC: {self.n_codes} codes over "
                f"{self.full_scale_v} V, OSR {self.decimator.osr}, "
                f"{self.n_frames} frames/conversion at "
                f"{self.modulator.clock_hz:g} Hz")
