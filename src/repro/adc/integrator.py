"""The switched-capacitor integrator sub-macro (behavioural).

This is the heart of the dual-slope ADC and the focus of the paper's
transient-response work.  The model integrates per clock cycle with:

* a capacitor voltage coefficient (output-dependent gain — the INL
  mechanism),
* per-cycle leak (finite op-amp gain / switch leakage),
* the test-mode step coupling with its sampling-switch dead zone,
* an output saturation window (the op-amp's swing).

Faults the paper attributes to this sub-macro — "The integrator submacro
faults will affect the linearity errors, the gain error and the offset
error" — are injected by perturbing these attributes.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.adc.calibration import ADCCalibration, PAPER_CALIBRATION
from repro.lti.zdomain import ZTransferFunction, sc_integrator_ztf
from repro.signals.waveform import Waveform


class IntegratorModel:
    """Behavioural switched-capacitor integrator.

    State is the output voltage ``v_out``; every method that advances
    time does so in whole clock cycles of the ADC calibration.
    """

    def __init__(self, cal: Optional[ADCCalibration] = None,
                 cap_ratio: float = 6.8) -> None:
        self.cal = (cal or PAPER_CALIBRATION).copy()
        #: Cf/Cs of the SC network (the paper's 6.8).
        self.cap_ratio = cap_ratio
        #: fractional charge lost per cycle (0 = ideal integrator)
        self.leak_per_cycle = 0.0
        #: additive offset per cycle, volts (op-amp offset referred here)
        self.offset_per_cycle_v = 0.0
        #: gain multiplier (1.0 nominal; fault lever for gain errors)
        self.gain = 1.0
        #: output swing limits (the op-amp rails minus headroom)
        self.v_min = 0.05
        self.v_max = 4.6
        #: whether the integrator responds at all (control-fault lever)
        self.enabled = True
        self.v_out = 0.0

    # ------------------------------------------------------------------
    def copy(self) -> "IntegratorModel":
        dup = IntegratorModel(self.cal, self.cap_ratio)
        dup.leak_per_cycle = self.leak_per_cycle
        dup.offset_per_cycle_v = self.offset_per_cycle_v
        dup.gain = self.gain
        dup.v_min = self.v_min
        dup.v_max = self.v_max
        dup.enabled = self.enabled
        dup.v_out = self.v_out
        return dup

    def reset(self, level: Optional[float] = None) -> None:
        """Reset/precharge the output (test mode precharges to 3.6 V)."""
        self.v_out = self.cal.precharge_v if level is None else level

    def _clip(self) -> None:
        self.v_out = min(self.v_max, max(self.v_min, self.v_out))

    def _nonlinear_gain(self) -> float:
        """Voltage-coefficient gain factor at the present output level.

        The integration capacitor's value shifts with the voltage across
        it; referencing to mid-swing keeps the mid-scale gain nominal.
        """
        v_mid = 0.5 * (self.cal.precharge_v + self.cal.fall_threshold_v)
        return 1.0 + self.cal.cap_voltage_coeff * (self.v_out - v_mid) \
            / max(self.cal.full_scale_v, 1e-12)

    # ------------------------------------------------------------------
    # Conversion mode
    # ------------------------------------------------------------------
    def integrate_cycle(self, v_in: float) -> float:
        """One clock cycle of charge transfer from the input."""
        if not self.enabled:
            return self.v_out
        self.v_out = self.v_out * (1.0 - self.leak_per_cycle) \
            + self._charge_step(v_in) + self.offset_per_cycle_v
        self._clip()
        return self.v_out

    def _charge_step(self, v_in: float) -> float:
        """Charge packet per cycle, scaled so a full-scale input ramps the
        output across the nominal 2.5 V swing in ``integrate_cycles``."""
        nominal_full_swing = self.cal.full_scale_v  # 2.5 V at full scale
        per_cycle = nominal_full_swing / self.cal.integrate_cycles
        return self.gain * self._nonlinear_gain() * per_cycle \
            * (v_in / self.cal.full_scale_v)

    def deintegrate_cycle(self) -> float:
        """One clock cycle of reference discharge (phase 2)."""
        if not self.enabled:
            return self.v_out
        # Reference packet: full scale over n_codes cycles, with its own
        # gain trim (the deintegrate_gain calibration models the ratio
        # mismatch between the two signal paths → gain error).  The
        # reference path is factory-trimmed and linear; only the input
        # sampling path carries the capacitor voltage coefficient, which
        # is why the nonlinearity does NOT cancel between the two slopes
        # (a perfectly shared nonlinearity would, by the dual-slope
        # principle).
        step = self.cal.deintegrate_gain \
            * self.cal.full_scale_v / self.cal.n_codes
        self.v_out = self.v_out * (1.0 - self.leak_per_cycle) - step
        self._clip()
        return self.v_out

    # ------------------------------------------------------------------
    # Test mode (the BIST step / fall-time test)
    # ------------------------------------------------------------------
    def couple_step(self, v_step: float) -> float:
        """Apply a DC step through the sampling network (test mode).

        Small steps under-couple per the dead-zone calibration; the
        coupled voltage subtracts from the precharged output.
        """
        if not self.enabled:
            return self.v_out
        coupled = self.coupled_voltage(v_step)
        self.v_out -= self.gain * coupled
        self._clip()
        return self.v_out

    def coupled_voltage(self, v_step: float) -> float:
        """The effective voltage the sampling network passes."""
        cal = self.cal
        if v_step <= 0.0:
            return 0.0
        return v_step - cal.couple_dead_scale * v_step \
            * math.exp(-v_step / cal.couple_dead_v0)

    def discharge_to_threshold(self, dt: float = 10e-6,
                               max_time: float = 20e-3) -> Waveform:
        """Constant-slope test-mode discharge; returns the output
        waveform until it crosses the fall threshold (or ``max_time``)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        values = [self.v_out]
        t = 0.0
        while self.v_out > self.cal.fall_threshold_v and t < max_time:
            if self.enabled:
                self.v_out -= self.cal.discharge_slope_v_per_s * dt
                self._clip()
            t += dt
            values.append(self.v_out)
            if not self.enabled and t >= max_time:
                break
        return Waveform(values, dt, name="integrator")

    def fall_time(self, v_step: float, dt: float = 1e-6) -> float:
        """The complete test-mode measurement: precharge, couple the
        step, discharge, time the threshold crossing."""
        self.reset()
        self.couple_step(v_step)
        wave = self.discharge_to_threshold(dt=dt)
        crossing = wave.crossing_time(self.cal.fall_threshold_v,
                                      direction="falling")
        if crossing is None:
            # Never crossed: either stuck (fault) or started below.
            if wave.values[0] <= self.cal.fall_threshold_v:
                return 0.0
            return float("inf")
        return crossing

    # ------------------------------------------------------------------
    def to_ztf(self) -> ZTransferFunction:
        """The z-domain model of this integrator (leak included)."""
        return sc_integrator_ztf(cap_ratio=self.cap_ratio / self.gain
                                 if self.gain else float("inf"),
                                 dt=self.cal.clock_period_s,
                                 leak=self.leak_per_cycle)
