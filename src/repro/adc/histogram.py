"""ADC characterisation procedures: servo search, ramp histogram,
transfer curve.

The paper's "full manual test of ADC conversion" measures the transfer
function against specification.  Two standard procedures are provided:

* :func:`servo_transition_levels` — binary-search every code transition
  (precise; used for Figure 2),
* :func:`ramp_histogram_characterization` — the classic linear-ramp code
  histogram (what an on-chip ramp BIST can approximate).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.adc.dual_slope import DualSlopeADC
from repro.adc.errors import ADCCharacterization, characterize_from_transitions


def transfer_curve(adc: DualSlopeADC, n_points: int = 256,
                   v_lo: float = 0.0, v_hi: float = None
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the static transfer function; returns ``(v_in, codes)``."""
    if v_hi is None:
        v_hi = adc.cal.full_scale_v
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    v = np.linspace(v_lo, v_hi, n_points)
    codes = np.array([adc.code_of(float(x)) for x in v])
    return v, codes


def servo_transition_levels(adc: DualSlopeADC,
                            codes: Sequence[int] = None,
                            tolerance_v: float = 25e-6) -> np.ndarray:
    """Binary-search the input voltage of each code transition.

    ``codes`` lists the upper code of each transition to find (default: 1
    to n_codes).  Assumes a monotonic converter, which the dual-slope
    architecture guarantees structurally; non-monotonic faulted devices
    are exactly what the monotonicity BIST exists to catch.
    """
    cal = adc.cal
    if codes is None:
        codes = range(1, cal.n_codes + 1)
    if tolerance_v <= 0:
        raise ValueError("tolerance_v must be positive")
    levels: List[float] = []
    for code in codes:
        lo, hi = 0.0, cal.full_scale_v * 1.1
        # Establish that the transition is bracketed.
        if adc.code_of(hi) < code:
            levels.append(float("nan"))
            continue
        while hi - lo > tolerance_v:
            mid = 0.5 * (lo + hi)
            if adc.code_of(mid) >= code:
                hi = mid
            else:
                lo = mid
        levels.append(0.5 * (lo + hi))
    return np.asarray(levels)


def ramp_histogram_characterization(adc: DualSlopeADC,
                                    n_samples: int = 4000,
                                    v_lo: float = None,
                                    v_hi: float = None) -> ADCCharacterization:
    """Linear-ramp histogram characterisation.

    A uniform input sweep makes each code's hit count proportional to its
    code width; transition levels are reconstructed from the cumulative
    histogram and fed to the standard metric pipeline.
    """
    cal = adc.cal
    lsb = cal.lsb_v
    if v_lo is None:
        v_lo = -1.5 * lsb
    if v_hi is None:
        v_hi = cal.full_scale_v + 1.5 * lsb
    if n_samples < 10 * cal.n_codes:
        raise ValueError("need at least ~10 samples per code")
    v = np.linspace(v_lo, v_hi, n_samples)
    codes = np.array([adc.code_of(float(x)) for x in v])
    dv = (v_hi - v_lo) / (n_samples - 1)
    top = cal.n_codes
    # Transition T(k): midpoint between the last sample coded < k and the
    # first coded >= k.
    transitions = []
    missing = []
    for k in range(1, top + 1):
        idx = np.nonzero(codes >= k)[0]
        if len(idx) == 0:
            transitions.append(float("nan"))
            continue
        first = idx[0]
        transitions.append(v[first] - 0.5 * dv)
        if k < top and not np.any(codes == k):
            missing.append(k)
    t = np.asarray(transitions)
    valid = ~np.isnan(t)
    return characterize_from_transitions(t[valid], lsb, missing_codes=missing)


def characterize_servo(adc: DualSlopeADC,
                       tolerance_v: float = 25e-6) -> ADCCharacterization:
    """Full characterisation via servo-searched transitions (Figure 2's
    measurement route)."""
    t = servo_transition_levels(adc, tolerance_v=tolerance_v)
    valid = ~np.isnan(t)
    missing = [int(k) for k in np.nonzero(~valid)[0] + 1]
    return characterize_from_transitions(t[valid], adc.cal.lsb_v,
                                         missing_codes=missing)
