"""Behavioural dual-slope ADC macro (Figure 1) and its sub-macros.

The ADC is modelled at the level the paper tests it: functional
sub-macros (switched-capacitor integrator, comparator, counter, control
FSM, output latch) with physically motivated non-idealities calibrated to
the paper's measured silicon (see :mod:`repro.adc.calibration`).  Each
sub-macro exposes the parameters the fault campaigns perturb, and the
composite :class:`~repro.adc.dual_slope.DualSlopeADC` provides both the
normal conversion mode and the BIST test modes (step fall-time test,
precharge/discharge, peak capture).
"""

from repro.adc.calibration import PAPER_CALIBRATION, ADCCalibration
from repro.adc.integrator import IntegratorModel
from repro.adc.comparator import ComparatorModel
from repro.adc.latch import OutputLatch
from repro.adc.control import DualSlopeControl, ControlState
from repro.adc.dual_slope import DualSlopeADC, ConversionTrace
from repro.adc.errors import (
    ADCCharacterization,
    characterize_from_transitions,
    dnl_from_transitions,
    inl_from_transitions,
)
from repro.adc.dac import (
    LoopbackReport,
    LoopbackTest,
    R2RDAC,
    dac_characterization,
)
from repro.adc.dynamic import (
    DynamicCharacterization,
    dynamic_characterization,
    sine_fit,
)
from repro.adc.selfcal import (
    CalibratedADC,
    CalibrationTable,
    SelfCalibration,
    calibration_improvement,
)
from repro.adc.sigma_delta import (
    DecimationFilter,
    SDConversion,
    SigmaDeltaADC,
    SigmaDeltaModulator,
)
from repro.adc.histogram import (
    ramp_histogram_characterization,
    servo_transition_levels,
    transfer_curve,
)

__all__ = [
    "PAPER_CALIBRATION",
    "ADCCalibration",
    "IntegratorModel",
    "ComparatorModel",
    "OutputLatch",
    "DualSlopeControl",
    "ControlState",
    "DualSlopeADC",
    "ConversionTrace",
    "ADCCharacterization",
    "characterize_from_transitions",
    "dnl_from_transitions",
    "inl_from_transitions",
    "LoopbackReport",
    "LoopbackTest",
    "R2RDAC",
    "dac_characterization",
    "DynamicCharacterization",
    "dynamic_characterization",
    "sine_fit",
    "CalibratedADC",
    "CalibrationTable",
    "SelfCalibration",
    "calibration_improvement",
    "DecimationFilter",
    "SDConversion",
    "SigmaDeltaADC",
    "SigmaDeltaModulator",
    "ramp_histogram_characterization",
    "servo_transition_levels",
    "transfer_curve",
]
