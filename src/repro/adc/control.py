"""The dual-slope control FSM sub-macro.

"Finally control circuit faults will stop the conversion process" — the
FSM can be frozen in any state to reproduce that signature.

States: IDLE → AUTOZERO → INTEGRATE (fixed cycles) → DEINTEGRATE (count
until the comparator trips) → DONE.
"""

from __future__ import annotations

import enum
from typing import Optional


class ControlState(enum.Enum):
    IDLE = "idle"
    AUTOZERO = "autozero"
    INTEGRATE = "integrate"
    DEINTEGRATE = "deintegrate"
    DONE = "done"


#: legal transitions of the healthy FSM
_NEXT = {
    ControlState.IDLE: ControlState.AUTOZERO,
    ControlState.AUTOZERO: ControlState.INTEGRATE,
    ControlState.INTEGRATE: ControlState.DEINTEGRATE,
    ControlState.DEINTEGRATE: ControlState.DONE,
    ControlState.DONE: ControlState.IDLE,
}


class DualSlopeControl:
    """Cycle-counting conversion sequencer."""

    def __init__(self, integrate_cycles: int = 100,
                 autozero_cycles: int = 4,
                 max_deintegrate_cycles: int = 160) -> None:
        if integrate_cycles < 1 or autozero_cycles < 0:
            raise ValueError("bad cycle configuration")
        self.integrate_cycles = integrate_cycles
        self.autozero_cycles = autozero_cycles
        self.max_deintegrate_cycles = max_deintegrate_cycles
        self.state = ControlState.IDLE
        self.cycles_in_state = 0
        self.total_cycles = 0
        #: fault lever: FSM frozen in this state (conversion stops)
        self.stuck_state: Optional[ControlState] = None

    def copy(self) -> "DualSlopeControl":
        dup = DualSlopeControl(self.integrate_cycles, self.autozero_cycles,
                               self.max_deintegrate_cycles)
        dup.state = self.state
        dup.cycles_in_state = self.cycles_in_state
        dup.total_cycles = self.total_cycles
        dup.stuck_state = self.stuck_state
        return dup

    def start(self) -> None:
        """Kick off a conversion from IDLE."""
        self.state = ControlState.IDLE
        self.cycles_in_state = 0
        self.total_cycles = 0
        self._advance()

    def _advance(self) -> None:
        self.state = _NEXT[self.state]
        self.cycles_in_state = 0

    def clock(self, comparator_high: bool) -> ControlState:
        """One control clock; returns the state *after* the edge.

        ``comparator_high`` is the integrator-above-threshold flag that
        ends the de-integrate phase.
        """
        self.total_cycles += 1
        if self.stuck_state is not None:
            self.state = self.stuck_state
            self.cycles_in_state += 1
            return self.state
        self.cycles_in_state += 1
        if self.state == ControlState.AUTOZERO:
            if self.cycles_in_state >= self.autozero_cycles:
                self._advance()
        elif self.state == ControlState.INTEGRATE:
            if self.cycles_in_state >= self.integrate_cycles:
                self._advance()
        elif self.state == ControlState.DEINTEGRATE:
            if not comparator_high:
                self._advance()
            elif self.cycles_in_state >= self.max_deintegrate_cycles:
                # overflow guard: a healthy FSM aborts to DONE
                self.state = ControlState.DONE
                self.cycles_in_state = 0
        return self.state

    @property
    def done(self) -> bool:
        return self.state == ControlState.DONE

    def conversion_time_s(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz
