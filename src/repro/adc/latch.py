"""The output latch sub-macro.

"Faults in the output latch submacro will manifest as multiple incorrect
output codes" — modelled with stuck bits and a transparency fault that
lets the counter's changing value leak through after capture.
"""

from __future__ import annotations

from typing import Dict, Optional


class OutputLatch:
    """Captures the counter value at end of conversion."""

    def __init__(self, width: int = 8) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self._value = 0
        #: bit index -> forced value (stuck-at fault lever)
        self.stuck_bits: Dict[int, int] = {}
        #: transparency fault: the latch does not hold — reads track the
        #: live input instead of the captured value
        self.transparent_fault = False
        self._live_input = 0

    def copy(self) -> "OutputLatch":
        dup = OutputLatch(self.width)
        dup._value = self._value
        dup.stuck_bits = dict(self.stuck_bits)
        dup.transparent_fault = self.transparent_fault
        dup._live_input = self._live_input
        return dup

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def _apply_stuck(self, value: int) -> int:
        for bit, forced in self.stuck_bits.items():
            if forced:
                value |= (1 << bit)
            else:
                value &= ~(1 << bit)
        return value & self.mask

    def capture(self, value: int) -> int:
        """Latch a counter value (end of conversion)."""
        self._live_input = value & self.mask
        self._value = self._apply_stuck(self._live_input)
        return self._value

    def track(self, value: int) -> None:
        """The counter keeps running; a healthy latch ignores this."""
        self._live_input = value & self.mask

    def read(self) -> int:
        """The output code presented to the digital side."""
        if self.transparent_fault:
            return self._apply_stuck(self._live_input)
        return self._value
