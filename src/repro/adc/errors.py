"""ADC error metrics: offset, gain, INL, DNL.

All metrics follow the code-transition-level definitions the paper's
characterisation uses:

* transition level T(k): the input voltage where the output changes from
  code k−1 to code k,
* offset error: shift of T(1) from its ideal 0.5 LSB position,
* gain error: shift of the full-scale transition after offset removal,
* DNL(k) = (T(k+1) − T(k)) / LSB − 1,
* INL(k): deviation of T(k) from the endpoint-fit line, in LSB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass
class ADCCharacterization:
    """Full characterisation result (everything in LSB units)."""

    offset_error_lsb: float
    gain_error_lsb: float
    dnl_lsb: np.ndarray
    inl_lsb: np.ndarray
    transition_levels_v: np.ndarray
    lsb_v: float
    missing_codes: List[int] = field(default_factory=list)

    @property
    def max_dnl_lsb(self) -> float:
        return float(np.max(np.abs(self.dnl_lsb))) if len(self.dnl_lsb) else 0.0

    @property
    def max_inl_lsb(self) -> float:
        return float(np.max(np.abs(self.inl_lsb))) if len(self.inl_lsb) else 0.0

    def meets_spec(self, offset_lsb: float = 0.3, gain_lsb: float = 0.5,
                   inl_lsb: float = 1.0, dnl_lsb: float = 1.0) -> bool:
        """Check against the paper's ADC specification."""
        return (abs(self.offset_error_lsb) < offset_lsb
                and abs(self.gain_error_lsb) <= gain_lsb
                and self.max_inl_lsb <= inl_lsb
                and self.max_dnl_lsb <= dnl_lsb
                and not self.missing_codes)

    def summary(self) -> str:
        return (f"offset {self.offset_error_lsb:+.2f} LSB, "
                f"gain {self.gain_error_lsb:+.2f} LSB, "
                f"max INL {self.max_inl_lsb:.2f} LSB, "
                f"max DNL {self.max_dnl_lsb:.2f} LSB, "
                f"{len(self.missing_codes)} missing codes")


def dnl_from_transitions(transitions_v: Sequence[float],
                         lsb_v: float) -> np.ndarray:
    """DNL per code from consecutive transition levels."""
    t = np.asarray(transitions_v, dtype=float)
    if len(t) < 2:
        return np.empty(0)
    if lsb_v <= 0:
        raise ValueError("lsb_v must be positive")
    return np.diff(t) / lsb_v - 1.0


def inl_from_transitions(transitions_v: Sequence[float],
                         lsb_v: float) -> np.ndarray:
    """INL per transition against the endpoint-fit line."""
    t = np.asarray(transitions_v, dtype=float)
    if len(t) < 2:
        return np.zeros(len(t))
    if lsb_v <= 0:
        raise ValueError("lsb_v must be positive")
    # Endpoint fit: line through the first and last transition.
    k = np.arange(len(t))
    ideal = t[0] + (t[-1] - t[0]) * k / (len(t) - 1)
    return (t - ideal) / lsb_v


def characterize_from_transitions(transitions_v: Sequence[float],
                                  lsb_v: float,
                                  missing_codes: Sequence[int] = ()
                                  ) -> ADCCharacterization:
    """Build the full characterisation from measured transition levels.

    ``transitions_v[k]`` is T(k+1): the input where code k→k+1.
    """
    t = np.asarray(transitions_v, dtype=float)
    if len(t) < 2:
        raise ValueError("need at least two transition levels")
    if lsb_v <= 0:
        raise ValueError("lsb_v must be positive")
    # Ideal T(1) sits at 0.5 LSB (mid-tread converter).
    offset = (t[0] - 0.5 * lsb_v) / lsb_v
    n = len(t)
    ideal_span = (n - 1) * lsb_v
    gain = ((t[-1] - t[0]) - ideal_span) / lsb_v
    return ADCCharacterization(
        offset_error_lsb=float(offset),
        gain_error_lsb=float(gain),
        dnl_lsb=dnl_from_transitions(t, lsb_v),
        inl_lsb=inl_from_transitions(t, lsb_v),
        transition_levels_v=t,
        lsb_v=lsb_v,
        missing_codes=list(missing_codes),
    )
