"""Converter self-calibration from BIST measurements.

From the paper's research background (on Fasang / Ohletz / Pritchard):
"detailed fault analysis of the ADC and DAC macros measure their
transfer function.  This measurement can be used during the final
complete ASUT test, to self-calibrate the ADC / DAC macros and formulate
the required compensation in the remaining analogue macros."

:class:`SelfCalibration` implements that flow: measure the transfer
function with the on-chip ramp (or a servo bench), fit the linear
correction (offset + gain), optionally record a per-code INL table, and
wrap the converter so corrected codes come out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.adc.dual_slope import DualSlopeADC
from repro.adc.errors import ADCCharacterization
from repro.adc.histogram import characterize_servo


@dataclass
class CalibrationTable:
    """The digital correction derived from a measured transfer."""

    offset_lsb: float
    gain_factor: float
    inl_correction_lsb: Optional[np.ndarray] = None   # per raw code

    def correct(self, raw_code: int) -> int:
        """Apply the correction to one raw code.

        A transition shifted *up* by e LSB makes the raw code read e LSB
        *low*, so the correction adds the measured error back:
        ``corrected = raw·gain_factor + offset + INL(raw)``.
        """
        value = float(raw_code) * self.gain_factor + self.offset_lsb
        if self.inl_correction_lsb is not None:
            idx = min(max(raw_code, 0), len(self.inl_correction_lsb) - 1)
            value += float(self.inl_correction_lsb[idx])
        return int(round(value))

    def describe(self) -> str:
        inl = ("with INL table"
               if self.inl_correction_lsb is not None else "linear only")
        return (f"calibration: offset {self.offset_lsb:+.2f} LSB, gain "
                f"{self.gain_factor:.4f}, {inl}")


class CalibratedADC:
    """A converter wrapped with its digital correction."""

    def __init__(self, adc: DualSlopeADC, table: CalibrationTable) -> None:
        self.adc = adc
        self.table = table

    @property
    def cal(self):
        return self.adc.cal

    def code_of(self, v_in: float) -> int:
        raw = self.adc.code_of(v_in)
        corrected = self.table.correct(raw)
        return min(max(corrected, 0), self.adc.cal.n_codes)

    def copy(self) -> "CalibratedADC":
        return CalibratedADC(self.adc.copy(), self.table)


class SelfCalibration:
    """Measure → fit → wrap.

    ``use_inl_table`` adds the per-code INL correction on top of the
    linear (offset/gain) fit; the linear fit alone is what a small
    on-chip state machine would realistically store.
    """

    def __init__(self, use_inl_table: bool = False) -> None:
        self.use_inl_table = use_inl_table

    def measure(self, adc: DualSlopeADC) -> ADCCharacterization:
        return characterize_servo(adc)

    def fit(self, ch: ADCCharacterization) -> CalibrationTable:
        """Derive the correction from a characterisation."""
        n = len(ch.transition_levels_v)
        gain = 1.0 + ch.gain_error_lsb / max(n - 1, 1)
        inl = None
        if self.use_inl_table and len(ch.inl_lsb):
            # INL is indexed by transition; map to codes (code k sits
            # between transitions k and k+1)
            inl_t = np.concatenate([[0.0], ch.inl_lsb])
            inl = 0.5 * (inl_t[:-1] + inl_t[1:])
            inl = np.concatenate([inl, [inl[-1]]])
        return CalibrationTable(offset_lsb=ch.offset_error_lsb,
                                gain_factor=gain,
                                inl_correction_lsb=inl)

    def calibrate(self, adc: DualSlopeADC) -> CalibratedADC:
        """The full flow on one device."""
        table = self.fit(self.measure(adc))
        return CalibratedADC(adc, table)


def calibration_improvement(adc: DualSlopeADC,
                            use_inl_table: bool = True,
                            probe_points: int = 101
                            ) -> "tuple[float, float]":
    """Worst-case conversion error (in LSB) before and after
    self-calibration, probed at code centres."""
    calibrated = SelfCalibration(use_inl_table=use_inl_table).calibrate(adc)
    lsb = adc.cal.lsb_v
    worst_raw = 0.0
    worst_cal = 0.0
    for k in range(probe_points):
        v = k * adc.cal.full_scale_v / (probe_points - 1)
        ideal = v / lsb
        worst_raw = max(worst_raw, abs(adc.code_of(v) - ideal))
        worst_cal = max(worst_cal, abs(calibrated.code_of(v) - ideal))
    return worst_raw, worst_cal
