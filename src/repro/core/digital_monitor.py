"""Digital test monitoring of the ADC.

"The conversion time for the control logic was specified as a maximum of
5.6 msec.  The counter macro was run at 100 kHz clock speed as
recommended.  The measured time difference in fall time was 10 µsec.
This represented 10 mV input for each incremented output code change."

The monitor times conversions with the on-chip counter (so all time
measurements quantise to the 10 µs clock period) and verifies the
fall-time-per-input-voltage relationship of the integrator test mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.adc.dual_slope import DualSlopeADC
from repro.dft.counter import CounterMacro


@dataclass
class DigitalTestReport:
    """Results of the digital test range."""

    conversion_times_s: List[float]
    conversion_time_limit_s: float
    fall_time_delta_s: Optional[float]
    mv_per_code: Optional[float]
    completed_all: bool

    @property
    def max_conversion_time_s(self) -> float:
        return max(self.conversion_times_s) if self.conversion_times_s else 0.0

    @property
    def conversion_time_ok(self) -> bool:
        return (self.completed_all
                and self.max_conversion_time_s <= self.conversion_time_limit_s)

    @property
    def passed(self) -> bool:
        return self.conversion_time_ok and self.fall_time_delta_s is not None

    def summary(self) -> str:
        delta = (f"{1e6 * self.fall_time_delta_s:.0f} us"
                 if self.fall_time_delta_s is not None else "n/a")
        return (f"digital test: max conversion "
                f"{1e3 * self.max_conversion_time_s:.2f} ms "
                f"(limit {1e3 * self.conversion_time_limit_s:.1f} ms), "
                f"fall-time delta {delta}, "
                f"{'PASS' if self.passed else 'FAIL'}")


class DigitalTestMonitor:
    """On-chip digital measurements via the counter macro."""

    def __init__(self, clock_hz: float = 100e3,
                 conversion_time_limit_s: float = 5.6e-3) -> None:
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.clock_hz = clock_hz
        self.conversion_time_limit_s = conversion_time_limit_s

    @property
    def resolution_s(self) -> float:
        """One counter tick — the paper's 10 µs."""
        return 1.0 / self.clock_hz

    def quantize(self, seconds: float) -> float:
        """Time as the counter sees it (floor to whole clock periods)."""
        ticks = int(seconds * self.clock_hz)
        return ticks / self.clock_hz

    # ------------------------------------------------------------------
    def time_conversions(self, adc: DualSlopeADC,
                         inputs: Tuple[float, ...] = (0.0, 1.25, 2.5)
                         ) -> Tuple[List[float], bool]:
        """Measure conversion time over representative inputs.

        Returns the counter-quantised times and whether every conversion
        actually completed (a stuck control FSM never finishes — the
        paper's control-fault signature).
        """
        times = []
        all_done = True
        for v in inputs:
            trace = adc.convert(v)
            times.append(self.quantize(trace.conversion_time_s))
            all_done = all_done and trace.completed
        return times, all_done

    def fall_time_lsb_check(self, adc: DualSlopeADC, v_base: float = 1.0,
                            delta_v: float = 10e-3
                            ) -> Tuple[Optional[float], Optional[float]]:
        """Verify the 10 µs ↔ 10 mV relationship of the integrator test.

        Measures the fall time at ``v_base`` and ``v_base + delta_v``
        through the counter and returns ``(fall_time_delta, mv_per_code)``
        — ``None`` values when either fall never happens (faulted part).
        """
        t1 = adc.test_fall_time(v_base)
        t2 = adc.test_fall_time(v_base + delta_v)
        if not (t1 < float("inf") and t2 < float("inf")):
            return None, None
        q1, q2 = self.quantize(t1), self.quantize(t2)
        delta = q1 - q2
        if delta <= 0:
            return None, None
        # Each counter tick of fall-time difference corresponds to this
        # much input voltage:
        mv_per_code = 1e3 * delta_v * (self.resolution_s / delta)
        return delta, mv_per_code

    def run(self, adc: DualSlopeADC) -> DigitalTestReport:
        """The complete digital test range."""
        times, all_done = self.time_conversions(adc)
        delta, mv_per_code = self.fall_time_lsb_check(adc)
        return DigitalTestReport(
            conversion_times_s=times,
            conversion_time_limit_s=self.conversion_time_limit_s,
            fall_time_delta_s=delta,
            mv_per_code=mv_per_code,
            completed_all=all_done,
        )
