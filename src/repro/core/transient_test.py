"""Transient response testing — the paper's second technique.

"A transient stimulus vector, propagating in a mixed signal circuit, can
be described as the applied stimulus vector, convolved with the impulse
response h(t) of each circuit block ... minor changes to the signal
spectrum, indicative of circuit faults, can be detected in the presence
of the composite noise signal yn(t) by correlating the transient signal
y(t) with the specific correlation signal p(t), which was derived from
the applied stimulus vector set.  This operation produces a correlation
function R(y,p) that is identical to the composite impulse response of
the IC signal path currently propagating the stimulus vector."

The tester drives a circuit with a PRBS, simulates it in the MNA engine
and produces R(y, p) scaled by the stimulus energy, so it approximates
the composite impulse response *with amplitude preserved* (a dead output
correlates to zero rather than re-normalising to unity — essential for
detecting catastrophic faults).  The detection-instances metric is
evaluated over the correlation window around zero lag where the impulse
response lives.

Note on stimulus levels: the paper drives 0–5 V.  Our 5 µm OP1 substitute
clips outside roughly 1.6–3.8 V in unity feedback, which would mask
mid-scale faults behind identical rail clipping; the circuit-1 experiment
therefore uses 2.0/3.5 V chips (documented in DESIGN.md).  The 0/5 V
default remains available for the clipping ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.signals.correlation import normalized_cross_correlation
from repro.signals.prbs import prbs_waveform
from repro.signals.waveform import Waveform
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.transient import transient


@dataclass(frozen=True)
class TransientTestConfig:
    """Stimulus and measurement parameters.

    Defaults follow the paper's circuit-1 experiment: a 15-chip PRBS
    (order-4 maximal LFSR) with 250 µs chips.
    """

    prbs_order: int = 4
    chip_time_s: float = 250e-6
    low_v: float = 0.0
    high_v: float = 5.0
    sim_dt_s: float = 5e-6
    seed: int = 1
    repeats: int = 1
    noise_sigma_v: float = 0.0
    noise_seed: int = 7
    #: correlation-lag window (in chips) the detection metric evaluates
    window_chips: Tuple[float, float] = (-1.0, 1.0)

    def stimulus(self) -> Waveform:
        """The PRBS stimulus x(t)."""
        return prbs_waveform(order=self.prbs_order,
                             chip_time=self.chip_time_s,
                             low=self.low_v, high=self.high_v,
                             dt=self.sim_dt_s, seed=self.seed,
                             repeats=self.repeats)

    def correlation_signal(self) -> Waveform:
        """p(t): derived from the applied stimulus (here, the stimulus
        itself; the correlator removes the mean)."""
        return self.stimulus()


@dataclass
class TransientMeasurement:
    """What one transient test run produces."""

    response: Waveform          # y(t) at the observed node
    correlation: Waveform       # R(y, p)/E_p — the impulse-response view
    normalized: Waveform        # classic unit-peak normalised correlation
    stimulus: Waveform          # x(t) actually applied

    def correlation_peak(self) -> float:
        return float(np.max(np.abs(self.correlation.values)))


class TransientResponseTester:
    """Applies the PRBS test to a netlist and correlates the response.

    Parameters
    ----------
    config:
        Stimulus/measurement configuration.
    source_name:
        The independent voltage source inside the target circuit whose
        value the tester replaces with the PRBS (the stimulus entry
        point).
    output_node:
        The node whose voltage is the observed transient signal y(t).
    """

    def __init__(self, config: Optional[TransientTestConfig] = None,
                 source_name: str = "VIN", output_node: str = "3") -> None:
        self.config = config or TransientTestConfig()
        self.source_name = source_name
        self.output_node = output_node

    # ------------------------------------------------------------------
    def prepared_circuit(self, circuit: Circuit) -> Circuit:
        """A copy of ``circuit`` with the PRBS wired into the source."""
        prepared = circuit.copy()
        elem = prepared.element(self.source_name)
        if not isinstance(elem, VoltageSource):
            raise TypeError(f"{self.source_name!r} is not a voltage source")
        elem.value = self.config.stimulus()
        return prepared

    def _impulse_estimate(self, y: Waveform, p: Waveform) -> Waveform:
        """R(y, p) / E_p with both signals mean-removed — amplitude
        carries through, so attenuation faults stay visible."""
        yc = y.values - np.mean(y.values)
        pc = p.values - np.mean(p.values)
        energy = float(np.sum(pc ** 2)) * p.dt
        if energy <= 0.0:
            raise ValueError("degenerate correlation signal")
        r = np.correlate(yc, pc, mode="full") * p.dt / energy
        lag0 = -(len(pc) - 1)
        return Waveform(r, p.dt, t0=lag0 * p.dt, name="R(y,p)/Ep")

    def measure(self, circuit: Circuit) -> TransientMeasurement:
        """Run the transient test on a (fault-free or faulty) circuit."""
        cfg = self.config
        stimulus = cfg.stimulus()
        prepared = self.prepared_circuit(circuit)
        result = transient(prepared, t_stop=stimulus.duration,
                           dt=cfg.sim_dt_s, record=[self.output_node])
        y = result[self.output_node]
        if cfg.noise_sigma_v > 0.0:
            y = y.with_noise(cfg.noise_sigma_v, seed=cfg.noise_seed)
        p = cfg.correlation_signal()
        return TransientMeasurement(
            response=y,
            correlation=self.windowed(self._impulse_estimate(y, p)),
            normalized=normalized_cross_correlation(y, p),
            stimulus=stimulus,
        )

    def windowed(self, r: Waveform) -> Waveform:
        """Trim a correlation to the configured lag window."""
        lo_chips, hi_chips = self.config.window_chips
        if hi_chips <= lo_chips:
            raise ValueError("window_chips must be increasing")
        chip = self.config.chip_time_s
        return r.slice_time(lo_chips * chip, hi_chips * chip)

    # ------------------------------------------------------------------
    def evaluate_batch(self, target: Circuit, faults) -> list:
        """Campaign batch protocol: march the faulty variants in
        lockstep and return one windowed correlation per fault.

        The variants share a single stimulus ``Waveform`` object so the
        batched engine can group their marches into one lockstep tensor;
        the sample values are identical to the per-fault path, so the
        correlations are bitwise equal to serial ``measure()`` calls.
        Slots the batch cannot serve (injection failure, evicted march)
        hold :data:`repro.faults.campaign.BATCH_FALLBACK` and are
        re-evaluated serially by the campaign.
        """
        from repro.faults.campaign import BATCH_FALLBACK
        from repro.faults.injector import inject
        from repro.spice.batched import batched_transient

        cfg = self.config
        stimulus = cfg.stimulus()
        out = [BATCH_FALLBACK] * len(faults)
        variants = []
        slots = []
        for i, fault in enumerate(faults):
            try:
                prepared = inject(target, fault).copy()
                elem = prepared.element(self.source_name)
                if not isinstance(elem, VoltageSource):
                    raise TypeError(
                        f"{self.source_name!r} is not a voltage source")
                elem.value = stimulus
            except Exception:  # noqa: BLE001 - serial re-run owns the error
                continue
            variants.append(prepared)
            slots.append(i)
        if not variants:
            return out
        results = batched_transient(variants, t_stop=stimulus.duration,
                                    dt=cfg.sim_dt_s,
                                    record=[self.output_node])
        p = cfg.correlation_signal()
        for slot, result in zip(slots, results):
            if result is None:
                continue
            y = result[self.output_node]
            if cfg.noise_sigma_v > 0.0:
                y = y.with_noise(cfg.noise_sigma_v, seed=cfg.noise_seed)
            try:
                out[slot] = self.windowed(self._impulse_estimate(y, p))
            except Exception:  # noqa: BLE001 - serial re-run owns the error
                continue
        return out

    # ------------------------------------------------------------------
    def technique(self) -> "TransientTechnique":
        """The measurement callable a fault campaign consumes: the
        windowed impulse-response-scaled correlation.  The returned
        object is picklable (so it crosses process-pool boundaries) and
        implements the campaign's ``evaluate_batch`` protocol for
        ``batch_size > 1`` runs."""
        return TransientTechnique(self)


class TransientTechnique:
    """Picklable campaign technique wrapping a
    :class:`TransientResponseTester`: calling it measures one circuit;
    ``evaluate_batch`` marches a fault chunk through the lockstep
    batched engine."""

    def __init__(self, tester: TransientResponseTester) -> None:
        self.tester = tester

    def __call__(self, circuit: Circuit) -> Waveform:
        return self.tester.measure(circuit).correlation

    def evaluate_batch(self, target: Circuit, faults) -> list:
        return self.tester.evaluate_batch(target, faults)

    def surrogate_workload(self, target: Circuit):
        """Surrogate-prescreen protocol: how to reproduce this
        technique's measurement from a fitted small-signal model (same
        stimulus, same correlation post-processing as :meth:`__call__`).
        """
        from repro.surrogate.prescreen import SurrogateWorkload

        tester = self.tester
        cfg = tester.config
        stimulus = cfg.stimulus()
        p = cfg.correlation_signal()

        def postprocess(y: Waveform) -> Waveform:
            if cfg.noise_sigma_v > 0.0:
                y = y.with_noise(cfg.noise_sigma_v, seed=cfg.noise_seed)
            return tester.windowed(tester._impulse_estimate(y, p))

        return SurrogateWorkload(source_name=tester.source_name,
                                 output_node=tester.output_node,
                                 dt=cfg.sim_dt_s,
                                 t_stop=stimulus.duration,
                                 stimulus=stimulus,
                                 postprocess=postprocess,
                                 prepare=tester.prepared_circuit)
