"""The paper's contribution: on-chip test macros for mixed-signal ASICs
and transient-response testing of analogue/mixed sub-macros.

Three test ranges (the paper's quick BIST):

* analogue — :class:`~repro.core.step_generator.StepGeneratorMacro` and
  :class:`~repro.core.ramp_generator.RampGeneratorMacro` drive the ADC's
  analogue partitions; fall times are measured on-chip.
* digital — :class:`~repro.core.digital_monitor.DigitalTestMonitor`
  checks conversion time and the fall-time/LSB relationship with the
  100 kHz counter.
* compressed — :class:`~repro.core.signature.CompressedTest` folds the
  step responses into a MISR signature and the
  :class:`~repro.core.level_sensor.DCLevelSensor` compresses the
  integrator peak into a 2-bit analogue signature.

:class:`~repro.core.bist.BISTController` orchestrates all three;
:class:`~repro.core.transient_test.TransientResponseTester` and
:mod:`repro.core.impulse_method` implement the transient-response
technique; :mod:`repro.core.detection` scores detection instances
(Figure 4's metric).
"""

from repro.core.step_generator import StepGeneratorMacro, PAPER_STEP_LEVELS
from repro.core.ramp_generator import RampGeneratorMacro
from repro.core.level_sensor import DCLevelSensor
from repro.core.digital_monitor import DigitalTestMonitor, DigitalTestReport
from repro.core.signature import CompressedTest, CompressedTestReport
from repro.core.monotonicity import MonotonicityBIST, MonotonicityReport
from repro.core.partition import MacroPartition, ADC_PARTITION, bist_overhead
from repro.core.bist import BISTController, BISTReport
from repro.core.transient_test import (
    TransientTestConfig,
    TransientMeasurement,
    TransientResponseTester,
)
from repro.core.impulse_method import (
    ImpulseMethodConfig,
    extract_integrator_model,
    integrator_impulse_response,
    circuit2_response,
)
from repro.core.detection import detection_instances, detection_profile
from repro.core.test_patterns import (
    DiagnosticPattern,
    DictionaryMatch,
    FaultDictionary,
    STANDARD_FAULT_LIBRARY,
)
from repro.core.idd_testing import (
    IddMeasurement,
    IddTester,
    idd_detection,
    quiescent_ratio,
)
from repro.core.asut import ASUT, ExternalTester, TesterLog
from repro.core.diagnosis import diagnose, DiagnosisResult

__all__ = [
    "StepGeneratorMacro",
    "PAPER_STEP_LEVELS",
    "RampGeneratorMacro",
    "DCLevelSensor",
    "DigitalTestMonitor",
    "DigitalTestReport",
    "CompressedTest",
    "CompressedTestReport",
    "MonotonicityBIST",
    "MonotonicityReport",
    "MacroPartition",
    "ADC_PARTITION",
    "bist_overhead",
    "BISTController",
    "BISTReport",
    "TransientTestConfig",
    "TransientMeasurement",
    "TransientResponseTester",
    "ImpulseMethodConfig",
    "extract_integrator_model",
    "integrator_impulse_response",
    "circuit2_response",
    "detection_instances",
    "detection_profile",
    "DiagnosticPattern",
    "DictionaryMatch",
    "FaultDictionary",
    "STANDARD_FAULT_LIBRARY",
    "IddMeasurement",
    "IddTester",
    "idd_detection",
    "quiescent_ratio",
    "ASUT",
    "ExternalTester",
    "TesterLog",
    "diagnose",
    "DiagnosisResult",
]
