"""The on-chip step input generator macro.

"The step input macro produced voltage steps of 0, 0.59, 0.96, 1.41, 1.8
and 2.5 volts."  The macro is a tapped divider/reference network buffered
onto the ADC input; its levels are therefore fixed by design, with a
small per-level accuracy band from process variation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.signals.sources import staircase_waveform, step_waveform
from repro.signals.waveform import Waveform

#: The paper's step levels, volts.
PAPER_STEP_LEVELS: Tuple[float, ...] = (0.0, 0.59, 0.96, 1.41, 1.8, 2.5)


class StepGeneratorMacro:
    """Behavioural model of the step-generator test macro.

    Parameters
    ----------
    levels:
        Programmed DC output levels.
    accuracy_v:
        Absolute accuracy of each level (the divider/buffer error budget).
    settle_time_s:
        Time the output needs after a level select before it is valid.
    transistor_count:
        Area bookkeeping for the overhead audit (part of the paper's
        152-transistor analogue test overhead).
    """

    def __init__(self, levels: Sequence[float] = PAPER_STEP_LEVELS,
                 accuracy_v: float = 5e-3, settle_time_s: float = 20e-6,
                 transistor_count: int = 64,
                 level_errors_v: Optional[Sequence[float]] = None) -> None:
        if not levels:
            raise ValueError("need at least one step level")
        if accuracy_v < 0 or settle_time_s < 0:
            raise ValueError("accuracy and settle time must be non-negative")
        self.levels = tuple(float(v) for v in levels)
        self.accuracy_v = accuracy_v
        self.settle_time_s = settle_time_s
        self.transistor_count = transistor_count
        if level_errors_v is None:
            self.level_errors_v = tuple(0.0 for _ in self.levels)
        else:
            if len(level_errors_v) != len(self.levels):
                raise ValueError("one error entry per level required")
            self.level_errors_v = tuple(float(e) for e in level_errors_v)

    def copy(self) -> "StepGeneratorMacro":
        return StepGeneratorMacro(self.levels, self.accuracy_v,
                                  self.settle_time_s, self.transistor_count,
                                  self.level_errors_v)

    # ------------------------------------------------------------------
    def output(self, index: int) -> float:
        """The actual DC level produced for step ``index``."""
        if not 0 <= index < len(self.levels):
            raise IndexError(f"no step level {index}")
        return self.levels[index] + self.level_errors_v[index]

    def all_outputs(self) -> List[float]:
        return [self.output(i) for i in range(len(self.levels))]

    def step_waveform(self, index: int, duration: float,
                      dt: float = 1e-6) -> Waveform:
        """The macro's output waveform for one selected level, including
        the finite settling edge."""
        return step_waveform(self.output(index), duration, dt,
                             rise_time=self.settle_time_s)

    def staircase(self, dwell_s: float, dt: float = 1e-6) -> Waveform:
        """All levels applied consecutively (the compressed-test drive)."""
        return staircase_waveform(self.all_outputs(), dwell_s, dt)

    def within_accuracy(self) -> bool:
        """Self-check: are all realised levels within the accuracy band?"""
        return all(abs(e) <= self.accuracy_v for e in self.level_errors_v)

    def describe(self) -> str:
        lv = ", ".join(f"{v:.2f}" for v in self.levels)
        return (f"step generator: levels [{lv}] V, accuracy "
                f"±{1e3 * self.accuracy_v:.0f} mV, "
                f"{self.transistor_count} transistors")
