"""The DC level sensor macro.

"The integrator output was also connected to the DC level sensor, which
compared the analogue signal to thresholds of 1.9 volts and 3.6 volts ...
the maximum integrator voltage signal was compressed into a 2 bit code."

The sensor is two comparators; the 2-bit code is
``(above_high << 1) | above_low``.
"""

from __future__ import annotations

from typing import Tuple

from repro.adc.comparator import ComparatorModel
from repro.signals.waveform import Waveform


class DCLevelSensor:
    """Two-threshold window sensor producing the 2-bit analogue signature."""

    def __init__(self, low_threshold_v: float = 1.9,
                 high_threshold_v: float = 3.6,
                 comparator_offset_v: float = 0.0,
                 transistor_count: int = 32) -> None:
        if high_threshold_v <= low_threshold_v:
            raise ValueError("high threshold must exceed low threshold")
        self.low_threshold_v = low_threshold_v
        self.high_threshold_v = high_threshold_v
        self._cmp_low = ComparatorModel(offset_v=comparator_offset_v)
        self._cmp_high = ComparatorModel(offset_v=comparator_offset_v)
        self.transistor_count = transistor_count

    def copy(self) -> "DCLevelSensor":
        dup = DCLevelSensor(self.low_threshold_v, self.high_threshold_v,
                            self._cmp_low.offset_v, self.transistor_count)
        dup._cmp_low = self._cmp_low.copy()
        dup._cmp_high = self._cmp_high.copy()
        return dup

    # ------------------------------------------------------------------
    def code(self, voltage: float) -> int:
        """2-bit code for a DC level: 00 below both thresholds, 01
        between, 11 above both (10 is impossible in a healthy sensor)."""
        low = self._cmp_low.compare(voltage, self.low_threshold_v)
        high = self._cmp_high.compare(voltage, self.high_threshold_v)
        return (high << 1) | low

    def classify_peak(self, wave: Waveform) -> int:
        """Compress a waveform's maximum into the 2-bit signature —
        exactly the compressed analogue test."""
        return self.code(wave.peak())

    def window(self, voltage: float) -> str:
        """Human-readable window name."""
        return {0: "below", 1: "inside", 3: "above"}.get(
            self.code(voltage), "invalid")

    def is_consistent(self, code: int) -> bool:
        """A healthy sensor can never report 0b10 (above high but not
        low); seeing it is itself a fault indication."""
        return code in (0b00, 0b01, 0b11)

    def describe(self) -> str:
        return (f"DC level sensor: thresholds {self.low_threshold_v:g} / "
                f"{self.high_threshold_v:g} V, "
                f"{self.transistor_count} transistors")
