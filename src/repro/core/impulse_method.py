"""The second testing approach: state-space impulse-response comparison.

"In a second approach ... HSPICE was used to determine the poles, zeros
and constants for the transfer functions of the fault-free circuit and
faulty circuits.  Matrices were then created in Matlab to provide a
state-space representation of both fault-free and faulty circuits.  The
impulse response of these circuit representations was determined and
compared."

Pipeline for the switched-capacitor circuits (2 and 3):

1. Bias the (possibly faulted) OP1 as the integrator's amplifier and
   extract its transfer function from the linearised MNA pencil
   (:func:`repro.spice.linearize.extract_transfer_function`) plus its
   large-signal DC gain/offset — the "HSPICE poles/zeros/constants"
   step.
2. Map the amplifier's DC gain, offset and per-phase settling onto the
   discrete integrator model (charge-transfer gain, leak, per-cycle
   drift) — the "Matlab state-space matrices" step, taken in the z
   domain where a switched-capacitor circuit naturally lives.
3. Compute the responses and compare against fault-free with the
   detection-instances metric:

   * circuit 3 — the integrator's impulse response including offset
     drift and output saturation (an offset fault walks the response
     away from nominal until the op-amp rails);
   * circuit 2 — the comparator's output while the integrator processes
     a PRBS charge sequence, observed through the same correlation
     R(y, p) used for circuit 1 (y is a logic-amplitude signal, exactly
     as the paper describes).

Fault coupling: the paper's fault voltage generators connect to internal
transistor nodes through the local defect path; the campaigns model that
with a finite generator resistance (see
:attr:`ImpulseMethodConfig.stuck_resistance_ohm`).  Dead shorts (1 Ω)
invariably kill the amplifier outright and flatten Figure 4's spread;
the ~3 kΩ default reproduces the paper's graded detection percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.circuits.op1 import VDD, add_op1
from repro.circuits.sc_integrator import PAPER_DESIGN, SCIntegratorDesign
from repro.faults.model import Fault
from repro.faults.universe import paper_integrator_faults
from repro.lti.transferfunction import TransferFunction
from repro.lti.zdomain import ZTransferFunction, sc_integrator_ztf
from repro.signals.prbs import prbs_sequence
from repro.signals.waveform import Waveform
from repro.spice.linearize import extract_transfer_function
from repro.spice.netlist import Circuit
from repro.spice.solver import dc_operating_point


@dataclass(frozen=True)
class ImpulseMethodConfig:
    """Parameters of the impulse-response comparison."""

    design: SCIntegratorDesign = PAPER_DESIGN
    n_samples: int = 256           # circuit-3 response length (clock cycles)
    max_order: int = 3             # rational-model order kept from extraction
    saturation_v: float = 2.0      # hard cap on integrator swing about agnd
    impulse_amplitude_v: float = 2.0   # circuit-3 test packet (full input)
    range_probe_v: float = 1.2     # how far the extraction probes the
                                   # amplifier's output range about agnd
    # circuit-2 stimulus/observation
    prbs_order: int = 5
    prbs_chips: int = 256
    prbs_amplitude_v: float = 2.0
    base_leak: float = 0.05        # SC parasitic discharge per cycle
    correlation_window: int = 16   # lags evaluated around zero
    # fault coupling (see module docstring)
    stuck_resistance_ohm: float = 3.0e3
    bridge_resistance_ohm: float = 1.0e3

    def paper_faults(self) -> List[Fault]:
        """The paper's 12 integrator faults at this config's coupling."""
        return paper_integrator_faults(
            stuck_resistance=self.stuck_resistance_ohm,
            bridge_resistance=self.bridge_resistance_ohm)


def integrator_opamp_fixture(input_value: Optional[float] = None) -> Circuit:
    """OP1 biased as the SC integrator's amplifier (follower around the
    analogue reference) — the linearisation operating point.

    Node names keep the paper's numbering, so the integrator fault list
    (nodes 4, 5, 7, 8, 9 and bridges 6–7, 5–8) applies directly.
    """
    v_ref = PAPER_DESIGN.v_ref
    ckt = Circuit("integrator_opamp")
    ckt.vsource("VDD", "vdd", "0", VDD)
    ckt.vsource("VIN", "1", "0", v_ref if input_value is None else input_value)
    add_op1(ckt, "1", "3", "3")
    ckt.capacitor("CL", "3", "0", PAPER_DESIGN.cf_f)
    return ckt


@dataclass
class ExtractedIntegrator:
    """The discrete integrator parameters extracted from a netlist."""

    charge_gain: float       # per-cycle charge-transfer efficiency
    leak_per_cycle: float
    offset_v: float          # amplifier offset referred to the input
    amplifier_tf: Optional[TransferFunction]
    #: fraction of final value the *amplifier* reaches in half a clock
    #: period (from the extracted dominant pole).  Reported for analysis
    #: but not folded into charge_gain: the per-cycle charge transfer is
    #: switch-RC-limited in this design, as the transistor-level E8 run
    #: verifies (98 % complete packets).
    settling_fraction: float = 1.0
    #: measured output swing about the analogue reference (faults that
    #: weaken the buffer chain clip the range long before they shift the
    #: small-signal gain)
    sat_hi_v: float = 2.0
    sat_lo_v: float = -2.0

    def to_ztf(self, design: SCIntegratorDesign = PAPER_DESIGN
               ) -> ZTransferFunction:
        cap_ratio = design.cap_ratio / max(self.charge_gain, 1e-9)
        return sc_integrator_ztf(cap_ratio=cap_ratio,
                                 dt=design.clock_period_s,
                                 leak=self.leak_per_cycle)


def extract_integrator_model(opamp_fixture: Circuit,
                             config: ImpulseMethodConfig = ImpulseMethodConfig()
                             ) -> ExtractedIntegrator:
    """Steps 1–2 of the pipeline: characterise the amplifier, map onto
    the discrete integrator model.

    A dead or railed amplifier (many stuck-at faults) yields a charge
    gain near zero and a large offset; partial faults yield reduced gain
    and leak.
    """
    design = config.design
    v_ref = design.v_ref
    # Large-signal DC behaviour: perturb the input, watch the output.
    delta = 0.05
    v0, op_vec = dc_operating_point(opamp_fixture)
    fixture_hi = opamp_fixture.copy()
    fixture_hi.element("VIN").value = v_ref + delta
    v1, _ = dc_operating_point(fixture_hi)
    dc_gain = (v1["3"] - v0["3"]) / delta
    offset = v0["3"] - v_ref

    # Output-range probe: drive the follower toward both extremes and
    # record where the output actually lands — a weakened buffer chain
    # (e.g. a node-9 fault) clips the range while leaving the mid-scale
    # gain untouched.
    probe = config.range_probe_v
    sat = config.saturation_v
    try:
        fixture_top = opamp_fixture.copy()
        fixture_top.element("VIN").value = v_ref + probe
        v_top, _ = dc_operating_point(fixture_top)
        sat_hi = min(sat, v_top["3"] - v_ref)
    except Exception:
        sat_hi = 0.0
    try:
        fixture_bot = opamp_fixture.copy()
        fixture_bot.element("VIN").value = v_ref - probe
        v_bot, _ = dc_operating_point(fixture_bot)
        sat_lo = max(-sat, v_bot["3"] - v_ref)
    except Exception:
        sat_lo = 0.0
    if sat_hi < sat_lo:
        sat_hi, sat_lo = sat_lo, sat_hi

    # Rational model of the closed-loop amplifier at the OP — the
    # "poles, zeros and constants" extraction.
    try:
        tf = extract_transfer_function(opamp_fixture, "VIN", "3",
                                       op_vector=op_vec,
                                       max_order=config.max_order)
    except Exception:
        tf = None

    # Per-phase settling from the dominant pole of the extracted model.
    settle = 1.0
    if tf is not None and len(tf.poles()):
        real_parts = np.real(tf.poles())
        stable = real_parts[real_parts < 0]
        if len(stable):
            slowest = float(np.max(stable))   # closest to the axis
            phase = design.clock_period_s / 2.0
            settle = 1.0 - float(np.exp(slowest * phase))
        else:
            settle = 0.0

    charge_gain = float(np.clip(dc_gain, 0.0, 2.0))
    # Finite amplifier gain leaks charge each cycle: with closed-loop
    # gain deficit d the integrator pole moves inside the unit circle by
    # roughly d * (1 + Cs/Cf).
    deficit = max(0.0, 1.0 - float(np.clip(dc_gain, 0.0, 1.0)))
    leak = min(0.9, deficit * (1.0 + 1.0 / design.cap_ratio))
    return ExtractedIntegrator(charge_gain=charge_gain,
                               leak_per_cycle=leak,
                               offset_v=offset,
                               amplifier_tf=tf,
                               settling_fraction=float(np.clip(settle, 0.0, 1.0)),
                               sat_hi_v=sat_hi,
                               sat_lo_v=sat_lo)


# ----------------------------------------------------------------------
# Response simulators (step 3)
# ----------------------------------------------------------------------
def _march(model: ExtractedIntegrator, u: np.ndarray, leak_extra: float,
           config: ImpulseMethodConfig) -> np.ndarray:
    """Run the saturating discrete integrator over an input sequence."""
    design = config.design
    drift = model.charge_gain * model.offset_v / design.cap_ratio
    leak = min(0.95, model.leak_per_cycle + leak_extra)
    hi = min(config.saturation_v, model.sat_hi_v)
    lo = max(-config.saturation_v, model.sat_lo_v)
    v = 0.0
    out = np.empty(len(u))
    for k, u_k in enumerate(u):
        v = (1.0 - leak) * v + model.charge_gain * u_k / design.cap_ratio \
            + drift
        v = min(hi, max(lo, v))
        out[k] = v
    return out


def integrator_impulse_response(model: ExtractedIntegrator,
                                config: ImpulseMethodConfig = ImpulseMethodConfig()
                                ) -> Waveform:
    """Circuit 3's measurement: the integrator impulse response h[n]
    including offset drift and saturation."""
    u = np.zeros(config.n_samples)
    u[0] = config.impulse_amplitude_v
    out = _march(model, u, leak_extra=0.0, config=config)
    return Waveform(out, config.design.clock_period_s, name="h[n]")


def circuit2_response(model: ExtractedIntegrator,
                      config: ImpulseMethodConfig = ImpulseMethodConfig()
                      ) -> Waveform:
    """Circuit 2's measurement: R(y, p) of the comparator output.

    The integrator processes a PRBS charge sequence (±amplitude about
    analogue ground); the comparator slices its output against the
    0.64 V reference and the logic-amplitude response is correlated with
    the stimulus — the same R(y, p) operation used for circuit 1.
    """
    design = config.design
    bits = prbs_sequence(config.prbs_order, n_bits=config.prbs_chips, seed=1)
    u = np.where(bits > 0, config.prbs_amplitude_v, -config.prbs_amplitude_v)
    v_out = _march(model, u, leak_extra=config.base_leak, config=config)
    y = (v_out > design.comparator_threshold).astype(float)
    yc = y - np.mean(y)
    uc = u - np.mean(u)
    r = np.correlate(yc, uc, mode="full") / float(np.sum(uc ** 2))
    lag0 = -(len(uc) - 1)
    wave = Waveform(r, design.clock_period_s,
                    t0=lag0 * design.clock_period_s, name="R(y,p)")
    w = config.correlation_window
    return wave.slice_time(-w * design.clock_period_s,
                           w * design.clock_period_s)
