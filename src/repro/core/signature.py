"""The compressed test: MISR signature + 2-bit analogue signature.

"The built-in self test macros were configured to perform a quick
functional test of the ADC by compressing the digital output signature
from the consecutive application of the DC step input values. ...  Input
to the ADC was then ramped and the maximum integrator voltage signal was
compressed into a 2 bit code."

Two digital compaction modes are provided:

* ``"window"`` (default) — each step's output code is window-compared
  against its expected value ±tolerance on-chip and the pass *bits* are
  compacted.  Robust to in-spec device spread: every good device yields
  the same signature.
* ``"codes"`` — the raw output codes are compacted (the literal reading
  of the paper).  Brittle for steps landing near a code transition; kept
  for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adc.dual_slope import DualSlopeADC
from repro.core.level_sensor import DCLevelSensor
from repro.core.ramp_generator import RampGeneratorMacro
from repro.core.step_generator import StepGeneratorMacro
from repro.dft.lfsr import MISR


@dataclass
class CompressedTestReport:
    """Outcome of the compressed quick test."""

    digital_signature: int
    expected_digital_signature: int
    analog_code: int
    expected_analog_code: int
    codes: List[int]
    peak_v: float

    @property
    def digital_ok(self) -> bool:
        return self.digital_signature == self.expected_digital_signature

    @property
    def analog_ok(self) -> bool:
        return self.analog_code == self.expected_analog_code

    @property
    def passed(self) -> bool:
        return self.digital_ok and self.analog_ok

    def summary(self) -> str:
        return (f"compressed test: digital 0x{self.digital_signature:04X} "
                f"(expect 0x{self.expected_digital_signature:04X}), "
                f"analogue {self.analog_code:02b} "
                f"(expect {self.expected_analog_code:02b}) — "
                f"{'PASS' if self.passed else 'FAIL'}")


class CompressedTest:
    """The BIST's compressed test range."""

    def __init__(self, steps: Optional[StepGeneratorMacro] = None,
                 ramp: Optional[RampGeneratorMacro] = None,
                 sensor: Optional[DCLevelSensor] = None,
                 mode: str = "window", tolerance_codes: int = 2,
                 misr_width: int = 16) -> None:
        if mode not in ("window", "codes"):
            raise ValueError(f"unknown mode {mode!r}")
        if tolerance_codes < 0:
            raise ValueError("tolerance must be non-negative")
        self.steps = steps or StepGeneratorMacro()
        self.ramp = ramp or RampGeneratorMacro()
        self.sensor = sensor or DCLevelSensor()
        self.mode = mode
        self.tolerance_codes = tolerance_codes
        self.misr_width = misr_width

    # ------------------------------------------------------------------
    def expected_codes(self, adc: DualSlopeADC) -> List[int]:
        """Design-intent codes for the step levels (ideal transfer)."""
        lsb = adc.cal.lsb_v
        return [min(adc.cal.n_codes, round(level / lsb))
                for level in self.steps.levels]

    def measure_codes(self, adc: DualSlopeADC) -> List[int]:
        """Apply each step consecutively and convert."""
        return [adc.code_of(self.steps.output(i))
                for i in range(len(self.steps.levels))]

    def _compact(self, codes: Sequence[int], expected: Sequence[int]) -> int:
        misr = MISR(width=self.misr_width)
        if self.mode == "codes":
            return misr.compact(codes)
        bits = [1 if abs(c - e) <= self.tolerance_codes else 0
                for c, e in zip(codes, expected)]
        return misr.compact(bits)

    def expected_digital_signature(self, adc: DualSlopeADC) -> int:
        expected = self.expected_codes(adc)
        return self._compact(expected if self.mode == "codes"
                             else expected, expected)

    # ------------------------------------------------------------------
    def expected_analog_code(self, adc: DualSlopeADC) -> int:
        """Design-intent 2-bit signature: at the ramp top the integrator
        peak sits between the sensor thresholds (1.9 V < peak < 3.6 V)."""
        peak_design = adc.cal.fall_threshold_v + adc.cal.full_scale_v
        return self.sensor.code(peak_design)

    def measure_analog_code(self, adc: DualSlopeADC) -> "tuple[int, float]":
        wave = self.ramp.waveform(dt=2e-3)
        peak = adc.test_peak_voltage(wave)
        return self.sensor.classify_peak(
            type(wave)([peak], wave.dt, name="peak")), peak

    # ------------------------------------------------------------------
    def run(self, adc: DualSlopeADC) -> CompressedTestReport:
        """The full compressed test against design-intent signatures."""
        expected_codes = self.expected_codes(adc)
        codes = self.measure_codes(adc)
        digital = self._compact(codes, expected_codes)
        expected_digital = self._compact(expected_codes, expected_codes)
        analog_code, peak = self.measure_analog_code(adc)
        return CompressedTestReport(
            digital_signature=digital,
            expected_digital_signature=expected_digital,
            analog_code=analog_code,
            expected_analog_code=self.expected_analog_code(adc),
            codes=codes,
            peak_v=peak,
        )
