"""Dynamic supply-current (Idd) testing.

The paper's related work (Binns & Taylor [10], Arguelles et al. [11])
"adopted the use of dynamic current testing to detect faults in embedded
analogue macros and mixed signal devices."  This module implements that
complementary technique on the same MNA substrate: the supply current is
a branch unknown the simulator already solves for, so the tester records
``I(VDD)`` during the PRBS transient and scores faults by the deviation
of the dynamic current signature.

Dynamic Idd is strongest exactly where output-voltage observation is
weakest — faults (like a grounded bias node) that the feedback loop
hides from the output still change the quiescent and switching currents
dramatically.  The ``bench_a6_idd_vs_voltage`` ablation quantifies that
complementarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.transient_test import TransientTestConfig
from repro.signals.waveform import Waveform
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.transient import transient


@dataclass
class IddMeasurement:
    """Supply-current observation from one transient run."""

    current: Waveform            # I(VDD) over the test sequence
    mean_a: float                # quiescent component
    peak_a: float                # worst-case instantaneous draw
    rms_dynamic_a: float         # RMS of the switching component

    @staticmethod
    def from_waveform(current: Waveform) -> "IddMeasurement":
        mean = current.mean()
        dynamic = current.values - mean
        return IddMeasurement(
            current=current,
            mean_a=mean,
            peak_a=float(np.max(np.abs(current.values))),
            rms_dynamic_a=float(np.sqrt(np.mean(dynamic ** 2))),
        )


class IddTester:
    """Dynamic-Idd test: PRBS stimulus, supply current observed.

    Parameters
    ----------
    config:
        The stimulus configuration (shared with the voltage-domain
        :class:`~repro.core.transient_test.TransientResponseTester`, so
        both techniques see the same excitation).
    supply_name:
        The voltage source whose branch current is the Idd observation
        (``"VDD"`` in all this repository's netlists).
    source_name:
        The stimulus entry point.
    """

    def __init__(self, config: Optional[TransientTestConfig] = None,
                 supply_name: str = "VDD",
                 source_name: str = "VIN") -> None:
        self.config = config or TransientTestConfig()
        self.supply_name = supply_name
        self.source_name = source_name

    def measure(self, circuit: Circuit) -> IddMeasurement:
        """Run the transient and record the supply current.

        The MNA branch current of a source is the current flowing into
        its + terminal; for a supply pushing current *out* of VDD that
        value is negative, so the sign is flipped to report conventional
        draw.
        """
        cfg = self.config
        stimulus = cfg.stimulus()
        prepared = circuit.copy()
        source = prepared.element(self.source_name)
        if not isinstance(source, VoltageSource):
            raise TypeError(f"{self.source_name!r} is not a voltage source")
        source.value = stimulus
        result = transient(prepared, t_stop=stimulus.duration,
                           dt=cfg.sim_dt_s,
                           record=[],
                           record_branches=[self.supply_name])
        current = -1.0 * result.branch_current(self.supply_name)
        return IddMeasurement.from_waveform(current)

    # ------------------------------------------------------------------
    def technique(self) -> Callable[[Circuit], Waveform]:
        """Campaign measurement callable: the Idd waveform."""
        def run(circuit: Circuit) -> Waveform:
            return self.measure(circuit).current
        return run


def idd_detection(reference: IddMeasurement, faulty: IddMeasurement,
                  rel_threshold: float = 0.2) -> float:
    """Fraction of time instances where the faulty supply current leaves
    the reference band (relative to the reference's peak draw)."""
    if rel_threshold <= 0:
        raise ValueError("rel_threshold must be positive")
    ref = reference.current
    fau = faulty.current
    n = min(len(ref), len(fau))
    band = rel_threshold * max(abs(reference.peak_a), 1e-12)
    deviation = np.abs(fau.values[:n] - ref.values[:n])
    return float(np.mean(deviation > band))


def quiescent_ratio(reference: IddMeasurement,
                    faulty: IddMeasurement) -> float:
    """Faulty/reference quiescent current — the classic static-Iddq
    screen (a grossly elevated ratio flags a defect immediately)."""
    if abs(reference.mean_a) < 1e-15:
        return float("inf")
    return faulty.mean_a / reference.mean_a
