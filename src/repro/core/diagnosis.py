"""Functional macro-level fault diagnosis.

One of the paper's headline benefits is "providing faulty chip diagnosis
at a functional macro level".  The mapping is the paper's own:

* comparator faults  → offset error and gain error,
* integrator faults  → linearity errors, gain error, offset error,
* counter faults     → INL/DNL error or regular missed codes,
* output latch faults→ multiple incorrect output codes,
* control faults     → the conversion process stops.

:func:`diagnose` inverts that table: given an observed characterisation
(and the quick-test observations), it ranks the sub-macros most likely to
be at fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adc.errors import ADCCharacterization


@dataclass
class Symptoms:
    """Observed misbehaviour extracted from test results."""

    offset_error: bool = False
    gain_error: bool = False
    linearity_error: bool = False
    missed_codes: bool = False
    missed_codes_regular: bool = False
    multiple_incorrect_codes: bool = False
    conversion_stops: bool = False
    #: output codes decrease along a rising ramp (counter wrap / latch
    #: corruption) — observed by the monotonicity BIST, not by a static
    #: characterisation
    non_monotonic: bool = False

    @staticmethod
    def from_characterization(ch: ADCCharacterization,
                              completed: bool = True,
                              spec_offset_lsb: float = 0.3,
                              spec_gain_lsb: float = 0.5,
                              spec_inl_lsb: float = 1.0,
                              spec_dnl_lsb: float = 1.0) -> "Symptoms":
        """Derive symptoms from a full characterisation vs spec."""
        missed = sorted(ch.missing_codes)
        regular = False
        if len(missed) >= 3:
            # The counter's stuck-bit signature: bit b stuck removes
            # exactly the codes with one value of bit b.  Check that the
            # missing set equals that pattern over its own span — a
            # clipped range (gain defect) or scattered misses never do,
            # so they must not implicate the counter.
            lo, hi = missed[0], missed[-1]
            for bit in range(8):
                shared = (lo >> bit) & 1
                pattern = [k for k in range(lo, hi + 1)
                           if ((k >> bit) & 1) == shared]
                # the bit must actually partition the span (a bit that is
                # constant across the whole range matches any contiguous
                # block trivially and proves nothing)
                if pattern == missed and len(pattern) < hi - lo + 1:
                    regular = True
                    break
        return Symptoms(
            offset_error=abs(ch.offset_error_lsb) >= spec_offset_lsb,
            gain_error=abs(ch.gain_error_lsb) > spec_gain_lsb,
            linearity_error=(ch.max_inl_lsb > spec_inl_lsb
                             or ch.max_dnl_lsb > spec_dnl_lsb),
            missed_codes=bool(missed),
            missed_codes_regular=regular,
            multiple_incorrect_codes=False,
            conversion_stops=not completed,
        )


#: Sub-macro → the symptoms its faults produce (weight per symptom).
_SIGNATURE_TABLE: Dict[str, Dict[str, float]] = {
    "comparator": {"offset_error": 1.0, "gain_error": 1.0},
    "integrator": {"linearity_error": 1.0, "gain_error": 0.8,
                   "offset_error": 0.8},
    "counter": {"linearity_error": 0.6, "missed_codes": 1.0,
                "missed_codes_regular": 1.5, "non_monotonic": 1.2},
    "output_latch": {"multiple_incorrect_codes": 1.5, "missed_codes": 0.5,
                     "non_monotonic": 0.8},
    "control": {"conversion_stops": 2.0},
}


@dataclass
class DiagnosisResult:
    """Ranked sub-macro suspicion."""

    scores: List[Tuple[str, float]]
    symptoms: Symptoms

    @property
    def prime_suspect(self) -> Optional[str]:
        if not self.scores or self.scores[0][1] <= 0.0:
            return None
        return self.scores[0][0]

    def suspects(self, min_score: float = 0.5) -> List[str]:
        return [name for name, score in self.scores if score >= min_score]

    def summary(self) -> str:
        if self.prime_suspect is None:
            return "diagnosis: no sub-macro implicated (device healthy?)"
        ranked = ", ".join(f"{n} ({s:.1f})" for n, s in self.scores if s > 0)
        return f"diagnosis: {ranked}"


def diagnose(symptoms: Symptoms) -> DiagnosisResult:
    """Rank sub-macros by how well their signature matches the symptoms."""
    observed = {name for name, value in vars(symptoms).items() if value}
    scores = []
    for macro, signature in _SIGNATURE_TABLE.items():
        score = sum(weight for symptom, weight in signature.items()
                    if symptom in observed)
        # Penalise signatures whose cardinal symptom is absent entirely.
        scores.append((macro, score))
    scores.sort(key=lambda pair: -pair[1])
    return DiagnosisResult(scores=scores, symptoms=symptoms)
