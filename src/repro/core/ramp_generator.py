"""The on-chip ramp signal generator macro.

"The ramp signal generator varied from 0 to 2.5 volts over a 1 Sec
period, allowing time for 6 measurements at 200 mSec intervals.  If there
was a gain error in the ADC, which was compensated by a gain error in the
ramp input, there will be no indication of an error at the output."

The model carries an explicit ``gain_error`` so that masking caveat can
be demonstrated quantitatively (experiment E2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.signals.sources import ramp_waveform
from repro.signals.waveform import Waveform


class RampGeneratorMacro:
    """Behavioural model of the ramp-generator test macro."""

    def __init__(self, v_start: float = 0.0, v_stop: float = 2.5,
                 period_s: float = 1.0, gain_error: float = 0.0,
                 offset_v: float = 0.0, nonlinearity: float = 0.0,
                 transistor_count: int = 56) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.v_start = v_start
        self.v_stop = v_stop
        self.period_s = period_s
        #: fractional slope error (a +2 % ramp gain error is 0.02)
        self.gain_error = gain_error
        self.offset_v = offset_v
        #: quadratic bow as a fraction of full scale at mid-ramp
        self.nonlinearity = nonlinearity
        self.transistor_count = transistor_count

    def copy(self) -> "RampGeneratorMacro":
        return RampGeneratorMacro(self.v_start, self.v_stop, self.period_s,
                                  self.gain_error, self.offset_v,
                                  self.nonlinearity, self.transistor_count)

    # ------------------------------------------------------------------
    def value_at(self, t: float) -> float:
        """Ramp output voltage at time ``t`` (held at the top after the
        period ends)."""
        frac = min(max(t / self.period_s, 0.0), 1.0)
        span = self.v_stop - self.v_start
        v = self.v_start + span * frac * (1.0 + self.gain_error)
        v += self.nonlinearity * span * 4.0 * frac * (1.0 - frac)
        return v + self.offset_v

    def waveform(self, dt: float = 1e-3) -> Waveform:
        t = np.arange(0.0, self.period_s + dt / 2, dt)
        return Waveform([self.value_at(float(x)) for x in t], dt, name="ramp")

    def measurement_points(self, n: int = 6) -> List[Tuple[float, float]]:
        """The BIST's sampling schedule: ``n`` (time, voltage) points at
        equal intervals — the paper's 6 measurements at 200 ms."""
        if n < 2:
            raise ValueError("need at least 2 measurement points")
        interval = self.period_s / (n - 1)
        return [(k * interval, self.value_at(k * interval)) for k in range(n)]

    def describe(self) -> str:
        return (f"ramp generator: {self.v_start:g}→{self.v_stop:g} V over "
                f"{self.period_s:g} s, gain error {100 * self.gain_error:+.2f}%, "
                f"{self.transistor_count} transistors")
