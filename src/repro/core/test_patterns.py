"""Diagnostic test patterns and the fault dictionary.

The paper's closing future work: "the development of more comprehensive
test patterns for fault diagnosis designed to a specific ADC
architecture".  This module implements that for the dual-slope macro:

* :class:`DiagnosticPattern` — a fixed stimulus set (conversion points,
  fall-time steps, a timing probe and a short monotonicity ramp) whose
  measured responses form a numeric *signature vector*;
* :class:`FaultDictionary` — signatures pre-computed for a library of
  known sub-macro faults; matching an observed signature against the
  dictionary names the closest known fault, a finer answer than the
  symptom-table diagnosis in :mod:`repro.core.diagnosis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adc.control import ControlState
from repro.adc.dual_slope import DualSlopeADC
from repro.errors import CounterTimeout


@dataclass(frozen=True)
class DiagnosticPattern:
    """The stimulus set applied to build a signature.

    The defaults exercise every sub-macro: conversion points spread over
    the range (comparator/integrator/counter), fall-time steps (the
    integrator test mode), a conversion-time probe (control FSM) and a
    short ramp (latch/counter ordering).
    """

    conversion_points_v: Tuple[float, ...] = (0.2, 0.7, 1.25, 1.8, 2.3)
    fall_steps_v: Tuple[float, ...] = (0.5, 1.5)
    ramp_points: int = 24
    timeout_code: float = 999.0      # sentinel for "never completed"

    def signature_length(self) -> int:
        return (len(self.conversion_points_v) + len(self.fall_steps_v)
                + 2 + self.ramp_points)

    def measure(self, adc: DualSlopeADC) -> np.ndarray:
        """Apply the pattern; return the signature vector.

        Components (in order): output codes at the conversion points,
        fall times in ms, conversion time in ms, completed flag, and the
        ramp's code sequence.

        A device whose counter macro never settles surfaces as
        :class:`~repro.errors.CounterTimeout` — a *functional* verdict,
        not an infrastructure failure — and is folded into the
        signature as the ``timeout_code`` sentinel so the dictionary
        can still match it against known control/counter faults.
        """
        signature: List[float] = []
        completed = True
        for v in self.conversion_points_v:
            try:
                trace = adc.convert(v)
                ok = trace.completed
                code = float(trace.code)
            except CounterTimeout:
                ok, code = False, self.timeout_code
            completed = completed and ok
            signature.append(code if ok else self.timeout_code)
        for v in self.fall_steps_v:
            try:
                t = adc.test_fall_time(v)
            except CounterTimeout:
                t = float("inf")
            signature.append(1e3 * t if t != float("inf") else 99.0)
        try:
            trace = adc.convert(1.25)
            signature.append(1e3 * trace.conversion_time_s)
            signature.append(1.0 if trace.completed else 0.0)
        except CounterTimeout:
            signature.append(self.timeout_code)
            signature.append(0.0)
        lsb = adc.cal.lsb_v
        top = adc.cal.full_scale_v
        for k in range(self.ramp_points):
            v = top * k / (self.ramp_points - 1)
            try:
                signature.append(float(adc.code_of(v)))
            except CounterTimeout:
                signature.append(self.timeout_code)
        return np.asarray(signature)


#: The library of known faults a dictionary is built from — one planting
#: function per named defect, spanning every sub-macro.
def _set(path: str, value):
    def plant(adc: DualSlopeADC) -> None:
        obj = adc
        *parents, attr = path.split(".")
        for p in parents:
            obj = getattr(obj, p)
        setattr(obj, attr, value)
    return plant


def _stuck_counter_bit(bit: int, value: int):
    def plant(adc: DualSlopeADC) -> None:
        adc.counter.stuck_bits[bit] = value
    return plant


def _stuck_latch_bit(bit: int, value: int):
    def plant(adc: DualSlopeADC) -> None:
        adc.latch.stuck_bits[bit] = value
    return plant


STANDARD_FAULT_LIBRARY: Dict[str, Callable[[DualSlopeADC], None]] = {
    "integrator.gain_low": _set("integrator.gain", 0.8),
    "integrator.gain_high": _set("integrator.gain", 1.2),
    "integrator.leaky": _set("integrator.leak_per_cycle", 0.02),
    "integrator.dead": _set("integrator.enabled", False),
    "comparator.offset_pos": _set("comparator.offset_v", 60e-3),
    "comparator.offset_neg": _set("comparator.offset_v", -60e-3),
    "comparator.stuck_high": _set("comparator.stuck_output", 1),
    "control.stuck_integrate": _set("control.stuck_state",
                                    ControlState.INTEGRATE),
    "counter.bit2_stuck0": _stuck_counter_bit(2, 0),
    "counter.bit4_stuck0": _stuck_counter_bit(4, 0),
    "latch.bit6_stuck1": _stuck_latch_bit(6, 1),
    "latch.transparent": _set("latch.transparent_fault", True),
}


@dataclass
class DictionaryMatch:
    """Result of matching an observed signature against the dictionary."""

    ranked: List[Tuple[str, float]]    # (fault name, distance), ascending
    healthy_distance: float

    @property
    def best(self) -> str:
        return self.ranked[0][0]

    @property
    def is_healthy(self) -> bool:
        """Closer to the fault-free signature than to any known fault."""
        return self.healthy_distance <= self.ranked[0][1]

    def summary(self) -> str:
        if self.is_healthy:
            return (f"dictionary match: healthy "
                    f"(distance {self.healthy_distance:.2f})")
        top = ", ".join(f"{n} ({d:.2f})" for n, d in self.ranked[:3])
        return f"dictionary match: {top}"


class FaultDictionary:
    """Signature dictionary for one ADC design.

    Built once from a healthy reference device and a fault library; then
    any manufactured device's measured signature can be matched to the
    nearest known defect.
    """

    def __init__(self, pattern: Optional[DiagnosticPattern] = None,
                 library: Optional[Dict[str, Callable]] = None) -> None:
        self.pattern = pattern or DiagnosticPattern()
        self.library = dict(library or STANDARD_FAULT_LIBRARY)
        self.entries: Dict[str, np.ndarray] = {}
        self.healthy_signature: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def build(self, reference: DualSlopeADC) -> "FaultDictionary":
        """Simulate every library fault on copies of ``reference``."""
        self.healthy_signature = self.pattern.measure(reference.copy())
        for name, plant in self.library.items():
            faulty = reference.copy()
            plant(faulty)
            self.entries[name] = self.pattern.measure(faulty)
        # per-component scale: normalise by the spread across entries so
        # codes (0..100) and times (ms) weigh comparably
        all_rows = np.vstack([self.healthy_signature,
                              *self.entries.values()])
        spread = np.std(all_rows, axis=0)
        self._scale = np.where(spread > 1e-9, spread, 1.0)
        return self

    def _distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.linalg.norm((a - b) / self._scale)
                     / np.sqrt(len(a)))

    def match(self, device: DualSlopeADC) -> DictionaryMatch:
        """Measure a device and rank the library faults by distance."""
        if self.healthy_signature is None:
            raise RuntimeError("dictionary not built; call build() first")
        signature = self.pattern.measure(device)
        ranked = sorted(
            ((name, self._distance(signature, entry))
             for name, entry in self.entries.items()),
            key=lambda pair: pair[1])
        healthy = self._distance(signature, self.healthy_signature)
        return DictionaryMatch(ranked=ranked, healthy_distance=healthy)

    def distinguishability(self) -> float:
        """Smallest pairwise distance between dictionary entries — how
        well this pattern separates the library's faults (0 means two
        faults are indistinguishable under the pattern)."""
        names = list(self.entries)
        best = float("inf")
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                best = min(best, self._distance(self.entries[a],
                                                self.entries[b]))
        return best
