"""The detection-instances metric (Figure 4).

"The percentage of detection instances of the faulty results are
compared in Figure 4. ... all plots show a significant number of time
instances when detection is likely during the testing sequence."

A *detection instance* is a time (or lag) point where the faulty
response leaves the fault-free tolerance band.  The band combines a
relative threshold (a fraction of the fault-free peak) with an absolute
noise floor, mirroring how a comparator-based on-chip monitor would be
margined against the composite noise signal yn(t).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.signals.waveform import Waveform


def _band(reference: Waveform, rel_threshold: float,
          noise_sigma: float, noise_k: float) -> float:
    scale = float(np.max(np.abs(reference.values))) if len(reference) else 0.0
    return max(rel_threshold * scale, noise_k * noise_sigma)


def detection_profile(reference: Waveform, faulty: Waveform,
                      rel_threshold: float = 0.05,
                      noise_sigma: float = 0.0,
                      noise_k: float = 3.0) -> Waveform:
    """Per-sample detection flags (1.0 where the deviation exceeds the
    tolerance band), on the reference's time axis."""
    if rel_threshold < 0 or noise_sigma < 0 or noise_k < 0:
        raise ValueError("thresholds must be non-negative")
    if abs(reference.dt - faulty.dt) > 1e-15 * max(reference.dt, faulty.dt):
        faulty = faulty.resample(reference.dt)
    n = min(len(reference), len(faulty))
    if n == 0:
        raise ValueError("empty waveforms")
    band = _band(reference, rel_threshold, noise_sigma, noise_k)
    deviation = np.abs(faulty.values[:n] - reference.values[:n])
    return Waveform((deviation > band).astype(float), reference.dt,
                    reference.t0, name="detection")


def detection_instances(reference: Waveform, faulty: Waveform,
                        rel_threshold: float = 0.05,
                        noise_sigma: float = 0.0,
                        noise_k: float = 3.0) -> float:
    """Fraction of time instances where the fault is detectable.

    This is Figure 4's y axis divided by 100.  ``reference`` and
    ``faulty`` are typically normalised cross-correlations (circuit 1)
    or impulse responses (circuits 2 and 3).
    """
    profile = detection_profile(reference, faulty, rel_threshold,
                                noise_sigma, noise_k)
    return float(np.mean(profile.values))


def first_detection_time(reference: Waveform, faulty: Waveform,
                         rel_threshold: float = 0.05,
                         noise_sigma: float = 0.0,
                         noise_k: float = 3.0) -> Optional[float]:
    """Earliest time instance at which the fault is detectable — how long
    the test sequence must run before this fault shows."""
    profile = detection_profile(reference, faulty, rel_threshold,
                                noise_sigma, noise_k)
    hits = np.nonzero(profile.values > 0)[0]
    if len(hits) == 0:
        return None
    return float(profile.times[hits[0]])


def detection_runs(reference: Waveform, faulty: Waveform,
                   rel_threshold: float = 0.05,
                   noise_sigma: float = 0.0) -> Tuple[int, int]:
    """Return ``(number_of_detection_runs, longest_run)`` in samples —
    the burstiness of detection instances along the sequence."""
    profile = detection_profile(reference, faulty, rel_threshold,
                                noise_sigma).values
    runs = 0
    longest = 0
    current = 0
    for flag in profile:
        if flag > 0:
            current += 1
            if current == 1:
                runs += 1
            longest = max(longest, current)
        else:
            current = 0
    return runs, longest
