"""The on-chip BIST controller.

Orchestrates the paper's three test ranges against a dual-slope ADC:

* analogue — step fall-time table and ramp measurements,
* digital — conversion timing and fall-time/LSB checks,
* compressed — MISR + 2-bit analogue signature.

"These tests provide a quick check of the ADC operation" — the controller
returns a structured report whose ``passed`` property is the chip-level
quick-test verdict used in the batch screening experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.adc.calibration import expected_fall_time
from repro.adc.dual_slope import DualSlopeADC
from repro.core.digital_monitor import DigitalTestMonitor, DigitalTestReport
from repro.core.level_sensor import DCLevelSensor
from repro.core.ramp_generator import RampGeneratorMacro
from repro.core.signature import CompressedTest, CompressedTestReport
from repro.core.step_generator import StepGeneratorMacro


@dataclass
class AnalogTestReport:
    """Step fall-time table + ramp measurement results."""

    step_levels_v: List[float]
    fall_times_s: List[float]
    expected_fall_times_s: List[float]
    tolerance_s: float
    ramp_codes: List[int]
    ramp_expected_codes: List[int]
    ramp_tolerance_codes: int

    @property
    def steps_ok(self) -> bool:
        return all(
            t != float("inf") and abs(t - e) <= self.tolerance_s
            for t, e in zip(self.fall_times_s, self.expected_fall_times_s))

    @property
    def ramp_ok(self) -> bool:
        return all(abs(c - e) <= self.ramp_tolerance_codes
                   for c, e in zip(self.ramp_codes, self.ramp_expected_codes))

    @property
    def passed(self) -> bool:
        return self.steps_ok and self.ramp_ok

    def table(self) -> str:
        lines = ["step (V)  fall time (ms)  expected (ms)"]
        for v, t, e in zip(self.step_levels_v, self.fall_times_s,
                           self.expected_fall_times_s):
            shown = "stuck" if t == float("inf") else f"{1e3 * t:13.2f}"
            lines.append(f"{v:8.2f}  {shown}  {1e3 * e:13.2f}")
        return "\n".join(lines)


@dataclass
class BISTReport:
    """Combined quick-test verdict."""

    analog: AnalogTestReport
    digital: DigitalTestReport
    compressed: CompressedTestReport

    @property
    def passed(self) -> bool:
        return (self.analog.passed and self.digital.passed
                and self.compressed.passed)

    def summary(self) -> str:
        return (f"BIST: analogue {'PASS' if self.analog.passed else 'FAIL'}, "
                f"digital {'PASS' if self.digital.passed else 'FAIL'}, "
                f"compressed "
                f"{'PASS' if self.compressed.passed else 'FAIL'} → "
                f"{'PASS' if self.passed else 'FAIL'}")


class BISTController:
    """Drives the three test ranges using the on-chip test macros."""

    def __init__(self, steps: Optional[StepGeneratorMacro] = None,
                 ramp: Optional[RampGeneratorMacro] = None,
                 sensor: Optional[DCLevelSensor] = None,
                 monitor: Optional[DigitalTestMonitor] = None,
                 fall_time_tolerance_s: float = 0.25e-3,
                 ramp_tolerance_codes: int = 3) -> None:
        self.steps = steps or StepGeneratorMacro()
        self.ramp = ramp or RampGeneratorMacro()
        self.sensor = sensor or DCLevelSensor()
        self.monitor = monitor or DigitalTestMonitor()
        self.compressed = CompressedTest(steps=self.steps, ramp=self.ramp,
                                         sensor=self.sensor)
        self.fall_time_tolerance_s = fall_time_tolerance_s
        self.ramp_tolerance_codes = ramp_tolerance_codes

    # ------------------------------------------------------------------
    def run_analog(self, adc: DualSlopeADC) -> AnalogTestReport:
        """Step fall-time table plus the 6-point ramp measurement."""
        fall_times = []
        expected = []
        for i, level in enumerate(self.steps.levels):
            t_fall = adc.test_fall_time(self.steps.output(i))
            fall_times.append(self.monitor.quantize(t_fall)
                              if t_fall != float("inf") else float("inf"))
            expected.append(expected_fall_time(level, adc.cal))
        ramp_codes = []
        ramp_expected = []
        lsb = adc.cal.lsb_v
        for _t, v in self.ramp.measurement_points(n=6):
            ramp_codes.append(adc.code_of(v))
            # the BIST compares against the *intended* ramp voltage
            intended = self.ramp.v_start + (self.ramp.v_stop
                                            - self.ramp.v_start) \
                * (_t / self.ramp.period_s)
            ramp_expected.append(min(adc.cal.n_codes, round(intended / lsb)))
        return AnalogTestReport(
            step_levels_v=list(self.steps.levels),
            fall_times_s=fall_times,
            expected_fall_times_s=expected,
            tolerance_s=self.fall_time_tolerance_s,
            ramp_codes=ramp_codes,
            ramp_expected_codes=ramp_expected,
            ramp_tolerance_codes=self.ramp_tolerance_codes,
        )

    def run_digital(self, adc: DualSlopeADC) -> DigitalTestReport:
        return self.monitor.run(adc)

    def run_compressed(self, adc: DualSlopeADC) -> CompressedTestReport:
        return self.compressed.run(adc)

    def run_all(self, adc: DualSlopeADC) -> BISTReport:
        """All three test ranges — the complete quick check."""
        return BISTReport(
            analog=self.run_analog(adc),
            digital=self.run_digital(adc),
            compressed=self.run_compressed(adc),
        )

    def quick_pass(self, adc: DualSlopeADC) -> bool:
        """Chip-level pass/fail (the batch-screening predicate)."""
        return self.run_all(adc).passed
