"""Monotonicity BIST — the AT&T patent scheme.

Reference [7] "describes the technique of using built-in self test
circuits to generate a ramp voltage to test the monotonicity of an ADC,
whilst a state machine monitors the output.  This approach has been
adopted for initial ADC macro testing."

The state machine watches successive output codes along the on-chip ramp
and flags any decrease; it also records missed codes (a counter-fault
signature) and the largest jump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.adc.dual_slope import DualSlopeADC
from repro.core.ramp_generator import RampGeneratorMacro


@dataclass
class MonotonicityReport:
    """What the monitoring state machine saw."""

    codes: List[int]
    violations: List[int]        # sample indices where code decreased
    missed_codes: List[int]      # codes never observed inside the range
    max_jump: int

    @property
    def monotonic(self) -> bool:
        return not self.violations

    @property
    def passed(self) -> bool:
        return self.monotonic

    def summary(self) -> str:
        return (f"monotonicity: {len(self.codes)} samples, "
                f"{len(self.violations)} violations, "
                f"{len(self.missed_codes)} missed codes, "
                f"max jump {self.max_jump} — "
                f"{'PASS' if self.passed else 'FAIL'}")


class _MonitorFSM:
    """The on-chip state machine: IDLE → TRACK → (FAIL | DONE)."""

    def __init__(self) -> None:
        self.state = "idle"
        self.last_code: Optional[int] = None
        self.violations: List[int] = []
        self.max_jump = 0
        self.n_seen = 0

    def observe(self, code: int) -> None:
        if self.state == "idle":
            self.state = "track"
        if self.last_code is not None:
            jump = code - self.last_code
            self.max_jump = max(self.max_jump, jump)
            if jump < 0:
                self.violations.append(self.n_seen)
                self.state = "fail"
        self.last_code = code
        self.n_seen += 1

    def finish(self) -> None:
        if self.state != "fail":
            self.state = "done"


class MonotonicityBIST:
    """Ramp generator + monitoring state machine."""

    def __init__(self, ramp: Optional[RampGeneratorMacro] = None,
                 samples: int = 256) -> None:
        if samples < 8:
            raise ValueError("need at least 8 ramp samples")
        self.ramp = ramp or RampGeneratorMacro()
        self.samples = samples

    def run(self, adc: DualSlopeADC) -> MonotonicityReport:
        fsm = _MonitorFSM()
        codes: List[int] = []
        for k in range(self.samples):
            t = self.ramp.period_s * k / (self.samples - 1)
            code = adc.code_of(self.ramp.value_at(t))
            fsm.observe(code)
            codes.append(code)
        fsm.finish()
        observed = set(codes)
        lo, hi = min(codes), max(codes)
        missed = [c for c in range(lo, hi + 1) if c not in observed]
        return MonotonicityReport(
            codes=codes,
            violations=fsm.violations,
            missed_codes=missed,
            max_jump=fsm.max_jump,
        )
