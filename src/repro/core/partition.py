"""Macro partitioning and the BIST area-overhead audit.

"The ADC macro was partitioned at the functional level.  The test signals
were then applied at the partitions and the signals at each block
measured on-chip where possible."

"The analogue section of the testing macro had an overhead of 152
transistors.  The digital section of the testing macro needed 484
transistors."

:data:`ADC_PARTITION` records the functional partitions of the dual-slope
ADC (Figure 1) with their observable test points and fault signatures —
the knowledge the diagnosis step uses.  :func:`bist_overhead` audits the
transistor budget of the added test macros against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MacroPartition:
    """One functional partition of the macro under test."""

    name: str
    kind: str                   # "analogue" | "digital" | "mixed"
    stimulus_point: str         # where the BIST applies its signal
    observe_point: str          # where the response is measured
    fault_signature: str        # how faults here show up (paper's table)
    transistor_estimate: int


#: The dual-slope ADC's functional partitions (Figure 1) with the
#: fault-signature mapping given in the paper's "Full testing" section.
ADC_PARTITION: Tuple[MacroPartition, ...] = (
    MacroPartition(
        name="integrator", kind="analogue",
        stimulus_point="adc input (step/ramp macros)",
        observe_point="integrator output (level sensor)",
        fault_signature="linearity errors, gain error and offset error",
        transistor_estimate=28,
    ),
    MacroPartition(
        name="comparator", kind="analogue",
        stimulus_point="integrator output",
        observe_point="comparator output (digital)",
        fault_signature="offset error and gain error",
        transistor_estimate=13,
    ),
    MacroPartition(
        name="counter", kind="digital",
        stimulus_point="clock + comparator gate",
        observe_point="counter value via test bus",
        fault_signature="INL or DNL error or regular missed codes",
        transistor_estimate=180,
    ),
    MacroPartition(
        name="output_latch", kind="digital",
        stimulus_point="counter value",
        observe_point="output code via test bus",
        fault_signature="multiple incorrect output codes",
        transistor_estimate=96,
    ),
    MacroPartition(
        name="control", kind="digital",
        stimulus_point="start-conversion command",
        observe_point="state / done flag",
        fault_signature="conversion process stops",
        transistor_estimate=120,
    ),
)

#: Transistor budgets of the added test macros (summing to the paper's
#: 152 analogue + 484 digital overhead).
ANALOG_TEST_MACROS: Dict[str, int] = {
    "step_generator": 64,
    "ramp_generator": 56,
    "dc_level_sensor": 32,
}

DIGITAL_TEST_MACROS: Dict[str, int] = {
    "test_counter": 140,
    "misr_signature": 152,
    "monitor_fsm": 108,
    "test_bus_interface": 84,
}

#: Paper-reported overheads.
PAPER_ANALOG_OVERHEAD = 152
PAPER_DIGITAL_OVERHEAD = 484


@dataclass
class OverheadAudit:
    """Result of the transistor-budget audit."""

    analog_total: int
    digital_total: int
    adc_total: int
    analog_budget: int = PAPER_ANALOG_OVERHEAD
    digital_budget: int = PAPER_DIGITAL_OVERHEAD

    @property
    def analog_ok(self) -> bool:
        return self.analog_total == self.analog_budget

    @property
    def digital_ok(self) -> bool:
        return self.digital_total == self.digital_budget

    @property
    def overhead_fraction(self) -> float:
        """Test transistors relative to roughly 1000 ADC transistors."""
        if self.adc_total <= 0:
            return float("inf")
        return (self.analog_total + self.digital_total) / self.adc_total

    def summary(self) -> str:
        return (f"overhead: analogue {self.analog_total} "
                f"(budget {self.analog_budget}), digital "
                f"{self.digital_total} (budget {self.digital_budget}), "
                f"{100 * self.overhead_fraction:.0f}% of the "
                f"{self.adc_total}-transistor ADC")


def adc_transistor_count() -> int:
    """The ADC macro's own transistor estimate (the paper's ~1000)."""
    partition_sum = sum(p.transistor_estimate for p in ADC_PARTITION)
    # The partitions above are the functional skeleton; routing, switches
    # and references make up the rest of the paper's "approximately 1000
    # transistors" for the 250-gate macro.
    support = 1000 - partition_sum
    return partition_sum + support


def bist_overhead() -> OverheadAudit:
    """Audit the test-macro transistor budget against the paper."""
    return OverheadAudit(
        analog_total=sum(ANALOG_TEST_MACROS.values()),
        digital_total=sum(DIGITAL_TEST_MACROS.values()),
        adc_total=adc_transistor_count(),
    )


def partition_by_name(name: str) -> MacroPartition:
    for partition in ADC_PARTITION:
        if partition.name == name:
            return partition
    raise KeyError(f"no partition named {name!r}")
