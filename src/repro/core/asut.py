"""The ASUT — the complete analogue section under test, on the bus.

The related-work architectures the paper builds on (Fasang, Ohletz,
Pritchard) treat "the Analogue Section Under Test (ASUT) as the ADC
macro, the DAC macro and the other analogue macros", with test data
scanned in "via scan shift registers and the response monitored and
captured on the serial test bus".

:class:`ASUT` assembles that whole section: the dual-slope ADC, the R-2R
DAC, the on-chip test macros and the BIST controller — all reachable
through memory-mapped registers on a :class:`~repro.dft.testbus.SerialTestBus`.
An external tester (or this module's :class:`ExternalTester` helper)
only ever talks frames on the bus, exactly the single-access-mechanism
constraint the on-chip test philosophy imposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.adc.dac import LoopbackTest, R2RDAC
from repro.adc.dual_slope import DualSlopeADC
from repro.core.bist import BISTController
from repro.dft.testbus import SerialTestBus

#: Register map of the ASUT's test interface.
REG_ID = 0x00             # read-only identification word
REG_CONTROL = 0x01        # write 1: start conversion; 2: run BIST;
                          # 3: run loopback; 4: fall-time test
REG_STATUS = 0x02         # bit0 busy, bit1 done, bit2 pass
REG_ADC_INPUT_MV = 0x03   # conversion input, millivolts
REG_ADC_CODE = 0x04       # last conversion result
REG_DAC_CODE = 0x05       # DAC input code (loopback uses its own sweep)
REG_FALL_STEP_MV = 0x06   # fall-time test step, millivolts
REG_FALL_TIME_US = 0x07   # measured fall time, microseconds
REG_BIST_RESULT = 0x08    # detailed BIST flags (analog|digital<<1|comp<<2)

ASUT_ID_WORD = 0x1996     # the year, naturally

CMD_CONVERT = 1
CMD_RUN_BIST = 2
CMD_RUN_LOOPBACK = 3
CMD_FALL_TIME = 4


class ASUT:
    """ADC + DAC + BIST behind a serial test bus."""

    def __init__(self, adc: Optional[DualSlopeADC] = None,
                 dac: Optional[R2RDAC] = None,
                 controller: Optional[BISTController] = None) -> None:
        self.adc = adc or DualSlopeADC()
        self.dac = dac or R2RDAC()
        self.controller = controller or BISTController()
        self.bus = SerialTestBus()
        self._status = 0
        self._build_register_map()

    # ------------------------------------------------------------------
    def _build_register_map(self) -> None:
        bus = self.bus
        bus.attach_register(REG_ID, initial=ASUT_ID_WORD)
        bus.attach_register(REG_CONTROL, on_write=self._on_command)
        bus.attach_register(REG_STATUS, on_read=lambda: self._status)
        bus.attach_register(REG_ADC_INPUT_MV, initial=0)
        bus.attach_register(REG_ADC_CODE, initial=0)
        bus.attach_register(REG_DAC_CODE, initial=0,
                            on_write=self._on_dac_code)
        bus.attach_register(REG_FALL_STEP_MV, initial=0)
        bus.attach_register(REG_FALL_TIME_US, initial=0)
        bus.attach_register(REG_BIST_RESULT, initial=0)

    def _set_status(self, done: bool, passed: bool) -> None:
        self._status = (0 if done else 1) | (int(done) << 1) \
            | (int(passed) << 2)
        self.bus.registers[REG_STATUS] = self._status

    def _on_dac_code(self, code: int) -> None:
        # clamp into the DAC's range; the analogue output is observable
        # only through the ADC (loopback), as on the real chip
        self.bus.registers[REG_DAC_CODE] = min(code, self.dac.n_codes - 1)

    def _on_command(self, command: int) -> None:
        if command == CMD_CONVERT:
            v_in = self.bus.registers[REG_ADC_INPUT_MV] * 1e-3
            trace = self.adc.convert(v_in)
            self.bus.registers[REG_ADC_CODE] = trace.code
            self._set_status(done=True, passed=trace.completed)
        elif command == CMD_RUN_BIST:
            report = self.controller.run_all(self.adc)
            flags = (int(report.analog.passed)
                     | (int(report.digital.passed) << 1)
                     | (int(report.compressed.passed) << 2))
            self.bus.registers[REG_BIST_RESULT] = flags
            self._set_status(done=True, passed=report.passed)
        elif command == CMD_RUN_LOOPBACK:
            report = LoopbackTest(tolerance=3).run(self.dac, self.adc)
            self.bus.registers[REG_ADC_CODE] = report.adc_codes[-1]
            self._set_status(done=True, passed=report.passed)
        elif command == CMD_FALL_TIME:
            step_v = self.bus.registers[REG_FALL_STEP_MV] * 1e-3
            t = self.adc.test_fall_time(step_v)
            micros = 0xFFFF if t == float("inf") else int(round(t * 1e6))
            self.bus.registers[REG_FALL_TIME_US] = min(micros, 0xFFFF)
            self._set_status(done=True, passed=micros < 0xFFFF)
        else:
            self._set_status(done=True, passed=False)


@dataclass
class TesterLog:
    """What the external tester concluded."""

    identified: bool
    bist_passed: bool
    loopback_passed: bool
    conversion_code: int
    fall_time_us: int
    bus_frames: int

    def summary(self) -> str:
        return (f"ASUT via test bus: id={'ok' if self.identified else 'BAD'}, "
                f"BIST {'PASS' if self.bist_passed else 'FAIL'}, loopback "
                f"{'PASS' if self.loopback_passed else 'FAIL'}, "
                f"{self.bus_frames} bus frames")


class ExternalTester:
    """A tester that only speaks bus frames — no analogue access at all."""

    def __init__(self, asut: ASUT) -> None:
        self.asut = asut
        self.bus = asut.bus

    def identify(self) -> bool:
        return self.bus.read(REG_ID) == ASUT_ID_WORD

    def convert(self, v_in: float) -> int:
        self.bus.write(REG_ADC_INPUT_MV, int(round(v_in * 1e3)))
        self.bus.write(REG_CONTROL, CMD_CONVERT)
        assert self.bus.read(REG_STATUS) & 0b10, "conversion did not finish"
        return self.bus.read(REG_ADC_CODE)

    def run_bist(self) -> bool:
        self.bus.write(REG_CONTROL, CMD_RUN_BIST)
        return bool(self.bus.read(REG_STATUS) & 0b100)

    def run_loopback(self) -> bool:
        self.bus.write(REG_CONTROL, CMD_RUN_LOOPBACK)
        return bool(self.bus.read(REG_STATUS) & 0b100)

    def fall_time_us(self, step_v: float) -> int:
        self.bus.write(REG_FALL_STEP_MV, int(round(step_v * 1e3)))
        self.bus.write(REG_CONTROL, CMD_FALL_TIME)
        return self.bus.read(REG_FALL_TIME_US)

    def production_flow(self) -> TesterLog:
        """The complete go/no-go flow over the bus."""
        identified = self.identify()
        code = self.convert(1.25)
        bist = self.run_bist()
        loopback = self.run_loopback()
        fall = self.fall_time_us(1.0)
        return TesterLog(
            identified=identified,
            bist_passed=bist,
            loopback_passed=loopback,
            conversion_code=code,
            fall_time_us=fall,
            bus_frames=len(self.bus.log),
        )
