"""Convergence-order verification by Richardson extrapolation.

A correct backward-Euler integrator's global error shrinks linearly with
the timestep; trapezoidal shrinks quadratically.  An integrator that is
*stable but subtly wrong* (an off-by-one in the companion model, a wrong
``geq`` factor) typically still converges — to the wrong solution, or at
the wrong rate.  Halving the timestep repeatedly and watching the error
ratio catches both failure classes:

* with the matrix-exponential oracle as reference, the observed order is
  ``log2(e(h) / e(h/2))`` per halving;
* without any oracle (nonlinear circuits), Richardson extrapolation on
  three consecutive grids gives
  ``log2(|x_h - x_{h/2}| / |x_{h/2} - x_{h/4}|)``.

Both should match the method's nominal order (BE: 1, trap: 2) within a
configurable margin.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.spice.transient import transient
from repro.verify.generate import GeneratedCircuit, generate_circuit

#: nominal convergence order per integration method
NOMINAL_ORDER = {"be": 1.0, "trap": 2.0}


@dataclass
class ConvergenceResult:
    """Observed vs nominal integration order on one circuit."""

    kind: str
    seed: int
    method: str
    nominal_order: float
    dts: List[float]
    #: max-norm error vs the exact oracle at each grid level
    errors: List[float]
    #: per-halving observed orders from oracle errors
    observed_orders: List[float]
    #: oracle-free Richardson estimates (triples of consecutive grids)
    richardson_orders: List[float]
    tolerance: float = 0.1
    elapsed_s: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def order(self) -> float:
        """Representative observed order (median over halvings; prefers
        the oracle-based estimates, falls back to Richardson)."""
        src = self.observed_orders or self.richardson_orders
        if not src:
            return float("nan")
        return float(np.median(src))

    @property
    def ok(self) -> bool:
        """Observed order within ``tolerance`` (relative) of nominal."""
        order = self.order
        if math.isnan(order):
            return False
        return abs(order - self.nominal_order) <= \
            self.tolerance * self.nominal_order

    def summary(self) -> str:
        obs = ", ".join(f"{o:.3f}" for o in self.observed_orders) or "-"
        rich = ", ".join(f"{o:.3f}" for o in self.richardson_orders) or "-"
        status = "ok" if self.ok else "FAIL"
        return (f"convergence {self.kind} seed={self.seed} "
                f"method={self.method}: nominal {self.nominal_order:g}, "
                f"observed {self.order:.3f} [{status}] "
                f"(per-halving: {obs}; richardson: {rich})")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "convergence_result",
            "circuit_kind": self.kind,
            "seed": self.seed,
            "method": self.method,
            "nominal_order": self.nominal_order,
            "order": self.order,
            "ok": self.ok,
            "tolerance": self.tolerance,
            "dts": list(self.dts),
            "errors": list(self.errors),
            "observed_orders": list(self.observed_orders),
            "richardson_orders": list(self.richardson_orders),
            "elapsed_s": self.elapsed_s,
        }


def _march_errors(gen: GeneratedCircuit, method: str, dt0: float,
                  n_coarse: int, n_levels: int, fast_path: bool):
    """Run the transient at dt0, dt0/2, ... and collect node samples on
    the common (coarsest) grid, plus max-norm errors vs the exact
    oracle when available."""
    t_stop = dt0 * n_coarse
    exact: Optional[Dict[str, np.ndarray]] = None
    if gen.oracle is not None:
        coarse_times = dt0 * np.arange(n_coarse + 1)
        exact = gen.oracle.exact(coarse_times)
    common: List[Dict[str, np.ndarray]] = []
    errors: List[float] = []
    for level in range(n_levels):
        stride = 2 ** level
        res = transient(gen.circuit, t_stop, dt0 / stride,
                        record=gen.node_names, method=method,
                        fast_path=fast_path, uic=True)
        sub = {n: res.array(n)[::stride] for n in gen.node_names}
        common.append(sub)
        if exact is not None:
            err = max(float(np.max(np.abs(sub[n] - exact[n])))
                      for n in gen.node_names)
            errors.append(err)
    return common, errors


def check_convergence(seed: int = 0, kind: str = "rc", method: str = "be",
                      n_levels: int = 4, n_coarse: int = 48,
                      dt_scale: float = 1.0, tolerance: float = 0.1,
                      fast_path: bool = True,
                      n_nodes: Optional[int] = None) -> ConvergenceResult:
    """Measure the integrator's observed order on a generated circuit.

    Parameters
    ----------
    seed, kind, n_nodes:
        Circuit selection (see :func:`repro.verify.generate.generate_circuit`).
    method:
        ``"be"`` (nominal order 1) or ``"trap"`` (nominal order 2).
    n_levels:
        Number of grids; each halves the previous timestep.
    n_coarse:
        Steps on the coarsest grid (errors are compared on this grid).
    dt_scale:
        Multiplier on the generator's suggested dt — push the march
        further into (or out of) the asymptotic regime.
    tolerance:
        Relative margin on the nominal order for :attr:`ConvergenceResult.ok`.
    """
    if method not in NOMINAL_ORDER:
        raise ValueError(f"unknown method {method!r}")
    if n_levels < 3:
        raise ValueError("need at least 3 grid levels for Richardson")
    t0 = time.perf_counter()
    gen = generate_circuit(seed, kind=kind, n_nodes=n_nodes)
    dt0 = gen.dt * dt_scale
    common, errors = _march_errors(gen, method, dt0, n_coarse, n_levels,
                                   fast_path)

    observed: List[float] = []
    for e_coarse, e_fine in zip(errors, errors[1:]):
        if e_fine > 0.0:
            observed.append(math.log2(e_coarse / e_fine))

    richardson: List[float] = []
    for a, b, c in zip(common, common[1:], common[2:]):
        num = max(float(np.max(np.abs(a[n] - b[n]))) for n in gen.node_names)
        den = max(float(np.max(np.abs(b[n] - c[n]))) for n in gen.node_names)
        if den > 0.0:
            richardson.append(math.log2(num / den))

    return ConvergenceResult(
        kind=kind, seed=seed, method=method,
        nominal_order=NOMINAL_ORDER[method],
        dts=[dt0 / 2 ** level for level in range(n_levels)],
        errors=errors, observed_orders=observed,
        richardson_orders=richardson, tolerance=tolerance,
        elapsed_s=time.perf_counter() - t0,
        meta={"n_coarse": n_coarse, "fast_path": fast_path})
