"""Analytic oracles for the differential harness.

Two independent references are provided for linear circuits, both built
from explicit state matrices (``dx/dt = A x + B u``) rather than from
the MNA stamping machinery they are meant to check:

* :meth:`LinearOracle.exact` — the matrix-exponential solution via
  :class:`repro.lti.statespace.StateSpace` zero-order-hold
  discretisation.  Exact for the piecewise-constant inputs the
  generator emits; the integrator's *discretisation error* is measured
  against this (the convergence checker's reference).
* :meth:`LinearOracle.discrete` — an independent implementation of the
  same backward-Euler / trapezoidal recurrences the simulator applies,
  as dense linear algebra on the state matrices.  The simulator must
  agree with this to near machine precision at *any* timestep — a
  stamping or factorisation bug shows up here regardless of dt.

Closed-form step responses for the single-pole RC and series RLC cases
cross-check the matrix oracles themselves (oracle-on-oracle testing).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.lti.statespace import StateSpace


class LinearOracle:
    """Exact and independently-discretised solutions of a linear circuit.

    Parameters
    ----------
    a_mat, b_vec:
        State matrices of ``dx/dt = A x + B u`` with scalar input ``u``.
    node_names:
        Names for the leading states (the circuit's node voltages);
        trailing states (inductor currents) are not exported.
    u_level:
        The constant input level (the generator's DC step amplitude).
    """

    def __init__(self, a_mat: np.ndarray, b_vec: np.ndarray,
                 node_names: Sequence[str], u_level: float) -> None:
        self.a = np.asarray(a_mat, dtype=float)
        self.b = np.asarray(b_vec, dtype=float).reshape(-1)
        if self.a.shape[0] != self.a.shape[1]:
            raise ValueError("A must be square")
        if len(self.b) != self.a.shape[0]:
            raise ValueError("B length must match A order")
        self.node_names = list(node_names)
        if len(self.node_names) > self.a.shape[0]:
            raise ValueError("more node names than states")
        self.u_level = float(u_level)

    @property
    def order(self) -> int:
        return self.a.shape[0]

    def statespace(self) -> StateSpace:
        """The oracle as a :class:`~repro.lti.statespace.StateSpace`
        (output = every exported node voltage)."""
        n = self.order
        c = np.zeros((len(self.node_names), n))
        c[:, :len(self.node_names)] = np.eye(len(self.node_names))
        return StateSpace(self.a, self.b.reshape(n, 1), c,
                          np.zeros((len(self.node_names), 1)))

    def _export(self, x_all: np.ndarray) -> Dict[str, np.ndarray]:
        return {name: x_all[:, i].copy()
                for i, name in enumerate(self.node_names)}

    # ------------------------------------------------------------------
    def exact(self, times: np.ndarray,
              x0: Optional[np.ndarray] = None) -> Dict[str, np.ndarray]:
        """Matrix-exponential solution sampled at ``times`` (must be a
        uniform grid).  Exact for the constant input ``u_level``."""
        times = np.asarray(times, dtype=float)
        if len(times) < 2:
            raise ValueError("need at least two sample times")
        dt = float(times[1] - times[0])
        ss = self.statespace()
        ad, bd = ss.discretize(dt)
        x = (np.zeros(self.order) if x0 is None
             else np.asarray(x0, dtype=float).reshape(self.order))
        x_all = np.empty((len(times), self.order))
        x_all[0] = x
        bu = bd[:, 0] * self.u_level
        for k in range(1, len(times)):
            x = ad @ x + bu
            x_all[k] = x
        return self._export(x_all)

    # ------------------------------------------------------------------
    def discrete(self, times: np.ndarray, method: str = "be",
                 x0: Optional[np.ndarray] = None) -> Dict[str, np.ndarray]:
        """Mirror the simulator's fixed-step integration on the state
        matrices.

        ``"be"``: ``(I - dt A) x_k = x_{k-1} + dt B u``.
        ``"trap"``: a backward-Euler start-up step (the simulator's
        SPICE-convention seeding) followed by
        ``(I - dt/2 A) x_k = (I + dt/2 A) x_{k-1} + dt B u``.

        Same equations, independently implemented — agreement with the
        simulator is limited only by floating-point reassociation.
        """
        if method not in ("be", "trap"):
            raise ValueError(f"unknown method {method!r}")
        times = np.asarray(times, dtype=float)
        if len(times) < 2:
            raise ValueError("need at least two sample times")
        dt = float(times[1] - times[0])
        n = self.order
        eye = np.eye(n)
        bu = self.b * self.u_level
        x = (np.zeros(n) if x0 is None
             else np.asarray(x0, dtype=float).reshape(n))
        x_all = np.empty((len(times), n))
        x_all[0] = x

        m_be = eye - dt * self.a
        for k in range(1, len(times)):
            if method == "trap" and k > 1:
                rhs = x + 0.5 * dt * (self.a @ x + 2.0 * bu)
                x = np.linalg.solve(eye - 0.5 * dt * self.a, rhs)
            else:
                x = np.linalg.solve(m_be, x + dt * bu)
            x_all[k] = x
        return self._export(x_all)


# ----------------------------------------------------------------------
# Closed forms (oracle-on-oracle cross-checks)
# ----------------------------------------------------------------------

def rc_step_response(r: float, c: float, v: float,
                     times: np.ndarray) -> np.ndarray:
    """Capacitor voltage of a series RC driven by a step of ``v`` volts
    from a zero initial state: ``v (1 - e^{-t/RC})``."""
    times = np.asarray(times, dtype=float)
    return v * (1.0 - np.exp(-times / (r * c)))


def series_rlc_step_response(r: float, l: float, c: float, v: float,
                             times: np.ndarray) -> np.ndarray:
    """Capacitor voltage of a series RLC driven by a step of ``v`` volts
    from zero initial state, covering the under-, over- and critically
    damped cases."""
    times = np.asarray(times, dtype=float)
    alpha = r / (2.0 * l)
    w0 = 1.0 / math.sqrt(l * c)
    if abs(alpha - w0) <= 1e-12 * w0:  # critically damped
        return v * (1.0 - np.exp(-alpha * times) * (1.0 + alpha * times))
    if alpha < w0:  # underdamped
        wd = math.sqrt(w0 * w0 - alpha * alpha)
        env = np.exp(-alpha * times)
        return v * (1.0 - env * (np.cos(wd * times)
                                 + (alpha / wd) * np.sin(wd * times)))
    # overdamped
    s1 = -alpha + math.sqrt(alpha * alpha - w0 * w0)
    s2 = -alpha - math.sqrt(alpha * alpha - w0 * w0)
    k1 = s2 / (s2 - s1)
    k2 = -s1 / (s2 - s1)
    return v * (1.0 - k1 * np.exp(s1 * times) - k2 * np.exp(s2 * times))


def oracle_for_series_rlc(r: float, l: float, c: float,
                          v: float) -> LinearOracle:
    """State-space oracle for the canonical series RLC (states: capacitor
    voltage ``n2`` and inductor current)."""
    a = np.array([[0.0, 1.0 / c],
                  [-1.0 / l, -r / l]])
    b = np.array([0.0, 1.0 / l])
    return LinearOracle(a, b, ["n2"], u_level=v)
