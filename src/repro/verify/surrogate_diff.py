"""Surrogate-vs-reference differential testing.

The surrogate prescreen is only trustworthy if a prescreened campaign
and a full-transient campaign **never disagree on a verdict**: every
fault the surrogate decided (outside its margin band) must carry the
same ``detected`` flag the MNA transient would have produced, and every
escalated fault must produce a byte-identical outcome to the
unprescreened run.  This module pins that invariant two ways:

* :func:`run_surrogate_differential` — seeded random RC/RLC circuits
  (the :mod:`repro.verify.generate` families re-driven with a PRBS),
  each run through an unprescreened and a ``prescreen="surrogate"``
  campaign over a bridging-fault universe;
* :func:`run_e7_surrogate` — the paper's E7/Figure-4 circuit-1 fault
  universe (OP1 with the 16 catastrophic faults), same comparison.

A disagreement anywhere is a harness failure (non-zero exit through
``python -m repro.verify --mode surrogate``), the same contract as the
route-vs-oracle differential harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import NewtonError
from repro.faults.campaign import CampaignResult, FaultCampaign
from repro.faults.dictionary import SignatureDetector, TransientSignatureTechnique
from repro.faults.model import BridgingFault
from repro.service.spec import CampaignSpec
from repro.signals.prbs import prbs_waveform
from repro.surrogate.prescreen import PrescreenConfig
from repro.verify.generate import GeneratedCircuit, generate_circuit

#: circuit families the surrogate differential runs over (linear only:
#: the random mosfet family's large-signal behaviour is out of scope
#: for a small-signal surrogate — E7's OP1 covers the nonlinear case).
SURROGATE_KINDS = ("rc", "rlc")


class DetectionInstancesDetector:
    """Picklable form of E7's detection-instances detector (the
    experiment module uses a lambda, which cannot cross process-pool
    boundaries)."""

    def __init__(self, rel_threshold: float = 0.02) -> None:
        self.rel_threshold = rel_threshold

    def __call__(self, reference: Any, measurement: Any) -> float:
        from repro.core.detection import detection_instances
        return detection_instances(reference, measurement,
                                   rel_threshold=self.rel_threshold)


@dataclass
class SurrogateMismatch:
    """One fault where the prescreened campaign diverged from the
    reference campaign."""

    label: str                  # campaign label (kind+seed, or "e7")
    fault: str
    decided_by: str
    reason: str                 # verdict_flip | outcome_drift | band_verdict
    detection_reference: float
    detection_prescreened: float

    def summary(self) -> str:
        return (f"{self.label} {self.fault}: {self.reason} "
                f"(decided_by={self.decided_by}, "
                f"ref={self.detection_reference:.4f}, "
                f"pre={self.detection_prescreened:.4f})")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "fault": self.fault,
            "decided_by": self.decided_by,
            "reason": self.reason,
            "detection_reference": self.detection_reference,
            "detection_prescreened": self.detection_prescreened,
        }


@dataclass
class SurrogateDiffReport:
    """Aggregate result of a surrogate differential campaign."""

    kinds: List[str]
    threshold: float
    margin: float
    n_campaigns: int = 0
    n_faults: int = 0
    n_prescreened: int = 0
    n_escalated: int = 0
    #: generated circuits whose fault-free reference cannot be
    #: simulated at all (operating point fails for both the transient
    #: and the surrogate alike) — neither campaign can run, so nothing
    #: is compared; kept visible rather than silently dropped.
    n_unsimulatable: int = 0
    mismatches: List[SurrogateMismatch] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def prescreen_rate(self) -> float:
        return self.n_prescreened / self.n_faults if self.n_faults else 0.0

    def summary(self) -> str:
        lines = [
            f"surrogate differential: {self.n_campaigns} campaigns "
            f"({', '.join(self.kinds)}), {self.n_faults} faults, "
            f"{self.n_prescreened} surrogate-decided "
            f"({100 * self.prescreen_rate:.1f}%), "
            f"{self.n_escalated} escalated, "
            f"{len(self.mismatches)} disagreements "
            f"[margin={self.margin:g}, {self.elapsed_s:.2f} s]",
        ]
        if self.n_unsimulatable:
            lines.append(f"  ({self.n_unsimulatable} circuits "
                         f"unsimulatable — skipped by both routes)")
        for mismatch in self.mismatches[:20]:
            lines.append("  DISAGREEMENT " + mismatch.summary())
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "surrogate_diff_report",
            "ok": self.ok,
            "kinds": list(self.kinds),
            "threshold": self.threshold,
            "margin": self.margin,
            "n_campaigns": self.n_campaigns,
            "n_faults": self.n_faults,
            "n_prescreened": self.n_prescreened,
            "n_escalated": self.n_escalated,
            "n_unsimulatable": self.n_unsimulatable,
            "seeds": [int(s) for s in self.seeds],
            "elapsed_s": self.elapsed_s,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }


def _normalized_outcome(outcome_dict: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(outcome_dict)
    out["elapsed_s"] = 0.0
    out.pop("decided_by", None)
    return out


def compare_campaigns(label: str, reference: CampaignResult,
                      prescreened: CampaignResult, threshold: float,
                      margin: float) -> List[SurrogateMismatch]:
    """The pinned invariant, fault by fault.

    Surrogate-decided outcomes must agree on the ``detected`` verdict
    (and must genuinely sit outside the margin band); escalated
    outcomes went through the very same transient path, so their
    ``to_dict()`` must match the unprescreened run's byte for byte
    (modulo wall-clock).
    """
    mismatches: List[SurrogateMismatch] = []
    if len(reference.outcomes) != len(prescreened.outcomes):
        mismatches.append(SurrogateMismatch(
            label=label, fault="<campaign>", decided_by="-",
            reason=(f"outcome count {len(prescreened.outcomes)} != "
                    f"{len(reference.outcomes)}"),
            detection_reference=0.0, detection_prescreened=0.0))
        return mismatches
    for ref, pre in zip(reference.outcomes, prescreened.outcomes):
        if pre.decided_by == "surrogate":
            if abs(pre.detection - threshold) <= margin:
                mismatches.append(SurrogateMismatch(
                    label=label, fault=pre.fault.describe(),
                    decided_by=pre.decided_by, reason="band_verdict",
                    detection_reference=ref.detection,
                    detection_prescreened=pre.detection))
            if pre.detected != ref.detected:
                mismatches.append(SurrogateMismatch(
                    label=label, fault=pre.fault.describe(),
                    decided_by=pre.decided_by, reason="verdict_flip",
                    detection_reference=ref.detection,
                    detection_prescreened=pre.detection))
        elif _normalized_outcome(pre.to_dict()) != \
                _normalized_outcome(ref.to_dict()):
            mismatches.append(SurrogateMismatch(
                label=label, fault=pre.fault.describe(),
                decided_by=pre.decided_by, reason="outcome_drift",
                detection_reference=ref.detection,
                detection_prescreened=pre.detection))
    return mismatches


# ----------------------------------------------------------------------
# Random-circuit campaigns
# ----------------------------------------------------------------------

def surrogate_campaign_workload(gen: GeneratedCircuit, seed: int,
                                max_faults: int = 6):
    """(target, technique, detector, faults) for one generated circuit:
    the DC-driven netlist re-driven with a PRBS and a bridging-fault
    universe over its internal node pairs."""
    v_in = float(gen.meta.get("v_in", "1.0"))
    # chip time snapped to the dt grid so the 15-chip PRBS duration is
    # an exact multiple of dt (no grid-mismatch truncation anywhere)
    chip = gen.dt * max(4, int(round(gen.t_stop / 15.0 / gen.dt)))
    stimulus = prbs_waveform(order=4, chip_time=chip, low=0.5 * v_in,
                             high=1.5 * v_in, dt=gen.dt,
                             seed=1 + seed % 15)
    target = gen.circuit.copy()
    target.element("VIN").value = stimulus
    technique = TransientSignatureTechnique(t_stop=stimulus.duration,
                                            dt=gen.dt,
                                            node=gen.node_names[-1])
    detector = SignatureDetector(abs_v=0.02 * v_in)
    faults = []
    names = gen.node_names
    for r in (150.0, 1500.0):
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                faults.append(BridgingFault(
                    f"{names[i]}-{names[j]}-{r:g}", names[i], names[j],
                    resistance=r))
    return target, technique, detector, tuple(faults[:max_faults])


def run_surrogate_differential(
        seeds: Iterable[int],
        kinds: Sequence[str] = SURROGATE_KINDS,
        threshold: float = 0.05,
        config: Optional[PrescreenConfig] = None,
        max_faults: int = 6,
        max_steps: int = 256) -> SurrogateDiffReport:
    """Unprescreened vs prescreened campaigns over seeded circuits."""
    for kind in kinds:
        if kind not in SURROGATE_KINDS:
            raise ValueError(f"unsupported kind {kind!r}; "
                             f"known: {SURROGATE_KINDS}")
    config = config or PrescreenConfig()
    t0 = time.perf_counter()
    seeds = [int(s) for s in seeds]
    report = SurrogateDiffReport(kinds=list(kinds), threshold=threshold,
                                 margin=config.margin, seeds=seeds)
    for kind in kinds:
        for seed in seeds:
            gen = generate_circuit(seed, kind=kind, max_steps=max_steps)
            target, technique, detector, faults = \
                surrogate_campaign_workload(gen, seed,
                                            max_faults=max_faults)
            campaign = FaultCampaign(technique, detector,
                                     threshold=threshold)
            try:
                reference = campaign.run(spec=CampaignSpec(
                    target=target, faults=faults))
            except NewtonError:
                # the fault-free circuit itself will not bias — neither
                # the transient nor the surrogate route can measure it
                report.n_unsimulatable += 1
                continue
            prescreened = campaign.run(spec=CampaignSpec(
                target=target, faults=faults, prescreen="surrogate",
                prescreen_config=config))
            report.n_campaigns += 1
            report.n_faults += prescreened.n_faults
            report.n_prescreened += prescreened.n_prescreened
            report.n_escalated += (prescreened.n_faults
                                   - prescreened.n_prescreened)
            report.mismatches.extend(compare_campaigns(
                f"{kind}:{seed}", reference, prescreened, threshold,
                config.margin))
    report.elapsed_s = time.perf_counter() - t0
    return report


# ----------------------------------------------------------------------
# The E7 fault universe
# ----------------------------------------------------------------------

def e7_workload():
    """(target, technique, detector, faults, threshold) of the paper's
    circuit-1 campaign (E7/Figure 4), with a picklable detector."""
    from repro.circuits.op1 import op1_follower
    from repro.experiments.e7_fig4_detection import (
        CIRCUIT1_CONFIG,
        CIRCUIT1_REL_THRESHOLD,
    )
    from repro.core.transient_test import TransientResponseTester
    from repro.faults.universe import paper_circuit1_faults

    tester = TransientResponseTester(CIRCUIT1_CONFIG)
    return (op1_follower(input_value=2.5), tester.technique(),
            DetectionInstancesDetector(CIRCUIT1_REL_THRESHOLD),
            tuple(paper_circuit1_faults()), 0.05)


def run_e7_surrogate(config: Optional[PrescreenConfig] = None,
                     workers: int = 1,
                     batch_size: int = 1) -> SurrogateDiffReport:
    """Unprescreened vs prescreened campaigns over the E7 universe."""
    config = config or PrescreenConfig()
    t0 = time.perf_counter()
    target, technique, detector, faults, threshold = e7_workload()
    campaign = FaultCampaign(technique, detector, threshold=threshold)
    reference = campaign.run(spec=CampaignSpec(
        target=target, faults=faults, workers=workers,
        batch_size=batch_size))
    prescreened = campaign.run(spec=CampaignSpec(
        target=target, faults=faults, workers=workers,
        batch_size=batch_size, prescreen="surrogate",
        prescreen_config=config))
    report = SurrogateDiffReport(kinds=["e7"], threshold=threshold,
                                 margin=config.margin)
    report.n_campaigns = 1
    report.n_faults = prescreened.n_faults
    report.n_prescreened = prescreened.n_prescreened
    report.n_escalated = (prescreened.n_faults
                          - prescreened.n_prescreened)
    report.mismatches = compare_campaigns("e7", reference, prescreened,
                                          threshold, config.margin)
    report.elapsed_s = time.perf_counter() - t0
    return report


__all__ = [
    "SURROGATE_KINDS",
    "DetectionInstancesDetector",
    "SurrogateMismatch",
    "SurrogateDiffReport",
    "compare_campaigns",
    "surrogate_campaign_workload",
    "run_surrogate_differential",
    "e7_workload",
    "run_e7_surrogate",
]
