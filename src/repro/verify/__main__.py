"""Command-line differential fuzzing: ``python -m repro.verify``.

Runs the differential harness over a seed range (and optionally the
convergence-order checks), prints a summary and exits non-zero on any
mismatch — the CI ``verify-fuzz`` job is exactly this command.

``--mode surrogate`` switches to the surrogate-vs-reference
differential: unprescreened vs ``prescreen="surrogate"`` fault
campaigns over the same seeded circuits (plus ``--e7`` for the paper's
circuit-1 fault universe), exiting non-zero on any verdict
disagreement — the CI ``surrogate-equivalence`` job runs this.

Examples::

    python -m repro.verify --seeds 200
    python -m repro.verify --seeds 50 --kinds rc,rlc --method trap
    python -m repro.verify --seeds 200 --check-convergence --report out.json
    python -m repro.verify --mode surrogate --seeds 100 --e7
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.verify.convergence import check_convergence
from repro.verify.differential import ABS_TOL, REL_TOL, run_differential
from repro.verify.generate import KINDS


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential-testing harness: fast path vs reference "
                    "engine vs analytic oracle over seeded random circuits")
    parser.add_argument("--mode", default="routes",
                        choices=("routes", "surrogate"),
                        help="'routes' compares solver routes against the "
                             "oracle; 'surrogate' compares prescreened vs "
                             "full-transient campaign verdicts")
    parser.add_argument("--e7", action="store_true",
                        help="surrogate mode: also compare campaigns over "
                             "the paper's E7/circuit-1 fault universe")
    parser.add_argument("--margin", type=float, default=None,
                        help="surrogate mode: prescreen margin band "
                             "half-width (default: PrescreenConfig default)")
    parser.add_argument("--seeds", type=int, default=200,
                        help="number of seeds per circuit kind (default 200)")
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--kinds", default=",".join(KINDS),
                        help=f"comma-separated circuit kinds "
                             f"(default {','.join(KINDS)})")
    parser.add_argument("--method", default="be", choices=("be", "trap"),
                        help="integration method (default be)")
    parser.add_argument("--rel-tol", type=float, default=REL_TOL)
    parser.add_argument("--abs-tol", type=float, default=ABS_TOL)
    parser.add_argument("--max-steps", type=int, default=256,
                        help="cap on march length per circuit (default 256)")
    parser.add_argument("--check-convergence", action="store_true",
                        help="also verify BE/trap observed integration "
                             "order on rc and rlc circuits")
    parser.add_argument("--report", metavar="PATH",
                        help="write the full JSON report to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the final verdict")
    return parser.parse_args(argv)


def _main_surrogate(args: argparse.Namespace) -> int:
    from repro.surrogate.prescreen import PrescreenConfig
    from repro.verify.surrogate_diff import (
        SURROGATE_KINDS,
        run_e7_surrogate,
        run_surrogate_differential,
    )

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    # the routes default includes mosfet, which the surrogate
    # differential deliberately excludes — trim instead of erroring
    kinds = [k for k in kinds if k in SURROGATE_KINDS] or \
        list(SURROGATE_KINDS)
    seeds = range(args.seed_start, args.seed_start + args.seeds)
    config = (PrescreenConfig(margin=args.margin)
              if args.margin is not None else None)

    report = run_surrogate_differential(seeds, kinds=kinds,
                                        config=config,
                                        max_steps=args.max_steps)
    if not args.quiet:
        print(report.summary())
    reports = [report]
    if args.e7:
        e7 = run_e7_surrogate(config=config)
        reports.append(e7)
        if not args.quiet:
            print(e7.summary())

    ok = all(r.ok for r in reports)
    if args.report:
        payload = report.to_dict()
        if args.e7:
            payload["e7"] = reports[1].to_dict()
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"report written to {args.report}")

    print("verify: OK" if ok else "verify: FAILED")
    return 0 if ok else 1


def main(argv: List[str] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.mode == "surrogate":
        return _main_surrogate(args)
    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    seeds = range(args.seed_start, args.seed_start + args.seeds)

    report = run_differential(seeds, kinds=kinds, method=args.method,
                              rel_tol=args.rel_tol, abs_tol=args.abs_tol,
                              max_steps=args.max_steps)
    if not args.quiet:
        print(report.summary())

    convergence = []
    if args.check_convergence:
        for kind in ("rc", "rlc"):
            if kind not in kinds:
                continue
            for method in ("be", "trap"):
                result = check_convergence(seed=args.seed_start, kind=kind,
                                           method=method)
                convergence.append(result)
                if not args.quiet:
                    print(result.summary())

    ok = report.ok and all(c.ok for c in convergence)
    if args.report:
        payload = report.to_dict()
        payload["convergence"] = [c.to_dict() for c in convergence]
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"report written to {args.report}")

    print("verify: OK" if ok else "verify: FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
