"""Differential testing: every solver route against every oracle.

Each generated circuit is marched through the fast-path engine
(``fast_path=True``), the reference engine (``fast_path=False``) and —
for linear circuits — the analytic oracle's independently-implemented
discretisation.  Per-node deviations above tolerance become structured
:class:`MismatchReport` records carrying everything needed to reproduce
the failure (seed, kind, netlist text, offending node, deviation and
where it peaked).

Tolerance policy: routes integrate the *same* discrete system, so they
must agree to near machine precision; a mismatch is declared when
``max|a - b| > abs_tol + rel_tol * scale`` with ``scale`` the peak
amplitude of the reference route on that node (numpy ``allclose``
semantics, applied per node).  Discretisation error never enters —
that is the convergence checker's job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.spice.transient import transient
from repro.verify.generate import KINDS, GeneratedCircuit, generate_circuit

#: default tolerances for route-vs-route agreement
REL_TOL = 1e-6
ABS_TOL = 1e-9


def compare_samples(ref: np.ndarray, other: np.ndarray,
                    rel_tol: float = REL_TOL,
                    abs_tol: float = ABS_TOL) -> Tuple[float, float, int]:
    """Compare two sample arrays.

    Returns ``(max_abs, max_rel, argmax)`` where ``max_rel`` is the peak
    absolute deviation normalised by the reference's peak amplitude
    (floored at ``abs_tol / rel_tol`` so an all-zero reference cannot
    divide by zero)."""
    ref = np.asarray(ref, dtype=float)
    other = np.asarray(other, dtype=float)
    if ref.shape != other.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {other.shape}")
    diff = np.abs(ref - other)
    idx = int(np.argmax(diff)) if len(diff) else 0
    max_abs = float(diff[idx]) if len(diff) else 0.0
    scale = max(float(np.max(np.abs(ref))) if len(ref) else 0.0,
                abs_tol / rel_tol if rel_tol > 0 else abs_tol)
    return max_abs, max_abs / scale, idx


@dataclass
class MismatchReport:
    """One route pair disagreeing on one node of one circuit."""

    seed: int
    kind: str
    circuit_name: str
    route_a: str
    route_b: str
    node: str
    max_abs: float
    max_rel: float
    t_at_max: float
    rel_tol: float
    abs_tol: float
    netlist: str

    def summary(self) -> str:
        return (f"{self.kind} seed={self.seed} node {self.node}: "
                f"{self.route_a} vs {self.route_b} deviate by "
                f"{self.max_abs:.3e} V (rel {self.max_rel:.3e}) "
                f"at t={self.t_at_max:g} s")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "circuit": self.circuit_name,
            "route_a": self.route_a,
            "route_b": self.route_b,
            "node": self.node,
            "max_abs": self.max_abs,
            "max_rel": self.max_rel,
            "t_at_max": self.t_at_max,
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "netlist": self.netlist,
        }


@dataclass
class DifferentialReport:
    """Aggregate result of a differential campaign."""

    kinds: List[str]
    method: str
    rel_tol: float
    abs_tol: float
    n_circuits: int = 0
    n_comparisons: int = 0
    mismatches: List[MismatchReport] = field(default_factory=list)
    #: worst relative deviation seen per route pair (even when passing)
    worst: Dict[str, float] = field(default_factory=dict)
    #: engine route taken by the fast path, per circuit kind
    engines: Dict[str, Dict[str, int]] = field(default_factory=dict)
    elapsed_s: float = 0.0
    seeds: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def record_pair(self, pair: str, max_rel: float) -> None:
        if max_rel > self.worst.get(pair, 0.0):
            self.worst[pair] = max_rel

    def summary(self) -> str:
        lines = [
            f"differential harness: {self.n_circuits} circuits "
            f"({', '.join(self.kinds)}), method={self.method}, "
            f"{self.n_comparisons} node comparisons, "
            f"{len(self.mismatches)} mismatches "
            f"[rel_tol={self.rel_tol:g}, abs_tol={self.abs_tol:g}, "
            f"{self.elapsed_s:.2f} s]",
        ]
        for pair in sorted(self.worst):
            lines.append(f"  worst {pair}: rel {self.worst[pair]:.3e}")
        for kind in sorted(self.engines):
            routes = ", ".join(f"{eng}={cnt}" for eng, cnt in
                               sorted(self.engines[kind].items()))
            lines.append(f"  engines[{kind}]: {routes}")
        for mismatch in self.mismatches[:20]:
            lines.append("  MISMATCH " + mismatch.summary())
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "differential_report",
            "ok": self.ok,
            "kinds": list(self.kinds),
            "method": self.method,
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "n_circuits": self.n_circuits,
            "n_comparisons": self.n_comparisons,
            "seeds": [int(s) for s in self.seeds],
            "worst": dict(self.worst),
            "engines": {k: dict(v) for k, v in self.engines.items()},
            "elapsed_s": self.elapsed_s,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }


def _march_routes(gen: GeneratedCircuit, method: str
                  ) -> Dict[str, Dict[str, Any]]:
    """Run every applicable route; returns route name -> {samples, stats}."""
    routes: Dict[str, Dict[str, Any]] = {}
    for route, fast in (("fast", True), ("reference", False)):
        res = transient(gen.circuit, gen.t_stop, gen.dt,
                        record=gen.node_names, method=method,
                        fast_path=fast, uic=True)
        routes[route] = {
            "samples": {n: res.array(n) for n in gen.node_names},
            "stats": res.stats,
            "times": res.times,
        }
    if gen.oracle is not None:
        times = routes["fast"]["times"]
        routes["oracle"] = {
            "samples": gen.oracle.discrete(times, method=method),
            "stats": {"engine": "oracle_discrete"},
            "times": times,
        }
    return routes


def run_differential(seeds: Iterable[int],
                     kinds: Sequence[str] = ("rc", "rlc", "mosfet"),
                     method: str = "be",
                     rel_tol: float = REL_TOL,
                     abs_tol: float = ABS_TOL,
                     n_nodes: Optional[int] = None,
                     max_steps: int = 256) -> DifferentialReport:
    """Run the differential harness over a seed set.

    Every circuit is compared pairwise: fast vs reference, and (linear
    kinds) each engine vs the analytic oracle's discretisation.
    """
    for kind in kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown circuit kind {kind!r}; known: {KINDS}")
    t0 = time.perf_counter()
    seeds = [int(s) for s in seeds]
    report = DifferentialReport(kinds=list(kinds), method=method,
                                rel_tol=rel_tol, abs_tol=abs_tol,
                                seeds=seeds)
    for kind in kinds:
        for seed in seeds:
            gen = generate_circuit(seed, kind=kind, n_nodes=n_nodes,
                                   max_steps=max_steps)
            routes = _march_routes(gen, method)
            engine = routes["fast"]["stats"].get("engine", "?")
            report.engines.setdefault(kind, {})
            report.engines[kind][engine] = \
                report.engines[kind].get(engine, 0) + 1
            report.n_circuits += 1
            names = list(routes)
            for i, ra in enumerate(names):
                for rb in names[i + 1:]:
                    _compare_routes(report, gen, ra, rb,
                                    routes[ra], routes[rb])
    report.elapsed_s = time.perf_counter() - t0
    return report


def _compare_routes(report: DifferentialReport, gen: GeneratedCircuit,
                    name_a: str, name_b: str,
                    route_a: Dict[str, Any], route_b: Dict[str, Any]) -> None:
    pair = f"{name_a}-vs-{name_b}"
    for node in gen.node_names:
        a = route_a["samples"][node]
        b = route_b["samples"][node]
        max_abs, max_rel, idx = compare_samples(a, b, report.rel_tol,
                                                report.abs_tol)
        report.n_comparisons += 1
        report.record_pair(pair, max_rel)
        scale = max(float(np.max(np.abs(a))),
                    report.abs_tol / report.rel_tol)
        if max_abs > report.abs_tol + report.rel_tol * scale:
            report.mismatches.append(MismatchReport(
                seed=gen.seed, kind=gen.kind,
                circuit_name=gen.circuit.name,
                route_a=name_a, route_b=name_b, node=node,
                max_abs=max_abs, max_rel=max_rel,
                t_at_max=float(route_a["times"][idx]),
                rel_tol=report.rel_tol, abs_tol=report.abs_tol,
                netlist=gen.deck()))
