"""Golden regression store: pinned experiment outputs with readable diffs.

A *golden* is a normalised JSON payload committed under
``tests/goldens/``.  The check recomputes the payload, normalises it the
same way and compares; on drift it raises :class:`GoldenMismatch` whose
message is a unified diff of the two pretty-printed documents — the
reviewer sees exactly which numbers moved, not just "assert failed".

Normalisation makes the comparison robust without hiding real change:

* floats are rounded to 9 significant digits (absorbs BLAS/platform
  reassociation noise, far below any physical tolerance in this repo);
* volatile keys (``elapsed_s``, ``trace``, ``stats``) are dropped at any
  depth — timings and solver-iteration counts are not part of the
  scientific contract;
* dict keys are emitted sorted, so the files diff cleanly in review.

Updating is explicit: ``pytest --update-goldens`` (see
``tests/conftest.py``) or ``check_golden(..., update=True)``.  A missing
golden fails unless updating — silently adopting a first result would
defeat the point of pinning.
"""

from __future__ import annotations

import difflib
import json
import math
from pathlib import Path
from typing import Any, Iterable, Tuple, Union

#: keys stripped during normalisation, at any nesting depth
VOLATILE_KEYS = ("elapsed_s", "trace", "stats")

#: significant digits kept on floats
FLOAT_SIG_DIGITS = 9


class GoldenMismatch(AssertionError):
    """A recomputed payload no longer matches its committed golden."""


def normalize(payload: Any, sig_digits: int = FLOAT_SIG_DIGITS,
              drop: Iterable[str] = VOLATILE_KEYS) -> Any:
    """Return a JSON-safe, float-rounded, volatile-key-free copy."""
    drop = tuple(drop)
    if isinstance(payload, dict):
        return {str(k): normalize(v, sig_digits, drop)
                for k, v in payload.items() if str(k) not in drop}
    if isinstance(payload, (list, tuple)):
        return [normalize(v, sig_digits, drop) for v in payload]
    if isinstance(payload, bool) or payload is None:
        return payload
    if isinstance(payload, float):
        if math.isnan(payload) or math.isinf(payload):
            return repr(payload)
        return float(f"{payload:.{sig_digits}g}")
    if isinstance(payload, int):
        return payload
    if isinstance(payload, str):
        return payload
    # numpy scalars and anything else that quacks numerically
    if hasattr(payload, "item"):
        return normalize(payload.item(), sig_digits, drop)
    return str(payload)


def dumps_canonical(payload: Any) -> str:
    """Stable pretty-printed JSON (sorted keys, trailing newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_path(directory: Union[str, Path], name: str) -> Path:
    return Path(directory) / f"{name}.json"


def load_golden(directory: Union[str, Path], name: str) -> Any:
    path = golden_path(directory, name)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_golden(directory: Union[str, Path], name: str,
                payload: Any) -> Path:
    path = golden_path(directory, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_canonical(normalize(payload)), encoding="utf-8")
    return path


def diff_text(expected: Any, actual: Any, name: str = "golden") -> str:
    """Unified diff between two payloads' canonical forms."""
    exp_lines = dumps_canonical(expected).splitlines(keepends=True)
    act_lines = dumps_canonical(actual).splitlines(keepends=True)
    return "".join(difflib.unified_diff(
        exp_lines, act_lines,
        fromfile=f"{name} (committed)", tofile=f"{name} (recomputed)"))


def check_golden(directory: Union[str, Path], name: str, payload: Any,
                 update: bool = False) -> Tuple[str, Path]:
    """Compare ``payload`` against the committed golden ``name``.

    Returns ``(status, path)`` with status ``"matched"``, ``"created"``
    or ``"updated"``.  Raises :class:`GoldenMismatch` (with a unified
    diff in the message) when the golden exists, differs, and
    ``update`` is false; raises it too for a *missing* golden so a
    deleted file cannot silently pass.
    """
    path = golden_path(directory, name)
    actual = normalize(payload)
    if not path.exists():
        if update:
            return "created", save_golden(directory, name, actual)
        raise GoldenMismatch(
            f"no golden {path}; run `pytest --update-goldens` (or "
            f"check_golden(..., update=True)) to create it")
    expected = load_golden(directory, name)
    if expected == actual:
        return "matched", path
    if update:
        return "updated", save_golden(directory, name, actual)
    raise GoldenMismatch(
        f"golden {name!r} drifted ({path}).\n"
        f"If the change is intended, re-pin with `pytest "
        f"--update-goldens` and commit the diff.\n\n"
        + diff_text(expected, actual, name=name))
