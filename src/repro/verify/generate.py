"""Seeded random circuit generation for differential testing.

Every circuit is generated from a :class:`numpy.random.Generator` seeded
with ``(kind, seed)``, so the same seed always yields a byte-identical
netlist (``GeneratedCircuit.deck()``) — reproducibility the differential
harness and the golden store both rely on.

Three families are supported:

``rc``
    Every internal node carries a capacitor to ground; a random
    *connected* resistor graph couples the nodes; a DC source drives one
    node through a series resistor.  The family is chosen because its
    exact state-space model is constructible by inspection
    (states = node voltages, ``C dv/dt = -G v + B u``), which is what
    makes a machine-precision analytic oracle possible.
``rlc``
    The RC family plus inductors between random node pairs (or node and
    ground).  Each inductor adds a branch-current state.
``mosfet``
    A chain of resistor-loaded NMOS/PMOS inverter stages with load
    capacitors, driven by a voltage step.  Nonlinear, so there is no
    analytic oracle — the harness compares the fast-path and reference
    engines only.

Component values are drawn from deliberately narrow, well-conditioned
windows so that every circuit converges and its time constants sit
within a few decades of each other (the suggested ``dt`` is derived from
the oracle's fastest eigenvalue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.spice.netlist import Circuit
from repro.verify.oracle import LinearOracle

#: gmin the transient engine adds on every node diagonal; the oracle
#: includes it so the comparison is against the *same* mathematical
#: system the simulator solves (it is part of the system definition,
#: not an approximation).
SIM_GMIN = 1e-12

KINDS = ("rc", "rlc", "mosfet")

#: component value windows (log-uniform draws)
R_RANGE = (1e3, 1e5)        # ohm
C_RANGE = (1e-9, 1e-7)      # farad
L_RANGE = (1e-3, 1e-1)      # henry
V_RANGE = (1.0, 5.0)        # source amplitude, volt


@dataclass
class GeneratedCircuit:
    """A generated netlist plus everything needed to verify it."""

    seed: int
    kind: str
    circuit: Circuit
    #: internal (state) node names in MNA order
    node_names: List[str]
    #: suggested output timestep / stop time for a well-resolved march
    dt: float
    t_stop: float
    #: exact state-space oracle (linear kinds only)
    oracle: Optional[LinearOracle] = None
    #: metadata lines embedded in the deck header
    meta: Dict[str, str] = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        return int(round(self.t_stop / self.dt))

    def deck(self) -> str:
        """Canonical text form of the netlist (byte-identical per seed)."""
        header = [f"* generated kind={self.kind} seed={self.seed}"]
        for key in sorted(self.meta):
            header.append(f"* {key}={self.meta[key]}")
        return "\n".join(header) + "\n" + self.circuit.summary() + "\n"

    def describe(self) -> str:
        return (f"{self.kind} seed={self.seed}: "
                f"{len(self.circuit.elements)} elements, "
                f"{len(self.node_names)} state nodes, "
                f"dt={self.dt:g}s x {self.n_steps} steps")


def _log_uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


def _rng_for(kind: str, seed: int) -> np.random.Generator:
    # Key the stream on (kind, seed) so the same seed explores different
    # circuits per family while staying reproducible.
    return np.random.default_rng([KINDS.index(kind), int(seed)])


def generate_circuit(seed: int, kind: str = "rc",
                     n_nodes: Optional[int] = None,
                     max_steps: int = 512) -> GeneratedCircuit:
    """Generate one random circuit of the given family.

    Parameters
    ----------
    seed:
        Stream seed; the same ``(seed, kind, n_nodes)`` always produces a
        byte-identical netlist.
    kind:
        ``"rc"``, ``"rlc"`` or ``"mosfet"``.
    n_nodes:
        Internal node count (stage count for ``mosfet``); defaults to a
        seed-dependent draw.
    max_steps:
        Cap on the suggested march length (keeps fuzz campaigns cheap).
    """
    if kind not in KINDS:
        raise ValueError(f"unknown circuit kind {kind!r}; known: {KINDS}")
    rng = _rng_for(kind, seed)
    if kind == "mosfet":
        return _generate_mosfet(seed, rng, n_nodes, max_steps)
    return _generate_linear(seed, kind, rng, n_nodes, max_steps)


# ----------------------------------------------------------------------
# Linear families (rc / rlc) — netlist and oracle built side by side
# ----------------------------------------------------------------------

def _generate_linear(seed: int, kind: str, rng: np.random.Generator,
                     n_nodes: Optional[int], max_steps: int) -> GeneratedCircuit:
    n = int(n_nodes) if n_nodes is not None else int(rng.integers(2, 7))
    if n < 1:
        raise ValueError("n_nodes must be >= 1")
    names = [f"n{i + 1}" for i in range(n)]
    ckt = Circuit(f"{kind}_{seed}")

    # --- input: DC step through a series resistor ---------------------
    v_in = round(_log_uniform(rng, *V_RANGE), 6)
    drive_node = int(rng.integers(0, n))
    r_src = _log_uniform(rng, *R_RANGE)
    ckt.vsource("VIN", "in", "0", v_in)
    ckt.resistor("RS", "in", names[drive_node], r_src)

    # --- node capacitors ----------------------------------------------
    caps = np.array([_log_uniform(rng, *C_RANGE) for _ in range(n)])
    for i, name in enumerate(names):
        ckt.capacitor(f"C{i + 1}", name, "0", caps[i])

    # --- connected resistor graph: spanning tree + extra edges --------
    g_mat = np.zeros((n, n))
    g_mat[drive_node, drive_node] += 1.0 / r_src

    def add_resistor(tag: str, i: int, j: int, r: float) -> None:
        """j == -1 means ground."""
        a = names[i]
        b = "0" if j < 0 else names[j]
        ckt.resistor(tag, a, b, r)
        g = 1.0 / r
        g_mat[i, i] += g
        if j >= 0:
            g_mat[j, j] += g
            g_mat[i, j] -= g
            g_mat[j, i] -= g

    r_count = 0
    for i in range(1, n):
        j = int(rng.integers(0, i))
        r_count += 1
        add_resistor(f"R{r_count}", i, j, _log_uniform(rng, *R_RANGE))
    # a ground-return resistor keeps the DC gain finite and the matrix
    # comfortably non-singular
    r_count += 1
    add_resistor(f"R{r_count}", int(rng.integers(0, n)), -1,
                 _log_uniform(rng, *R_RANGE))
    n_extra = int(rng.integers(0, n))
    for _ in range(n_extra):
        i = int(rng.integers(0, n))
        j = int(rng.integers(-1, n))
        if j == i:
            j = -1
        r_count += 1
        add_resistor(f"R{r_count}", i, j, _log_uniform(rng, *R_RANGE))

    # --- inductors (rlc only) -----------------------------------------
    inductors: List[Tuple[int, int, float]] = []
    if kind == "rlc":
        n_ind = int(rng.integers(1, max(2, n // 2 + 1)))
        for k in range(n_ind):
            i = int(rng.integers(0, n))
            j = int(rng.integers(-1, n))
            if j == i:
                j = -1
            val = _log_uniform(rng, *L_RANGE)
            a = names[i]
            b = "0" if j < 0 else names[j]
            ckt.inductor(f"L{k + 1}", a, b, val)
            inductors.append((i, j, val))

    # --- oracle state matrices ----------------------------------------
    g_mat[np.arange(n), np.arange(n)] += SIM_GMIN
    n_l = len(inductors)
    n_states = n + n_l
    a_mat = np.zeros((n_states, n_states))
    c_inv = 1.0 / caps
    a_mat[:n, :n] = -(c_inv[:, None] * g_mat)
    for k, (i, j, val) in enumerate(inductors):
        # current flows node i -> node j through the inductor
        a_mat[i, n + k] -= c_inv[i]
        if j >= 0:
            a_mat[j, n + k] += c_inv[j]
        a_mat[n + k, i] = 1.0 / val
        if j >= 0:
            a_mat[n + k, j] -= 1.0 / val
    b_vec = np.zeros(n_states)
    b_vec[drive_node] = c_inv[drive_node] / r_src

    oracle = LinearOracle(a_mat, b_vec, names, u_level=v_in)
    dt, t_stop = _suggest_grid(a_mat, max_steps)
    meta = {"v_in": f"{v_in:g}", "drive_node": names[drive_node],
            "n_states": str(n_states)}
    return GeneratedCircuit(seed=seed, kind=kind, circuit=ckt,
                            node_names=names, dt=dt, t_stop=t_stop,
                            oracle=oracle, meta=meta)


def _suggest_grid(a_mat: np.ndarray, max_steps: int) -> Tuple[float, float]:
    """Pick (dt, t_stop) from the oracle's eigenvalue spread: resolve the
    fastest mode, try to cover the slowest, cap the step count."""
    eig = np.linalg.eigvals(a_mat)
    rates = np.abs(eig.real)
    rates = rates[rates > 0.0]
    if len(rates) == 0:  # pragma: no cover - defensive, graph is lossy
        return 1e-6, 1e-6 * max_steps
    tau_fast = 1.0 / float(rates.max())
    tau_slow = 1.0 / float(rates.min())
    dt = tau_fast / 8.0
    n_steps = min(max_steps, max(64, int(round(3.0 * tau_slow / dt))))
    # round dt to one significant digit for a tidy, reproducible grid
    dt = float(f"{dt:.1g}")
    return dt, dt * n_steps


# ----------------------------------------------------------------------
# MOSFET family — nonlinear, fast-vs-reference only
# ----------------------------------------------------------------------

def _generate_mosfet(seed: int, rng: np.random.Generator,
                     n_stages: Optional[int], max_steps: int) -> GeneratedCircuit:
    n = int(n_stages) if n_stages is not None else int(rng.integers(1, 4))
    if n < 1:
        raise ValueError("n_nodes must be >= 1")
    ckt = Circuit(f"mosfet_{seed}")
    vdd = 5.0
    ckt.vsource("VDD", "vdd", "0", vdd)
    step_t = round(float(rng.uniform(2e-7, 8e-7)), 9)
    v_lo, v_hi = 1.0, round(float(rng.uniform(2.5, 4.0)), 6)

    def step(t: float, _lo=v_lo, _hi=v_hi, _at=step_t) -> float:
        return _hi if t >= _at else _lo

    ckt.vsource("VIN", "in", "0", step)
    gate = "in"
    names = []
    for i in range(n):
        drain = f"d{i + 1}"
        names.append(drain)
        w = round(_log_uniform(rng, 5e-6, 4e-5), 9)
        ckt.nmos(f"M{i + 1}", drain, gate, "0", w=w, l=5e-6)
        ckt.resistor(f"RL{i + 1}", "vdd", drain,
                     _log_uniform(rng, 5e3, 5e4))
        ckt.capacitor(f"CL{i + 1}", drain, "0",
                      _log_uniform(rng, 1e-12, 1e-11))
        gate = drain

    # load time constant ~ R*C in [5e-9, 5e-7]; resolve the fastest.
    dt = 5e-9
    n_steps = min(max_steps, 400)
    meta = {"stages": str(n), "step_t": f"{step_t:g}", "v_hi": f"{v_hi:g}"}
    return GeneratedCircuit(seed=seed, kind="mosfet", circuit=ckt,
                            node_names=names, dt=dt, t_stop=dt * n_steps,
                            oracle=None, meta=meta)
