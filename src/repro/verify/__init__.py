"""Correctness tooling: differential testing against analytic oracles.

The measurement substrate (tolerance bands, signatures, fault campaigns)
is only as trustworthy as the simulator underneath it.  This package
pits every solver route against independent references:

* :mod:`repro.verify.generate` — seeded random netlist generator
  emitting well-conditioned RC / RLC / MOSFET circuits of parameterised
  size, each linear circuit paired with its exact state-space model.
* :mod:`repro.verify.oracle` — analytic oracles: matrix-exponential
  (exact) and independently-discretised (backward Euler / trapezoidal)
  solutions built from the generator's state matrices, plus closed-form
  RC and series-RLC step responses.
* :mod:`repro.verify.differential` — the harness that runs each circuit
  through ``fast_path=True``, ``fast_path=False`` and the oracle and
  reports per-node deviations as structured :class:`MismatchReport`\\ s.
* :mod:`repro.verify.convergence` — Richardson-extrapolation checks
  that the integrator's observed order matches its nominal order.
* :mod:`repro.verify.goldens` — the golden regression store pinning
  experiment outputs under ``tests/goldens/``.
* :mod:`repro.verify.surrogate_diff` — prescreened
  (``prescreen="surrogate"``) vs full-transient fault-campaign verdicts
  over seeded circuits and the E7 universe; zero disagreements is the
  pinned invariant.

Command line::

    python -m repro.verify --seeds 200
    python -m repro.verify --mode surrogate --seeds 100 --e7
"""

from repro.verify.convergence import ConvergenceResult, check_convergence
from repro.verify.differential import (
    DifferentialReport,
    MismatchReport,
    compare_samples,
    run_differential,
)
from repro.verify.generate import GeneratedCircuit, generate_circuit
from repro.verify.goldens import (
    GoldenMismatch,
    check_golden,
    diff_text,
    normalize,
)
from repro.verify.oracle import (
    LinearOracle,
    rc_step_response,
    series_rlc_step_response,
)
from repro.verify.surrogate_diff import (
    SurrogateDiffReport,
    SurrogateMismatch,
    compare_campaigns,
    run_e7_surrogate,
    run_surrogate_differential,
)

__all__ = [
    "ConvergenceResult",
    "check_convergence",
    "DifferentialReport",
    "MismatchReport",
    "compare_samples",
    "run_differential",
    "GeneratedCircuit",
    "generate_circuit",
    "GoldenMismatch",
    "check_golden",
    "diff_text",
    "normalize",
    "LinearOracle",
    "rc_step_response",
    "series_rlc_step_response",
    "SurrogateDiffReport",
    "SurrogateMismatch",
    "compare_campaigns",
    "run_e7_surrogate",
    "run_surrogate_differential",
]
