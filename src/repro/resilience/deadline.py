"""Cooperative wall-clock deadlines.

A :class:`Deadline` is a monotonic-clock budget.  The ambient slot
(:data:`DEADLINE`) makes the *tightest* active deadline visible to the
engine's hot loops with a single attribute read, exactly like the
observability switch: when no deadline is installed the per-iteration
cost is one ``is None`` branch.

Scopes nest and the tighter deadline always wins: installing a 10 s
per-fault timeout inside a campaign that has 1 s of budget left leaves
the campaign deadline active, so long-running faults cannot outlive the
campaign.  When a deadline fires, :class:`~repro.errors.DeadlineExceeded`
carries the :class:`Deadline` object itself, which is how the campaign
layer distinguishes "this fault's budget ran out" (record a structured
timeout outcome and continue) from "the whole campaign's budget ran
out" (stop evaluating and mark the result partial).

Checks are placed where the engine actually spends its time: every
Newton iteration, every transient step, and every 256 steps of the
vectorised linear march.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget anchored to the monotonic clock."""

    __slots__ = ("t_end", "seconds", "label")

    def __init__(self, seconds: float, label: str = "deadline") -> None:
        if seconds <= 0:
            raise ValueError("deadline seconds must be positive")
        self.seconds = float(seconds)
        self.label = label
        self.t_end = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.t_end - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.t_end

    def check(self, where: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired."""
        if time.monotonic() >= self.t_end:
            site = f" in {where}" if where else ""
            raise DeadlineExceeded(
                f"{self.label} of {self.seconds:g} s exceeded{site}",
                deadline=self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline({self.seconds:g} s, {self.label!r}, "
                f"remaining {self.remaining():.3f} s)")


class _DeadlineSlot:
    """The ambient (tightest-active) deadline; hot loops read
    ``DEADLINE.active`` directly."""

    __slots__ = ("active",)

    def __init__(self) -> None:
        self.active: Optional[Deadline] = None


#: process-wide ambient deadline; ``None`` means unbounded.
DEADLINE = _DeadlineSlot()


def active_deadline() -> Optional[Deadline]:
    """The tightest deadline currently in scope, if any."""
    return DEADLINE.active


def check_deadline(where: str = "") -> None:
    """Cooperative cancellation point: raises
    :class:`~repro.errors.DeadlineExceeded` when the ambient deadline
    has expired; free when none is installed."""
    d = DEADLINE.active
    if d is not None:
        d.check(where)


@contextmanager
def installed(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install an *existing* :class:`Deadline` as the ambient one for the
    block (tightest wins, like :func:`deadline_scope`).  This is how a
    campaign keeps one shared budget across many fault evaluations —
    re-entering :func:`deadline_scope` would restart the clock each time.
    ``deadline=None`` is a no-op scope."""
    if deadline is None:
        yield DEADLINE.active
        return
    prev = DEADLINE.active
    effective = (deadline if prev is None or deadline.t_end <= prev.t_end
                 else prev)
    DEADLINE.active = effective
    try:
        yield effective
    finally:
        DEADLINE.active = prev


@contextmanager
def deadline_scope(seconds: Optional[float],
                   label: str = "deadline") -> Iterator[Optional[Deadline]]:
    """Install a deadline for the duration of the block.

    ``seconds=None`` is a no-op scope (yields ``None`` — callers can
    pass their knob straight through).  When an enclosing scope holds a
    *tighter* deadline, that deadline stays active and is what the
    block yields: the tightest budget always governs.
    """
    if seconds is None:
        yield DEADLINE.active
        return
    mine = Deadline(seconds, label=label)
    prev = DEADLINE.active
    effective = mine if prev is None or mine.t_end <= prev.t_end else prev
    DEADLINE.active = effective
    try:
        yield effective
    finally:
        DEADLINE.active = prev


__all__ = [
    "Deadline",
    "DEADLINE",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "installed",
]
