"""Resilience layer: deadlines, retry ladders, checkpoints, crash
recovery.

The paper's detection figures come from sweeping large fault universes
through transient simulation; at production scale those campaigns must
survive hangs, solver non-convergence and worker crashes without losing
completed work.  This package supplies the building blocks and the
campaign/solver layers wire them through:

* :mod:`repro.resilience.deadline` — cooperative wall-clock deadlines
  (ambient, tightest-wins, checked inside the Newton/transient loops);
* :mod:`repro.resilience.retry` — the configurable solver escalation
  ladder (gmin stepping → source stepping → timestep halving) with
  ``solver.retry`` observability;
* :mod:`repro.resilience.checkpoint` — atomic, content-keyed
  checkpoint/resume for fault campaigns;
* :mod:`repro.resilience.failure` — structured degradation accounting
  (:class:`FailureReport`) for partial runs;
* :mod:`repro.resilience.chaos` — deterministic fault injection at the
  service boundaries (scheduled ``os.replace``/``fsync`` failures,
  torn file tails, SIGKILL-on-cue subprocesses) for the chaos suite.
"""

from repro.errors import (
    CampaignError,
    CheckpointError,
    DeadlineExceeded,
    ReproError,
)
from repro.resilience.chaos import (
    ChaosError,
    ChaosProcess,
    chaos_os,
    corrupt_tail,
    tear_tail,
    wait_for,
)
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    campaign_key,
    fault_context_key,
)
from repro.resilience.deadline import (
    DEADLINE,
    Deadline,
    active_deadline,
    check_deadline,
    deadline_scope,
    installed,
)
from repro.resilience.failure import FailureReport
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    active_policy,
    note_retry,
    retry_scope,
)

__all__ = [
    # deadlines
    "Deadline",
    "DEADLINE",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "installed",
    "DeadlineExceeded",
    # retry ladder
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "active_policy",
    "retry_scope",
    "note_retry",
    # checkpoint/resume
    "CampaignCheckpoint",
    "campaign_key",
    "fault_context_key",
    "CheckpointError",
    # degradation accounting
    "FailureReport",
    "CampaignError",
    "ReproError",
    # chaos harness
    "ChaosError",
    "ChaosProcess",
    "chaos_os",
    "corrupt_tail",
    "tear_tail",
    "wait_for",
]
