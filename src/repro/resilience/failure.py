"""Structured degradation accounting for fault campaigns.

A resilient campaign never hangs and never dies with half its work
lost — but it may come back *degraded*: faults that timed out, faults
quarantined for killing workers, faults skipped because the campaign
deadline expired, worker pools rebuilt after crashes.  The
:class:`FailureReport` records all of it in one structured object that
rides on :class:`~repro.faults.campaign.CampaignResult` (``partial``
runs carry a non-empty report; ``failure_report()`` returns it, and
``summary()`` / ``report()`` fold it in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class FailureReport:
    """What went wrong — and what the campaign did about it."""

    #: fault descriptions that exceeded the per-fault deadline (their
    #: outcomes are recorded with ``timed_out=True``).
    timeouts: List[str] = field(default_factory=list)
    #: fault descriptions quarantined as poison pills after killing a
    #: worker process twice.
    quarantined: List[str] = field(default_factory=list)
    #: fault descriptions never evaluated (campaign deadline expired).
    skipped: List[str] = field(default_factory=list)
    #: number of worker-pool crashes survived (pool rebuilds).
    worker_crashes: int = 0
    #: number of worker pools hard-killed to enforce a fault timeout.
    pools_killed: int = 0
    #: True when the campaign-wide deadline cut the run short.
    deadline_hit: bool = False

    @property
    def degraded(self) -> bool:
        """Did anything at all go wrong?"""
        return bool(self.timeouts or self.quarantined or self.skipped
                    or self.worker_crashes or self.deadline_hit)

    def summary(self) -> str:
        if not self.degraded:
            return "no failures"
        parts = []
        if self.timeouts:
            parts.append(f"{len(self.timeouts)} timeout(s)")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.skipped:
            parts.append(f"{len(self.skipped)} skipped")
        if self.worker_crashes:
            parts.append(f"{self.worker_crashes} worker crash(es)")
        if self.deadline_hit:
            parts.append("campaign deadline hit")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "degraded": self.degraded,
            "timeouts": list(self.timeouts),
            "quarantined": list(self.quarantined),
            "skipped": list(self.skipped),
            "worker_crashes": self.worker_crashes,
            "pools_killed": self.pools_killed,
            "deadline_hit": self.deadline_hit,
        }


__all__ = ["FailureReport"]
