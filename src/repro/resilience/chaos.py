"""Deterministic fault injection at the service boundaries.

The resilience layer's guarantees — atomic checkpoint writes, torn-line
tolerant journals, quarantine-not-crash corruption handling, restart ==
uninterrupted recovery — are only guarantees if something actually
breaks those boundaries on purpose.  This module is that something: a
small, dependency-free harness the chaos test suite drives to inject
the failures a production service eventually meets.

* :func:`chaos_os` — a context manager that patches ``os.replace`` and
  ``os.fsync`` to fail at chosen call indices (exact, reproducible) or
  at a seeded random rate (deterministic per seed).  This is how tests
  hit the mid-``os.replace`` and failed-``fsync`` windows of the
  checkpoint, cache and queue write paths without timing luck.
* :func:`tear_tail` — truncates a file mid-final-line, the exact shape
  a SIGKILL leaves behind when it lands inside an append.
* :func:`corrupt_tail` — overwrites the final bytes with garbage, the
  shape a partial page flush leaves behind.
* :class:`ChaosProcess` — a subprocess driver that runs a python
  snippet and SIGKILLs it the instant an observable predicate turns
  true (a journal line landing, a checkpoint appearing), so "killed
  mid-job" is a precise, repeatable event rather than a sleep race.
* :func:`wait_for` — bounded predicate polling for the above.

Everything is deterministic or seedable; a failing chaos test replays
bit-identically from its seed and injection schedule.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Optional, Sequence


class ChaosError(OSError):
    """The injected failure — a subclass of ``OSError`` so production
    error handling takes its real corruption/IO paths."""


class _OSInjector:
    """Call-counting wrappers around ``os.replace``/``os.fsync``.

    ``calls`` counts every intercepted call per function; ``injected``
    counts the ones that were made to fail.  Failure happens *before*
    the real call runs — a failed ``os.replace`` leaves the destination
    untouched and the temp file behind, exactly like a full disk or a
    revoked mount would.
    """

    def __init__(self, replace_fail_at: Iterable[int],
                 fsync_fail_at: Iterable[int],
                 rate: float, rng: random.Random,
                 match: Optional[str]) -> None:
        self._fail_at = {"replace": frozenset(replace_fail_at),
                         "fsync": frozenset(fsync_fail_at)}
        self._rate = rate
        self._rng = rng
        self._match = match
        self.calls: Dict[str, int] = {"replace": 0, "fsync": 0}
        self.injected: Dict[str, int] = {"replace": 0, "fsync": 0}

    def _should_fail(self, fn: str, path: Any) -> bool:
        if (self._match is not None and path is not None
                and self._match not in os.fspath(path)):
            return False
        index = self.calls[fn]
        self.calls[fn] += 1
        if index in self._fail_at[fn]:
            return True
        return self._rate > 0.0 and self._rng.random() < self._rate

    def wrap_replace(self, real: Callable) -> Callable:
        def replace(src: Any, dst: Any, **kwargs: Any) -> Any:
            if self._should_fail("replace", dst):
                self.injected["replace"] += 1
                raise ChaosError(
                    f"chaos: injected os.replace failure "
                    f"(call {self.calls['replace'] - 1}, dst={dst!r})")
            return real(src, dst, **kwargs)
        return replace

    def wrap_fsync(self, real: Callable) -> Callable:
        def fsync(fd: int) -> None:
            if self._should_fail("fsync", None):
                self.injected["fsync"] += 1
                raise ChaosError(
                    f"chaos: injected os.fsync failure "
                    f"(call {self.calls['fsync'] - 1})")
            return real(fd)
        return fsync


@contextmanager
def chaos_os(replace_fail_at: Sequence[int] = (),
             fsync_fail_at: Sequence[int] = (),
             rate: float = 0.0, seed: int = 0,
             match: Optional[str] = None):
    """Patch ``os.replace``/``os.fsync`` to fail on schedule.

    Parameters
    ----------
    replace_fail_at, fsync_fail_at:
        Zero-based call indices (counted separately per function,
        inside this context only) that raise :class:`ChaosError`.
    rate:
        Additional seeded random failure probability per call
        (deterministic for a given ``seed`` and call sequence).
    match:
        Only ``os.replace`` calls whose *destination* path contains
        this substring are counted and eligible to fail — scopes the
        chaos to one subsystem's files (``fsync`` only sees file
        descriptors, so it cannot be scoped and always counts).

    Yields the injector, whose ``calls``/``injected`` dicts let a test
    assert the schedule actually fired.
    """
    injector = _OSInjector(replace_fail_at, fsync_fail_at, rate,
                           random.Random(seed), match)
    real_replace, real_fsync = os.replace, os.fsync
    os.replace = injector.wrap_replace(real_replace)
    os.fsync = injector.wrap_fsync(real_fsync)
    try:
        yield injector
    finally:
        os.replace, os.fsync = real_replace, real_fsync


# ---------------------------------------------------------------------------
# on-disk damage


def tear_tail(path: str, drop_bytes: int = 12) -> int:
    """Truncate ``drop_bytes`` off the end of ``path`` — the torn-line
    state a kill mid-append leaves.  Returns the new size."""
    size = os.path.getsize(path)
    keep = max(0, size - drop_bytes)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def corrupt_tail(path: str, garbage: bytes = b"\xff\x00garbage",
                 keep_newline: bool = True) -> None:
    """Overwrite the end of the final line with non-JSON bytes — the
    partially-flushed-page state, as opposed to the clean truncation of
    :func:`tear_tail`."""
    size = os.path.getsize(path)
    tail = garbage + (b"\n" if keep_newline else b"")
    with open(path, "r+b") as fh:
        fh.seek(max(0, size - len(tail)))
        fh.write(tail)


# ---------------------------------------------------------------------------
# process-level chaos


def wait_for(predicate: Callable[[], bool], timeout: float = 30.0,
             poll: float = 0.01, what: str = "condition") -> None:
    """Block until ``predicate()`` is true; raise ``TimeoutError`` with
    ``what`` in the message otherwise."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise TimeoutError(f"chaos: timed out after {timeout}s waiting "
                       f"for {what}")


class ChaosProcess:
    """Run a python snippet in a real subprocess and kill it on cue.

    The snippet is executed with ``sys.executable -c`` under the
    caller's environment plus ``PYTHONPATH=src`` inheritance, so it
    sees the same ``repro`` package as the test process.  SIGKILL (not
    SIGTERM) is the whole point: no atexit hooks, no finally blocks —
    the same death a kernel OOM kill delivers.
    """

    def __init__(self, code: str, env: Optional[Dict[str, str]] = None,
                 cwd: Optional[str] = None) -> None:
        self.code = code
        self.env = dict(os.environ)
        if env:
            self.env.update(env)
        self.cwd = cwd
        self.proc: Optional[subprocess.Popen] = None

    def start(self) -> "ChaosProcess":
        self.proc = subprocess.Popen(
            [sys.executable, "-c", self.code], env=self.env, cwd=self.cwd,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        return self

    def kill_when(self, predicate: Callable[[], bool],
                  timeout: float = 30.0, poll: float = 0.005,
                  what: str = "kill condition") -> None:
        """SIGKILL the subprocess the moment ``predicate()`` turns true
        (checked every ``poll`` seconds).  If the process exits first,
        that is fine — the test asserts on recovery either way."""
        assert self.proc is not None, "start() first"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                return
            if predicate():
                os.kill(self.proc.pid, signal.SIGKILL)
                self.proc.wait()
                return
            time.sleep(poll)
        raise TimeoutError(f"chaos: timed out after {timeout}s waiting "
                           f"for {what}")

    def wait(self, timeout: float = 60.0) -> int:
        """Wait for natural exit; returns the return code."""
        assert self.proc is not None, "start() first"
        return self.proc.wait(timeout=timeout)

    def output(self) -> str:
        """Whatever the (finished) subprocess printed, both streams."""
        assert self.proc is not None, "start() first"
        out = b"" if self.proc.stdout is None else self.proc.stdout.read()
        err = b"" if self.proc.stderr is None else self.proc.stderr.read()
        return (out + err).decode("utf-8", "replace")

    def was_killed(self) -> bool:
        assert self.proc is not None, "start() first"
        return self.proc.returncode == -signal.SIGKILL

    def __enter__(self) -> "ChaosProcess":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        if self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGKILL)
            self.proc.wait()
        for stream in (self.proc.stdout, self.proc.stderr):
            if stream is not None:
                stream.close()


__all__ = ["ChaosError", "ChaosProcess", "chaos_os", "corrupt_tail",
           "tear_tail", "wait_for"]
