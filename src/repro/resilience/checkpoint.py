"""Campaign checkpoint/resume: atomic, content-keyed partial results.

A long fault campaign must survive being killed — by a deploy, an OOM
kill, a deadline — without losing completed work.  The checkpoint file
holds every finished :class:`~repro.faults.campaign.FaultOutcome` keyed
by its index in the fault universe, under a **content key**: a SHA-256
over the technique, detector, target, fault universe and the campaign
configuration that affects per-fault results.  Resuming against a file
written for a *different* campaign raises
:class:`~repro.errors.CheckpointError` instead of quietly mixing
incompatible outcomes.

Writes are atomic (write to a temp file in the same directory, fsync,
``os.replace``), so a kill mid-write leaves the previous complete
checkpoint in place — there is no torn-file state.

Outcome payloads are stored with the ``measurement`` field stripped
(measurements can be entire waveform sets and are not part of the
result's ``to_dict()`` contract); everything that *is* part of the
contract — detection, detected, error, elapsed, timeout/quarantine
flags — round-trips exactly, which is what makes an
interrupted-then-resumed campaign's ``to_dict()`` identical to an
uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Callable, Dict, Iterable, Optional

from repro.errors import CheckpointError

#: on-disk schema tag; bump on incompatible layout changes.
SCHEMA = "repro.checkpoint/1"


def _describe_callable(fn: Callable) -> str:
    """A stable textual identity for a technique/detector callable."""
    mod = getattr(fn, "__module__", "") or ""
    qual = getattr(fn, "__qualname__", "") or repr(type(fn).__name__)
    # functools.partial: include the wrapped function and bound args.
    func = getattr(fn, "func", None)
    if func is not None:
        return (f"partial({_describe_callable(func)}, "
                f"args={getattr(fn, 'args', ())!r}, "
                f"kwargs={sorted(getattr(fn, 'keywords', {}).items())!r})")
    return f"{mod}.{qual}"


def _describe_target(target: Any) -> str:
    """A stable textual identity for the campaign target."""
    summary = getattr(target, "summary", None)
    if callable(summary):
        try:
            return str(summary())
        except Exception:  # noqa: BLE001 - identity only, fall through
            pass
    return f"{type(target).__module__}.{type(target).__name__}:" \
           f"{getattr(target, 'name', '')}"


def _hash_parts(parts: Iterable[str]) -> "hashlib._Hash":
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h


def fault_context_key(technique: Callable, detector: Callable, target: Any,
                      on_error: str,
                      fault_timeout_s: Optional[float] = None) -> str:
    """Content hash of the *per-fault evaluation context*.

    Everything that can change one fault's outcome participates —
    technique, detector, target identity, the error policy and the
    per-fault budget — while anything that only affects which faults run
    or how they are labelled (the fault universe, the detection
    threshold, campaign deadlines) deliberately does not.  Combining
    this key with a fault's own description addresses a single
    :class:`~repro.faults.campaign.FaultOutcome`, which is what lets the
    :class:`~repro.service.cache.ResultCache` share outcomes across
    campaigns with overlapping universes and differing thresholds.
    """
    return _hash_parts((SCHEMA,
                        _describe_callable(technique),
                        _describe_callable(detector),
                        _describe_target(target),
                        str(on_error),
                        repr(None if fault_timeout_s is None
                             else float(fault_timeout_s)))).hexdigest()


def campaign_key(technique: Callable, detector: Callable, target: Any,
                 faults: Iterable[Any], threshold: float, on_error: str,
                 fault_timeout_s: Optional[float] = None,
                 extra: Iterable[str] = ()) -> str:
    """Content hash of (technique, fault universe, config).

    The per-fault evaluation context (see :func:`fault_context_key`)
    plus the threshold and the full fault universe: everything that can
    change a campaign's recorded results participates; the
    campaign-wide deadline deliberately does not (it changes how *far*
    a run gets, never what an evaluated fault produced).  ``extra``
    appends caller-supplied identity parts (e.g. the surrogate
    prescreen configuration) — the empty default keeps every historical
    key bit-identical.
    """
    context = fault_context_key(technique, detector, target, on_error,
                                fault_timeout_s)
    h = _hash_parts((context, repr(float(threshold)), *extra))
    for fault in faults:
        h.update(fault.describe().encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.hexdigest()


class CampaignCheckpoint:
    """Periodic atomic persistence of a campaign's completed outcomes.

    Parameters
    ----------
    path:
        Checkpoint file location (created on first save).
    key:
        The campaign's content key (see :func:`campaign_key`).
    every:
        Save frequency in completed faults (1 = after every fault).
    """

    def __init__(self, path: str, key: str, every: int = 1) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.path = os.fspath(path)
        self.key = key
        self.every = every
        self._since_save = 0

    # ------------------------------------------------------------------
    def load(self) -> Dict[int, Any]:
        """Completed outcomes from disk: fault index → outcome.

        Missing file → empty dict (a fresh run).  An unreadable payload
        or unknown schema — a crash tore the file outside the atomic
        write path, or the format moved on — is *quarantined*: renamed
        to ``<path>.corrupt`` with a warning and the run restarts
        fresh, mirroring how :class:`~repro.service.cache.ResultCache`
        degrades corruption to recomputation.  A file written under a
        *different content key* still raises
        :class:`~repro.errors.CheckpointError`: that file is healthy,
        it just belongs to someone else, and silently discarding it
        would destroy another campaign's progress.
        """
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, "rb") as fh:
                doc = pickle.load(fh)
            if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
                raise ValueError(
                    f"unknown schema "
                    f"{doc.get('schema') if isinstance(doc, dict) else doc!r}")
        except Exception as exc:  # noqa: BLE001 - any damage -> quarantine
            self._quarantine(exc)
            return {}
        if doc.get("key") != self.key:
            raise CheckpointError(
                f"checkpoint {self.path!r} belongs to a different campaign "
                f"(key {doc.get('key')!r} != {self.key!r}); refusing to "
                f"resume — delete the file or pass resume=False")
        outcomes = doc.get("outcomes", {})
        return {int(i): o for i, o in outcomes.items()}

    def _quarantine(self, exc: Exception) -> None:
        """Move a corrupt checkpoint aside so it stays inspectable but
        never blocks a fresh run."""
        import warnings
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass
        warnings.warn(
            f"checkpoint {self.path!r} is corrupt ({exc}); quarantined "
            f"to {self.path + '.corrupt'!r} and starting fresh",
            RuntimeWarning, stacklevel=3)

    # ------------------------------------------------------------------
    def save(self, outcomes: Dict[int, Any], n_faults: int,
             force: bool = True) -> None:
        """Atomically persist the completed-outcome map."""
        doc = {
            "schema": SCHEMA,
            "key": self.key,
            "n_faults": n_faults,
            "outcomes": {int(i): _strip(o) for i, o in outcomes.items()},
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(doc, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._since_save = 0

    def maybe_save(self, outcomes: Dict[int, Any], n_faults: int) -> bool:
        """Save when ``every`` completions have accumulated since the
        last write; returns True when a write happened."""
        self._since_save += 1
        if self._since_save >= self.every:
            self.save(outcomes, n_faults)
            return True
        return False


def _strip(outcome: Any) -> Any:
    """A checkpoint-safe copy of an outcome: the ``measurement`` payload
    (arbitrarily large, not part of ``to_dict()``) and the per-fault
    obs snapshots (already merged into the parent scope by the run that
    produced them) are dropped."""
    import dataclasses
    return dataclasses.replace(outcome, measurement=None, metrics=None,
                               events=None)


__all__ = ["CampaignCheckpoint", "campaign_key", "fault_context_key",
           "SCHEMA"]
