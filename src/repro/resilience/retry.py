"""The solver retry ladder, as configuration.

Production simulators do not give up on the first Newton failure: they
escalate through homotopy strategies.  The engine has always done this
(gmin stepping → source stepping in the DC solve, timestep halving in
the transient march); a :class:`RetryPolicy` makes the ladder
*configurable and bounded* and every escalation *visible* — each rung
emits a ``solver.retry`` event plus ``solver.retries`` /
``solver.retries.<strategy>`` counters into the ambient observability
scope, so recoveries show up in traces and metric snapshots instead of
silently inflating solve time.

The default policy reproduces the engine's historical behaviour exactly
(same gmin decades, 21 source steps, 8 halvings), so results are
bit-identical unless a policy is installed.  Policies travel two ways:

* explicitly — ``dc_operating_point(..., retry_policy=p)`` /
  ``transient(..., retry_policy=p)``;
* ambiently — ``with retry_scope(p): ...`` installs the policy for every
  solve in the block, which is how
  :meth:`repro.faults.campaign.FaultCampaign.run` threads a policy
  through user-supplied technique callables (and ships it to worker
  processes — the dataclass is picklable and frozen).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.obs.core import OBS, event


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded escalation ladder for non-convergence recovery.

    Parameters
    ----------
    gmin_ladder:
        The gmin-stepping schedule for the DC solve (relaxed in order;
        the last entry should be the operating gmin).  Empty tuple
        disables the strategy.
    source_steps:
        Number of source-stepping ramp points (0 → 100 %).  Values < 2
        disable the strategy.
    source_gmin:
        Safety gmin floor held during source stepping.
    max_timestep_halvings:
        Levels of local timestep halving the transient march may try on
        a failed step (the default matches the engine's historical
        ``max_subdivisions=8``).  0 disables subdivision.
    """

    gmin_ladder: Tuple[float, ...] = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                      1e-8, 1e-10, 1e-12)
    source_steps: int = 21
    source_gmin: float = 1e-9
    max_timestep_halvings: int = 8

    def __post_init__(self) -> None:
        if self.source_steps < 0:
            raise ValueError("source_steps must be >= 0")
        if self.max_timestep_halvings < 0:
            raise ValueError("max_timestep_halvings must be >= 0")
        if any(g <= 0 for g in self.gmin_ladder):
            raise ValueError("gmin_ladder entries must be positive")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail fast: no homotopy, no subdivision — the bare Newton
        verdict (useful to surface hard circuits in tests)."""
        return cls(gmin_ladder=(), source_steps=0, max_timestep_halvings=0)


#: the engine's historical escalation behaviour.
DEFAULT_RETRY_POLICY = RetryPolicy()


class _PolicySlot:
    __slots__ = ("active",)

    def __init__(self) -> None:
        self.active: Optional[RetryPolicy] = None


#: ambient policy slot; ``None`` means :data:`DEFAULT_RETRY_POLICY`.
RETRY = _PolicySlot()


def active_policy() -> RetryPolicy:
    """The retry policy in effect (ambient, else the default)."""
    p = RETRY.active
    return p if p is not None else DEFAULT_RETRY_POLICY


@contextmanager
def retry_scope(policy: Optional[RetryPolicy]) -> Iterator[RetryPolicy]:
    """Install ``policy`` as the ambient retry policy for the block
    (``None`` is a no-op scope yielding the currently effective
    policy)."""
    if policy is None:
        yield active_policy()
        return
    prev = RETRY.active
    RETRY.active = policy
    try:
        yield policy
    finally:
        RETRY.active = prev


def note_retry(strategy: str, **fields) -> None:
    """Record one escalation rung: a ``solver.retry`` event plus
    aggregate and per-strategy counters (no-op when observability is
    off)."""
    if not OBS.enabled:
        return
    OBS.metrics.counter("solver.retries").inc()
    OBS.metrics.counter(f"solver.retries.{strategy}").inc()
    event("solver.retry", level="warning", strategy=strategy, **fields)


__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "RETRY",
    "active_policy",
    "retry_scope",
    "note_retry",
]
