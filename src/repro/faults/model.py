"""Fault model definitions.

Three families cover the paper's experiments:

* :class:`StuckAtFault` — a node forced to a rail through a fault
  voltage generator (the paper's mechanism; the generator's series
  resistance models the strength of the short).
* :class:`BridgingFault` — a resistive bridge between two nodes,
  approximating shorts across MOS transistor terminals.
* :class:`ParameterFault` — a behavioural model parameter pushed out of
  range (used on the macro-level ADC sub-macro models where no netlist
  exists).

:class:`MultipleFault` composes several of the above (the paper's
"double faults").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class FaultKind(enum.Enum):
    """Classification used for reporting and campaign slicing."""

    STUCK_AT_0 = "sa0"
    STUCK_AT_1 = "sa1"
    BRIDGE = "bridge"
    PARAMETER = "parameter"
    MULTIPLE = "multiple"


@dataclass(frozen=True)
class Fault:
    """Base class: a named, injectable defect."""

    name: str

    @property
    def kind(self) -> FaultKind:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind.value}:{self.name}"


@dataclass(frozen=True)
class StuckAtFault(Fault):
    """Node forced to ``level`` volts through ``resistance`` ohms.

    ``level`` is typically a rail (0 V or 5 V); the default series
    resistance of 1 Ω models a hard short, larger values model weaker
    defects.
    """

    node: str = ""
    level: float = 0.0
    resistance: float = 1.0

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("StuckAtFault needs a node")
        if self.resistance <= 0:
            raise ValueError("fault generator resistance must be positive")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.STUCK_AT_0 if self.level <= 0.0 else FaultKind.STUCK_AT_1

    @staticmethod
    def sa0(node: str, resistance: float = 1.0) -> "StuckAtFault":
        """Stuck-at-0: node shorted toward 0 V."""
        return StuckAtFault(name=f"{node}-sa0", node=node, level=0.0,
                            resistance=resistance)

    @staticmethod
    def sa1(node: str, vdd: float = 5.0, resistance: float = 1.0) -> "StuckAtFault":
        """Stuck-at-1: node shorted toward the supply."""
        return StuckAtFault(name=f"{node}-sa1", node=node, level=vdd,
                            resistance=resistance)


@dataclass(frozen=True)
class BridgingFault(Fault):
    """Resistive bridge between two circuit nodes."""

    node_a: str = ""
    node_b: str = ""
    resistance: float = 10.0

    def __post_init__(self) -> None:
        if not self.node_a or not self.node_b:
            raise ValueError("BridgingFault needs two nodes")
        if self.node_a == self.node_b:
            raise ValueError("bridge endpoints must differ")
        if self.resistance <= 0:
            raise ValueError("bridge resistance must be positive")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.BRIDGE

    @staticmethod
    def between(node_a: str, node_b: str,
                resistance: float = 10.0) -> "BridgingFault":
        return BridgingFault(name=f"{node_a}-{node_b}-bridge",
                             node_a=node_a, node_b=node_b,
                             resistance=resistance)


@dataclass(frozen=True)
class ParameterFault(Fault):
    """Behavioural-model fault: attribute ``parameter`` set to ``value``.

    ``target`` selects which sub-macro the parameter belongs to when
    injecting into a composite model (matched against attribute paths,
    e.g. ``"integrator.leak_per_cycle"``).
    """

    parameter: str = ""
    value: Any = None

    def __post_init__(self) -> None:
        if not self.parameter:
            raise ValueError("ParameterFault needs a parameter path")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.PARAMETER


@dataclass(frozen=True)
class MultipleFault(Fault):
    """Several simultaneous defects (the paper's double faults)."""

    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.faults) < 2:
            raise ValueError("MultipleFault needs at least two components")

    @property
    def kind(self) -> FaultKind:
        return FaultKind.MULTIPLE

    def describe(self) -> str:
        inner = "+".join(f.describe() for f in self.faults)
        return f"multiple:{self.name}({inner})"
