"""Fault models, netlist fault injection and fault-simulation campaigns.

The paper introduces faults "at the transistor level using voltage
generators, which could produce a stuck-at-0 or stuck-at-1 fault signal"
at circuit nodes, plus double faults "which approximated to bridging
faults across the MOS transistors".  This package reproduces exactly that
mechanism for netlists, adds behavioural parameter faults for the
macro-level ADC models, and provides campaign helpers that run a fault
universe through a detection technique.
"""

from repro.faults.model import (
    FaultKind,
    Fault,
    StuckAtFault,
    BridgingFault,
    ParameterFault,
    MultipleFault,
)
from repro.faults.injector import inject, inject_all
from repro.faults.universe import (
    stuck_at_universe,
    bridging_universe,
    paper_circuit1_faults,
    paper_integrator_faults,
)
from repro.faults.campaign import FaultCampaign, CampaignResult, FaultOutcome

__all__ = [
    "FaultKind",
    "Fault",
    "StuckAtFault",
    "BridgingFault",
    "ParameterFault",
    "MultipleFault",
    "inject",
    "inject_all",
    "stuck_at_universe",
    "bridging_universe",
    "paper_circuit1_faults",
    "paper_integrator_faults",
    "FaultCampaign",
    "CampaignResult",
    "FaultOutcome",
]
