"""Fault-universe enumeration.

Generic generators build exhaustive stuck-at / bridging universes over a
circuit's nodes; the ``paper_*`` functions reproduce the specific fault
lists the paper simulated:

* circuit 1 (OP1): "Single separate faults were imposed at the major
  nodes 4, 5, 7, 8 and 3.  Double faults were imposed separately at nodes
  8 to 9, nodes 5 to 8 and nodes 4 to 6" — with stuck-at-0 and stuck-at-1
  variants that makes the 16 faulty circuits of Figure 4.
* circuits 2/3 (SC integrator): "single stuck-at faults at the switched
  capacitor integrator nodes 4, 5, 7, 8 and 9 and separate bridging
  faults on nodes 6 to 7 and nodes 5 to 8" — the 12 faulty circuits.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

from repro.faults.model import BridgingFault, Fault, MultipleFault, StuckAtFault
from repro.spice.netlist import Circuit


def stuck_at_universe(nodes: Sequence[str], vdd: float = 5.0,
                      resistance: float = 1.0) -> List[Fault]:
    """SA0 and SA1 at every listed node."""
    faults: List[Fault] = []
    for node in nodes:
        faults.append(StuckAtFault.sa0(node, resistance=resistance))
        faults.append(StuckAtFault.sa1(node, vdd=vdd, resistance=resistance))
    return faults


def bridging_universe(nodes: Sequence[str],
                      resistance: float = 10.0) -> List[Fault]:
    """A bridge between every pair of listed nodes."""
    return [BridgingFault.between(a, b, resistance=resistance)
            for a, b in combinations(nodes, 2)]


def full_node_universe(circuit: Circuit, vdd: float = 5.0,
                       exclude: Sequence[str] = ()) -> List[Fault]:
    """Stuck-at universe over all circuit nodes except supplies/excluded."""
    skip = set(exclude) | {"0"}
    nodes = [n for n in circuit.nodes() if n not in skip]
    return stuck_at_universe(nodes, vdd=vdd)


def paper_circuit1_faults(vdd: float = 5.0) -> List[Fault]:
    """The 16 faulty variants of circuit 1 (OP1) from the paper.

    10 single stuck-at faults (SA0/SA1 at nodes 4, 5, 7, 8, 3) plus 6
    double faults at the pairs (8,9), (5,8), (4,6) — each pair driven to
    both rails, approximating bridging across the MOS transistors.
    """
    faults: List[Fault] = list(stuck_at_universe(["4", "5", "7", "8", "3"],
                                                 vdd=vdd))
    for a, b in (("8", "9"), ("5", "8"), ("4", "6")):
        for level, tag in ((0.0, "sa0"), (vdd, "sa1")):
            pair = MultipleFault(
                name=f"{a}-{b}-{tag}",
                faults=(
                    StuckAtFault(name=f"{a}-{tag}", node=a, level=level),
                    StuckAtFault(name=f"{b}-{tag}", node=b, level=level),
                ),
            )
            faults.append(pair)
    assert len(faults) == 16
    return faults


def paper_integrator_faults(vdd: float = 5.0,
                            node_prefix: str = "",
                            stuck_resistance: float = 1.0,
                            bridge_resistance: float = 10.0) -> List[Fault]:
    """The 12 faulty variants of the SC integrator (circuits 2 and 3).

    10 single stuck-at faults (SA0/SA1 at integrator nodes 4, 5, 7, 8, 9)
    plus bridging faults on node pairs (6,7) and (5,8).

    ``node_prefix`` maps the OP1-relative node numbers onto the composite
    circuit's namespace (e.g. ``"int_"`` when the integrator instance was
    merged with that prefix).  The resistances set how stiffly the fault
    generators couple to the nodes (see
    :class:`repro.core.impulse_method.ImpulseMethodConfig`).
    """
    nodes = [f"{node_prefix}{n}" for n in ("4", "5", "7", "8", "9")]
    faults: List[Fault] = list(stuck_at_universe(nodes, vdd=vdd,
                                                 resistance=stuck_resistance))
    for a, b in (("6", "7"), ("5", "8")):
        faults.append(BridgingFault.between(f"{node_prefix}{a}",
                                            f"{node_prefix}{b}",
                                            resistance=bridge_resistance))
    assert len(faults) == 12
    return faults
