"""Fault-simulation campaigns.

A campaign pairs a fault universe with a *technique*: a callable that
takes a (fault-free or faulty) target and returns a measurement, plus a
*detector* that compares a faulty measurement against the fault-free
reference and returns a detection score in [0, 1] (the paper's
"percentage of detection instances" divided by 100).
"""

from __future__ import annotations

import concurrent.futures
import functools
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.faults.injector import inject
from repro.faults.model import Fault


@dataclass
class FaultOutcome:
    """Result of one faulty-circuit evaluation."""

    fault: Fault
    detection: float            # fraction of detection instances, [0, 1]
    detected: bool              # detection >= the campaign threshold
    measurement: Any = None     # technique output, kept for diagnosis
    error: Optional[str] = None  # simulation failure, counted as detected
    elapsed_s: float = 0.0

    def describe(self) -> str:
        status = "DETECTED" if self.detected else "missed"
        pct = 100.0 * self.detection
        return f"{self.fault.describe():40s} {pct:6.1f}%  {status}"


@dataclass
class CampaignResult:
    """Aggregate results over a fault universe."""

    target_name: str
    reference: Any
    outcomes: List[FaultOutcome] = field(default_factory=list)
    threshold: float = 0.0

    @property
    def n_faults(self) -> int:
        return len(self.outcomes)

    @property
    def n_detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def coverage(self) -> float:
        """Fraction of the fault universe detected."""
        if not self.outcomes:
            return 0.0
        return self.n_detected / self.n_faults

    def detection_percentages(self) -> List[float]:
        """Per-fault detection-instance percentages (Figure 4's y axis)."""
        return [100.0 * o.detection for o in self.outcomes]

    def table(self) -> str:
        lines = [f"fault campaign on {self.target_name}: "
                 f"{self.n_detected}/{self.n_faults} detected "
                 f"(coverage {100 * self.coverage:.1f}%)"]
        lines.extend(o.describe() for o in self.outcomes)
        return "\n".join(lines)


def _evaluate_fault(technique: Callable[[Any], Any],
                    detector: Callable[[Any, Any], float],
                    threshold: float,
                    treat_errors_as_detected: bool,
                    target: Any, reference: Any,
                    fault: Fault) -> FaultOutcome:
    """Evaluate a single fault against the reference measurement.

    Module-level (not a method) so a process pool can pickle it; the
    serial path calls the very same function, which is what makes
    ``workers=N`` results fault-for-fault identical to ``workers=1``.
    """
    t0 = time.perf_counter()
    try:
        faulty = inject(target, fault)
        measurement = technique(faulty)
        score = float(detector(reference, measurement))
        score = min(1.0, max(0.0, score))
        outcome = FaultOutcome(
            fault=fault,
            detection=score,
            detected=score >= threshold,
            measurement=measurement,
        )
    except Exception as exc:  # noqa: BLE001 - campaign must continue
        if not treat_errors_as_detected:
            raise
        outcome = FaultOutcome(
            fault=fault,
            detection=1.0,
            detected=True,
            error=f"{type(exc).__name__}: {exc}",
        )
    outcome.elapsed_s = time.perf_counter() - t0
    return outcome


class FaultCampaign:
    """Run a measurement technique over a fault universe.

    Parameters
    ----------
    technique:
        ``technique(target) -> measurement``.  Called once on the
        fault-free target to obtain the reference and once per faulty
        copy.
    detector:
        ``detector(reference, measurement) -> float`` in [0, 1]: the
        fraction of detection instances.
    threshold:
        Minimum detection fraction for a fault to count as *detected*.
        The paper treats any significant number of detection instances as
        a detection; the default asks for at least 5 % of time points.
    treat_errors_as_detected:
        A faulty circuit that fails to simulate (e.g. Newton cannot bias
        a hard-shorted netlist) is behaving catastrophically wrong; by
        default that counts as a detection with score 1.0.
    workers:
        Number of worker processes for :meth:`run`.  ``1`` (default)
        evaluates faults serially in-process; ``N > 1`` fans the fault
        universe out over a :class:`concurrent.futures.ProcessPoolExecutor`.
        Faults are independent, so this is embarrassingly parallel;
        results come back in fault order regardless of completion order.
        Requires the technique, detector, target and faults to be
        picklable — if they are not, the campaign warns and falls back
        to serial evaluation.
    """

    def __init__(self, technique: Callable[[Any], Any],
                 detector: Callable[[Any, Any], float],
                 threshold: float = 0.05,
                 treat_errors_as_detected: bool = True,
                 workers: int = 1) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.technique = technique
        self.detector = detector
        self.threshold = threshold
        self.treat_errors_as_detected = treat_errors_as_detected
        self.workers = workers

    def run(self, target: Any, faults: Iterable[Fault],
            reference: Any = None,
            workers: Optional[int] = None) -> CampaignResult:
        """Evaluate every fault; ``reference`` may carry a precomputed
        fault-free measurement to avoid re-simulation.  ``workers``
        overrides the campaign-level worker count for this run."""
        if reference is None:
            reference = self.technique(target)
        name = getattr(target, "name", type(target).__name__)
        result = CampaignResult(target_name=name, reference=reference,
                                threshold=self.threshold)
        fault_list = list(faults)
        n_workers = self.workers if workers is None else workers
        if n_workers < 1:
            raise ValueError("workers must be >= 1")
        n_workers = min(n_workers, len(fault_list)) if fault_list else 1

        evaluate = functools.partial(
            _evaluate_fault, self.technique, self.detector, self.threshold,
            self.treat_errors_as_detected, target, reference)

        if n_workers > 1 and not self._picklable(evaluate, fault_list):
            warnings.warn(
                "fault campaign: technique/detector/target/faults are not "
                "picklable; falling back to serial evaluation",
                RuntimeWarning, stacklevel=2)
            n_workers = 1

        if n_workers > 1:
            # pool.map preserves submission order, so the outcome list is
            # deterministic (fault order) regardless of which worker
            # finishes first.  Chunking amortises IPC over several faults.
            chunksize = max(1, len(fault_list) // (n_workers * 4))
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=n_workers) as pool:
                result.outcomes.extend(
                    pool.map(evaluate, fault_list, chunksize=chunksize))
        else:
            result.outcomes.extend(evaluate(f) for f in fault_list)
        return result

    @staticmethod
    def _picklable(evaluate, fault_list) -> bool:
        try:
            pickle.dumps(evaluate)
            pickle.dumps(fault_list)
        except Exception:  # noqa: BLE001 - any pickle failure means serial
            return False
        return True
