"""Fault-simulation campaigns.

A campaign pairs a fault universe with a *technique*: a callable that
takes a (fault-free or faulty) target and returns a measurement, plus a
*detector* that compares a faulty measurement against the fault-free
reference and returns a detection score in [0, 1] (the paper's
"percentage of detection instances" divided by 100).

Campaigns are fully observable: when an observation scope is active
(:func:`repro.obs.observe` or a :class:`repro.session.Session`), every
fault evaluation — including those in worker processes — captures an
isolated metrics snapshot which is merged back into the ambient
registry, so ``workers=N`` runs report exactly the same counters as a
serial run, plus campaign-level wall-time histograms and a
worker-utilisation gauge.

Campaigns are also *resilient* (see DESIGN.md, "Resilience
architecture"): :meth:`FaultCampaign.run` accepts per-fault and
campaign-wide deadlines, periodic atomic checkpointing with
``resume=True``, and — in pooled mode — survives hung and crashed
worker processes by killing/rebuilding the pool, re-running in-flight
faults and quarantining faults that kill a worker twice.  Everything
that degraded the run is accounted for in the result's
:class:`~repro.resilience.failure.FailureReport`.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.errors import DeadlineExceeded
from repro.faults.injector import inject
from repro.faults.model import Fault
from repro.obs.core import OBS, event, observe
from repro.obs.core import span as obs_span
from repro.obs.health import ProgressTracker
from repro.obs.trace import Span, TraceContext, stamp_pids
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.deadline import Deadline, deadline_scope, installed
from repro.resilience.failure import FailureReport
from repro.service.spec import CampaignSpec

#: internal error policies (see ``FaultCampaign.errors_as_detected``)
_ERROR_DETECTED = "detected"
_ERROR_UNDETECTED = "undetected"

#: extra seconds granted on top of ``fault_timeout_s`` before the parent
#: hard-kills a pooled worker that missed every cooperative check.
_DEFAULT_TIMEOUT_GRACE_S = 1.0

#: fatal worker crashes before a fault is quarantined as a poison pill.
_QUARANTINE_AFTER = 2

#: Sentinel a technique's ``evaluate_batch`` returns in a measurement
#: slot for a fault it could not carry through the batched engine (e.g.
#: injection failed, or the variant was evicted mid-march).  The
#: campaign re-evaluates that fault through the serial per-fault path,
#: so the final :class:`FaultOutcome` is identical to a ``batch_size=1``
#: run.  Never crosses a process boundary: workers resolve fallbacks
#: in-process before returning.
BATCH_FALLBACK = object()

#: sentinel distinguishing "kwarg not passed" from an explicit ``None``
#: in the deprecated ``FaultCampaign.run()`` option kwargs.
_UNSET = object()

#: process-wide once-flag for the legacy run-kwarg warning.
_LEGACY_KWARGS_WARNED = False


def _warn_legacy_kwargs(names: List[str]) -> None:
    global _LEGACY_KWARGS_WARNED
    if _LEGACY_KWARGS_WARNED:
        return
    _LEGACY_KWARGS_WARNED = True
    warnings.warn(
        f"FaultCampaign.run() option kwargs ({', '.join(names)}) are "
        "deprecated; pass one CampaignSpec instead: "
        "run(target, faults, spec=CampaignSpec(...))",
        DeprecationWarning, stacklevel=3)


@dataclass
class FaultOutcome:
    """Result of one faulty-circuit evaluation."""

    fault: Fault
    detection: float            # fraction of detection instances, [0, 1]
    detected: bool              # detection >= the campaign threshold
    measurement: Any = None     # technique output, kept for diagnosis
    error: Optional[str] = None  # simulation failure (see errors_as_detected)
    elapsed_s: float = 0.0
    #: per-fault metrics snapshot (:meth:`repro.obs.Metrics.to_dict`
    #: shape) captured when an observation scope was active; worker
    #: processes ship their counters back through this field.
    metrics: Optional[Dict[str, Dict[str, Any]]] = None
    #: pid of the process that evaluated this fault (straggler
    #: attribution; equals the parent pid in serial campaigns).
    worker_pid: Optional[int] = None
    #: structured events emitted during the evaluation (same isolation
    #: and ship-back story as ``metrics``; merged into the ambient
    #: event log by the parent so serial == workers).
    events: Optional[List[Dict[str, Any]]] = None
    #: the evaluation exceeded its per-fault deadline (``detected`` is
    #: always False for a timeout, regardless of ``errors_as_detected`` —
    #: a timeout says nothing about the device under test).
    timed_out: bool = False
    #: the fault killed a worker process twice and was quarantined as a
    #: poison pill (never counted as detected).
    quarantined: bool = False
    #: the outcome was replayed from a :class:`~repro.service.cache.
    #: ResultCache` hit instead of being simulated.  Diagnostic only —
    #: deliberately absent from :meth:`to_dict`, so a warm re-run's
    #: payload is byte-identical to the cold run that populated the
    #: cache.
    from_cache: bool = False
    #: which engine produced the verdict: ``"transient"`` (the full MNA
    #: march — the default, and what every historical payload implied)
    #: or ``"surrogate"`` (the vector-fitted prescreen classified the
    #: fault outside the margin band and the transient never ran).
    decided_by: str = "transient"
    #: worker-side span forest recorded while evaluating this fault
    #: (same isolation/ship-back story as ``metrics``).  The parent
    #: grafts it under the campaign/job span and clears the field;
    #: deliberately absent from :meth:`to_dict` — trace data belongs to
    #: the trace export, not the campaign payload.
    spans: Optional[List[Any]] = None
    #: reference to the span that produced this outcome, as
    #: ``"<trace_id>:<span path>"`` (absent from :meth:`to_dict`).
    span: Optional[str] = None

    def describe(self) -> str:
        status = "DETECTED" if self.detected else "missed"
        if self.timed_out:
            status += " (timeout)"
        elif self.quarantined:
            status += " (quarantined)"
        elif self.error is not None:
            status += " (error)"
        pct = 100.0 * self.detection
        return f"{self.fault.describe():40s} {pct:6.1f}%  {status}"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "fault": self.fault.describe(),
            "detection": self.detection,
            "detected": self.detected,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }
        # only present when set, so healthy payloads (and their pinned
        # goldens) are unchanged
        if self.timed_out:
            out["timed_out"] = True
        if self.quarantined:
            out["quarantined"] = True
        if self.decided_by != "transient":
            out["decided_by"] = self.decided_by
        return out


@dataclass
class CampaignResult:
    """Aggregate results over a fault universe."""

    target_name: str
    reference: Any
    outcomes: List[FaultOutcome] = field(default_factory=list)
    threshold: float = 0.0
    elapsed_s: float = 0.0
    workers: int = 1
    #: trace span of the campaign run (RunResult protocol; set when an
    #: observation scope was active).
    trace: Any = field(default=None, repr=False, compare=False)
    #: True when not every fault received a genuine evaluation — some
    #: timed out, were quarantined, or were skipped by the campaign
    #: deadline.  CLI entry points exit non-zero for partial runs.
    partial: bool = False
    #: structured degradation accounting (always present; empty —
    #: ``degraded == False`` — for a clean run).
    failures: FailureReport = field(default_factory=FailureReport)
    #: this run's :class:`~repro.service.cache.CacheStats` delta (hits/
    #: misses/disk_hits/corrupt contributed by this run alone); ``None``
    #: when no cache was attached.  Diagnostic — absent from
    #: :meth:`to_dict`, surfaced through :meth:`summary`.
    cache_stats: Any = field(default=None, repr=False, compare=False)

    @property
    def n_faults(self) -> int:
        return len(self.outcomes)

    @property
    def n_detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def n_errors(self) -> int:
        """Faults whose evaluation raised instead of simulating — kept
        visible so solver blowups cannot silently inflate coverage."""
        return sum(1 for o in self.outcomes if o.error is not None)

    @property
    def n_timeouts(self) -> int:
        return sum(1 for o in self.outcomes if o.timed_out)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for o in self.outcomes if o.quarantined)

    @property
    def n_prescreened(self) -> int:
        """Faults decided by the surrogate prescreen (no transient)."""
        return sum(1 for o in self.outcomes
                   if o.decided_by == "surrogate")

    @property
    def n_skipped(self) -> int:
        """Faults never evaluated (campaign deadline expired first)."""
        return len(self.failures.skipped)

    @property
    def coverage(self) -> float:
        """Fraction of the fault universe detected."""
        if not self.outcomes:
            return 0.0
        return self.n_detected / self.n_faults

    def detection_percentages(self) -> List[float]:
        """Per-fault detection-instance percentages (Figure 4's y axis)."""
        return [100.0 * o.detection for o in self.outcomes]

    def table(self) -> str:
        lines = [self.summary()]
        lines.extend(o.describe() for o in self.outcomes)
        return "\n".join(lines)

    def failure_report(self) -> FailureReport:
        """What degraded this run (empty report for a clean run)."""
        return self.failures

    # -- RunResult protocol --------------------------------------------
    def summary(self) -> str:
        line = (f"fault campaign on {self.target_name}: "
                f"{self.n_detected}/{self.n_faults} detected "
                f"(coverage {100 * self.coverage:.1f}%)")
        if self.n_errors:
            line += f", {self.n_errors} simulation errors"
        if self.elapsed_s:
            line += f" [{self.elapsed_s:.2f} s, workers={self.workers}]"
        if self.cache_stats is not None and self.cache_stats.lookups:
            line += f" [{self.cache_stats.describe()}]"
        if self.partial:
            line += " [PARTIAL]"
        if self.failures.degraded:
            line += f" — {self.failures.summary()}"
        return line

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "fault_campaign",
            "target": self.target_name,
            "n_faults": self.n_faults,
            "n_detected": self.n_detected,
            "n_errors": self.n_errors,
            "coverage": self.coverage,
            "threshold": self.threshold,
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }
        # degraded-run keys are conditional so clean payloads (and the
        # goldens pinning them) keep their historical shape
        if self.partial:
            out["partial"] = True
        if self.failures.degraded:
            out["failures"] = self.failures.to_dict()
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out

    def report(self) -> str:
        """Terminal report: summary, per-span profile (when traced),
        the straggler/health verdict and — for a degraded run — the
        failure accounting."""
        from repro.obs.report import result_report
        text = result_report(self) + self.health().summary() + "\n"
        if self.failures.degraded:
            text += f"failures: {self.failures.summary()}\n"
        return text

    def health(self, factor: float = 4.0):
        """Post-hoc health analysis (see
        :func:`repro.obs.health.straggler_report`)."""
        from repro.obs.health import straggler_report
        return straggler_report(self, factor=factor)


def _timeout_outcome(fault: Fault, budget_s: float,
                     elapsed_s: float, killed: bool = False) -> FaultOutcome:
    suffix = " (worker killed)" if killed else ""
    return FaultOutcome(
        fault=fault, detection=0.0, detected=False,
        error=f"timeout: fault budget of {budget_s:g} s exceeded{suffix}",
        timed_out=True, elapsed_s=elapsed_s,
        worker_pid=None if killed else os.getpid())


def _quarantine_outcome(fault: Fault, crashes: int) -> FaultOutcome:
    return FaultOutcome(
        fault=fault, detection=0.0, detected=False,
        error=f"worker crash: quarantined after {crashes} fatal crashes",
        quarantined=True)


def _span_ref(trace_ctx: Optional[TraceContext], name: str) -> str:
    """The ``"<trace_id>:<path>"`` reference an outcome carries back to
    the span that produced it."""
    if trace_ctx is None:
        return name
    path = f"{trace_ctx.parent}/{name}" if trace_ctx.parent else name
    return f"{trace_ctx.trace_id}:{path}"


def _evaluate_fault(technique: Callable[[Any], Any],
                    detector: Callable[[Any, Any], float],
                    threshold: float,
                    on_error: str,
                    collect_obs: bool,
                    fault_timeout_s: Optional[float],
                    target: Any, reference: Any,
                    trace_ctx: Optional[TraceContext],
                    fault: Fault) -> FaultOutcome:
    """Evaluate a single fault against the reference measurement.

    Module-level (not a method) so a process pool can pickle it; the
    serial path calls the very same function, which is what makes
    ``workers=N`` results fault-for-fault identical to ``workers=1``.
    When ``collect_obs`` is set the evaluation runs inside an isolated
    observation scope and the metrics snapshot rides back on the
    outcome — identically in-process and in a worker, which is what
    makes the *metrics* identical too.  The span forest recorded under
    the adopted ``trace_ctx`` rides back the same way (``spans``), for
    the parent to graft under the campaign span.  The per-fault
    deadline is likewise installed here, so cooperative cancellation
    works the same serially and inside a worker.
    """
    if collect_obs:
        with observe() as handle:
            tracer = handle.tracer.adopt(trace_ctx)
            attrs = trace_ctx.attrs() if trace_ctx is not None else {}
            with tracer.span("fault.evaluate",
                             fault=fault.describe(), **attrs):
                outcome = _evaluate_fault_plain(
                    technique, detector, threshold, on_error,
                    fault_timeout_s, target, reference, fault)
        stamp_pids(tracer.spans, os.getpid())
        outcome.metrics = handle.metrics.to_dict()
        outcome.events = handle.events.records()
        outcome.spans = tracer.spans
        outcome.span = _span_ref(trace_ctx, "fault.evaluate")
        return outcome
    return _evaluate_fault_plain(technique, detector, threshold, on_error,
                                 fault_timeout_s, target, reference, fault)


def _evaluate_fault_plain(technique, detector, threshold, on_error,
                          fault_timeout_s, target, reference,
                          fault) -> FaultOutcome:
    t0 = time.perf_counter()
    with deadline_scope(fault_timeout_s, label="fault") as dl:
        try:
            faulty = inject(target, fault)
            measurement = technique(faulty)
            score = float(detector(reference, measurement))
            score = min(1.0, max(0.0, score))
            outcome = FaultOutcome(
                fault=fault,
                detection=score,
                detected=score >= threshold,
                measurement=measurement,
            )
        except DeadlineExceeded as exc:
            if dl is not None and exc.deadline is dl and dl.label == "fault":
                # this fault's own budget ran out: a structured verdict,
                # never a detection
                outcome = _timeout_outcome(fault, dl.seconds,
                                           time.perf_counter() - t0)
            else:
                # an enclosing (campaign) deadline fired — not ours to
                # absorb
                raise
        except Exception as exc:  # noqa: BLE001 - campaign must continue
            as_detected = on_error == _ERROR_DETECTED
            outcome = FaultOutcome(
                fault=fault,
                detection=1.0 if as_detected else 0.0,
                detected=as_detected,
                error=f"{type(exc).__name__}: {exc}",
            )
    outcome.elapsed_s = time.perf_counter() - t0
    outcome.worker_pid = os.getpid()
    return outcome


def _evaluate_fault_batch(technique, detector, threshold, on_error,
                          collect_obs, fault_timeout_s, target, reference,
                          trace_ctx: Optional[TraceContext],
                          faults: List[Fault]) -> List[FaultOutcome]:
    """Evaluate a chunk of faults through the technique's batched path.

    ``technique.evaluate_batch(target, faults)`` returns one measurement
    per fault, with :data:`BATCH_FALLBACK` (or ``None``) in any slot the
    batch could not serve.  Fallback slots — and the entire chunk when
    the batch attempt raises, returns the wrong shape, or exhausts one
    per-fault deadline budget — are re-evaluated through
    :func:`_evaluate_fault`, each under its own fresh budget, so the
    outcome set is fault-for-fault identical to the serial path
    (including timeout verdicts: a chunk that hangs costs one budget,
    then every member gets its own serial-identical evaluation).

    Module-level for the same pickling reason as :func:`_evaluate_fault`.
    When ``collect_obs`` is set the chunk's metrics snapshot rides back
    on the first batch-produced outcome (fallback outcomes carry their
    own isolated snapshots, exactly as in a serial run).
    """
    if collect_obs:
        with observe() as handle:
            tracer = handle.tracer.adopt(trace_ctx)
            attrs = trace_ctx.attrs() if trace_ctx is not None else {}
            with tracer.span("fault.batch", n_faults=len(faults), **attrs):
                outcomes, batch_slots = _evaluate_batch_plain(
                    technique, detector, threshold, on_error, collect_obs,
                    fault_timeout_s, target, reference, trace_ctx, faults)
        stamp_pids(tracer.spans, os.getpid())
        if batch_slots:
            first = outcomes[batch_slots[0]]
            first.metrics = handle.metrics.to_dict()
            first.events = handle.events.records()
            first.spans = tracer.spans
        ref = _span_ref(trace_ctx, "fault.batch")
        for i in batch_slots:
            outcomes[i].span = ref
        return outcomes
    outcomes, _ = _evaluate_batch_plain(
        technique, detector, threshold, on_error, collect_obs,
        fault_timeout_s, target, reference, trace_ctx, faults)
    return outcomes


def _evaluate_batch_plain(technique, detector, threshold, on_error,
                          collect_obs, fault_timeout_s, target, reference,
                          trace_ctx, faults):
    t0 = time.perf_counter()
    measurements = None
    with deadline_scope(fault_timeout_s, label="fault") as dl:
        try:
            got = technique.evaluate_batch(target, faults)
            if got is not None and len(got) == len(faults):
                measurements = list(got)
        except DeadlineExceeded as exc:
            if dl is not None and exc.deadline is dl and dl.label == "fault":
                # the chunk burned one per-fault budget: let the serial
                # re-runs below hand down the individual verdicts
                measurements = None
            else:
                raise
        except Exception:  # noqa: BLE001 - serial re-run owns the verdict
            measurements = None
    batch_elapsed = time.perf_counter() - t0
    if OBS.enabled:
        OBS.metrics.counter("campaign.batches").inc()
    n_batched = (0 if measurements is None
                 else sum(1 for m in measurements
                          if m is not BATCH_FALLBACK and m is not None))
    share = batch_elapsed / max(n_batched, 1)
    outcomes: List[FaultOutcome] = []
    batch_slots: List[int] = []
    for i, fault in enumerate(faults):
        meas = BATCH_FALLBACK if measurements is None else measurements[i]
        if meas is BATCH_FALLBACK or meas is None:
            if OBS.enabled:
                OBS.metrics.counter("campaign.batch_fallbacks").inc()
            outcomes.append(_evaluate_fault(
                technique, detector, threshold, on_error, collect_obs,
                fault_timeout_s, target, reference, trace_ctx, fault))
            continue
        try:
            score = float(detector(reference, meas))
            score = min(1.0, max(0.0, score))
            outcome = FaultOutcome(
                fault=fault,
                detection=score,
                detected=score >= threshold,
                measurement=meas,
            )
        except Exception as exc:  # noqa: BLE001 - mirror the serial policy
            as_detected = on_error == _ERROR_DETECTED
            outcome = FaultOutcome(
                fault=fault,
                detection=1.0 if as_detected else 0.0,
                detected=as_detected,
                error=f"{type(exc).__name__}: {exc}",
            )
        outcome.elapsed_s = share
        outcome.worker_pid = os.getpid()
        batch_slots.append(len(outcomes))
        outcomes.append(outcome)
    return outcomes, batch_slots


def _graft_spans(parent: Span, outcome: FaultOutcome) -> None:
    """Attach an outcome's shipped span forest under the campaign/job
    span (clearing the ship-back field), or synthesise a zero-width
    provenance span for outcomes that never ran a transient — cache
    replays, surrogate verdicts, parent-side timeout/quarantine
    verdicts — so *every* outcome is represented in the trace.
    """
    if outcome.spans:
        for root in outcome.spans:
            if (outcome.worker_pid is not None
                    and "worker_pid" not in root.attrs):
                root.attrs["worker_pid"] = outcome.worker_pid
            parent.children.append(root)
        outcome.spans = None
        return
    if outcome.span is not None:
        # covered by a sibling's forest (non-carrier slot of a batched
        # chunk): the chunk span already represents it
        return
    if outcome.from_cache:
        name = "fault.cached"
    elif outcome.decided_by != "transient":
        name = "fault.prescreened"
    else:
        name = "fault.verdict"
    now = time.perf_counter()
    node = Span(name, attrs={"fault": outcome.fault.describe()},
                t_start=now)
    node.close(t_end=now)
    node.pid = os.getpid()
    if outcome.from_cache:
        node.attrs["from_cache"] = True
    if outcome.decided_by != "transient":
        node.attrs["decided_by"] = outcome.decided_by
    if outcome.error is not None:
        node.attrs["error"] = outcome.error
    parent.children.append(node)
    outcome.span = f"{parent.name}/{name}"


class FaultCampaign:
    """Run a measurement technique over a fault universe.

    Parameters
    ----------
    technique:
        ``technique(target) -> measurement``.  Called once on the
        fault-free target to obtain the reference and once per faulty
        copy.
    detector:
        ``detector(reference, measurement) -> float`` in [0, 1]: the
        fraction of detection instances.
    threshold:
        Minimum detection fraction for a fault to count as *detected*.
        The paper treats any significant number of detection instances as
        a detection; the default asks for at least 5 % of time points.
    errors_as_detected:
        Policy for a faulty circuit that fails to simulate (e.g. Newton
        cannot bias a hard-shorted netlist).  ``True`` (default): such a
        circuit is behaving catastrophically wrong and counts as a
        detection with score 1.0.  ``False``: the fault is recorded as a
        *miss* with score 0.0 and its error string kept, so simulator
        blowups reduce rather than inflate coverage.  Either way
        :attr:`CampaignResult.n_errors` reports how many faults errored.
        Timeouts and quarantines are *infrastructure* verdicts and are
        never counted as detected under either policy.
    workers:
        Number of worker processes for :meth:`run`.  ``1`` (default)
        evaluates faults serially in-process; ``N > 1`` fans the fault
        universe out over a :class:`concurrent.futures.ProcessPoolExecutor`.
        Faults are independent, so this is embarrassingly parallel;
        results come back in fault order regardless of completion order.
        Requires the technique, detector, target and faults to be
        picklable — if they are not, the campaign warns and falls back
        to serial evaluation.
    batch_size:
        Faults marched per batched-engine call.  ``1`` (default) uses
        the per-fault path.  ``K > 1`` chunks the universe and hands
        each chunk to the technique's ``evaluate_batch(target, faults)``
        (techniques without that method keep the per-fault path), which
        typically routes through
        :func:`repro.spice.batched.batched_transient` to march all K
        faulty variants in lockstep.  Composes with ``workers=N``: each
        pool worker marches one chunk.  Outcomes, obs counters,
        deadlines and checkpoint keys are unchanged — a fault the batch
        cannot serve (or a chunk that times out) is transparently
        re-evaluated per fault, so results are identical to
        ``batch_size=1``.
    cache:
        Optional :class:`~repro.service.cache.ResultCache` consulted
        before — and populated after — every fault evaluation, keyed by
        the per-fault content hash.  A spec-level cache
        (``CampaignSpec.cache``) overrides it per run.  A fully warm
        cache replays the whole campaign without a single simulation.
    """

    def __init__(self, technique: Callable[[Any], Any],
                 detector: Callable[[Any, Any], float],
                 threshold: float = 0.05,
                 workers: int = 1,
                 errors_as_detected: bool = True,
                 batch_size: int = 1,
                 cache: Optional[Any] = None) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.technique = technique
        self.detector = detector
        self.threshold = threshold
        self.workers = workers
        self.batch_size = batch_size
        self.cache = cache
        self._on_error = (_ERROR_DETECTED if errors_as_detected
                          else _ERROR_UNDETECTED)

    @property
    def errors_as_detected(self) -> bool:
        return self._on_error == _ERROR_DETECTED

    @errors_as_detected.setter
    def errors_as_detected(self, value: bool) -> None:
        self._on_error = _ERROR_DETECTED if value else _ERROR_UNDETECTED

    def run(self, target: Any = None,
            faults: Optional[Iterable[Fault]] = None,
            reference: Any = None,
            workers: Any = _UNSET,
            progress: Any = _UNSET,
            heartbeat_every: Any = _UNSET,
            *,
            spec: Optional[CampaignSpec] = None,
            batch_size: Any = _UNSET,
            fault_timeout_s: Any = _UNSET,
            campaign_deadline_s: Any = _UNSET,
            checkpoint: Any = _UNSET,
            resume: Any = _UNSET,
            checkpoint_every: Any = _UNSET,
            timeout_grace_s: Any = _UNSET
            ) -> CampaignResult:
        """Evaluate every fault; ``reference`` may carry a precomputed
        fault-free measurement to avoid re-simulation.

        How to run the campaign — workers, batching, per-fault/campaign
        deadlines, checkpointing, progress reporting, result caching —
        is described by one frozen
        :class:`~repro.service.spec.CampaignSpec` passed as ``spec=``.
        Spec options left ``None`` inherit the campaign's constructor
        configuration (then package defaults); the same spec object can
        be handed unchanged to
        :meth:`repro.service.scheduler.CampaignScheduler.submit`.  The
        loose option kwargs of the pre-service API (``workers=``,
        ``batch_size=``, ``checkpoint=`` …) still work but are
        deprecated: they warn once per process and cannot be mixed with
        ``spec=``.

        ``spec.progress`` is called after every completed fault with a
        :class:`~repro.obs.health.CampaignProgress` (done/total, ETA,
        rate, evaluating pid); completion is reported in fault order in
        both the serial and the pooled path, so the callback sees the
        same sequence either way.  Under an observation scope the run
        additionally emits ``campaign.heartbeat`` events (and a
        ``campaign.heartbeats`` counter) every ``heartbeat_every``
        completions.

        Resilience knobs (all on the spec)
        ----------------------------------
        fault_timeout_s:
            Wall-clock budget per fault.  Serially (and cooperatively in
            workers) the engine's Newton/transient/march loops check the
            deadline; in pooled mode the parent additionally hard-kills
            and rebuilds the pool ``timeout_grace_s`` after the budget,
            which also catches techniques that never reach a cooperative
            check.  A timed-out fault is recorded as a structured
            outcome (``timed_out=True``, ``error="timeout: ..."``) and
            is never counted as detected.
        campaign_deadline_s:
            Budget for the whole run.  On expiry, evaluation stops;
            faults never evaluated are listed in
            ``result.failures.skipped`` and the result is ``partial``.
        checkpoint / resume / checkpoint_every:
            ``checkpoint=path`` persists completed outcomes atomically
            every ``checkpoint_every`` completions, keyed by a content
            hash of (technique, fault universe, config).
            ``resume=True`` reloads the file, skips finished faults and
            produces a result whose ``to_dict()`` matches an
            uninterrupted run's.  Resuming a file written for a
            different campaign raises
            :class:`~repro.errors.CheckpointError`.
        cache:
            A :class:`~repro.service.cache.ResultCache` (spec- or
            campaign-level) replays any fault already computed under an
            identical evaluation context; fresh outcomes are stored
            back.  A fully warm cache re-runs the campaign without a
            single simulation — including the fault-free reference,
            which is only computed when at least one fault misses.
        """
        legacy = {k: v for k, v in (
            ("workers", workers), ("progress", progress),
            ("heartbeat_every", heartbeat_every),
            ("batch_size", batch_size),
            ("fault_timeout_s", fault_timeout_s),
            ("campaign_deadline_s", campaign_deadline_s),
            ("checkpoint", checkpoint), ("resume", resume),
            ("checkpoint_every", checkpoint_every),
            ("timeout_grace_s", timeout_grace_s)) if v is not _UNSET}
        if legacy:
            if spec is not None:
                raise ValueError(
                    "FaultCampaign.run() got both spec= and legacy option "
                    f"kwargs ({', '.join(sorted(legacy))}); put the "
                    "options on the CampaignSpec")
            _warn_legacy_kwargs(sorted(legacy))
            spec = CampaignSpec(**legacy)
        elif spec is None:
            spec = CampaignSpec()

        if target is not None:
            spec = spec.replace(target=target)
        if faults is not None:
            spec = spec.replace(faults=tuple(faults))
        if reference is not None:
            spec = spec.replace(reference=reference)
        spec = spec.replace(technique=self.technique,
                            detector=self.detector)
        spec.require_workload()
        rspec = spec.resolved(threshold=self.threshold,
                              errors_as_detected=self.errors_as_detected,
                              workers=self.workers,
                              batch_size=self.batch_size)

        target = rspec.target
        reference = rspec.reference
        threshold = rspec.threshold
        on_error = rspec.on_error
        n_batch = rspec.batch_size
        fault_timeout_s = rspec.fault_timeout_s
        campaign_deadline_s = rspec.campaign_deadline_s
        timeout_grace_s = rspec.timeout_grace_s
        cache = rspec.cache if rspec.cache is not None else self.cache

        t_start = time.perf_counter()
        name = rspec.name or getattr(target, "name",
                                     type(target).__name__)
        with obs_span("campaign", target=name) as sp:
            failures = FailureReport()
            result = CampaignResult(target_name=name, reference=reference,
                                    threshold=threshold,
                                    failures=failures)
            fault_list = list(rspec.faults)
            n_workers = rspec.workers
            n_workers = min(n_workers, len(fault_list)) if fault_list else 1
            collect_obs = OBS.enabled
            # captured inside the campaign span, so worker-side roots
            # record this exact position in the trace as their parent
            trace_ctx = TraceContext.capture()

            ckpt: Optional[CampaignCheckpoint] = None
            restored: Dict[int, FaultOutcome] = {}
            if rspec.checkpoint is not None:
                ckpt = CampaignCheckpoint(rspec.checkpoint,
                                          rspec.content_key(),
                                          every=rspec.checkpoint_every)
                if rspec.resume:
                    restored = {i: o for i, o in ckpt.load().items()
                                if 0 <= i < len(fault_list)}

            campaign_dl = (Deadline(campaign_deadline_s, label="campaign")
                           if campaign_deadline_s is not None else None)

            tracker = ProgressTracker(len(fault_list),
                                      callback=rspec.progress,
                                      heartbeat_every=rspec.heartbeat_every)
            outcomes: Dict[int, FaultOutcome] = {}
            cache_context = (rspec.context_key() if cache is not None
                             else None)
            cache_stats0 = (cache.stats.snapshot() if cache is not None
                            else None)
            # surrogate verdicts live under their own context key —
            # prescreened and full runs must never replay each other's
            # entries (the surrogate's score is not the transient's)
            surrogate_context = (rspec.surrogate_context_key()
                                 if cache is not None
                                 and rspec.prescreen == "surrogate"
                                 else None)

            def record(idx: int, outcome: FaultOutcome,
                       save: bool = True) -> None:
                outcomes[idx] = outcome
                if outcome.timed_out:
                    failures.timeouts.append(outcome.fault.describe())
                    if OBS.enabled:
                        OBS.metrics.counter("campaign.fault_timeouts").inc()
                        event("campaign.fault_timeout", level="warning",
                              fault=outcome.fault.describe(),
                              budget_s=fault_timeout_s)
                if outcome.quarantined:
                    failures.quarantined.append(outcome.fault.describe())
                    if OBS.enabled:
                        OBS.metrics.counter("campaign.quarantined").inc()
                        event("campaign.quarantine", level="error",
                              fault=outcome.fault.describe())
                if cache is not None and not outcome.from_cache:
                    if outcome.decided_by == "surrogate":
                        if surrogate_context is not None:
                            cache.put(surrogate_context, outcome)
                    else:
                        cache.put(cache_context, outcome)
                tracker.update(outcome)
                if ckpt is not None and save:
                    ckpt.maybe_save(outcomes, len(fault_list))

            # replay checkpointed outcomes (in fault order) so progress
            # and failure accounting match the uninterrupted run
            for idx in sorted(restored):
                record(idx, restored[idx], save=False)

            # then replay cache hits, still in fault order; only what
            # is left after both replays is ever dispatched
            if cache is not None:
                for idx in range(len(fault_list)):
                    if idx in outcomes:
                        continue
                    # a prescreened run probes the surrogate context
                    # first (silently — the authoritative miss counter
                    # is the transient context's), then the shared
                    # transient context, so a warm prescreened re-run
                    # replays both verdict kinds without a simulation
                    hit = None
                    if surrogate_context is not None:
                        hit = cache.get(surrogate_context,
                                        fault_list[idx], threshold,
                                        count_miss=False)
                    if hit is None:
                        hit = cache.get(cache_context, fault_list[idx],
                                        threshold)
                    if hit is not None:
                        record(idx, hit)

            pending = [i for i in range(len(fault_list))
                       if i not in outcomes]

            if pending and rspec.prescreen == "surrogate":
                # the prescreen runs in the parent, before the MNA
                # reference is even computed: a fully surrogate-decided
                # campaign performs zero transient simulations
                from repro.surrogate.prescreen import SurrogatePrescreen
                prescreen = SurrogatePrescreen(
                    self.technique, self.detector, threshold,
                    config=rspec.prescreen_config)
                verdicts = prescreen.classify(
                    target, [fault_list[i] for i in pending])
                escalated = []
                for idx, verdict in zip(pending, verdicts):
                    if verdict is None:
                        escalated.append(idx)
                    else:
                        record(idx, verdict)
                pending = escalated

            if pending:
                if reference is None:
                    # lazy on purpose: a fully restored/cached campaign
                    # re-runs without a single simulation, reference
                    # included
                    reference = self.technique(target)
                    result.reference = reference

                evaluate = functools.partial(
                    _evaluate_fault, self.technique, self.detector,
                    threshold, on_error, collect_obs,
                    fault_timeout_s, target, reference, trace_ctx)
                # Batched dispatch needs the technique to implement the
                # batch protocol; otherwise the knob degrades to
                # per-fault.
                use_batch = (n_batch > 1
                             and hasattr(self.technique, "evaluate_batch"))
                evaluate_batch = (functools.partial(
                    _evaluate_fault_batch, self.technique, self.detector,
                    threshold, on_error, collect_obs,
                    fault_timeout_s, target, reference, trace_ctx)
                    if use_batch else None)

                if n_workers > 1 and not self._picklable(evaluate,
                                                         fault_list):
                    warnings.warn(
                        "fault campaign: technique/detector/target/faults "
                        "are not picklable; falling back to serial "
                        "evaluation",
                        RuntimeWarning, stacklevel=2)
                    if OBS.enabled:
                        OBS.metrics.counter(
                            "campaign.pickle_fallbacks").inc()
                    n_workers = 1

                if n_workers > 1 and use_batch:
                    self._run_pooled_batched(evaluate_batch, evaluate,
                                             fault_list, pending, n_workers,
                                             n_batch, record, failures,
                                             campaign_dl, fault_timeout_s,
                                             timeout_grace_s)
                elif n_workers > 1:
                    self._run_pooled(evaluate, fault_list, pending,
                                     n_workers, record, failures,
                                     campaign_dl, fault_timeout_s,
                                     timeout_grace_s)
                elif use_batch:
                    self._run_serial_batched(evaluate_batch, fault_list,
                                             pending, n_batch, record,
                                             failures, campaign_dl)
                else:
                    self._run_serial(evaluate, fault_list, pending, record,
                                     failures, campaign_dl)

            # anything with no outcome was cut off by the campaign
            # deadline: account for it in index order
            unevaluated = [i for i in pending if i not in outcomes]
            if unevaluated:
                failures.skipped.extend(
                    fault_list[i].describe() for i in unevaluated)
                if OBS.enabled:
                    OBS.metrics.counter("campaign.skipped").inc(
                        len(unevaluated))
                    event("campaign.deadline", level="warning",
                          skipped=len(unevaluated),
                          budget_s=campaign_deadline_s)

            result.outcomes = [outcomes[i] for i in sorted(outcomes)]
            result.partial = bool(failures.skipped or failures.deadline_hit
                                  or failures.timeouts
                                  or failures.quarantined)
            if ckpt is not None:
                ckpt.save(outcomes, len(fault_list))

            result.workers = n_workers
            result.elapsed_s = time.perf_counter() - t_start
            if cache is not None:
                result.cache_stats = cache.stats.delta(cache_stats0)
            self._record_obs(result, sp)
        if OBS.enabled:
            result.trace = sp
        ledger = OBS.ledger
        if ledger is not None:
            # history is best-effort persistence: a full disk or a
            # read-only path must never fail the campaign itself
            try:
                ledger.record_campaign(result, key=rspec.content_key(),
                                       name=name,
                                       prescreen=rspec.prescreen)
            except Exception:  # noqa: BLE001
                pass
        return result

    # ------------------------------------------------------------------
    def _run_serial(self, evaluate, fault_list, pending, record,
                    failures: FailureReport,
                    campaign_dl: Optional[Deadline]) -> None:
        """In-process evaluation with cooperative deadlines."""
        with installed(campaign_dl):
            for idx in pending:
                if campaign_dl is not None and campaign_dl.expired():
                    failures.deadline_hit = True
                    return
                try:
                    outcome = evaluate(fault_list[idx])
                except DeadlineExceeded as exc:
                    if (campaign_dl is not None
                            and exc.deadline is campaign_dl):
                        failures.deadline_hit = True
                        return
                    raise
                record(idx, outcome)

    # ------------------------------------------------------------------
    def _run_serial_batched(self, evaluate_batch, fault_list, pending,
                            n_batch, record, failures: FailureReport,
                            campaign_dl: Optional[Deadline]) -> None:
        """Chunked in-process evaluation: same deadline contract as
        :meth:`_run_serial`, with ``n_batch`` faults handed to the
        batched engine per call and outcomes recorded in fault order."""
        with installed(campaign_dl):
            for start in range(0, len(pending), n_batch):
                chunk = pending[start:start + n_batch]
                if campaign_dl is not None and campaign_dl.expired():
                    failures.deadline_hit = True
                    return
                try:
                    outcomes = evaluate_batch(
                        [fault_list[i] for i in chunk])
                except DeadlineExceeded as exc:
                    if (campaign_dl is not None
                            and exc.deadline is campaign_dl):
                        failures.deadline_hit = True
                        return
                    raise
                for idx, outcome in zip(chunk, outcomes):
                    record(idx, outcome)

    # ------------------------------------------------------------------
    def _run_pooled_batched(self, evaluate_batch, evaluate, fault_list,
                            pending, n_workers, n_batch, record,
                            failures: FailureReport,
                            campaign_dl: Optional[Deadline],
                            fault_timeout_s: Optional[float],
                            timeout_grace_s: float) -> None:
        """Chunk-per-future scheduler: each pool worker marches one
        batch.  Chunks are emitted strictly in fault order (buffered
        until the next expected chunk lands), so progress callbacks,
        heartbeats and checkpoints see the serial sequence.

        A chunk worst-cases at ``(len(chunk) + 1)`` per-fault budgets —
        one batch attempt plus a serial re-run per member — so that is
        the parent's hard-kill horizon.  A chunk whose worker crashes
        or goes silent past it is *rescued*: its faults are re-run
        through the per-fault pooled scheduler (full crash/quarantine/
        hang protocol), so every fault still ends with a
        serial-identical outcome.
        """
        BrokenExecutor = concurrent.futures.BrokenExecutor
        chunks = [pending[i:i + n_batch]
                  for i in range(0, len(pending), n_batch)]
        buffered: Dict[int, Dict[int, FaultOutcome]] = {}
        emitted = 0
        in_flight: Dict[concurrent.futures.Future, int] = {}
        started: Dict[concurrent.futures.Future, float] = {}
        next_submit = 0
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=n_workers)

        def chunk_budget(ci: int) -> Optional[float]:
            if fault_timeout_s is None:
                return None
            return ((len(chunks[ci]) + 1) * fault_timeout_s
                    + timeout_grace_s)

        def kill_pool() -> None:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:  # noqa: BLE001 - already dead is fine
                    pass
            pool.shutdown(wait=False, cancel_futures=True)

        def emit_ready() -> None:
            nonlocal emitted
            while emitted < len(chunks) and emitted in buffered:
                outs = buffered.pop(emitted)
                for idx in chunks[emitted]:
                    if idx in outs:
                        record(idx, outs[idx])
                emitted += 1

        def rescue(chunk_indices: List[int]) -> None:
            """Re-run a failed chunk through the per-fault pooled
            scheduler (its own pool, timeouts, quarantine)."""
            outs: Dict[int, FaultOutcome] = {}

            def collect(idx: int, outcome: FaultOutcome,
                        save: bool = True) -> None:
                outs[idx] = outcome

            self._run_pooled(evaluate, fault_list, list(chunk_indices),
                             min(n_workers, len(chunk_indices)), collect,
                             failures, campaign_dl, fault_timeout_s,
                             timeout_grace_s)
            for ci, chunk in enumerate(chunks):
                if any(i in outs for i in chunk):
                    buffered.setdefault(ci, {}).update(
                        {i: outs[i] for i in chunk if i in outs})

        def handle_crash(crashed: List[int]) -> None:
            nonlocal pool
            failures.worker_crashes += 1
            failures.pools_killed += 1
            kill_pool()
            to_rescue = sorted(set(crashed) | set(in_flight.values()))
            in_flight.clear()
            started.clear()
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=n_workers)
            if OBS.enabled:
                OBS.metrics.counter("campaign.worker_crashes").inc()
                OBS.metrics.counter("campaign.pools_killed").inc()
                event("campaign.worker_crash", level="error",
                      batched=True, chunks=len(to_rescue))
            for ci in to_rescue:
                rescue(chunks[ci])

        try:
            while next_submit < len(chunks) or in_flight:
                if campaign_dl is not None and campaign_dl.expired():
                    failures.deadline_hit = True
                    kill_pool()
                    break

                while next_submit < len(chunks) and len(in_flight) < n_workers:
                    ci = next_submit
                    try:
                        fut = pool.submit(
                            evaluate_batch,
                            [fault_list[i] for i in chunks[ci]])
                    except BrokenExecutor:
                        handle_crash([ci])
                        next_submit = ci + 1
                        break
                    in_flight[fut] = ci
                    started[fut] = time.monotonic()
                    next_submit = ci + 1
                if not in_flight:
                    emit_ready()
                    continue

                waits = []
                now = time.monotonic()
                for fut, ci in in_flight.items():
                    b = chunk_budget(ci)
                    if b is not None:
                        waits.append(started[fut] + b - now)
                if campaign_dl is not None:
                    waits.append(campaign_dl.remaining())
                wait_s = max(0.0, min(waits)) + 0.02 if waits else None
                done_futs, _ = concurrent.futures.wait(
                    list(in_flight), timeout=wait_s,
                    return_when=concurrent.futures.FIRST_COMPLETED)

                crashed: List[int] = []
                for fut in done_futs:
                    ci = in_flight.pop(fut)
                    started.pop(fut, None)
                    try:
                        outcomes = fut.result()
                    except BrokenExecutor:
                        crashed.append(ci)
                        continue
                    except Exception:
                        # genuine error under on_error="raise": propagate
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                    buffered[ci] = dict(zip(chunks[ci], outcomes))
                if crashed:
                    handle_crash(crashed)
                    emit_ready()
                    continue

                if fault_timeout_s is not None and in_flight:
                    now = time.monotonic()
                    hung = [ci for fut, ci in in_flight.items()
                            if now - started[fut] > chunk_budget(ci)]
                    if hung:
                        # the whole pool goes (a kill is pool-wide);
                        # hung and innocent chunks alike are rescued
                        # through the per-fault protocol
                        failures.pools_killed += 1
                        to_rescue = sorted(set(in_flight.values()))
                        kill_pool()
                        in_flight.clear()
                        started.clear()
                        pool = concurrent.futures.ProcessPoolExecutor(
                            max_workers=n_workers)
                        if OBS.enabled:
                            OBS.metrics.counter(
                                "campaign.pools_killed").inc()
                        for ci in to_rescue:
                            rescue(chunks[ci])

                emit_ready()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        for ci in sorted(buffered):
            outs = buffered[ci]
            for idx in chunks[ci]:
                if idx in outs:
                    record(idx, outs[idx])
        buffered.clear()

    # ------------------------------------------------------------------
    def _run_pooled(self, evaluate, fault_list, pending, n_workers, record,
                    failures: FailureReport,
                    campaign_dl: Optional[Deadline],
                    fault_timeout_s: Optional[float],
                    timeout_grace_s: float) -> None:
        """Submit-window scheduler over a worker pool.

        Unlike ``pool.map``, every fault is its own future, which is
        what enables per-fault wall-clock enforcement and exact blame
        when a worker dies.  Completion is *emitted* strictly in fault
        order (buffered until the next expected index arrives), so
        progress callbacks, heartbeats and checkpoints see the same
        sequence as a serial run.

        Crash protocol: a dead pool fails every in-flight future, so the
        first crash can only blame the whole in-flight set (one strike
        each).  The scheduler then drops to a one-at-a-time window and
        re-runs the suspects; only the true poison pill crashes alone,
        collects its second strike and is quarantined — innocents
        complete and are exonerated.
        """
        BrokenExecutor = concurrent.futures.BrokenExecutor
        queue: List[int] = list(pending)
        emit_order: List[int] = list(pending)
        buffered: Dict[int, FaultOutcome] = {}
        ptr = 0
        suspects: Set[int] = set()
        crash_counts: Dict[int, int] = {}
        in_flight: Dict[concurrent.futures.Future, int] = {}
        started: Dict[concurrent.futures.Future, float] = {}
        budget = (None if fault_timeout_s is None
                  else fault_timeout_s + timeout_grace_s)
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=n_workers)

        def kill_pool() -> None:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:  # noqa: BLE001 - already dead is fine
                    pass
            pool.shutdown(wait=False, cancel_futures=True)

        def emit_ready() -> None:
            nonlocal ptr
            while ptr < len(emit_order) and emit_order[ptr] in buffered:
                idx = emit_order[ptr]
                record(idx, buffered.pop(idx))
                ptr += 1

        def handle_crash(crash_idxs: Set[int]) -> None:
            nonlocal pool
            failures.worker_crashes += 1
            failures.pools_killed += 1
            kill_pool()
            requeue: List[int] = []
            for i in sorted(crash_idxs):
                crash_counts[i] = crash_counts.get(i, 0) + 1
                if crash_counts[i] >= _QUARANTINE_AFTER:
                    buffered[i] = _quarantine_outcome(fault_list[i],
                                                      crash_counts[i])
                    suspects.discard(i)
                else:
                    suspects.add(i)
                    requeue.append(i)
            in_flight.clear()
            started.clear()
            queue[:0] = requeue
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=n_workers)
            if OBS.enabled:
                OBS.metrics.counter("campaign.worker_crashes").inc()
                OBS.metrics.counter("campaign.pools_killed").inc()
                event("campaign.worker_crash", level="error",
                      in_flight=len(crash_idxs),
                      suspects=sorted(fault_list[i].describe()
                                      for i in suspects))

        try:
            while queue or in_flight:
                if campaign_dl is not None and campaign_dl.expired():
                    failures.deadline_hit = True
                    kill_pool()
                    break

                # fill the window (one at a time while blame is being
                # attributed after a crash)
                cap = 1 if suspects else n_workers
                while queue and len(in_flight) < cap:
                    idx = queue.pop(0)
                    try:
                        fut = pool.submit(evaluate, fault_list[idx])
                    except BrokenExecutor:
                        handle_crash({idx} | set(in_flight.values()))
                        break
                    in_flight[fut] = idx
                    started[fut] = time.monotonic()
                if not in_flight:
                    continue

                waits = []
                if budget is not None:
                    waits.append(min(started.values()) + budget
                                 - time.monotonic())
                if campaign_dl is not None:
                    waits.append(campaign_dl.remaining())
                wait_s = max(0.0, min(waits)) + 0.02 if waits else None
                done_futs, _ = concurrent.futures.wait(
                    list(in_flight), timeout=wait_s,
                    return_when=concurrent.futures.FIRST_COMPLETED)

                crashed_idxs: Set[int] = set()
                for fut in done_futs:
                    idx = in_flight.pop(fut)
                    started.pop(fut, None)
                    try:
                        outcome = fut.result()
                    except BrokenExecutor:
                        crashed_idxs.add(idx)
                        continue
                    except Exception:
                        # genuine technique error under on_error="raise":
                        # propagate, as the serial path would
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                    suspects.discard(idx)
                    buffered[idx] = outcome
                if crashed_idxs:
                    handle_crash(crashed_idxs | set(in_flight.values()))
                    emit_ready()
                    continue

                if budget is not None and in_flight:
                    now = time.monotonic()
                    hung = {fut: idx for fut, idx in in_flight.items()
                            if now - started[fut] > budget}
                    if hung:
                        # a worker missed every cooperative check — kill
                        # the pool, time out the overdue faults, re-run
                        # the innocent in-flight ones
                        failures.pools_killed += 1
                        kill_pool()
                        requeue = []
                        for fut, idx in list(in_flight.items()):
                            t0 = started.pop(fut)
                            if fut in hung:
                                buffered[idx] = _timeout_outcome(
                                    fault_list[idx], fault_timeout_s,
                                    now - t0, killed=True)
                                suspects.discard(idx)
                            else:
                                requeue.append(idx)
                        in_flight.clear()
                        queue[:0] = sorted(requeue)
                        pool = concurrent.futures.ProcessPoolExecutor(
                            max_workers=n_workers)
                        if OBS.enabled:
                            OBS.metrics.counter(
                                "campaign.pools_killed").inc()

                emit_ready()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        # flush anything completed but unemitted (e.g. results that
        # arrived out of order before a deadline abort)
        for idx in sorted(buffered):
            record(idx, buffered[idx])
        buffered.clear()

    # ------------------------------------------------------------------
    def _record_obs(self, result: CampaignResult, sp) -> None:
        """Merge per-fault snapshots and record campaign-level metrics."""
        if not OBS.enabled:
            return
        m = OBS.metrics
        busy = 0.0
        for o in result.outcomes:
            m.merge(o.metrics)
            if o.events:
                OBS.events.extend(o.events)
            _graft_spans(sp, o)
            m.histogram("campaign.fault_wall_s").observe(o.elapsed_s)
            busy += o.elapsed_s
        m.counter("campaign.runs").inc()
        m.counter("campaign.faults_evaluated").inc(result.n_faults)
        m.counter("campaign.errors").inc(result.n_errors)
        if result.elapsed_s > 0.0 and result.n_faults:
            m.gauge("campaign.worker_utilization").set(
                busy / (result.elapsed_s * result.workers))
        sp.set(n_faults=result.n_faults, n_detected=result.n_detected,
               n_errors=result.n_errors, coverage=result.coverage,
               workers=result.workers)
        if result.n_prescreened:
            sp.set(n_prescreened=result.n_prescreened)
        if result.partial or result.failures.degraded:
            sp.set(partial=result.partial,
                   failures=result.failures.summary())

    @staticmethod
    def _picklable(evaluate, fault_list) -> bool:
        try:
            pickle.dumps(evaluate)
            pickle.dumps(fault_list)
        except Exception:  # noqa: BLE001 - any pickle failure means serial
            return False
        return True
