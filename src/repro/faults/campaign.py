"""Fault-simulation campaigns.

A campaign pairs a fault universe with a *technique*: a callable that
takes a (fault-free or faulty) target and returns a measurement, plus a
*detector* that compares a faulty measurement against the fault-free
reference and returns a detection score in [0, 1] (the paper's
"percentage of detection instances" divided by 100).

Campaigns are fully observable: when an observation scope is active
(:func:`repro.obs.observe` or a :class:`repro.session.Session`), every
fault evaluation — including those in worker processes — captures an
isolated metrics snapshot which is merged back into the ambient
registry, so ``workers=N`` runs report exactly the same counters as a
serial run, plus campaign-level wall-time histograms and a
worker-utilisation gauge.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.faults.injector import inject
from repro.faults.model import Fault
from repro.obs.core import OBS, observe
from repro.obs.core import span as obs_span
from repro.obs.health import ProgressCallback, ProgressTracker

#: internal error policies (see ``FaultCampaign.errors_as_detected``)
_ERROR_DETECTED = "detected"
_ERROR_UNDETECTED = "undetected"
_ERROR_RAISE = "raise"


@dataclass
class FaultOutcome:
    """Result of one faulty-circuit evaluation."""

    fault: Fault
    detection: float            # fraction of detection instances, [0, 1]
    detected: bool              # detection >= the campaign threshold
    measurement: Any = None     # technique output, kept for diagnosis
    error: Optional[str] = None  # simulation failure (see errors_as_detected)
    elapsed_s: float = 0.0
    #: per-fault metrics snapshot (:meth:`repro.obs.Metrics.to_dict`
    #: shape) captured when an observation scope was active; worker
    #: processes ship their counters back through this field.
    metrics: Optional[Dict[str, Dict[str, Any]]] = None
    #: pid of the process that evaluated this fault (straggler
    #: attribution; equals the parent pid in serial campaigns).
    worker_pid: Optional[int] = None
    #: structured events emitted during the evaluation (same isolation
    #: and ship-back story as ``metrics``; merged into the ambient
    #: event log by the parent so serial == workers).
    events: Optional[List[Dict[str, Any]]] = None

    def describe(self) -> str:
        status = "DETECTED" if self.detected else "missed"
        if self.error is not None:
            status += " (error)"
        pct = 100.0 * self.detection
        return f"{self.fault.describe():40s} {pct:6.1f}%  {status}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.fault.describe(),
            "detection": self.detection,
            "detected": self.detected,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class CampaignResult:
    """Aggregate results over a fault universe."""

    target_name: str
    reference: Any
    outcomes: List[FaultOutcome] = field(default_factory=list)
    threshold: float = 0.0
    elapsed_s: float = 0.0
    workers: int = 1
    #: trace span of the campaign run (RunResult protocol; set when an
    #: observation scope was active).
    trace: Any = field(default=None, repr=False, compare=False)

    @property
    def n_faults(self) -> int:
        return len(self.outcomes)

    @property
    def n_detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def n_errors(self) -> int:
        """Faults whose evaluation raised instead of simulating — kept
        visible so solver blowups cannot silently inflate coverage."""
        return sum(1 for o in self.outcomes if o.error is not None)

    @property
    def coverage(self) -> float:
        """Fraction of the fault universe detected."""
        if not self.outcomes:
            return 0.0
        return self.n_detected / self.n_faults

    def detection_percentages(self) -> List[float]:
        """Per-fault detection-instance percentages (Figure 4's y axis)."""
        return [100.0 * o.detection for o in self.outcomes]

    def table(self) -> str:
        lines = [self.summary()]
        lines.extend(o.describe() for o in self.outcomes)
        return "\n".join(lines)

    # -- RunResult protocol --------------------------------------------
    def summary(self) -> str:
        line = (f"fault campaign on {self.target_name}: "
                f"{self.n_detected}/{self.n_faults} detected "
                f"(coverage {100 * self.coverage:.1f}%)")
        if self.n_errors:
            line += f", {self.n_errors} simulation errors"
        if self.elapsed_s:
            line += f" [{self.elapsed_s:.2f} s, workers={self.workers}]"
        return line

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "fault_campaign",
            "target": self.target_name,
            "n_faults": self.n_faults,
            "n_detected": self.n_detected,
            "n_errors": self.n_errors,
            "coverage": self.coverage,
            "threshold": self.threshold,
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out

    def report(self) -> str:
        """Terminal report: summary, per-span profile (when traced) and
        the straggler/health verdict."""
        from repro.obs.report import result_report
        return result_report(self) + self.health().summary() + "\n"

    def health(self, factor: float = 4.0):
        """Post-hoc health analysis (see
        :func:`repro.obs.health.straggler_report`)."""
        from repro.obs.health import straggler_report
        return straggler_report(self, factor=factor)


def _evaluate_fault(technique: Callable[[Any], Any],
                    detector: Callable[[Any, Any], float],
                    threshold: float,
                    on_error: str,
                    collect_obs: bool,
                    target: Any, reference: Any,
                    fault: Fault) -> FaultOutcome:
    """Evaluate a single fault against the reference measurement.

    Module-level (not a method) so a process pool can pickle it; the
    serial path calls the very same function, which is what makes
    ``workers=N`` results fault-for-fault identical to ``workers=1``.
    When ``collect_obs`` is set the evaluation runs inside an isolated
    observation scope and the metrics snapshot rides back on the
    outcome — identically in-process and in a worker, which is what
    makes the *metrics* identical too.
    """
    if collect_obs:
        with observe() as handle:
            outcome = _evaluate_fault_plain(technique, detector, threshold,
                                            on_error, target, reference, fault)
        outcome.metrics = handle.metrics.to_dict()
        outcome.events = handle.events.records()
        return outcome
    return _evaluate_fault_plain(technique, detector, threshold, on_error,
                                 target, reference, fault)


def _evaluate_fault_plain(technique, detector, threshold, on_error,
                          target, reference, fault) -> FaultOutcome:
    t0 = time.perf_counter()
    try:
        faulty = inject(target, fault)
        measurement = technique(faulty)
        score = float(detector(reference, measurement))
        score = min(1.0, max(0.0, score))
        outcome = FaultOutcome(
            fault=fault,
            detection=score,
            detected=score >= threshold,
            measurement=measurement,
        )
    except Exception as exc:  # noqa: BLE001 - campaign must continue
        if on_error == _ERROR_RAISE:
            raise
        as_detected = on_error == _ERROR_DETECTED
        outcome = FaultOutcome(
            fault=fault,
            detection=1.0 if as_detected else 0.0,
            detected=as_detected,
            error=f"{type(exc).__name__}: {exc}",
        )
    outcome.elapsed_s = time.perf_counter() - t0
    outcome.worker_pid = os.getpid()
    return outcome


class FaultCampaign:
    """Run a measurement technique over a fault universe.

    Parameters
    ----------
    technique:
        ``technique(target) -> measurement``.  Called once on the
        fault-free target to obtain the reference and once per faulty
        copy.
    detector:
        ``detector(reference, measurement) -> float`` in [0, 1]: the
        fraction of detection instances.
    threshold:
        Minimum detection fraction for a fault to count as *detected*.
        The paper treats any significant number of detection instances as
        a detection; the default asks for at least 5 % of time points.
    errors_as_detected:
        Policy for a faulty circuit that fails to simulate (e.g. Newton
        cannot bias a hard-shorted netlist).  ``True`` (default): such a
        circuit is behaving catastrophically wrong and counts as a
        detection with score 1.0.  ``False``: the fault is recorded as a
        *miss* with score 0.0 and its error string kept, so simulator
        blowups reduce rather than inflate coverage.  Either way
        :attr:`CampaignResult.n_errors` reports how many faults errored.
    treat_errors_as_detected:
        Deprecated alias (to be removed; see DESIGN.md).  ``True`` maps
        to ``errors_as_detected=True``; ``False`` keeps its historical
        meaning of *re-raising* the first evaluation error.
    workers:
        Number of worker processes for :meth:`run`.  ``1`` (default)
        evaluates faults serially in-process; ``N > 1`` fans the fault
        universe out over a :class:`concurrent.futures.ProcessPoolExecutor`.
        Faults are independent, so this is embarrassingly parallel;
        results come back in fault order regardless of completion order.
        Requires the technique, detector, target and faults to be
        picklable — if they are not, the campaign warns and falls back
        to serial evaluation.
    """

    def __init__(self, technique: Callable[[Any], Any],
                 detector: Callable[[Any, Any], float],
                 threshold: float = 0.05,
                 treat_errors_as_detected: Optional[bool] = None,
                 workers: int = 1,
                 errors_as_detected: bool = True) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.technique = technique
        self.detector = detector
        self.threshold = threshold
        self.workers = workers
        if treat_errors_as_detected is None:
            self._on_error = (_ERROR_DETECTED if errors_as_detected
                              else _ERROR_UNDETECTED)
        else:
            warnings.warn(
                "treat_errors_as_detected is deprecated; use "
                "errors_as_detected=True/False (False now records errored "
                "faults as misses instead of raising)",
                DeprecationWarning, stacklevel=2)
            self._on_error = (_ERROR_DETECTED if treat_errors_as_detected
                              else _ERROR_RAISE)

    @property
    def errors_as_detected(self) -> bool:
        return self._on_error == _ERROR_DETECTED

    @errors_as_detected.setter
    def errors_as_detected(self, value: bool) -> None:
        self._on_error = _ERROR_DETECTED if value else _ERROR_UNDETECTED

    def run(self, target: Any, faults: Iterable[Fault],
            reference: Any = None,
            workers: Optional[int] = None,
            progress: Optional[ProgressCallback] = None,
            heartbeat_every: int = 1) -> CampaignResult:
        """Evaluate every fault; ``reference`` may carry a precomputed
        fault-free measurement to avoid re-simulation.  ``workers``
        overrides the campaign-level worker count for this run.

        ``progress`` is called after every completed fault with a
        :class:`~repro.obs.health.CampaignProgress` (done/total, ETA,
        rate, evaluating pid); completion is reported in fault order in
        both the serial and the pooled path, so the callback sees the
        same sequence either way.  Under an observation scope the run
        additionally emits ``campaign.heartbeat`` events (and a
        ``campaign.heartbeats`` counter) every ``heartbeat_every``
        completions."""
        t_start = time.perf_counter()
        name = getattr(target, "name", type(target).__name__)
        with obs_span("campaign", target=name) as sp:
            if reference is None:
                reference = self.technique(target)
            result = CampaignResult(target_name=name, reference=reference,
                                    threshold=self.threshold)
            fault_list = list(faults)
            n_workers = self.workers if workers is None else workers
            if n_workers < 1:
                raise ValueError("workers must be >= 1")
            n_workers = min(n_workers, len(fault_list)) if fault_list else 1
            collect_obs = OBS.enabled

            evaluate = functools.partial(
                _evaluate_fault, self.technique, self.detector,
                self.threshold, self._on_error, collect_obs,
                target, reference)

            if n_workers > 1 and not self._picklable(evaluate, fault_list):
                warnings.warn(
                    "fault campaign: technique/detector/target/faults are "
                    "not picklable; falling back to serial evaluation",
                    RuntimeWarning, stacklevel=2)
                if OBS.enabled:
                    OBS.metrics.counter("campaign.pickle_fallbacks").inc()
                n_workers = 1

            tracker = ProgressTracker(len(fault_list), callback=progress,
                                      heartbeat_every=heartbeat_every)
            if n_workers > 1:
                # pool.map preserves submission order, so the outcome list
                # is deterministic (fault order) regardless of which worker
                # finishes first.  Chunking amortises IPC over several
                # faults.
                chunksize = max(1, len(fault_list) // (n_workers * 4))
                with concurrent.futures.ProcessPoolExecutor(
                        max_workers=n_workers) as pool:
                    for outcome in pool.map(evaluate, fault_list,
                                            chunksize=chunksize):
                        result.outcomes.append(outcome)
                        tracker.update(outcome)
            else:
                for f in fault_list:
                    outcome = evaluate(f)
                    result.outcomes.append(outcome)
                    tracker.update(outcome)

            result.workers = n_workers
            result.elapsed_s = time.perf_counter() - t_start
            self._record_obs(result, sp)
        if OBS.enabled:
            result.trace = sp
        return result

    def _record_obs(self, result: CampaignResult, sp) -> None:
        """Merge per-fault snapshots and record campaign-level metrics."""
        if not OBS.enabled:
            return
        m = OBS.metrics
        busy = 0.0
        for o in result.outcomes:
            m.merge(o.metrics)
            if o.events:
                OBS.events.extend(o.events)
            m.histogram("campaign.fault_wall_s").observe(o.elapsed_s)
            busy += o.elapsed_s
        m.counter("campaign.runs").inc()
        m.counter("campaign.faults_evaluated").inc(result.n_faults)
        m.counter("campaign.errors").inc(result.n_errors)
        if result.elapsed_s > 0.0 and result.n_faults:
            m.gauge("campaign.worker_utilization").set(
                busy / (result.elapsed_s * result.workers))
        sp.set(n_faults=result.n_faults, n_detected=result.n_detected,
               n_errors=result.n_errors, coverage=result.coverage,
               workers=result.workers)

    @staticmethod
    def _picklable(evaluate, fault_list) -> bool:
        try:
            pickle.dumps(evaluate)
            pickle.dumps(fault_list)
        except Exception:  # noqa: BLE001 - any pickle failure means serial
            return False
        return True
