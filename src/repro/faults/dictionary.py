"""Fault-dictionary campaign scenario: raw transient signatures.

The paper's dictionary methodology stores, for every fault in the
universe, the sampled output response to the BIST stimulus — the fault
*signature* — and detects by comparing a measured response against the
fault-free signature sample by sample.  This module provides the
lightweight technique/detector pair for that formulation plus builders
for a parameterised RC-ladder dictionary target, used by the batched
campaign tests and the ``BENCH_batched`` suite (the 64-fault dictionary
speedup benchmark).

Everything here is picklable (classes, not closures) so dictionary
campaigns compose with ``workers=N``, and the technique implements the
campaign batch protocol (``evaluate_batch``) so they compose with
``batch_size=K`` — the configuration the batched engine was built for:
K nearly identical linear variants marched in lockstep.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from repro.faults.model import BridgingFault, Fault
from repro.signals.prbs import prbs_waveform
from repro.signals.waveform import Waveform
from repro.spice.netlist import Circuit
from repro.spice.elements import Capacitor, Resistor, VoltageSource
from repro.spice.transient import transient

__all__ = ["TransientSignatureTechnique", "SignatureDetector",
           "dictionary_ladder", "dictionary_faults"]


class TransientSignatureTechnique:
    """Measurement = the raw sampled transient response at one node.

    The classic dictionary signature: no correlation, no windowing —
    the sampled waveform itself.  Calling the technique simulates one
    circuit; ``evaluate_batch`` marches a whole fault chunk through
    :func:`repro.spice.batched.batched_transient` in lockstep, returning
    bitwise-identical arrays to the per-fault path (the campaign
    re-evaluates any slot the batch cannot serve).
    """

    def __init__(self, t_stop: float, dt: float, node: str,
                 method: str = "be") -> None:
        self.t_stop = t_stop
        self.dt = dt
        self.node = node
        self.method = method

    def __call__(self, circuit: Circuit) -> np.ndarray:
        result = transient(circuit, self.t_stop, self.dt,
                           record=[self.node], method=self.method)
        return result.array(self.node)

    def evaluate_batch(self, target: Circuit,
                       faults: Sequence[Fault]) -> list:
        from repro.faults.campaign import BATCH_FALLBACK
        from repro.faults.injector import inject
        from repro.spice.batched import batched_transient

        out = [BATCH_FALLBACK] * len(faults)
        variants: List[Circuit] = []
        slots: List[int] = []
        for i, fault in enumerate(faults):
            try:
                variants.append(inject(target, fault))
            except Exception:  # noqa: BLE001 - serial re-run owns the error
                continue
            slots.append(i)
        if not variants:
            return out
        results = batched_transient(variants, self.t_stop, self.dt,
                                    record=[self.node], method=self.method)
        for slot, result in zip(slots, results):
            if result is not None:
                out[slot] = result.array(self.node)
        return out

    def surrogate_workload(self, target: Circuit):
        """Surrogate-prescreen protocol: the stimulus is whatever
        time-varying voltage source the netlist carries (the dictionary
        bakes it in), the measurement is the raw sample array."""
        from repro.surrogate.prescreen import SurrogateWorkload, waveform_source

        source_name, stimulus = waveform_source(target, self.dt,
                                                self.t_stop)
        return SurrogateWorkload(source_name=source_name,
                                 output_node=self.node,
                                 dt=self.dt,
                                 t_stop=self.t_stop,
                                 stimulus=stimulus,
                                 postprocess=lambda y: y.values,
                                 method=self.method)


class SignatureDetector:
    """Fraction of samples where the measured signature deviates from
    the fault-free one by more than ``abs_v`` volts (the detection-
    instances metric on raw samples)."""

    def __init__(self, abs_v: float = 0.05) -> None:
        if abs_v < 0.0:
            raise ValueError("abs_v must be non-negative")
        self.abs_v = abs_v

    def __call__(self, reference: np.ndarray,
                 measurement: np.ndarray) -> float:
        return float(np.mean(np.abs(measurement - reference) > self.abs_v))


def dictionary_ladder(n_sections: int = 10,
                      stimulus: Optional[Waveform] = None,
                      r_ohm: float = 1e3, c_f: float = 1e-9) -> Circuit:
    """An ``n_sections``-section RC ladder driven by a PRBS — the
    dictionary benchmark's target.  The stimulus Waveform is baked into
    the netlist, so every injected faulty copy shares the same object
    and the batched march can group all variants into one lockstep
    tensor."""
    if stimulus is None:
        stimulus = prbs_waveform(order=5, chip_time=100e-6, low=0.0,
                                 high=5.0, dt=1e-6, seed=3)
    c = Circuit(f"dict_ladder{n_sections}")
    c.add(VoltageSource("VIN", "in", "0", value=stimulus))
    prev = "in"
    for i in range(n_sections):
        node = f"n{i}"
        c.add(Resistor(f"R{i}", prev, node, r_ohm))
        c.add(Capacitor(f"C{i}", node, "0", c_f))
        prev = node
    return c


def dictionary_faults(n_sections: int = 10,
                      n_faults: int = 64) -> List[Fault]:
    """A bridging-fault universe over the ladder's internal nodes:
    every node pair, at a hard (150 Ω) and a resistive (1.5 kΩ) bridge,
    truncated to ``n_faults``.  Bridges add no MNA unknowns, so the
    whole universe lands in a single lockstep group."""
    nodes = [f"n{i}" for i in range(n_sections)]
    faults: List[Fault] = []
    for r in (150.0, 1500.0):
        for a, b in itertools.combinations(nodes, 2):
            faults.append(BridgingFault(f"{a}-{b}-{r:g}", a, b,
                                        resistance=r))
    if len(faults) < n_faults:
        raise ValueError(
            f"ladder with {n_sections} sections yields only "
            f"{len(faults)} bridging faults (< {n_faults})")
    return faults[:n_faults]
