"""Fault injection into netlists and behavioural models.

Netlist injection follows the paper's method: a stuck-at fault is a
voltage generator (source + series resistance) attached to the faulted
node; a bridging fault is a resistor between the bridged nodes.  The
original circuit is never mutated — injection returns a fresh copy.

Behavioural injection sets an attribute (possibly dotted) on a *copy* of
the model, which must expose a ``copy()`` method.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Iterable, List

from repro.faults.model import (
    BridgingFault,
    Fault,
    MultipleFault,
    ParameterFault,
    StuckAtFault,
)
from repro.spice.netlist import Circuit


def inject(target: Any, fault: Fault):
    """Return a copy of ``target`` (Circuit or behavioural model) with the
    fault applied."""
    if isinstance(target, Circuit):
        faulty = target.copy()
        faulty.name = f"{target.name}+{fault.describe()}"
        _apply_to_circuit(faulty, fault)
        return faulty
    return _apply_to_model(target, fault)


def inject_all(target: Any, faults: Iterable[Fault]) -> List:
    """Inject each fault independently; returns one faulty copy per fault."""
    return [inject(target, f) for f in faults]


# ----------------------------------------------------------------------
# Netlist injection
# ----------------------------------------------------------------------
def _apply_to_circuit(circuit: Circuit, fault: Fault) -> None:
    if isinstance(fault, MultipleFault):
        for sub in fault.faults:
            _apply_to_circuit(circuit, sub)
        return
    if isinstance(fault, StuckAtFault):
        _check_node(circuit, fault.node, fault)
        tag = _unique_name(circuit, f"FLT_{fault.name}")
        # The paper's fault voltage generator: an ideal source pulling the
        # node to the fault level through a series resistance.
        internal = f"_flt_{fault.name}"
        circuit.vsource(f"{tag}_V", internal, "0", fault.level)
        circuit.resistor(f"{tag}_R", internal, fault.node, fault.resistance)
        return
    if isinstance(fault, BridgingFault):
        _check_node(circuit, fault.node_a, fault)
        _check_node(circuit, fault.node_b, fault)
        tag = _unique_name(circuit, f"FLT_{fault.name}")
        circuit.resistor(f"{tag}_R", fault.node_a, fault.node_b,
                         fault.resistance)
        return
    if isinstance(fault, ParameterFault):
        raise TypeError(
            f"parameter fault {fault.name!r} cannot be injected into a "
            f"netlist; use a behavioural model target")
    raise TypeError(f"unsupported fault type {type(fault).__name__}")


def _check_node(circuit: Circuit, node: str, fault: Fault) -> None:
    canonical = circuit.canonical_node(node)
    if canonical != "0" and canonical not in circuit.nodes():
        raise KeyError(
            f"fault {fault.name!r} references unknown node {node!r} in "
            f"circuit {circuit.name!r}")


def _unique_name(circuit: Circuit, base: str) -> str:
    name = base
    n = 1
    while circuit.has_element(f"{name}_V") or circuit.has_element(f"{name}_R"):
        n += 1
        name = f"{base}{n}"
    return name


# ----------------------------------------------------------------------
# Behavioural injection
# ----------------------------------------------------------------------
def _apply_to_model(model: Any, fault: Fault):
    if hasattr(model, "copy") and callable(model.copy):
        faulty = model.copy()
    else:
        faulty = _copy.deepcopy(model)
    _set_on_model(faulty, fault)
    return faulty


def _set_on_model(model: Any, fault: Fault) -> None:
    if isinstance(fault, MultipleFault):
        for sub in fault.faults:
            _set_on_model(model, sub)
        return
    if not isinstance(fault, ParameterFault):
        raise TypeError(
            f"{type(fault).__name__} cannot be injected into a behavioural "
            f"model; netlist faults need a Circuit target")
    obj = model
    *path, attr = fault.parameter.split(".")
    for part in path:
        if not hasattr(obj, part):
            raise AttributeError(
                f"model has no sub-object {part!r} (fault {fault.name!r})")
        obj = getattr(obj, part)
    if not hasattr(obj, attr):
        raise AttributeError(
            f"model has no parameter {fault.parameter!r} (fault {fault.name!r})")
    setattr(obj, attr, fault.value)
