"""LTI system toolkit — the reproduction's Matlab substitute.

The paper's second test method extracts poles/zeros/constants from HSPICE,
builds state-space matrices in Matlab and compares impulse responses of
fault-free and faulty circuits.  This package provides those mathematical
objects: continuous-time state space and transfer functions, z-domain
transfer functions for switched-capacitor blocks, and impulse/step
response computation.
"""

from repro.lti.statespace import StateSpace
from repro.lti.transferfunction import TransferFunction, tf_from_poles_zeros
from repro.lti.zdomain import ZTransferFunction, sc_integrator_ztf
from repro.lti.impulse import (
    impulse_response,
    step_response,
    impulse_response_z,
    response_difference,
)

__all__ = [
    "StateSpace",
    "TransferFunction",
    "tf_from_poles_zeros",
    "ZTransferFunction",
    "sc_integrator_ztf",
    "impulse_response",
    "step_response",
    "impulse_response_z",
    "response_difference",
]
