"""Discrete-time (z-domain) transfer functions.

Switched-capacitor circuits are naturally discrete-time systems clocked by
their non-overlapping phases.  The paper designs its SC integrator to

    Vout(z) / Vin(z) = H(z) = z^-1 / (6.8 * (1 - z^-1))

i.e. a discrete integrator with per-sample gain 1/6.8 (the capacitor
ratio Cs/Cf).  :class:`ZTransferFunction` stores H(z) as polynomials in
z^-1 and runs the associated difference equation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.signals.waveform import Waveform

#: The paper's SC-integrator capacitor ratio: H(z) = z^-1 / (6.8 (1 - z^-1)).
PAPER_INTEGRATOR_RATIO = 6.8


class ZTransferFunction:
    """Rational function of ``z^-1``: ``H(z) = num(z^-1) / den(z^-1)``.

    ``num[k]`` multiplies ``z^-k``.  The difference equation is

        den[0]*y[n] = sum_k num[k]*u[n-k] - sum_{k>=1} den[k]*y[n-k]
    """

    def __init__(self, num: Sequence[float], den: Sequence[float],
                 dt: Optional[float] = None) -> None:
        num_arr = np.atleast_1d(np.asarray(num, dtype=float))
        den_arr = np.atleast_1d(np.asarray(den, dtype=float))
        if len(den_arr) == 0 or den_arr[0] == 0.0:
            raise ValueError("den[0] (the z^0 coefficient) must be nonzero")
        self.num = num_arr
        self.den = den_arr
        self.dt = dt

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return max(len(self.num), len(self.den)) - 1

    def poles(self) -> np.ndarray:
        """Poles in the z-plane."""
        n = len(self.den)
        if n <= 1:
            return np.empty(0, dtype=complex)
        # den as polynomial in z^-1 -> multiply through by z^(n-1):
        # den[0] z^{n-1} + den[1] z^{n-2} + ... + den[n-1]
        return np.roots(self.den)

    def zeros(self) -> np.ndarray:
        if len(self.num) <= 1:
            return np.empty(0, dtype=complex)
        return np.roots(self.num)

    def evaluate(self, z: complex) -> complex:
        zi = 1.0 / z
        num = sum(c * zi ** k for k, c in enumerate(self.num))
        den = sum(c * zi ** k for k, c in enumerate(self.den))
        return complex(num / den)

    def dc_gain(self) -> float:
        """Gain at z = 1; ``inf`` for an integrator."""
        num1 = float(np.sum(self.num))
        den1 = float(np.sum(self.den))
        if den1 == 0.0:
            return float("inf") if num1 != 0.0 else float("nan")
        return num1 / den1

    def is_stable(self) -> bool:
        """All poles strictly inside the unit circle."""
        return bool(np.all(np.abs(self.poles()) < 1.0))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ZTransferFunction(num={self.num.tolist()}, den={self.den.tolist()})"

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def filter(self, u: np.ndarray, y0: Optional[np.ndarray] = None) -> np.ndarray:
        """Run the difference equation over an input sample array."""
        u = np.asarray(u, dtype=float)
        y = np.zeros(len(u))
        if y0 is not None:
            ny = min(len(y0), len(y))
            y[:ny] = np.asarray(y0, dtype=float)[:ny]
        a0 = self.den[0]
        for n in range(len(u)):
            acc = 0.0
            for k, b in enumerate(self.num):
                if n - k >= 0:
                    acc += b * u[n - k]
            for k in range(1, len(self.den)):
                if n - k >= 0:
                    acc -= self.den[k] * y[n - k]
            y[n] = acc / a0
        return y

    def simulate(self, u: Waveform) -> Waveform:
        """Filter a waveform sampled at the SC clock rate."""
        if self.dt is not None and abs(u.dt - self.dt) > 1e-12 * self.dt:
            u = u.resample(self.dt)
        return Waveform(self.filter(u.values), u.dt, u.t0, name="y[n]")

    def impulse(self, n_samples: int) -> np.ndarray:
        """Impulse response h[n] for n = 0..n_samples-1."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        u = np.zeros(n_samples)
        u[0] = 1.0
        return self.filter(u)

    def step(self, n_samples: int) -> np.ndarray:
        """Step response."""
        return self.filter(np.ones(n_samples))

    def cascade(self, other: "ZTransferFunction") -> "ZTransferFunction":
        return ZTransferFunction(np.convolve(self.num, other.num),
                                 np.convolve(self.den, other.den),
                                 dt=self.dt or other.dt)


def sc_integrator_ztf(cap_ratio: float = PAPER_INTEGRATOR_RATIO,
                      dt: Optional[float] = None,
                      inverting: bool = False,
                      leak: float = 0.0) -> ZTransferFunction:
    """The paper's switched-capacitor integrator in the z domain.

    ``H(z) = ± z^-1 / (cap_ratio * (1 - (1 - leak) z^-1))``

    Parameters
    ----------
    cap_ratio:
        Feedback-to-sampling capacitor ratio Cf/Cs; the paper uses 6.8.
    dt:
        Clock period the difference equation runs at (e.g. 5 µs).
    inverting:
        Sign of the charge transfer.
    leak:
        Fractional charge loss per cycle (0 = ideal).  Finite op-amp gain
        or switch leakage shows up as a leaky integrator — one of the
        fault/degradation mechanisms studied in the campaigns.
    """
    if cap_ratio <= 0:
        raise ValueError("cap_ratio must be positive")
    if not 0.0 <= leak < 1.0:
        raise ValueError("leak must lie in [0, 1)")
    sign = -1.0 if inverting else 1.0
    num = [0.0, sign / cap_ratio]
    den = [1.0, -(1.0 - leak)]
    return ZTransferFunction(num, den, dt=dt)
