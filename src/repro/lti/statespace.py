"""Continuous-time state-space systems.

``dx/dt = A x + B u``, ``y = C x + D u`` — the representation the paper
builds in Matlab from HSPICE-extracted poles, zeros and constants, used to
compare the impulse responses of fault-free and faulty circuits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import expm

from repro.signals.waveform import Waveform


class StateSpace:
    """A SISO/MIMO continuous-time linear system in state-space form."""

    def __init__(self, a, b, c, d) -> None:
        self.a = np.atleast_2d(np.asarray(a, dtype=float))
        self.b = np.atleast_2d(np.asarray(b, dtype=float))
        self.c = np.atleast_2d(np.asarray(c, dtype=float))
        self.d = np.atleast_2d(np.asarray(d, dtype=float))
        n = self.a.shape[0]
        if self.a.shape != (n, n):
            raise ValueError(f"A must be square, got {self.a.shape}")
        if self.b.shape[0] != n:
            raise ValueError(f"B row count {self.b.shape[0]} != order {n}")
        if self.c.shape[1] != n:
            raise ValueError(f"C column count {self.c.shape[1]} != order {n}")
        if self.d.shape != (self.c.shape[0], self.b.shape[1]):
            raise ValueError(
                f"D shape {self.d.shape} inconsistent with C rows/B columns")

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.b.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.c.shape[0]

    def poles(self) -> np.ndarray:
        """System poles (eigenvalues of A)."""
        return np.linalg.eigvals(self.a)

    def is_stable(self, margin: float = 0.0) -> bool:
        """All poles strictly in the left half-plane (by ``margin``)."""
        return bool(np.all(np.real(self.poles()) < -margin))

    def dc_gain(self) -> np.ndarray:
        """Steady-state gain ``D - C A^-1 B`` (requires invertible A)."""
        return self.d - self.c @ np.linalg.solve(self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"StateSpace(order={self.order}, inputs={self.n_inputs}, "
                f"outputs={self.n_outputs})")

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def cascade(self, other: "StateSpace") -> "StateSpace":
        """Series connection: the output of ``self`` drives ``other``."""
        if self.n_outputs != other.n_inputs:
            raise ValueError("cascade dimension mismatch")
        n1, n2 = self.order, other.order
        a = np.zeros((n1 + n2, n1 + n2))
        a[:n1, :n1] = self.a
        a[n1:, n1:] = other.a
        a[n1:, :n1] = other.b @ self.c
        b = np.vstack([self.b, other.b @ self.d])
        c = np.hstack([other.d @ self.c, other.c])
        d = other.d @ self.d
        return StateSpace(a, b, c, d)

    def parallel(self, other: "StateSpace") -> "StateSpace":
        """Summing-junction parallel connection (same input, outputs add)."""
        if self.n_inputs != other.n_inputs or self.n_outputs != other.n_outputs:
            raise ValueError("parallel dimension mismatch")
        n1, n2 = self.order, other.order
        a = np.zeros((n1 + n2, n1 + n2))
        a[:n1, :n1] = self.a
        a[n1:, n1:] = other.a
        b = np.vstack([self.b, other.b])
        c = np.hstack([self.c, other.c])
        d = self.d + other.d
        return StateSpace(a, b, c, d)

    def scaled(self, gain: float) -> "StateSpace":
        """Output scaled by a constant gain."""
        return StateSpace(self.a, self.b, gain * self.c, gain * self.d)

    # ------------------------------------------------------------------
    # Discretisation and simulation
    # ------------------------------------------------------------------
    def discretize(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-order-hold discretisation; returns ``(Ad, Bd)``.

        Uses the standard augmented-matrix exponential so singular A is
        handled (integrators are common in this work).
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        n, m = self.order, self.n_inputs
        block = np.zeros((n + m, n + m))
        block[:n, :n] = self.a
        block[:n, n:] = self.b
        eblock = expm(block * dt)
        return eblock[:n, :n], eblock[:n, n:]

    def simulate(self, u: Waveform, x0: Optional[np.ndarray] = None) -> Waveform:
        """Simulate the (SISO view of the) system against input waveform ``u``.

        Zero-order-hold between samples.  Returns the first output.
        """
        ad, bd = self.discretize(u.dt)
        n = self.order
        x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).reshape(n)
        y = np.empty(len(u))
        c0 = self.c[0]
        d0 = self.d[0, 0] if self.d.size else 0.0
        uin = u.values
        for k in range(len(u)):
            y[k] = c0 @ x + d0 * uin[k]
            x = ad @ x + bd[:, 0] * uin[k]
        return Waveform(y, u.dt, u.t0, name="y")

    def impulse(self, dt: float, duration: float) -> Waveform:
        """Impulse response ``C e^{At} B`` sampled on a uniform grid.

        The t=0 sample includes the D feed-through as an area-``1/dt``
        impulse approximation.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_samples = int(round(duration / dt)) + 1
        phi = expm(self.a * dt)
        h = np.empty(n_samples)
        m = np.eye(self.order)
        b0 = self.b[:, 0]
        c0 = self.c[0]
        for k in range(n_samples):
            h[k] = c0 @ m @ b0
            m = phi @ m
        if self.d.size and self.d[0, 0] != 0.0:
            h[0] += self.d[0, 0] / dt
        return Waveform(h, dt, name="h(t)")

    def step(self, dt: float, duration: float) -> Waveform:
        """Unit-step response."""
        n_samples = int(round(duration / dt)) + 1
        u = Waveform(np.ones(n_samples), dt, name="u")
        return self.simulate(u)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_transfer_function(num, den) -> "StateSpace":
        """Controllable canonical realisation of ``num(s)/den(s)``.

        Coefficients are highest power first, as in scipy.signal.
        """
        num = np.atleast_1d(np.asarray(num, dtype=float))
        den = np.atleast_1d(np.asarray(den, dtype=float))
        den = np.trim_zeros(den, "f")
        if len(den) == 0 or den[0] == 0.0:
            raise ValueError("denominator leading coefficient must be nonzero")
        if len(num) > len(den):
            raise ValueError("improper transfer function (deg num > deg den)")
        den = den / den[0]
        n = len(den) - 1
        if n == 0:
            return StateSpace(np.zeros((1, 1)), np.zeros((1, 1)),
                              np.zeros((1, 1)), [[num[0] / 1.0]])
        num_full = np.concatenate([np.zeros(len(den) - len(num)), num])
        d = num_full[0]
        # After removing the direct term, the strictly proper numerator:
        num_sp = num_full[1:] - d * den[1:]
        a = np.zeros((n, n))
        a[0, :] = -den[1:]
        if n > 1:
            a[1:, :-1] = np.eye(n - 1)
        b = np.zeros((n, 1))
        b[0, 0] = 1.0
        c = num_sp.reshape(1, n)
        return StateSpace(a, b, c, [[d]])

    @staticmethod
    def integrator(gain: float = 1.0) -> "StateSpace":
        """Ideal integrator ``gain / s``."""
        return StateSpace([[0.0]], [[1.0]], [[gain]], [[0.0]])

    @staticmethod
    def first_order(pole: float, gain: float = 1.0) -> "StateSpace":
        """Single-pole low-pass ``gain * p / (s + p)`` with ``pole`` rad/s."""
        if pole <= 0:
            raise ValueError("pole must be a positive rad/s magnitude")
        return StateSpace([[-pole]], [[pole]], [[gain]], [[0.0]])
