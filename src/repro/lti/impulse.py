"""Impulse/step responses and response-difference metrics.

The paper's second test method ("the impulse responses ... were also
plotted so that the percentage of detection instances can be derived")
compares the impulse response of each faulty circuit model against the
fault-free one.  These helpers compute responses from the LTI objects and
quantify the differences.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.lti.statespace import StateSpace
from repro.lti.transferfunction import TransferFunction
from repro.lti.zdomain import ZTransferFunction
from repro.signals.waveform import Waveform

System = Union[StateSpace, TransferFunction]


def _as_statespace(system: System) -> StateSpace:
    if isinstance(system, TransferFunction):
        return system.to_statespace()
    if isinstance(system, StateSpace):
        return system
    raise TypeError(f"unsupported system type {type(system).__name__}")


def impulse_response(system: System, dt: float, duration: float) -> Waveform:
    """Continuous-time impulse response sampled on a uniform grid."""
    return _as_statespace(system).impulse(dt, duration)


def step_response(system: System, dt: float, duration: float) -> Waveform:
    """Continuous-time unit-step response."""
    return _as_statespace(system).step(dt, duration)


def impulse_response_z(ztf: ZTransferFunction, n_samples: int,
                       dt: float = 1.0) -> Waveform:
    """Discrete impulse response of a z-domain system as a waveform."""
    h = ztf.impulse(n_samples)
    return Waveform(h, ztf.dt or dt, name="h[n]")


def response_difference(reference: Waveform, candidate: Waveform) -> Waveform:
    """Pointwise difference ``candidate - reference`` on a common grid."""
    if abs(reference.dt - candidate.dt) > 1e-15 * max(reference.dt, candidate.dt):
        candidate = candidate.resample(reference.dt)
    n = min(len(reference), len(candidate))
    return Waveform(candidate.values[:n] - reference.values[:n],
                    reference.dt, reference.t0, name="delta")


def normalized_deviation(reference: Waveform, candidate: Waveform,
                         floor: float = 1e-12) -> Waveform:
    """Deviation normalised by the reference's peak magnitude.

    Each sample is ``|candidate - reference| / max|reference|`` — the
    per-time-instance quantity thresholded by the detection-instances
    metric.
    """
    delta = response_difference(reference, candidate)
    scale = max(float(np.max(np.abs(reference.values))), floor)
    return Waveform(np.abs(delta.values) / scale, delta.dt, delta.t0,
                    name="normdev")


def rms_deviation(reference: Waveform, candidate: Waveform) -> float:
    """Root-mean-square deviation between two responses."""
    return response_difference(reference, candidate).rms()


def peak_deviation(reference: Waveform, candidate: Waveform) -> Tuple[float, float]:
    """Return ``(peak_abs_deviation, time_of_peak)``."""
    delta = response_difference(reference, candidate)
    idx = int(np.argmax(np.abs(delta.values)))
    return float(abs(delta.values[idx])), float(delta.times[idx])
