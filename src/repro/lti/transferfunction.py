"""Continuous-time (s-domain) transfer functions.

The paper's flow extracts "poles, zeros and constants" from HSPICE and then
builds state-space matrices from them; :func:`tf_from_poles_zeros` is that
step, and :class:`TransferFunction` carries the polynomial form with
conversion into :class:`~repro.lti.statespace.StateSpace`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.lti.statespace import StateSpace


class TransferFunction:
    """Rational transfer function ``num(s) / den(s)``.

    Coefficients are stored highest-power-first (numpy polynomial order).
    """

    def __init__(self, num: Sequence[float], den: Sequence[float]) -> None:
        num_arr = np.trim_zeros(np.atleast_1d(np.asarray(num, dtype=float)), "f")
        den_arr = np.trim_zeros(np.atleast_1d(np.asarray(den, dtype=float)), "f")
        if len(den_arr) == 0:
            raise ValueError("denominator must be nonzero")
        if len(num_arr) == 0:
            num_arr = np.array([0.0])
        if len(num_arr) > len(den_arr):
            raise ValueError("improper transfer function (deg num > deg den)")
        # Normalise so den is monic; keeps comparisons canonical.
        self.num = num_arr / den_arr[0]
        self.den = den_arr / den_arr[0]

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return len(self.den) - 1

    def poles(self) -> np.ndarray:
        if self.order == 0:
            return np.empty(0, dtype=complex)
        return np.roots(self.den)

    def zeros(self) -> np.ndarray:
        if len(self.num) <= 1:
            return np.empty(0, dtype=complex)
        return np.roots(self.num)

    def gain_constant(self) -> float:
        """Leading numerator coefficient with monic denominator."""
        return float(self.num[0])

    def dc_gain(self) -> float:
        """Gain at s = 0; ``inf`` when there is a pole at the origin."""
        den0 = self.den[-1]
        num0 = self.num[-1]
        if den0 == 0.0:
            return float("inf") if num0 != 0.0 else float("nan")
        return float(num0 / den0)

    def evaluate(self, s: complex) -> complex:
        """Evaluate H(s) at a complex frequency."""
        return complex(np.polyval(self.num, s) / np.polyval(self.den, s))

    def magnitude_db(self, omega: np.ndarray) -> np.ndarray:
        """Gain magnitude in dB over an angular-frequency vector."""
        h = np.polyval(self.num, 1j * omega) / np.polyval(self.den, 1j * omega)
        return 20.0 * np.log10(np.maximum(np.abs(h), 1e-300))

    def to_statespace(self) -> StateSpace:
        return StateSpace.from_transfer_function(self.num, self.den)

    def is_stable(self) -> bool:
        return bool(np.all(np.real(self.poles()) < 0.0))

    # ------------------------------------------------------------------
    def cascade(self, other: "TransferFunction") -> "TransferFunction":
        return TransferFunction(np.polymul(self.num, other.num),
                                np.polymul(self.den, other.den))

    def __mul__(self, other) -> "TransferFunction":
        if isinstance(other, TransferFunction):
            return self.cascade(other)
        return TransferFunction(self.num * float(other), self.den)

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover
        return f"TransferFunction(num={self.num.tolist()}, den={self.den.tolist()})"

    def almost_equal(self, other: "TransferFunction", rtol: float = 1e-6) -> bool:
        return (len(self.num) == len(other.num)
                and len(self.den) == len(other.den)
                and bool(np.allclose(self.num, other.num, rtol=rtol, atol=1e-12))
                and bool(np.allclose(self.den, other.den, rtol=rtol, atol=1e-12)))


def tf_from_poles_zeros(poles: Sequence[complex], zeros: Sequence[complex],
                        constant: float = 1.0) -> TransferFunction:
    """Build ``H(s) = constant * prod(s - z_i) / prod(s - p_i)``.

    This is the paper's "poles, zeros and constants" → matrices step.
    Complex singularities must come in conjugate pairs so the resulting
    polynomial coefficients are real.
    """
    num = np.real_if_close(np.poly(np.asarray(zeros, dtype=complex))) * constant \
        if len(zeros) else np.array([constant], dtype=float)
    den = np.real_if_close(np.poly(np.asarray(poles, dtype=complex))) \
        if len(poles) else np.array([1.0])
    if np.iscomplexobj(num) and np.max(np.abs(np.imag(num))) > 1e-9 * np.max(np.abs(num)):
        raise ValueError("zeros must form conjugate pairs (real coefficients)")
    if np.iscomplexobj(den) and np.max(np.abs(np.imag(den))) > 1e-9 * np.max(np.abs(den)):
        raise ValueError("poles must form conjugate pairs (real coefficients)")
    return TransferFunction(np.real(num), np.real(den))


def dominant_pole(tf: TransferFunction) -> complex:
    """The pole closest to the imaginary axis (slowest natural mode)."""
    poles = tf.poles()
    if len(poles) == 0:
        raise ValueError("transfer function has no poles")
    return complex(poles[np.argmin(np.abs(np.real(poles)))])
